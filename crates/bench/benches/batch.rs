//! Batched differential execution vs the per-input oracle loop.
//!
//! For every Table 4 target this measures the oracle's throughput over a
//! fixed 64-input stream (deterministic mutations of the target's seeds)
//! in three configurations:
//!
//! * `batch1`  — the pre-batching shape: `run_input_sessions` per input;
//! * `batch16` — `run_batch_sessions` over 16-input chunks (the fuzzer's
//!   default `--batch-size`);
//! * `batch64` — one `run_batch_sessions` sweep over the whole stream.
//!
//! Before timing, every target asserts that batched outcomes are
//! bit-identical to the per-input ones over the same stream, so an
//! ordering or bisection bug cannot hide behind a throughput number.
//! Emits `BENCH_batch.json` (per-row medians plus derived execs/sec and
//! aggregate batch16/batch1 speedup) when `COMPDIFF_BENCH_JSON_DIR` is
//! set.

use compdiff::{CompDiff, DiffConfig, Json};
use compdiff_bench::harness::{write_json, BenchGroup, BenchResult};
use std::hint::black_box;
use targets::build_all;

const STREAM_LEN: usize = 64;

/// Deterministic input stream: the target's seeds plus xorshift-mutated
/// variants, mimicking a fuzzer queue drain (mostly benign inputs).
fn input_stream(seeds: &[Vec<u8>], n: usize) -> Vec<Vec<u8>> {
    let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let base = &seeds[i % seeds.len().max(1)];
        let mut input = base.clone();
        if !input.is_empty() {
            let pos = (next() as usize) % input.len();
            input[pos] ^= (next() & 0xff) as u8;
        } else {
            input.push((next() & 0xff) as u8);
        }
        out.push(input);
    }
    out
}

fn execs_per_sec(r: &BenchResult, execs: usize) -> f64 {
    execs as f64 / r.median.as_secs_f64().max(1e-12)
}

fn main() {
    let targets = build_all();
    let mut g = BenchGroup::new("batch");
    let mut rows: Vec<(String, usize, BenchResult, BenchResult, BenchResult)> = Vec::new();

    for t in &targets {
        let name = t.spec.name.clone();
        let diff = CompDiff::from_source_default(&t.src, DiffConfig::default())
            .unwrap_or_else(|e| panic!("{name} does not compile: {e}"));
        let inputs = input_stream(&t.seeds, STREAM_LEN);
        let k = diff.binaries().len();

        // Equivalence gate: batched outcomes must be bit-identical to the
        // per-input loop before batching is allowed to be faster.
        let batched = diff.run_batch_sessions(&mut diff.make_sessions(), &inputs);
        let mut check = diff.make_sessions();
        for (j, input) in inputs.iter().enumerate() {
            let single = diff.run_input_sessions(&mut check, input);
            assert_eq!(batched[j].hashes, single.hashes, "{name} input {j}");
            assert_eq!(batched[j].results, single.results, "{name} input {j}");
        }

        let mut s = diff.make_sessions();
        let r1 = g.bench(&format!("{name}/batch1"), || {
            for input in &inputs {
                black_box(diff.run_input_sessions(&mut s, input));
            }
        });
        let mut s = diff.make_sessions();
        let r16 = g.bench(&format!("{name}/batch16"), || {
            for chunk in inputs.chunks(16) {
                black_box(diff.run_batch_sessions(&mut s, chunk));
            }
        });
        let mut s = diff.make_sessions();
        let r64 = g.bench(&format!("{name}/batch64"), || {
            black_box(diff.run_batch_sessions(&mut s, &inputs));
        });
        rows.push((name, k * STREAM_LEN, r1, r16, r64));
    }

    let results = g.finish();

    println!();
    println!("| Target | batch=1 execs/s | batch=16 execs/s | batch=64 execs/s | 16 / 1 |");
    println!("|---|---|---|---|---|");
    let mut speedups: Vec<f64> = Vec::new();
    for (name, execs, r1, r16, r64) in &rows {
        let speedup = r1.median.as_secs_f64() / r16.median.as_secs_f64();
        speedups.push(speedup);
        println!(
            "| {name} | {:.0} | {:.0} | {:.0} | {:.2}x |",
            execs_per_sec(r1, *execs),
            execs_per_sec(r16, *execs),
            execs_per_sec(r64, *execs),
            speedup
        );
    }
    speedups.sort_unstable_by(f64::total_cmp);
    let median_speedup = speedups[speedups.len() / 2];
    println!();
    println!("median batch16/batch1 speedup: {median_speedup:.2}x");

    let ops = Json::Array(
        rows.iter()
            .map(|(name, execs, r1, r16, r64)| {
                Json::obj(vec![
                    ("target", Json::Str(name.clone())),
                    (
                        "batch1_execs_per_sec",
                        Json::Float(execs_per_sec(r1, *execs)),
                    ),
                    (
                        "batch16_execs_per_sec",
                        Json::Float(execs_per_sec(r16, *execs)),
                    ),
                    (
                        "batch64_execs_per_sec",
                        Json::Float(execs_per_sec(r64, *execs)),
                    ),
                ])
            })
            .collect(),
    );
    write_json(
        "BENCH_batch.json",
        &results,
        vec![
            ("execs_per_sec", ops),
            ("median_batch16_speedup", Json::Float(median_speedup)),
        ],
    );
}
