//! Campaign scaling: the same fixed workload at 1 worker vs 4 workers.
//!
//! On a multi-core machine 4 workers should finish the (embarrassingly
//! parallel) job set at least 2x faster; on a single hardware thread the
//! ratio honestly reports ~1x, so the >=2x assertion is gated on
//! `available_parallelism() >= 4`.

use campaign::CampaignConfig;
use compdiff::Json;
use compdiff_bench::harness::{write_json, BenchGroup};

fn workload(workers: usize) -> CampaignConfig {
    CampaignConfig {
        workers,
        execs_per_target: 400,
        shards_per_target: 4,
        target_filter: Some(
            ["tcpdump", "MuJS", "openssl", "php"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        ..Default::default()
    }
}

fn main() {
    let mut g = BenchGroup::new("campaign");
    g.sample_size(5);
    let one = g.bench("workers_1", || campaign::run(&workload(1)).unwrap());
    let four = g.bench("workers_4", || campaign::run(&workload(4)).unwrap());
    let results = g.finish();

    let speedup = one.median.as_secs_f64() / four.median.as_secs_f64();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("campaign 4-worker speedup: {speedup:.2}x on {cores} hardware threads");
    write_json(
        "BENCH_campaign.json",
        &results,
        vec![
            ("speedup_4_workers", Json::Float(speedup)),
            ("hardware_threads", Json::Int(cores as i64)),
        ],
    );
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >=2x at 4 workers on {cores} cores, got {speedup:.2}x"
        );
    }
}
