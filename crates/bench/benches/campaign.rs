//! Campaign scaling: the same fixed workload run in-process (thread
//! workers) and across coordinator/worker *processes*, at 1 and 4
//! workers each.
//!
//! Honesty rules for the recorded baseline (`BENCH_campaign.json`):
//! every row records its worker count and execution mode, the file
//! records the machine's hardware thread count, and the 4-worker
//! speedup is only measured when the machine actually has >= 4
//! hardware threads — otherwise the file carries an explicit
//! `speedup_4_workers_refused` entry instead of a meaningless ~1x
//! ratio from an oversubscribed single core.

use campaign::CampaignConfig;
use compdiff::Json;
use compdiff_bench::harness::{write_json, BenchGroup};
use std::path::Path;

fn workload() -> CampaignConfig {
    CampaignConfig {
        execs_per_target: 400,
        shards_per_target: 4,
        target_filter: Some(
            ["tcpdump", "MuJS", "openssl", "php"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        ..Default::default()
    }
}

fn threads(workers: usize) -> CampaignConfig {
    CampaignConfig {
        workers,
        ..workload()
    }
}

fn procs(workers: usize, exe: &Path) -> CampaignConfig {
    CampaignConfig {
        workers_proc: Some(workers),
        worker_exe: Some(exe.to_path_buf()),
        ..workload()
    }
}

fn row(name: &str, workers: usize, mode: &str) -> Json {
    Json::obj(vec![
        ("name", Json::Str(format!("campaign/{name}"))),
        ("workers", Json::Int(workers as i64)),
        ("mode", Json::Str(mode.to_string())),
    ])
}

fn main() {
    let mut g = BenchGroup::new("campaign");
    g.sample_size(5);
    g.bench("threads_1", || campaign::run(&threads(1)).unwrap());
    g.bench("threads_4", || campaign::run(&threads(4)).unwrap());
    let mut rows = vec![
        row("threads_1", 1, "threads"),
        row("threads_4", 4, "threads"),
    ];

    // The multi-process rows need the `compdiff` binary on disk (it is
    // the worker executable); probe via the same resolution chain the
    // coordinator uses and skip honestly when it is absent.
    let worker_exe = campaign::resolve_worker_exe(&workload());
    let procs_pair = match &worker_exe {
        Ok(exe) => {
            let one = g.bench("procs_1", || campaign::run(&procs(1, exe)).unwrap());
            let four = g.bench("procs_4", || campaign::run(&procs(4, exe)).unwrap());
            rows.push(row("procs_1", 1, "processes"));
            rows.push(row("procs_4", 4, "processes"));
            Some((one, four))
        }
        Err(e) => {
            println!("campaign/procs_*: skipped ({e}); build the compdiff binary first");
            None
        }
    };
    let results = g.finish();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut extra = vec![
        ("hardware_threads", Json::Int(cores as i64)),
        ("rows", Json::Array(rows)),
    ];
    // The headline speedup is the *process* scaling path — measuring it
    // on fewer hardware threads than workers would time contention, not
    // scaling, so it is refused outright rather than recorded.
    match procs_pair {
        Some((ref one, ref four)) if cores >= 4 => {
            let speedup = one.median.as_secs_f64() / four.median.as_secs_f64();
            println!("campaign 4-process speedup: {speedup:.2}x on {cores} hardware threads");
            extra.push(("speedup_4_workers", Json::Float(speedup)));
            write_json("BENCH_campaign.json", &results, extra);
            assert!(
                speedup >= 1.8,
                "expected >=1.8x at 4 worker processes on {cores} cores, got {speedup:.2}x"
            );
        }
        Some(_) => {
            let reason = format!("hardware_threads {cores} < workers 4; speedup not measured");
            println!("campaign 4-process speedup refused: {reason}");
            extra.push(("speedup_4_workers_refused", Json::Str(reason)));
            write_json("BENCH_campaign.json", &results, extra);
        }
        None => {
            let reason = "worker executable unavailable; speedup not measured".to_string();
            extra.push(("speedup_4_workers_refused", Json::Str(reason)));
            write_json("BENCH_campaign.json", &results, extra);
        }
    }
}
