//! Compilation pipeline throughput per optimization level (the cost of
//! producing the k binaries, amortized once per target in CompDiff).

use criterion::{criterion_group, criterion_main, Criterion};
use minc_compile::{compile, CompilerImpl};
use std::hint::black_box;

fn program(n_funcs: usize) -> String {
    let mut src = String::new();
    for i in 0..n_funcs {
        src.push_str(&format!(
            "int f{i}(int x) {{ int a[8]; int j; for (j = 0; j < 8; j++) {{ a[j] = x + j * {i}; }} return a[x & 7] + f{prev}(x - 1); }}\n",
            prev = if i == 0 { 0 } else { i - 1 },
        ));
    }
    // f0 recurses into itself via the template above; replace with a base case.
    src = src.replacen("+ f0(x - 1)", "+ x", 1);
    src.push_str("int main() { printf(\"%d\\n\", f");
    src.push_str(&(n_funcs - 1).to_string());
    src.push_str("(5)); return 0; }\n");
    src
}

fn bench_compile(c: &mut Criterion) {
    let src = program(12);
    let checked = minc::check(&src).unwrap();
    let mut g = c.benchmark_group("compile");
    for name in ["gcc-O0", "gcc-O2", "clang-O3", "clang-Os"] {
        let ci = CompilerImpl::parse(name).unwrap();
        g.bench_function(name, |b| b.iter(|| black_box(compile(&checked, ci))));
    }
    g.bench_function("frontend_check", |b| b.iter(|| black_box(minc::check(&src).unwrap())));
    g.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
