//! Compilation pipeline throughput per optimization level (the cost of
//! producing the k binaries, amortized once per target in CompDiff).

use compdiff_bench::harness::BenchGroup;
use minc_compile::{compile, CompilerImpl};

fn program(n_funcs: usize) -> String {
    let mut src = String::new();
    for i in 0..n_funcs {
        src.push_str(&format!(
            "int f{i}(int x) {{ int a[8]; int j; for (j = 0; j < 8; j++) {{ a[j] = x + j * {i}; }} return a[x & 7] + f{prev}(x - 1); }}\n",
            prev = if i == 0 { 0 } else { i - 1 },
        ));
    }
    // f0 recurses into itself via the template above; replace with a base case.
    src = src.replacen("+ f0(x - 1)", "+ x", 1);
    src.push_str("int main() { printf(\"%d\\n\", f");
    src.push_str(&(n_funcs - 1).to_string());
    src.push_str("(5)); return 0; }\n");
    src
}

fn main() {
    let src = program(12);
    let checked = minc::check(&src).unwrap();
    let mut g = BenchGroup::new("compile");
    for name in ["gcc-O0", "gcc-O2", "clang-O3", "clang-Os"] {
        let ci = CompilerImpl::parse(name).unwrap();
        g.bench(name, || compile(&checked, ci));
    }
    g.bench("frontend_check", || minc::check(&src).unwrap());
    g.finish();
}
