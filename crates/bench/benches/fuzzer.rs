//! Fuzzer throughput: plain AFL++ loop vs CompDiff-AFL++ (the oracle's
//! k-executions cost — the other face of the §5 overhead claim).

use compdiff::{CompDiffAfl, DiffConfig};
use compdiff_bench::harness::BenchGroup;
use fuzzing::{BinaryTarget, FuzzConfig, Fuzzer, NoOracle};
use minc_compile::{compile_source, CompilerImpl};
use minc_vm::VmConfig;

const SRC: &str = r#"
    int main() {
        char b[16];
        long n = read_input(b, 16L);
        int cs = 0;
        long i;
        for (i = 0; i < n; i++) { cs = cs * 31 + (int)b[i]; }
        printf("%d\n", cs);
        return 0;
    }
"#;

fn main() {
    let mut g = BenchGroup::new("fuzzer");
    g.sample_size(10);
    let bin = compile_source(SRC, CompilerImpl::parse("clang-O1").unwrap()).unwrap();
    g.bench("plain_afl_2000_execs", || {
        let target = BinaryTarget::new(&bin, VmConfig::default());
        let cfg = FuzzConfig {
            max_execs: 2_000,
            seed: 1,
            ..Default::default()
        };
        Fuzzer::new(target, NoOracle, cfg).run(&[b"seed".to_vec()])
    });
    g.bench("compdiff_afl_2000_execs", || {
        let afl = CompDiffAfl::from_source_default(
            SRC,
            FuzzConfig {
                max_execs: 2_000,
                seed: 1,
                ..Default::default()
            },
            DiffConfig::default(),
        )
        .unwrap();
        afl.run(&[b"seed".to_vec()])
    });
    g.finish();
}
