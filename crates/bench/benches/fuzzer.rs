//! Fuzzer throughput: plain AFL++ loop vs CompDiff-AFL++ (the oracle's
//! k-executions cost — the other face of the §5 overhead claim).

use compdiff::{CompDiffAfl, DiffConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use fuzzing::{BinaryTarget, FuzzConfig, Fuzzer, NoOracle};
use minc_compile::{compile_source, CompilerImpl};
use minc_vm::VmConfig;
use std::hint::black_box;

const SRC: &str = r#"
    int main() {
        char b[16];
        long n = read_input(b, 16L);
        int cs = 0;
        long i;
        for (i = 0; i < n; i++) { cs = cs * 31 + (int)b[i]; }
        printf("%d\n", cs);
        return 0;
    }
"#;

fn bench_fuzzer(c: &mut Criterion) {
    let mut g = c.benchmark_group("fuzzer");
    g.sample_size(10);
    g.bench_function("plain_afl_2000_execs", |b| {
        let bin = compile_source(SRC, CompilerImpl::parse("clang-O1").unwrap()).unwrap();
        b.iter(|| {
            let target = BinaryTarget { binary: &bin, vm: VmConfig::default() };
            let cfg = FuzzConfig { max_execs: 2_000, seed: 1, ..Default::default() };
            black_box(Fuzzer::new(target, NoOracle, cfg).run(&[b"seed".to_vec()]))
        })
    });
    g.bench_function("compdiff_afl_2000_execs", |b| {
        b.iter(|| {
            let afl = CompDiffAfl::from_source_default(
                SRC,
                FuzzConfig { max_execs: 2_000, seed: 1, ..Default::default() },
                DiffConfig::default(),
            )
            .unwrap();
            black_box(afl.run(&[b"seed".to_vec()]))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fuzzer);
criterion_main!(benches);
