//! Output-comparison cost: MurmurHash3 checksums (the paper's choice)
//! versus keeping and comparing full outputs — the ablation for DESIGN.md
//! decision #1.

use compdiff::hash64;
use compdiff_bench::harness::{BenchGroup, Throughput};
use std::hint::black_box;

fn main() {
    let outputs: Vec<Vec<u8>> = (0..10u8)
        .map(|i| {
            let mut v = vec![i; 4096];
            v[17] = i.wrapping_mul(31);
            v
        })
        .collect();

    let mut g = BenchGroup::new("output_compare");
    g.throughput(Throughput::Bytes((outputs.len() * 4096) as u64));
    g.bench("murmur3_hash_then_compare", || {
        let hashes: Vec<u64> = outputs.iter().map(|o| hash64(o)).collect();
        black_box(hashes.windows(2).all(|w| w[0] == w[1]))
    });
    g.bench("full_byte_compare", || {
        black_box(outputs.windows(2).all(|w| w[0] == w[1]))
    });
    g.finish();
}
