//! Output-comparison cost: MurmurHash3 checksums (the paper's choice)
//! versus keeping and comparing full outputs — the ablation for DESIGN.md
//! decision #1.

use compdiff::hash64;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_murmur(c: &mut Criterion) {
    let outputs: Vec<Vec<u8>> = (0..10u8)
        .map(|i| {
            let mut v = vec![i; 4096];
            v[17] = i.wrapping_mul(31);
            v
        })
        .collect();

    let mut g = c.benchmark_group("output_compare");
    g.throughput(Throughput::Bytes((outputs.len() * 4096) as u64));
    g.bench_function("murmur3_hash_then_compare", |b| {
        b.iter(|| {
            let hashes: Vec<u64> = outputs.iter().map(|o| hash64(o)).collect();
            black_box(hashes.windows(2).all(|w| w[0] == w[1]))
        })
    });
    g.bench_function("full_byte_compare", |b| {
        b.iter(|| black_box(outputs.windows(2).all(|w| w[0] == w[1])))
    });
    g.finish();
}

criterion_group!(benches, bench_murmur);
criterion_main!(benches);
