//! The §5 overhead claim: full-set CompDiff costs ~10x one execution;
//! a cross-family pair costs ~2x. Measured, not assumed.

use compdiff_bench::harness::BenchGroup;
use minc_compile::{compile_many, CompilerImpl};
use minc_vm::{execute, VmConfig};
use std::hint::black_box;

const SRC: &str = r#"
    int work(int n) {
        int acc = 0;
        int i;
        for (i = 0; i < n; i++) { acc = acc * 31 + i; }
        return acc;
    }
    int main() {
        char buf[16];
        long n = read_input(buf, 16L);
        printf("%d %ld\n", work(500), n);
        return 0;
    }
"#;

fn main() {
    let all = CompilerImpl::default_set();
    let pair: Vec<CompilerImpl> = vec![
        CompilerImpl::parse("gcc-O0").unwrap(),
        CompilerImpl::parse("clang-Os").unwrap(),
    ];
    let bins_all = compile_many(SRC, &all).unwrap();
    let bins_pair = compile_many(SRC, &pair).unwrap();
    let vm = VmConfig::default();
    let input = b"overhead";

    let o2 = bins_all
        .iter()
        .find(|b| b.impl_id.to_string() == "clang-O2")
        .expect("clang-O2 in default set");
    let mut g = BenchGroup::new("overhead");
    // Two baselines: the slowest binary (gcc-O0) and a typical release
    // build (clang-O2). The paper's "10x normal execution" is relative to
    // the user's ordinary binary, i.e. the release-build baseline.
    g.bench("single_binary_gcc_O0", || execute(&bins_all[0], input, &vm));
    g.bench("single_binary_clang_O2", || execute(o2, input, &vm));
    g.bench("compdiff_pair_2x", || {
        for bin in &bins_pair {
            black_box(execute(bin, input, &vm));
        }
    });
    g.bench("compdiff_full_10x", || {
        for bin in &bins_all {
            black_box(execute(bin, input, &vm));
        }
    });
    g.finish();
}
