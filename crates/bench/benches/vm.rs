//! VM execution throughput (the substrate's "native speed").

use compdiff_bench::harness::{BenchGroup, Throughput};
use minc_compile::{compile_source, CompilerImpl};
use minc_vm::{execute, VmConfig};

fn main() {
    let src = r#"
        int main() {
            long acc = 1;
            int i;
            for (i = 1; i <= 5000; i++) { acc = (acc * i + 7) % 1000003L; }
            printf("%ld\n", acc);
            return 0;
        }
    "#;
    let o0 = compile_source(src, CompilerImpl::parse("gcc-O0").unwrap()).unwrap();
    let o2 = compile_source(src, CompilerImpl::parse("gcc-O2").unwrap()).unwrap();
    let vm = VmConfig::default();
    let steps = execute(&o0, b"", &vm).steps;

    let mut g = BenchGroup::new("vm");
    g.throughput(Throughput::Elements(steps));
    g.bench("arith_loop_O0", || execute(&o0, b"", &vm));
    g.bench("arith_loop_O2", || execute(&o2, b"", &vm));
    g.finish();
}
