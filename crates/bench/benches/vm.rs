//! VM execution throughput (the substrate's "native speed").

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use minc_compile::{compile_source, CompilerImpl};
use minc_vm::{execute, VmConfig};
use std::hint::black_box;

fn bench_vm(c: &mut Criterion) {
    let src = r#"
        int main() {
            long acc = 1;
            int i;
            for (i = 1; i <= 5000; i++) { acc = (acc * i + 7) % 1000003L; }
            printf("%ld\n", acc);
            return 0;
        }
    "#;
    let o0 = compile_source(src, CompilerImpl::parse("gcc-O0").unwrap()).unwrap();
    let o2 = compile_source(src, CompilerImpl::parse("gcc-O2").unwrap()).unwrap();
    let vm = VmConfig::default();
    let steps = execute(&o0, b"", &vm).steps;

    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(steps));
    g.bench_function("arith_loop_O0", |b| b.iter(|| black_box(execute(&o0, b"", &vm))));
    g.bench_function("arith_loop_O2", |b| b.iter(|| black_box(execute(&o2, b"", &vm))));
    g.finish();
}

criterion_group!(benches, bench_vm);
criterion_main!(benches);
