//! Interpreter vs block-compiled dispatch across the catalog targets.
//!
//! For every Table 4 target this measures three configurations on the
//! target's benign seed input (the hot path of a differential campaign):
//!
//! * `interp` — a persistent [`ExecSession`] in [`VmMode::Interp`];
//! * `block` — the same session shape in [`VmMode::Block`];
//! * `block_san` — the sanitizer build run under the combined
//!   [`AsanUbsan`] hooks in block mode (the instrumented fuzzing
//!   configuration; shows what the hook seam costs on top of dispatch).
//!
//! Before timing, every target asserts bit-identical results between the
//! two modes (and between the two modes under sanitizer hooks), so a
//! dispatch bug cannot hide behind a throughput number. Emits
//! `BENCH_vm_modes.json` (per-row medians plus derived ops/sec) when
//! `COMPDIFF_BENCH_JSON_DIR` is set, and prints the BENCHMARKS.md table.

use compdiff::Json;
use compdiff_bench::harness::{write_json, BenchGroup, BenchResult};
use minc_compile::{compile_source, CompilerImpl};
use minc_vm::{ExecSession, VmConfig, VmMode};
use sanitizers::AsanUbsan;
use targets::build_all;

fn ops_per_sec(r: &BenchResult) -> f64 {
    1.0 / r.median.as_secs_f64().max(1e-12)
}

fn main() {
    let interp = VmConfig {
        mode: VmMode::Interp,
        ..VmConfig::default()
    };
    let block = VmConfig {
        mode: VmMode::Block,
        ..VmConfig::default()
    };
    let targets = build_all();
    let mut g = BenchGroup::new("vm_modes");
    // (target, interp, block, block_san) rows for the summary table.
    let mut rows: Vec<(String, BenchResult, BenchResult, BenchResult)> = Vec::new();

    for t in &targets {
        let name = t.spec.name.clone();
        let bin = compile_source(&t.src, CompilerImpl::parse("gcc-O2").unwrap())
            .unwrap_or_else(|e| panic!("{name} does not compile: {e}"));
        let san = sanitizers::compile_sanitized(&t.src)
            .unwrap_or_else(|e| panic!("{name} sanitized build failed: {e}"));
        let input = t.seeds.first().cloned().unwrap_or_default();

        // Equivalence gate: block mode must be bit-identical before it is
        // allowed to be faster, with and without instrumentation.
        let mut check = ExecSession::new(&bin);
        let want = check.run(&bin, &input, &interp);
        assert_eq!(
            check.run(&bin, &input, &block),
            want,
            "{name}: block diverged"
        );
        let mut check = ExecSession::new(&san);
        let want = check.run_with_hooks(&san, &input, &interp, &mut AsanUbsan::new());
        assert_eq!(
            check.run_with_hooks(&san, &input, &block, &mut AsanUbsan::new()),
            want,
            "{name}: block+san diverged"
        );

        let mut s = ExecSession::new(&bin);
        let ri = g.bench(&format!("{name}/interp"), || s.run(&bin, &input, &interp));
        let mut s = ExecSession::new(&bin);
        let rb = g.bench(&format!("{name}/block"), || s.run(&bin, &input, &block));
        let mut s = ExecSession::new(&san);
        let rs = g.bench(&format!("{name}/block_san"), || {
            s.run_with_hooks(&san, &input, &block, &mut AsanUbsan::new())
        });
        rows.push((name, ri, rb, rs));
    }

    let results = g.finish();

    println!();
    println!("| Target | Interp ops/s | Block ops/s | Block+san ops/s | Block / interp |");
    println!("|---|---|---|---|---|");
    for (name, ri, rb, rs) in &rows {
        println!(
            "| {name} | {:.0} | {:.0} | {:.0} | {:.2}x |",
            ops_per_sec(ri),
            ops_per_sec(rb),
            ops_per_sec(rs),
            ri.median.as_secs_f64() / rb.median.as_secs_f64()
        );
    }

    let ops = Json::Array(
        rows.iter()
            .map(|(name, ri, rb, rs)| {
                Json::obj(vec![
                    ("target", Json::Str(name.clone())),
                    ("interp_ops_per_sec", Json::Float(ops_per_sec(ri))),
                    ("block_ops_per_sec", Json::Float(ops_per_sec(rb))),
                    ("block_san_ops_per_sec", Json::Float(ops_per_sec(rs))),
                ])
            })
            .collect(),
    );
    write_json("BENCH_vm_modes.json", &results, vec![("ops_per_sec", ops)]);
}
