//! Persistent-session vs fresh-VM execution throughput.
//!
//! The differential oracle runs every input on all `k` binaries; this
//! bench quantifies what `ExecSession` saves per execution. Two
//! workloads bracket the space:
//!
//! * `small` — a short input-parsing program (the catalog targets' shape):
//!   per-exec setup (junk page materialization, frame allocation)
//!   dominates, so persistence pays the most here.
//! * `page_heavy` — a program that malloc/memsets tens of KiB: more time
//!   in the interpreter proper, but page reuse plus the bulk
//!   memset/memcpy path still wins.
//!
//! In full mode this asserts the >=2x speedup on the small workload and
//! emits `BENCH_vm.json` when `COMPDIFF_BENCH_JSON_DIR` is set. Under
//! `COMPDIFF_BENCH_FAST=1` (CI smoke) it only proves the path runs.

use compdiff::Json;
use compdiff_bench::harness::{check_baseline, write_json, BenchGroup};
use minc_compile::{compile_source, Binary, CompilerImpl};
use minc_vm::{execute, ExecSession, VmConfig};

fn small_program() -> Binary {
    let src = r#"
        int main() {
            char buf[32];
            long n = read_input(buf, 31L);
            if (n < 3) { printf("short\n"); return 1; }
            if (buf[0] != 'M' || buf[1] != 'C') { printf("bad magic\n"); return 2; }
            int acc = 0;
            long i;
            for (i = 2; i < n; i++) { acc = acc * 31 + buf[i]; }
            printf("ok %d\n", acc);
            return 0;
        }
    "#;
    compile_source(src, CompilerImpl::parse("gcc-O2").unwrap()).unwrap()
}

fn page_heavy_program() -> Binary {
    let src = r#"
        int main() {
            char* a = (char*)malloc(40000L);
            char* b = (char*)malloc(40000L);
            memset(a, 42, 40000L);
            memcpy(b, a, 40000L);
            long i; int acc = 0;
            for (i = 0; i < 40000; i += 997) { acc += b[i]; }
            printf("%d\n", acc);
            free(b);
            free(a);
            return 0;
        }
    "#;
    compile_source(src, CompilerImpl::parse("clang-O1").unwrap()).unwrap()
}

fn main() {
    let vm = VmConfig::default();
    let small = small_program();
    let heavy = page_heavy_program();
    let input = b"MCabcdefgh";

    // Sanity: the persistent path must be bit-identical before it is
    // allowed to be faster.
    let mut check = ExecSession::new(&small);
    assert_eq!(check.run(&small, input, &vm), execute(&small, input, &vm));
    let mut check = ExecSession::new(&heavy);
    assert_eq!(check.run(&heavy, b"", &vm), execute(&heavy, b"", &vm));

    let mut g = BenchGroup::new("vm_session");

    let fresh_small = g.bench("small/fresh", || execute(&small, input, &vm));
    let mut s = ExecSession::new(&small);
    let persist_small = g.bench("small/persistent", || s.run(&small, input, &vm));

    let fresh_heavy = g.bench("page_heavy/fresh", || execute(&heavy, b"", &vm));
    let mut s = ExecSession::new(&heavy);
    let persist_heavy = g.bench("page_heavy/persistent", || s.run(&heavy, b"", &vm));

    let results = g.finish();
    let speedup_small = fresh_small.median.as_secs_f64() / persist_small.median.as_secs_f64();
    let speedup_heavy = fresh_heavy.median.as_secs_f64() / persist_heavy.median.as_secs_f64();
    println!("vm_session small speedup:      {speedup_small:.2}x (persistent vs fresh)");
    println!("vm_session page_heavy speedup: {speedup_heavy:.2}x (persistent vs fresh)");

    write_json(
        "BENCH_vm.json",
        &results,
        vec![
            ("speedup_small", Json::Float(speedup_small)),
            ("speedup_page_heavy", Json::Float(speedup_heavy)),
        ],
    );

    // Optional regression gate: with COMPDIFF_BENCH_BASELINE_DIR pointing
    // at the repo root, every median must stay within 5% of the committed
    // BENCH_vm.json (which this check reads but never rewrites).
    check_baseline("BENCH_vm.json", &results, 0.05);

    // The acceptance bar: >=2x on the repeated-exec (small) workload.
    // Skipped in fast/smoke mode, where 3 tiny samples are too noisy to
    // gate CI on.
    if std::env::var_os("COMPDIFF_BENCH_FAST").is_none() {
        assert!(
            speedup_small >= 2.0,
            "persistent sessions must be >=2x fresh execution on the \
             repeated-exec workload, got {speedup_small:.2}x"
        );
    }
}
