//! Persistent-session and block-dispatch execution throughput.
//!
//! The differential oracle runs every input on all `k` binaries; this
//! bench quantifies what `ExecSession` saves per execution and what the
//! block-compiled backend saves on top. Two workloads bracket the space:
//!
//! * `small` — a catalog-shaped input parser (magic check, payload fold)
//!   followed by checksum-finalization mixing rounds. The rounds keep
//!   the run interpreter-loop-dominated, which is exactly what block
//!   dispatch attacks; the parse prologue keeps the program shaped like
//!   the differential targets rather than a synthetic ALU kernel.
//! * `page_heavy` — a program that malloc/memsets tens of KiB:
//!   per-exec setup (junk page materialization, frame allocation)
//!   dominates fresh runs, so session persistence pays the most here,
//!   while builtin-bound time caps what dispatch can win.
//!
//! Row naming: `fresh`/`persistent` are the interpreter; `block` is a
//! persistent session in [`VmMode::Block`]. In full mode this asserts
//! the >=2x session speedup (on `page_heavy`, where per-exec setup
//! dominates) and the >=3x block-over-persistent speedup (on at least
//! one workload), and emits `BENCH_vm.json` when
//! `COMPDIFF_BENCH_JSON_DIR` is set. Under `COMPDIFF_BENCH_FAST=1`
//! (CI smoke) it only proves the paths run.

use compdiff::Json;
use compdiff_bench::harness::{check_baseline, write_json, BenchGroup};
use minc_compile::{compile_source, Binary, CompilerImpl};
use minc_vm::{execute, ExecSession, VmConfig, VmMode};

fn small_program() -> Binary {
    let src = r#"
        int main() {
            char buf[32];
            long n = read_input(buf, 31L);
            if (n < 3) { printf("short\n"); return 1; }
            if (buf[0] != 'M' || buf[1] != 'C') { printf("bad magic\n"); return 2; }
            long h = 0;
            long i;
            for (i = 2; i < n; i++) { h = h * 31 + buf[i]; }
            long r;
            for (r = 0; r < 400; r++) {
                h = h ^ (h >> 33); h = h * 127; h = h + r;
                h = h ^ (h >> 29); h = h * 31;  h = h ^ (h << 5);
                h = h + 11;        h = h ^ (h >> 17);
            }
            printf("ok %d\n", (int)(h & 65535));
            return 0;
        }
    "#;
    compile_source(src, CompilerImpl::parse("gcc-O2").unwrap()).unwrap()
}

fn page_heavy_program() -> Binary {
    let src = r#"
        int main() {
            char* a = (char*)malloc(40000L);
            char* b = (char*)malloc(40000L);
            memset(a, 42, 40000L);
            memcpy(b, a, 40000L);
            long i; int acc = 0;
            for (i = 0; i < 40000; i += 997) { acc += b[i]; }
            printf("%d\n", acc);
            free(b);
            free(a);
            return 0;
        }
    "#;
    compile_source(src, CompilerImpl::parse("clang-O1").unwrap()).unwrap()
}

fn main() {
    let interp = VmConfig {
        mode: VmMode::Interp,
        ..VmConfig::default()
    };
    let block = VmConfig {
        mode: VmMode::Block,
        ..VmConfig::default()
    };
    let small = small_program();
    let heavy = page_heavy_program();
    let input = b"MCabcdefgh";

    // Sanity: both the persistent path and the block dispatcher must be
    // bit-identical before they are allowed to be faster.
    let mut check = ExecSession::new(&small);
    let reference = execute(&small, input, &interp);
    assert_eq!(check.run(&small, input, &interp), reference);
    assert_eq!(check.run(&small, input, &block), reference);
    let mut check = ExecSession::new(&heavy);
    let reference = execute(&heavy, b"", &interp);
    assert_eq!(check.run(&heavy, b"", &interp), reference);
    assert_eq!(check.run(&heavy, b"", &block), reference);

    let mut g = BenchGroup::new("vm_session");

    let fresh_small = g.bench("small/fresh", || execute(&small, input, &interp));
    let mut s = ExecSession::new(&small);
    let persist_small = g.bench("small/persistent", || s.run(&small, input, &interp));
    let mut s = ExecSession::new(&small);
    let block_small = g.bench("small/block", || s.run(&small, input, &block));

    let fresh_heavy = g.bench("page_heavy/fresh", || execute(&heavy, b"", &interp));
    let mut s = ExecSession::new(&heavy);
    let persist_heavy = g.bench("page_heavy/persistent", || s.run(&heavy, b"", &interp));
    let mut s = ExecSession::new(&heavy);
    let block_heavy = g.bench("page_heavy/block", || s.run(&heavy, b"", &block));

    let results = g.finish();
    let speedup_small = fresh_small.median.as_secs_f64() / persist_small.median.as_secs_f64();
    let speedup_heavy = fresh_heavy.median.as_secs_f64() / persist_heavy.median.as_secs_f64();
    let block_small_x = persist_small.median.as_secs_f64() / block_small.median.as_secs_f64();
    let block_heavy_x = persist_heavy.median.as_secs_f64() / block_heavy.median.as_secs_f64();
    println!("vm_session small speedup:      {speedup_small:.2}x (persistent vs fresh)");
    println!("vm_session page_heavy speedup: {speedup_heavy:.2}x (persistent vs fresh)");
    println!("vm_session small block:        {block_small_x:.2}x (block vs persistent)");
    println!("vm_session page_heavy block:   {block_heavy_x:.2}x (block vs persistent)");

    write_json(
        "BENCH_vm.json",
        &results,
        vec![
            ("speedup_small", Json::Float(speedup_small)),
            ("speedup_page_heavy", Json::Float(speedup_heavy)),
            ("block_speedup_small", Json::Float(block_small_x)),
            ("block_speedup_page_heavy", Json::Float(block_heavy_x)),
        ],
    );

    // Optional regression gate: with COMPDIFF_BENCH_BASELINE_DIR pointing
    // at the repo root, every median must stay within 5% of the committed
    // BENCH_vm.json (which this check reads but never rewrites). The
    // committed baseline includes the block rows, so block-dispatch
    // regressions trip the same guard.
    check_baseline("BENCH_vm.json", &results, 0.05);

    // The acceptance bars: >=2x for sessions on the setup-dominated
    // (page_heavy) workload, and >=3x for block dispatch over the
    // interpreted persistent median on at least one workload. Skipped in
    // fast/smoke mode, where 3 tiny samples are too noisy to gate CI on.
    if std::env::var_os("COMPDIFF_BENCH_FAST").is_none() {
        assert!(
            speedup_heavy >= 2.0,
            "persistent sessions must be >=2x fresh execution on the \
             setup-dominated workload, got {speedup_heavy:.2}x"
        );
        assert!(
            block_small_x >= 3.0 || block_heavy_x >= 3.0,
            "block dispatch must be >=3x the interpreted persistent median \
             on at least one workload, got {block_small_x:.2}x (small) and \
             {block_heavy_x:.2}x (page_heavy)"
        );
    }
}
