//! Figure 1: number of bugs detected by each subset of compiler
//! implementations, on the Juliet suite.
//!
//! Usage: `exp_fig1 [--scale 0.05]`

use compdiff::SubsetAnalysis;
use juliet::{evaluate, suite};
use minc_compile::CompilerImpl;
use minc_vm::VmConfig;

fn main() {
    let scale = compdiff_bench::arg_f64("--scale", 0.05);
    let tests = suite(scale);
    eprintln!(
        "collecting hash vectors for {} Juliet tests...",
        tests.len()
    );
    let vm = VmConfig::default();
    let vectors: Vec<Vec<u64>> = tests.iter().map(|t| evaluate(t, &vm).hashes).collect();
    let impls = CompilerImpl::default_set();
    let analysis = SubsetAnalysis::analyze(&vectors, &impls);

    println!("Figure 1: #bugs detected by each subset of compiler implementations");
    println!(
        "({} Juliet tests, {} detectable by the full set)\n",
        tests.len(),
        analysis.full_set_detection()
    );
    let stats = analysis.size_stats();
    let lo = stats.iter().map(|s| s.min).min().unwrap_or(0);
    let hi = stats.iter().map(|s| s.max).max().unwrap_or(1);
    println!(
        "{:>4}  {:>6} {:>6} {:>6}  distribution",
        "size", "min", "median", "max"
    );
    for s in &stats {
        println!(
            "{:>4}  {:>6} {:>6} {:>6}  {}",
            s.size,
            s.min,
            s.median,
            s.max,
            compdiff_bench::spark(s.min, s.median, s.max, lo, hi)
        );
    }
    let pairs = &stats[0];
    println!("\nbest  pair: {:?} -> {} bugs", pairs.best, pairs.max);
    println!("worst pair: {:?} -> {} bugs", pairs.worst, pairs.min);
    if let Some(d) = analysis.detection_of(&["gcc-O0", "clang-O3"]) {
        let full = analysis.full_set_detection().max(1);
        println!(
            "{{gcc-O0, clang-O3}}: {d} bugs = {:.0}% of full set at ~20% of the cost",
            100.0 * d as f64 / full as f64
        );
    }
    if let Some(d) = analysis.detection_of(&["gcc-O2", "gcc-O3"]) {
        println!("{{gcc-O2, gcc-O3}}:   {d} bugs (the paper's worst-performing kind of pair)");
    }
}
