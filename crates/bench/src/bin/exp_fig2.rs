//! Figure 2: subset analysis of compiler implementations over the 78
//! real-target bugs.

use compdiff::SubsetAnalysis;
use minc_compile::CompilerImpl;
use minc_vm::VmConfig;
use targets::verify_all;

fn main() {
    eprintln!("collecting per-bug hash vectors from the 78 triggers...");
    let verdicts = verify_all(&VmConfig::default());
    let vectors: Vec<Vec<u64>> = verdicts.iter().map(|v| v.hashes.clone()).collect();
    let impls = CompilerImpl::default_set();
    let analysis = SubsetAnalysis::analyze(&vectors, &impls);

    println!("Figure 2: #bugs detected by each subset of compiler implementations");
    println!(
        "(78 injected bugs; full set detects {})\n",
        analysis.full_set_detection()
    );
    let stats = analysis.size_stats();
    let lo = stats.iter().map(|s| s.min).min().unwrap_or(0);
    let hi = stats.iter().map(|s| s.max).max().unwrap_or(1);
    println!(
        "{:>4}  {:>5} {:>6} {:>5}  distribution",
        "size", "min", "median", "max"
    );
    for s in &stats {
        println!(
            "{:>4}  {:>5} {:>6} {:>5}  {}",
            s.size,
            s.min,
            s.median,
            s.max,
            compdiff_bench::spark(s.min, s.median, s.max, lo, hi)
        );
    }
    let pairs = &stats[0];
    println!("\nbest  pair: {:?} -> {} bugs", pairs.best, pairs.max);
    println!("worst pair: {:?} -> {} bugs", pairs.worst, pairs.min);
    for named in [
        ["gcc-O0", "clang-Os"],
        ["gcc-Os", "clang-O0"],
        ["clang-O0", "clang-O1"],
    ] {
        if let Some(d) = analysis.detection_of(&named.map(|s| s)) {
            println!("{named:?}: {d} bugs");
        }
    }
    println!(
        "\n§5 overhead: using only a cross-family pair costs ~2x normal execution\n\
         instead of the full set's ~10x (cost model: |S| executions per input)."
    );
}
