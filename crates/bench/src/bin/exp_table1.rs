//! Table 1: scopes of sanitizers and CompDiff (qualitative).

fn main() {
    println!("Table 1: Scopes of sanitizers and CompDiff.\n");
    let rows = [
        ("Approach", "Scope"),
        ("ASan", "Memory errors (e.g. buffer-overflow)"),
        ("UBSan", "Miscellaneous UBs (e.g. division-by-zero)"),
        ("MSan", "Use of uninitialized memories."),
        ("CompDiff", "A diverse range of UBs."),
    ];
    for (i, (approach, scope)) in rows.iter().enumerate() {
        println!("{approach:<10} {scope}");
        if i == 0 {
            println!("{}", "-".repeat(64));
        }
    }
    println!();
    println!("(The scopes are implemented, not just documented: see the");
    println!(" `sanitizers` crate's Asan/Ubsan/Msan hook implementations and");
    println!(" the `compdiff` differential engine.)");
}
