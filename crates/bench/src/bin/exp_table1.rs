//! Table 1: scopes of sanitizers and CompDiff (qualitative).

fn main() {
    println!("Table 1: Scopes of sanitizers and CompDiff.\n");
    println!("{:<10} {}", "Approach", "Scope");
    println!("{}", "-".repeat(64));
    println!("{:<10} {}", "ASan", "Memory errors (e.g. buffer-overflow)");
    println!(
        "{:<10} {}",
        "UBSan", "Miscellaneous UBs (e.g. division-by-zero)"
    );
    println!("{:<10} {}", "MSan", "Use of uninitialized memories.");
    println!("{:<10} {}", "CompDiff", "A diverse range of UBs.");
    println!();
    println!("(The scopes are implemented, not just documented: see the");
    println!(" `sanitizers` crate's Asan/Ubsan/Msan hook implementations and");
    println!(" the `compdiff` differential engine.)");
}
