//! Table 2: overview of selected CWEs (suite inventory).
//!
//! Usage: `exp_table2 [--scale 1.0]`

fn main() {
    let scale = compdiff_bench::arg_f64("--scale", 1.0);
    println!("Table 2: Overview of selected CWEs (scale {scale}).\n");
    print!("{}", juliet::render_table2(scale));
}
