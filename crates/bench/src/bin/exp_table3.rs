//! Table 3: bug detection and false-positive rates on the Juliet suite.
//!
//! Usage: `exp_table3 [--scale 0.05] [--json out.json]`
//!
//! Scale 1.0 evaluates the full 18,142-test suite (minutes); the default
//! samples each CWE proportionally.

use juliet::{evaluate, suite, table3};
use minc_vm::VmConfig;

fn main() {
    let scale = compdiff_bench::arg_f64("--scale", 0.05);
    let tests = suite(scale);
    eprintln!("evaluating {} Juliet tests (scale {scale})...", tests.len());
    let vm = VmConfig::default();
    let evals: Vec<_> = tests
        .iter()
        .enumerate()
        .map(|(i, t)| {
            if i % 200 == 0 {
                eprintln!("  {i}/{}", tests.len());
            }
            evaluate(t, &vm)
        })
        .collect();
    let table = table3(&evals);
    println!("Table 3: bug detection rates (%) and false positive rates (%) on the Juliet tests.");
    println!("(static tools show detection%(FP%); sanitizers and CompDiff have zero FPs)\n");
    print!("{}", table.render());
    println!(
        "\nTotal bugs uniquely detected by CompDiff vs sanitizers: {}",
        table.total_unique()
    );
    let fp_total: usize = table.rows.iter().map(|r| r.compdiff_fp).sum();
    println!("CompDiff false positives on good variants: {fp_total} (paper: 0)");

    if let Some(path) = std::env::args().skip_while(|a| a != "--json").nth(1) {
        std::fs::write(&path, table.to_json().render_pretty()).expect("write json");
        eprintln!("wrote {path}");
    }
}
