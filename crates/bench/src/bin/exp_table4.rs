//! Table 4: details of the selected target projects.

fn main() {
    println!("Table 4: details of selected target projects (synthetic stand-ins).\n");
    println!(
        "{:<14} {:<16} {:<10} {:>10}",
        "Target", "Input type", "Version", "Size(LoC)"
    );
    println!("{}", "-".repeat(54));
    for t in targets::build_all() {
        println!(
            "{:<14} {:<16} {:<10} {:>10}",
            t.spec.name,
            t.spec.input_type,
            t.spec.version,
            t.loc()
        );
    }
    println!("\n(LoC is the generated MinC source; the paper's column lists the");
    println!(" real projects' C/C++ sizes — see DESIGN.md for the substitution.)");
}
