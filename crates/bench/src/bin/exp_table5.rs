//! Table 5: bugs detected by CompDiff-AFL++ on the 23 targets.
//!
//! Two modes:
//! * `--mode verify` (default): run CompDiff on each bug's ground-truth
//!   trigger input — deterministic, shows every injected bug diverging.
//! * `--mode fuzz [--execs N] [--seed S]`: run real CompDiff-AFL++
//!   campaigns per target and match saved discrepancies back to bugs.

use minc_vm::VmConfig;
use targets::{build_all, fuzz_target, table5, verify_all, Category};

fn main() {
    let mode = std::env::args()
        .skip_while(|a| a != "--mode")
        .nth(1)
        .unwrap_or_else(|| "verify".to_string());
    match mode.as_str() {
        "fuzz" => fuzz_mode(),
        _ => verify_mode(),
    }
}

fn verify_mode() {
    eprintln!("verifying all 78 injected bugs on their trigger inputs...");
    let verdicts = verify_all(&VmConfig::default());
    let t5 = table5(&verdicts);
    println!("Table 5: bugs detected by CompDiff-AFL++ on 23 open-source-like targets.");
    println!("(verify mode: CompDiff run on each bug's ground-truth trigger)\n");
    print!("{}", t5.render());
}

fn fuzz_mode() {
    let execs = compdiff_bench::arg_u64("--execs", 40_000);
    let seed = compdiff_bench::arg_u64("--seed", 1);
    let targets = build_all();
    let mut per_cat: std::collections::BTreeMap<Category, usize> = Default::default();
    let mut total_found = 0usize;
    println!("Table 5 (fuzzing mode): {execs} execs per target, seed {seed}\n");
    for t in &targets {
        let f = fuzz_target(t, execs, seed);
        let cats: Vec<String> = f
            .found
            .iter()
            .map(|id| {
                let bug = t.spec.bugs.iter().find(|b| &b.id == id).unwrap();
                per_cat
                    .entry(bug.kind.category())
                    .and_modify(|c| *c += 1)
                    .or_insert(1);
                bug.kind.category().label().to_string()
            })
            .collect();
        total_found += f.found.len();
        println!(
            "{:<14} found {:>2}/{:<2} bugs ({} diffs saved) {:?}",
            t.spec.name,
            f.found.len(),
            t.spec.bugs.len(),
            f.diffs_saved,
            cats
        );
    }
    println!("\nFound by category (paper 'Reported' row in parentheses):");
    for c in Category::ALL {
        println!(
            "  {:<12} {:>3}  ({})",
            c.label(),
            per_cat.get(&c).copied().unwrap_or(0),
            c.paper_reported()
        );
    }
    println!("  {:<12} {total_found:>3}  (78)", "Total");
}
