//! Table 6: of the bugs detected by CompDiff, how many sanitizers also
//! discover (the complementarity claim: 42 of 78, leaving 36 unique).

use minc_vm::VmConfig;
use targets::{table6, verify_all};

fn main() {
    eprintln!("running all 78 triggers under CompDiff and the three sanitizers...");
    let verdicts = verify_all(&VmConfig::default());
    let t6 = table6(&verdicts);
    println!("Table 6: of all the bugs detected by CompDiff, the number also");
    println!("discovered by sanitizers.\n");
    print!("{}", t6.render());
    println!("\n(paper: MemError 13/13 by ASan, IntError 8/8 by UBSan,");
    println!(" UninitMem 21/27 by MSan, remaining 30 by none -> 42 vs 36 unique)");
}
