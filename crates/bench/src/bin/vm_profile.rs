//! Scratch decomposition of persistent-session execution cost (dev tool).

use minc_compile::{compile_source, Binary, CompilerImpl};
use minc_vm::{ExecSession, VmConfig, VmMode};
use std::time::Instant;

fn time(label: &str, bin: &Binary, input: &[u8], cfg: &VmConfig) {
    let mut s = ExecSession::new(bin);
    // warm
    let mut steps = 0;
    for _ in 0..1000 {
        steps = std::hint::black_box(s.run(bin, input, cfg)).steps;
    }
    let n = 200_000u32;
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(s.run(bin, input, cfg));
    }
    let el = t.elapsed();
    let per = el.as_nanos() as f64 / n as f64;
    println!(
        "{label:<28} {per:>8.0} ns/iter  {steps:>6} steps  {:>6.2} ns/step",
        per / steps as f64
    );
}

fn main() {
    let interp = VmConfig {
        mode: VmMode::Interp,
        ..VmConfig::default()
    };
    let block = VmConfig {
        mode: VmMode::Block,
        ..VmConfig::default()
    };
    let progs: &[(&str, &str, &[u8])] = &[
        ("empty", "int main() { return 0; }", b""),
        (
            "loop_only",
            r#"int main() {
                char buf[32];
                int acc = 0; long i;
                for (i = 0; i < 10; i++) { buf[i] = (char)(i * 7); }
                for (i = 2; i < 10; i++) { acc = acc * 31 + buf[i]; }
                return acc & 127;
            }"#,
            b"",
        ),
        (
            "read_only",
            r#"int main() {
                char buf[32];
                long n = read_input(buf, 31L);
                return (int)n;
            }"#,
            b"MCabcdefgh",
        ),
        (
            "printf_only",
            r#"int main() { printf("ok %d\n", 12345); return 0; }"#,
            b"",
        ),
        (
            "small_full",
            r#"int main() {
                char buf[32];
                long n = read_input(buf, 31L);
                if (n < 3) { printf("short\n"); return 1; }
                if (buf[0] != 'M' || buf[1] != 'C') { printf("bad magic\n"); return 2; }
                int acc = 0;
                long i;
                for (i = 2; i < n; i++) { acc = acc * 31 + buf[i]; }
                printf("ok %d\n", acc);
                return 0;
            }"#,
            b"MCabcdefgh",
        ),
        (
            "mixloop",
            r#"int main() {
                long h = 12345; long r;
                for (r = 0; r < 400; r++) {
                    h = h ^ (h >> 33); h = h * 127; h = h + r;
                    h = h ^ (h >> 29); h = h * 31;  h = h ^ (h << 5);
                    h = h + 11;        h = h ^ (h >> 17);
                }
                return (int)(h & 63);
            }"#,
            b"",
        ),
        (
            "bigloop",
            r#"int main() {
                long i; long acc = 0;
                for (i = 0; i < 1000; i++) { acc += i * 3; acc = acc ^ (acc >> 5); }
                return (int)(acc & 63);
            }"#,
            b"",
        ),
    ];
    for (name, src, input) in progs {
        let bin = compile_source(src, CompilerImpl::parse("gcc-O2").unwrap()).unwrap();
        time(&format!("{name}/interp"), &bin, input, &interp);
        time(&format!("{name}/block"), &bin, input, &block);
    }
}
