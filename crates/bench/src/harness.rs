//! A small, dependency-free micro-benchmark harness (criterion
//! replacement so the workspace builds offline).
//!
//! Usage mirrors criterion's group API:
//!
//! ```no_run
//! let mut g = compdiff_bench::harness::BenchGroup::new("vm");
//! g.bench("arith_loop", || 2 + 2);
//! g.finish();
//! ```
//!
//! Each benchmark auto-calibrates a batch size so one sample takes a few
//! milliseconds, collects a fixed number of samples, and reports the
//! median, minimum, and maximum per-iteration time. Results are also
//! returned so harness-level benches (e.g. the campaign throughput bench)
//! can assert speedup ratios.

use compdiff::Json;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One benchmark's measured result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/name`).
    pub name: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest sample's per-iteration time.
    pub min: Duration,
    /// Slowest sample's per-iteration time.
    pub max: Duration,
    /// Total iterations measured.
    pub iters: u64,
}

/// Per-sample throughput annotation, printed next to the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named collection of benchmarks.
pub struct BenchGroup {
    name: String,
    samples: usize,
    target_sample_time: Duration,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
}

impl BenchGroup {
    /// Creates a group; honours `COMPDIFF_BENCH_FAST=1` for smoke runs.
    pub fn new(name: &str) -> Self {
        let fast = std::env::var_os("COMPDIFF_BENCH_FAST").is_some();
        BenchGroup {
            name: name.to_string(),
            samples: if fast { 3 } else { 15 },
            target_sample_time: if fast {
                Duration::from_millis(2)
            } else {
                Duration::from_millis(10)
            },
            throughput: None,
            results: Vec::new(),
        }
    }

    /// Sets the per-iteration throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one benchmark and records + prints its result.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> BenchResult {
        // Warm up and estimate the cost of one iteration.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(25) {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_nanos().max(1) / u128::from(calib_iters);
        let batch =
            (self.target_sample_time.as_nanos() / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let mut sample_times: Vec<Duration> = Vec::with_capacity(self.samples);
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            sample_times.push(start.elapsed() / batch as u32);
            total_iters += batch;
        }
        sample_times.sort_unstable();
        let result = BenchResult {
            name: format!("{}/{name}", self.name),
            median: sample_times[sample_times.len() / 2],
            min: sample_times[0],
            max: *sample_times.last().unwrap(),
            iters: total_iters,
        };
        self.print(&result);
        self.results.push(result.clone());
        result
    }

    fn print(&self, r: &BenchResult) {
        let mut line = format!(
            "{:<44} median {:>12}  [{} .. {}]  ({} iters)",
            r.name,
            fmt_duration(r.median),
            fmt_duration(r.min),
            fmt_duration(r.max),
            r.iters
        );
        if let Some(t) = self.throughput {
            let per_sec = |n: u64| n as f64 / r.median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.2} Melem/s", per_sec(n) / 1e6));
                }
            }
        }
        println!("{line}");
    }

    /// Finishes the group and returns every result.
    pub fn finish(self) -> Vec<BenchResult> {
        self.results
    }
}

/// Serializes bench results (plus free-form annotations) to
/// `$COMPDIFF_BENCH_JSON_DIR/<file_name>` as pretty-printed JSON, so the
/// repo can track machine-readable perf baselines (`BENCH_*.json`) that
/// future PRs diff against. When the env var is unset — the default for
/// CI smoke runs — nothing is written and `None` is returned.
pub fn write_json(
    file_name: &str,
    results: &[BenchResult],
    extra: Vec<(&str, Json)>,
) -> Option<PathBuf> {
    let dir = std::env::var_os("COMPDIFF_BENCH_JSON_DIR")?;
    let mut fields = vec![(
        "results",
        Json::Array(
            results
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("name", Json::Str(r.name.clone())),
                        ("median_ns", Json::Int(r.median.as_nanos() as i64)),
                        ("min_ns", Json::Int(r.min.as_nanos() as i64)),
                        ("max_ns", Json::Int(r.max.as_nanos() as i64)),
                        ("iters", Json::Int(r.iters as i64)),
                    ])
                })
                .collect(),
        ),
    )];
    fields.extend(extra);
    let path = PathBuf::from(dir).join(file_name);
    let body = Json::obj(fields).render_pretty() + "\n";
    match std::fs::write(&path, body) {
        Ok(()) => {
            println!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            None
        }
    }
}

/// Compares measured medians against a committed baseline
/// (`$COMPDIFF_BENCH_BASELINE_DIR/<file_name>`, typically the repo-root
/// `BENCH_*.json`) and panics if any benchmark's median is more than
/// `tolerance` (a fraction, e.g. `0.05`) slower than its baseline entry.
/// The baseline file is only read, never rewritten. When the env var is
/// unset — the default — the guard is skipped and `false` is returned,
/// because micro-benchmark numbers only mean something on the machine
/// that recorded the baseline.
pub fn check_baseline(file_name: &str, results: &[BenchResult], tolerance: f64) -> bool {
    let Some(dir) = std::env::var_os("COMPDIFF_BENCH_BASELINE_DIR") else {
        return false;
    };
    let path = PathBuf::from(dir).join(file_name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
    let baseline = Json::parse(&text)
        .unwrap_or_else(|e| panic!("cannot parse baseline {}: {e:?}", path.display()));
    let failures = baseline_regressions(&baseline, results, tolerance);
    assert!(
        failures.is_empty(),
        "benchmarks regressed more than {:.0}% vs {}:\n  {}",
        tolerance * 100.0,
        path.display(),
        failures.join("\n  ")
    );
    println!(
        "baseline check vs {} passed (within {:.0}%)",
        path.display(),
        tolerance * 100.0
    );
    true
}

/// Pure comparison core of [`check_baseline`]: one message per benchmark
/// whose median exceeds its baseline median by more than `tolerance`.
/// Benches absent from the baseline are ignored, so a baseline recorded
/// before a bench was added never fails spuriously.
pub fn baseline_regressions(
    baseline: &Json,
    results: &[BenchResult],
    tolerance: f64,
) -> Vec<String> {
    let empty: &[Json] = &[];
    let entries = baseline
        .get("results")
        .and_then(|r| r.as_array())
        .unwrap_or(empty);
    let mut failures = Vec::new();
    for r in results {
        let base_ns = entries
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(r.name.as_str()))
            .and_then(|e| e.get("median_ns"))
            .and_then(Json::as_f64);
        let Some(base_ns) = base_ns else { continue };
        let got = r.median.as_nanos() as f64;
        let limit = base_ns * (1.0 + tolerance);
        if got > limit {
            failures.push(format!(
                "{}: {got:.0} ns vs baseline {base_ns:.0} ns (limit {limit:.0} ns)",
                r.name
            ));
        }
    }
    failures
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        std::env::set_var("COMPDIFF_BENCH_FAST", "1");
        let mut g = BenchGroup::new("smoke");
        let r = g.bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(r.median > Duration::ZERO);
        assert!(r.min <= r.median && r.median <= r.max);
        let all = g.finish();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].name, "smoke/noop_sum");
    }

    #[test]
    fn baseline_regression_detection() {
        let baseline = Json::parse(
            r#"{"results":[
                {"name":"g/a","median_ns":1000},
                {"name":"g/b","median_ns":1000}
            ]}"#,
        )
        .unwrap();
        let mk = |name: &str, ns: u64| BenchResult {
            name: name.to_string(),
            median: Duration::from_nanos(ns),
            min: Duration::from_nanos(ns),
            max: Duration::from_nanos(ns),
            iters: 1,
        };
        // Within tolerance, slightly faster, and unknown-to-baseline: all pass.
        let ok = [mk("g/a", 1040), mk("g/b", 900), mk("g/new", 99_999)];
        assert!(baseline_regressions(&baseline, &ok, 0.05).is_empty());
        // 20% over: flagged, and only the offending bench is named.
        let bad = [mk("g/a", 1200), mk("g/b", 1000)];
        let failures = baseline_regressions(&baseline, &bad, 0.05);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].starts_with("g/a:"), "{failures:?}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
