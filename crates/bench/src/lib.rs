//! # compdiff-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 for the
//! full index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_table1` | Table 1 (tool scopes) |
//! | `exp_table2` | Table 2 (Juliet suite overview) |
//! | `exp_table3` | Table 3 (detection/false-positive rates) |
//! | `exp_fig1`   | Figure 1 (subset analysis, Juliet) |
//! | `exp_table4` | Table 4 (target program inventory) |
//! | `exp_table5` | Table 5 (CompDiff-AFL++ bugs by root cause) |
//! | `exp_table6` | Table 6 (sanitizer overlap) |
//! | `exp_fig2`   | Figure 2 (subset analysis, real-world bugs) |
//!
//! Benches under `benches/` (driven by the in-tree [`harness`] module —
//! no criterion, so everything builds offline) measure the §5 overhead
//! claims, the substrate's raw speed, and the campaign orchestrator's
//! scaling.

#![warn(missing_docs)]
pub mod harness;

/// Parses `--scale <f64>` / `--execs <u64>` / `--seed <u64>` style flags
/// from `std::env::args`, with defaults.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    arg_value(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses an integer flag.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    arg_value(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Renders a unicode box-plot-ish line for Figure 1/2 terminal output.
pub fn spark(min: usize, median: usize, max: usize, lo: usize, hi: usize) -> String {
    if hi <= lo {
        return String::new();
    }
    let width = 46usize;
    let pos = |v: usize| ((v - lo) * (width - 1) / (hi - lo).max(1)).min(width - 1);
    let mut line = vec![' '; width];
    for c in &mut line[pos(min)..=pos(max)] {
        *c = '─';
    }
    line[pos(min)] = '├';
    line[pos(max)] = '┤';
    line[pos(median)] = '●';
    line.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_renders_markers() {
        let s = spark(10, 50, 90, 0, 100);
        assert!(s.contains('●'));
        assert!(s.contains('├'));
        assert!(s.contains('┤'));
    }
}
