//! The `compdiff` command-line tool: differential-test, fuzz, triage, and
//! campaign-orchestrate MinC programs the way the paper's artifact drives
//! real C programs.
//!
//! ```text
//! compdiff impls
//! compdiff run  prog.mc [--input STR|--input-file F] [--impls gcc-O0,clang-O3] [--minimize]
//! compdiff fuzz prog.mc [--execs N] [--seed N] [--feedback] [--max-len N]
//! compdiff scan prog.mc              # static analyzers + sanitizers + CompDiff
//! compdiff lint prog.mc [--json]     # IR-level unstable-code lint
//! compdiff lint --all                #   ... over the whole target catalog
//! compdiff sancheck prog.mc [--json] # sanitizer meta-oracle (validate the sanitizers)
//! compdiff sancheck --all            #   ... over the whole target catalog
//! compdiff campaign [--workers N] [--execs-per-target N] [--resume DIR]
//! compdiff campaign --workers-proc N  # coordinator over N worker processes
//! compdiff campaign-worker --connect HOST:PORT   # one worker process
//! compdiff campaign-status --connect HOST:PORT   # live campaign status
//! compdiff progen generate|evolve|reduce   # evolutionary program generation

//! ```

use campaign::{CampaignConfig, StateError};
use compdiff::{minimize, CompDiff, CompDiffAfl, DiffConfig, Discrepancy, Json};
use fuzzing::{FuzzConfig, Rng};
use minc_compile::CompilerImpl;
use minc_vm::{ExitStatus, SanitizerKind, VmConfig, VmMode};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use targets::TargetSource;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "impls" => cmd_impls(),
        "run" => cmd_run(&args[1..]),
        "fuzz" => cmd_fuzz(&args[1..]),
        "scan" => cmd_scan(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "sancheck" => cmd_sancheck(&args[1..]),
        "campaign" => cmd_campaign(&args[1..]),
        "campaign-worker" => cmd_campaign_worker(&args[1..]),
        "campaign-status" => cmd_campaign_status(&args[1..]),
        "progen" => cmd_progen(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "\
compdiff — compiler-driven differential testing for MinC programs

USAGE:
  compdiff impls                         list the compiler implementations
  compdiff run  <prog.mc> [options]      run all binaries on one input
      --input <str>        input bytes (default: empty)
      --input-file <path>  read input bytes from a file
      --impls <a,b,...>    implementations (default: all ten)
      --minimize           shrink the input while the bug persists
      --vm-mode <m>        execution backend: interp|block (default block;
                           env COMPDIFF_VM_MODE overrides the default)
  compdiff fuzz <prog.mc> [options]      CompDiff-AFL++ campaign
      --execs <n>          fuzz-binary executions (default 50000)
      --seed <n>           campaign RNG seed (default 1)
      --max-len <n>        maximum input length (default 64)
      --batch-size <n>     inputs per batched oracle sweep (default 16)
      --feedback           NEZHA-style divergence feedback
  compdiff scan <prog.mc>                static analyzers + sanitizers + CompDiff
  compdiff lint <prog.mc> [options]      IR-level unstable-code lint
      --all                lint every catalog target instead of one file
      --dir <dir>          with --all: lint generated *.mc from <dir> instead
      --impls <a,b,...>    provenance implementations (default: all ten)
      --workers <n>        threads for --all (default 4)
      --json               machine-readable output (stable schema)
  compdiff sancheck <prog.mc> [options]  sanitizer meta-oracle: build the static
                                         UB ground-truth map, run every impl's
                                         sanitized build, flag sanitizer false
                                         negatives/alarms and verdict splits
      --all                audit every catalog target instead of one file
      --dir <dir>          with --all: audit generated *.mc from <dir> instead
      --impls <a,b,...>    implementations to cross-check (default: all ten)
      --workers <n>        threads for --all (default 4)
      --input <str>        input bytes fed to every run (default: empty)
      --fault-plan <spec>  plant sanitizer defects, e.g.
                           'suppress@msan,fire@ubsan:shift-out-of-bounds#1'
      --json               machine-readable output (stable schema)
  compdiff campaign [options]            parallel campaign over the target catalog
      --workers <n>          worker threads (default 4)
      --execs-per-target <n> fuzz-binary budget per target (default 2000)
      --shards <n>           seed shards per target (default 4)
      --seed <n>             campaign RNG seed (default 0xCA3D)
      --max-len <n>          maximum input length (default 64)
      --batch-size <n>       inputs per batched oracle sweep (default 16;
                             1 = strict per-input interleaving)
      --targets <a,b,...>    restrict to these catalog targets
      --checkpoint <dir>     write checkpoint.jsonl under <dir>
      --resume <dir>         resume a checkpointed campaign from <dir>
      --stop-after <n>       abort after n resolved job attempts (kill testing)
      --max-retries <n>      re-runs granted to a failed job (default 2)
      --quarantine-after <n> failures before a target is quarantined (default 3)
      --fault-plan <spec>    inject deterministic faults, e.g.
                             'panic@tcpdump#0,io@checkpoint:3' (testing)
      --metrics-out <path>   stream telemetry events (JSONL) to <path>
      --progress-every <n>   progress + execs/sec to stderr every n jobs
      --fixed-clock <us>     pin the telemetry clock (deterministic streams)
      --progen-dir <dir>     also fuzz generated programs (*.mc) from <dir>
      --sancheck             post-fuzz sanitizer audit over every selected
                             target (publishes sancheck.* metrics)
      --vm-mode <m>          execution backend: interp|block (default block)
      --workers-proc <n>     run as a coordinator over n worker *processes*
                             (JSONL socket protocol; scales past one core)
      --status-addr-out <p>  write the live status endpoint's host:port to <p>
  compdiff campaign-worker --connect <host:port>
                                         one worker process (spawned by the
                                         coordinator; not normally run by hand)
  compdiff campaign-status --connect <host:port>
                                         query a running coordinator's live
                                         status (progress + merged metrics)
  compdiff progen <subcommand> [options]  evolutionary program generation
    (all subcommands accept --vm-mode interp|block, default block)
    generate --seed <n> [--count <n>] [--out-dir <dir>]
                             emit seeded idiom-biased programs
    evolve --seed <n> --generations <n> [--population <n>]
           [--out-dir <dir>] [--resume] [--no-reduce]
           [--metrics-out <path>] [--fixed-clock <us>]
                             run the evolutionary loop; writes
                             generations.jsonl, state.json, divergent_*.mc
                             and auto-reduced witness_*.mc under --out-dir
    reduce <prog.mc> [--input <str>|--input-hex <hex>] [--out <path>]
                             shrink a diverging program to a minimal witness";

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Resolves `--vm-mode` for the current command. Precedence: explicit
/// flag, then the `COMPDIFF_VM_MODE` environment variable (which
/// [`VmConfig::default`] already consults), then the built-in default
/// (`block`). To make the choice reach code that builds its own
/// `DiffConfig::default()` internally (progen's fitness/reduce oracles),
/// a given flag is also exported into the environment.
fn vm_mode(args: &[String]) -> Result<VmMode, String> {
    match flag_value(args, "--vm-mode") {
        Some(v) => {
            let mode = VmMode::parse(&v)
                .ok_or_else(|| format!("bad --vm-mode `{v}` (expected `interp` or `block`)"))?;
            std::env::set_var("COMPDIFF_VM_MODE", v);
            Ok(mode)
        }
        None => Ok(VmMode::from_env()),
    }
}

fn load_source(args: &[String]) -> Result<String, String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing program file argument")?;
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_impls() -> Result<(), String> {
    println!("default compiler implementations (the paper's ten):");
    for ci in CompilerImpl::default_set() {
        let p = ci.personality();
        println!(
            "  {:<10} eval-order={:?}  stack=0x{:x}  heap=0x{:x}  passes={}",
            ci.to_string(),
            p.eval_order,
            p.stack_base,
            p.heap_base,
            p.pipeline.len()
        );
    }
    Ok(())
}

fn parse_impls(args: &[String]) -> Result<Vec<CompilerImpl>, String> {
    match flag_value(args, "--impls") {
        None => Ok(CompilerImpl::default_set()),
        Some(list) => list
            .split(',')
            .map(|s| {
                CompilerImpl::parse(s.trim())
                    .ok_or_else(|| format!("unknown implementation `{s}` (try gcc-O2)"))
            })
            .collect(),
    }
}

fn read_input(args: &[String]) -> Result<Vec<u8>, String> {
    if let Some(path) = flag_value(args, "--input-file") {
        return std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"));
    }
    Ok(flag_value(args, "--input")
        .map(String::into_bytes)
        .unwrap_or_default())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let src = load_source(args)?;
    let impls = parse_impls(args)?;
    let input = read_input(args)?;
    let dc = DiffConfig {
        vm: VmConfig {
            mode: vm_mode(args)?,
            ..VmConfig::default()
        },
        ..DiffConfig::default()
    };
    let diff = CompDiff::from_source(&src, &impls, dc).map_err(|e| e.to_string())?;
    let outcome = diff.run_input(&input);
    if !outcome.divergent {
        println!(
            "stable: all {} implementations agree on this input",
            impls.len()
        );
        let r = &outcome.results[0];
        println!("  status: {}", r.status);
        print!("{}", String::from_utf8_lossy(&r.stdout));
        return Ok(());
    }
    let mut input = input;
    if has_flag(args, "--minimize") {
        let (min, stats) = minimize(&diff, &input);
        println!(
            "minimized {} -> {} bytes in {} differential runs",
            stats.original_len, stats.minimized_len, stats.runs
        );
        input = min;
    }
    let outcome = diff.run_input(&input);
    let report = Discrepancy::from_outcome(&diff.impls(), &outcome, &input);
    println!("{}", report.render());
    Ok(())
}

fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    let src = load_source(args)?;
    let execs = flag_value(args, "--execs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    let seed = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let max_len = flag_value(args, "--max-len")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let batch_size = match flag_value(args, "--batch-size") {
        Some(v) => v.parse().map_err(|_| format!("bad --batch-size `{v}`"))?,
        None => 16,
    };
    let afl = CompDiffAfl::from_source_default(
        &src,
        FuzzConfig {
            max_execs: execs,
            seed,
            max_input_len: max_len,
            batch_size,
            ..Default::default()
        },
        DiffConfig::default(),
    )
    .map_err(|e| e.to_string())?
    .with_divergence_feedback(has_flag(args, "--feedback"));
    eprintln!("fuzzing ({execs} execs, seed {seed})...");
    let stats = afl.run(&[vec![b'A'; 4]]);
    println!(
        "execs={} (+{} differential)  corpus={}  edges={}  crashes={}  diffs={} ({} unique)",
        stats.campaign.execs,
        stats.oracle_execs,
        stats.campaign.corpus_len,
        stats.campaign.edges,
        stats.campaign.crashes.len(),
        stats.store.reports().len(),
        stats.store.unique_signatures()
    );
    for rep in stats.store.representatives() {
        println!("\n{}", rep.render());
    }
    Ok(())
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    let src = load_source(args)?;
    let checked = minc::check(&src).map_err(|e| e.to_string())?;

    println!("== static analyzers ==");
    let findings = staticheck::run_all(&checked);
    if findings.is_empty() {
        println!("  no findings");
    }
    for f in &findings {
        println!("  {f}");
    }

    println!("\n== sanitizers (empty input) ==");
    let vm = VmConfig::default();
    let bin = sanitizers::compile_sanitized(&src).map_err(|e| e.to_string())?;
    for kind in [
        SanitizerKind::Asan,
        SanitizerKind::Ubsan,
        SanitizerKind::Msan,
    ] {
        let r = sanitizers::run_sanitized(&bin, b"", &vm, kind);
        match r.status {
            ExitStatus::Sanitizer(f) => println!("  {kind}: {f}"),
            other => println!("  {kind}: clean ({other})"),
        }
    }

    println!("\n== CompDiff (empty input) ==");
    let diff =
        CompDiff::from_source_default(&src, DiffConfig::default()).map_err(|e| e.to_string())?;
    let outcome = diff.run_input(b"");
    if outcome.divergent {
        let report = Discrepancy::from_outcome(&diff.impls(), &outcome, b"");
        println!("{}", report.render());
    } else {
        println!("  stable on the empty input (try `compdiff fuzz`)");
    }
    Ok(())
}

/// Runs `analyze` over every target of the catalog (or a `--dir` of
/// generated programs) in parallel, printing each result in source order
/// so the output is deterministic at any worker count (the CI gate diffs
/// two runs). `json` switches the framing from `== name ==` text blocks
/// to one JSON array of `{target, ...}` objects.
fn run_over_targets(
    args: &[String],
    json: bool,
    analyze: impl Fn(&targets::Target) -> Result<(String, Json), String> + Sync,
) -> Result<(), String> {
    let workers: usize = match flag_value(args, "--workers") {
        Some(v) => v.parse().map_err(|_| format!("bad --workers `{v}`"))?,
        None => 4,
    };
    let built = match flag_value(args, "--dir") {
        None => TargetSource::targets(&targets::CatalogSource),
        Some(dir) => targets::dir_source(std::path::Path::new(&dir))
            .map_err(|e| format!("bad --dir: {e}"))?
            .targets(),
    };
    let n = built.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let outputs = std::sync::Mutex::new(vec![None::<(String, Json)>; n]);
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1).min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = match analyze(&built[i]) {
                    Ok(cell) => cell,
                    Err(e) => (
                        format!("  frontend error: {e}\n"),
                        Json::obj(vec![("error", Json::Str(e))]),
                    ),
                };
                // Poison-proof: a panicking sibling worker must not turn
                // this worker's lock acquisition into a second panic.
                outputs.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(cell);
            });
        }
    });
    let mut json_rows = Vec::new();
    for (i, o) in outputs
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .enumerate()
    {
        let Some((text, j)) = o else {
            return Err(format!("worker died before target {i} was reported"));
        };
        if json {
            json_rows.push(match j {
                Json::Object(fields) => {
                    let mut with_name = vec![(
                        "target".to_string(),
                        Json::Str(built[i].spec.name.to_string()),
                    )];
                    with_name.extend(fields);
                    Json::Object(with_name)
                }
                other => Json::obj(vec![
                    ("target", Json::Str(built[i].spec.name.to_string())),
                    ("report", other),
                ]),
            });
        } else {
            print!("== {} ==\n{text}", built[i].spec.name);
        }
    }
    if json {
        println!("{}", Json::Array(json_rows).render_pretty());
    }
    Ok(())
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    let lint = staticheck_ir::UnstableLint {
        impls: parse_impls(args)?,
    };
    let json = has_flag(args, "--json");
    if !has_flag(args, "--all") {
        let src = load_source(args)?;
        let findings = lint.run_source(&src).map_err(|e| e.to_string())?;
        if json {
            println!(
                "{}",
                sancheck::json::lint_to_json(&findings).render_pretty()
            );
        } else if findings.is_empty() {
            println!("no findings");
        } else {
            print!("{}", staticheck_ir::render(&findings));
        }
        return Ok(());
    }
    run_over_targets(args, json, |t| {
        let findings = lint.run_source(&t.src).map_err(|e| e.to_string())?;
        let text = if findings.is_empty() {
            "  no findings\n".to_string()
        } else {
            staticheck_ir::render(&findings)
                .lines()
                .map(|l| format!("  {l}\n"))
                .collect()
        };
        Ok((text, sancheck::json::lint_to_json(&findings)))
    })
}

fn cmd_sancheck(args: &[String]) -> Result<(), String> {
    let mut cfg = sancheck::SancheckConfig {
        impls: parse_impls(args)?,
        input: flag_value(args, "--input")
            .map(String::into_bytes)
            .unwrap_or_default(),
        ..sancheck::SancheckConfig::default()
    };
    if let Some(spec) = flag_value(args, "--fault-plan") {
        cfg.fault_plan =
            sancheck::SanFaultPlan::parse(&spec).map_err(|e| format!("bad --fault-plan: {e}"))?;
    }
    let json = has_flag(args, "--json");
    if !has_flag(args, "--all") {
        let src = load_source(args)?;
        let report = sancheck::check_source(&src, &cfg).map_err(|e| e.to_string())?;
        if json {
            println!(
                "{}",
                sancheck::json::report_to_json(&report).render_pretty()
            );
        } else {
            print!("{}", report.render());
        }
        return Ok(());
    }
    run_over_targets(args, json, |t| {
        let report = sancheck::check_source(&t.src, &cfg).map_err(|e| e.to_string())?;
        let text: String = report
            .render()
            .lines()
            .map(|l| format!("  {l}\n"))
            .collect();
        Ok((text, sancheck::json::report_to_json(&report)))
    })
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let mut cfg = CampaignConfig {
        quiet: has_flag(args, "--quiet"),
        sancheck: has_flag(args, "--sancheck"),
        ..Default::default()
    };
    cfg.diff_config.vm.mode = vm_mode(args)?;
    if let Some(v) = flag_value(args, "--workers") {
        cfg.workers = v.parse().map_err(|_| format!("bad --workers `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--execs-per-target") {
        cfg.execs_per_target = v
            .parse()
            .map_err(|_| format!("bad --execs-per-target `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--shards") {
        cfg.shards_per_target = v.parse().map_err(|_| format!("bad --shards `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--seed") {
        cfg.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--max-len") {
        cfg.max_input_len = v.parse().map_err(|_| format!("bad --max-len `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--batch-size") {
        cfg.batch_size = v.parse().map_err(|_| format!("bad --batch-size `{v}`"))?;
        if cfg.batch_size == 0 {
            return Err("bad --batch-size `0` (must be >= 1)".into());
        }
    }
    if let Some(v) = flag_value(args, "--stop-after") {
        cfg.stop_after_jobs = Some(v.parse().map_err(|_| format!("bad --stop-after `{v}`"))?);
    }
    if let Some(v) = flag_value(args, "--max-retries") {
        cfg.max_retries = v.parse().map_err(|_| format!("bad --max-retries `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--quarantine-after") {
        cfg.quarantine_after = v
            .parse()
            .map_err(|_| format!("bad --quarantine-after `{v}`"))?;
    }
    if let Some(spec) = flag_value(args, "--fault-plan") {
        // Parsed after --seed so seeded#k sites key off the campaign seed.
        let plan = campaign::FaultPlan::parse(&spec, cfg.seed)
            .map_err(|e| format!("bad --fault-plan: {e}"))?;
        cfg.fault_plan = Some(std::sync::Arc::new(plan));
        // The spec travels too, so coordinator mode can re-parse it in
        // each worker process.
        cfg.fault_plan_spec = Some(spec);
    }
    if let Some(list) = flag_value(args, "--targets") {
        cfg.target_filter = Some(list.split(',').map(|s| s.trim().to_string()).collect());
    }
    if let Some(dir) = flag_value(args, "--progen-dir") {
        let generated =
            targets::dir_source(Path::new(&dir)).map_err(|e| format!("bad --progen-dir: {e}"))?;
        let label = format!("catalog+{}", generated.label());
        let mut all = TargetSource::targets(&targets::CatalogSource);
        all.extend(generated.targets());
        cfg.source = targets::SharedSource::new(targets::StaticSource::new(label, all));
    }
    if let Some(v) = flag_value(args, "--metrics-out") {
        cfg.metrics_out = Some(PathBuf::from(v));
    }
    if let Some(v) = flag_value(args, "--progress-every") {
        cfg.progress_every = v
            .parse()
            .map_err(|_| format!("bad --progress-every `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--fixed-clock") {
        cfg.fixed_clock_us = Some(v.parse().map_err(|_| format!("bad --fixed-clock `{v}`"))?);
    }
    if let Some(v) = flag_value(args, "--workers-proc") {
        cfg.workers_proc = Some(v.parse().map_err(|_| format!("bad --workers-proc `{v}`"))?);
    }
    if let Some(v) = flag_value(args, "--status-addr-out") {
        cfg.status_addr_out = Some(PathBuf::from(v));
    }
    match (
        flag_value(args, "--resume"),
        flag_value(args, "--checkpoint"),
    ) {
        (Some(dir), _) => {
            cfg.checkpoint_dir = Some(PathBuf::from(dir));
            cfg.resume = true;
        }
        (None, Some(dir)) => cfg.checkpoint_dir = Some(PathBuf::from(dir)),
        (None, None) => {}
    }

    let report = campaign::run(&cfg).map_err(|e| match e {
        // A mismatched header most often means a stale checkpoint dir.
        campaign::CampaignError::State(StateError::HeaderMismatch(m)) => m,
        other => other.to_string(),
    })?;
    print!("{}", report.render_summary());
    if let Some(path) = &report.checkpoint {
        println!("checkpoint: {}", path.display());
    }
    if report.aborted {
        println!("(aborted by --stop-after; rerun with --resume to finish)");
    }
    Ok(())
}

/// One campaign worker process (spawned by a `--workers-proc`
/// coordinator; see DESIGN.md §17). Not normally invoked by hand.
fn cmd_campaign_worker(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--connect")
        .ok_or("campaign-worker needs --connect <host:port> (coordinator address)")?;
    campaign::run_worker(&addr)
}

/// Queries a running coordinator's status endpoint and pretty-prints
/// the live progress object.
fn cmd_campaign_status(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--connect")
        .ok_or("campaign-status needs --connect <host:port> (coordinator address, as written by --status-addr-out)")?;
    let status = campaign::query_status(&addr)?;
    println!("{}", status.render_pretty());
    Ok(())
}

fn cmd_progen(args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first() else {
        return Err(format!("progen needs a subcommand\n{USAGE}"));
    };
    // Validate and export --vm-mode; progen's fitness and reduction
    // oracles build their own `DiffConfig::default()`, which picks the
    // mode up from the environment.
    vm_mode(args)?;
    match sub.as_str() {
        "generate" => progen_generate(&args[1..]),
        "evolve" => progen_evolve(&args[1..]),
        "reduce" => progen_reduce(&args[1..]),
        other => Err(format!("unknown progen subcommand `{other}`\n{USAGE}")),
    }
}

fn parse_u64_flag(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad {name} `{v}`")),
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd hex length in `{s}`"));
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16).map_err(|_| format!("bad hex in `{s}`"))
        })
        .collect()
}

fn progen_generate(args: &[String]) -> Result<(), String> {
    let seed = parse_u64_flag(args, "--seed", 1)?;
    let count = parse_u64_flag(args, "--count", 1)?;
    let out_dir = flag_value(args, "--out-dir").map(PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    }
    for i in 0..count {
        let mut rng = Rng::new(progen::mix(seed, i));
        let genome = progen::generate(&mut rng);
        match &out_dir {
            Some(dir) => {
                let path = dir.join(format!("gen_{i:03}.mc"));
                std::fs::write(&path, genome.source())
                    .map_err(|e| format!("cannot write {path:?}: {e}"))?;
                let probes: String = genome
                    .probes
                    .iter()
                    .map(|p| format!("{}\n", hex_encode(p)))
                    .collect();
                let ppath = dir.join(format!("gen_{i:03}.probes"));
                std::fs::write(&ppath, probes)
                    .map_err(|e| format!("cannot write {ppath:?}: {e}"))?;
                println!("wrote {}", path.display());
            }
            None => print!("{}", genome.source()),
        }
    }
    Ok(())
}

/// Builds the progen telemetry facade: JSONL event stream when
/// `--metrics-out` is given, fixed clock when `--fixed-clock` is given.
fn progen_telemetry(args: &[String]) -> Result<std::sync::Arc<telemetry::Telemetry>, String> {
    let fixed = match flag_value(args, "--fixed-clock") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("bad --fixed-clock `{v}`"))?,
        ),
    };
    let tel = match (flag_value(args, "--metrics-out"), fixed) {
        (Some(path), t) => {
            let file =
                std::fs::File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let rec = telemetry::JsonlRecorder::new(std::io::BufWriter::new(file));
            match t {
                Some(us) => telemetry::Telemetry::new(telemetry::TestClock::fixed(us), rec),
                None => telemetry::Telemetry::new(telemetry::MonotonicClock::new(), rec),
            }
        }
        (None, Some(us)) => {
            telemetry::Telemetry::new(telemetry::TestClock::fixed(us), telemetry::NoopRecorder)
        }
        (None, None) => telemetry::Telemetry::disabled(),
    };
    Ok(tel)
}

fn progen_evolve(args: &[String]) -> Result<(), String> {
    let seed = parse_u64_flag(args, "--seed", 1)?;
    let generations = parse_u64_flag(args, "--generations", 4)? as u32;
    let population = parse_u64_flag(args, "--population", 8)? as usize;
    let out_dir = flag_value(args, "--out-dir").map(PathBuf::from);
    let resume = has_flag(args, "--resume");
    let reduce_witnesses = !has_flag(args, "--no-reduce");
    let tel = progen_telemetry(args)?;

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    }
    let state_path = out_dir.as_ref().map(|d| d.join("state.json"));
    let mut state = match (&state_path, resume) {
        (Some(p), true) if p.exists() => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p:?}: {e}"))?;
            let json = Json::parse(&text).map_err(|e| format!("bad state file: {e}"))?;
            let state = progen::EvolveState::from_json(&json)?;
            if state.seed != seed {
                return Err(format!(
                    "state file has seed {}, command line says {seed}",
                    state.seed
                ));
            }
            state
        }
        _ => progen::EvolveState::new(&progen::EvolveConfig { seed, population }),
    };

    // Append-mode log so a resumed run extends the same JSONL history.
    let mut log = match &out_dir {
        Some(dir) => {
            let path = dir.join("generations.jsonl");
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| format!("cannot open {path:?}: {e}"))?;
            Some(std::io::BufWriter::new(file))
        }
        None => None,
    };

    let gen_counter = tel.registry().counter("progen.generations");
    let div_counter = tel.registry().counter("progen.divergent_programs");
    let best_gauge = tel.registry().gauge("progen.fitness_best");
    let mut prev_divergents = state.divergents.len() as u64;
    let mut log_error = None;
    progen::run_generations(&mut state, generations, |record| {
        gen_counter.add(1);
        best_gauge.set(record.best_fitness.max(0) as u64);
        let total = record.divergent_total as u64;
        div_counter.add(total.saturating_sub(prev_divergents));
        prev_divergents = total;
        tel.event(
            "progen.generation",
            vec![
                ("generation", Json::Int(i64::from(record.generation))),
                ("best_fitness", Json::Int(record.best_fitness)),
                ("divergent_total", Json::Int(record.divergent_total as i64)),
            ],
        );
        eprintln!(
            "gen {:>3}: evaluated {:>3}  best {:>5}  mean {:>5}  divergent {:>2}  archive {:>2}",
            record.generation,
            record.evaluated,
            record.best_fitness,
            record.mean_fitness,
            record.divergent_total,
            record.archive_size
        );
        if let Some(w) = &mut log {
            if let Err(e) = writeln!(w, "{}", record.to_json().render()) {
                log_error.get_or_insert(format!("cannot write generation log: {e}"));
            }
        }
    });
    if let Some(e) = log_error {
        return Err(e);
    }
    if let Some(w) = &mut log {
        w.flush()
            .map_err(|e| format!("cannot flush generation log: {e}"))?;
    }

    if let Some(p) = &state_path {
        std::fs::write(p, state.to_json().render_pretty())
            .map_err(|e| format!("cannot write {p:?}: {e}"))?;
    }

    let mut reduced = 0usize;
    let reduce_counter = tel.registry().counter("progen.reduce_steps");
    for (i, find) in state.divergents.iter().enumerate() {
        if let Some(dir) = &out_dir {
            let dpath = dir.join(format!("divergent_{i:02}.mc"));
            std::fs::write(&dpath, &find.source)
                .map_err(|e| format!("cannot write {dpath:?}: {e}"))?;
            let ipath = dir.join(format!("divergent_{i:02}.input"));
            std::fs::write(&ipath, hex_encode(&find.probe))
                .map_err(|e| format!("cannot write {ipath:?}: {e}"))?;
        }
        if !reduce_witnesses {
            continue;
        }
        let witness = progen::reduce(&find.source, &find.probe)
            .map_err(|e| format!("witness {i} failed to reduce: {e}"))?;
        reduce_counter.add(witness.steps);
        tel.event(
            "progen.reduced",
            vec![
                ("index", Json::Int(i as i64)),
                ("steps", Json::Int(witness.steps as i64)),
                ("signature", Json::Str(witness.signature.clone())),
            ],
        );
        if let Some(dir) = &out_dir {
            let wpath = dir.join(format!("witness_{i:02}.mc"));
            std::fs::write(&wpath, &witness.source)
                .map_err(|e| format!("cannot write {wpath:?}: {e}"))?;
        }
        reduced += 1;
    }

    println!(
        "evolved {generations} generation(s) at seed {seed}: population {}, \
         {} distinct diverging program(s), {reduced} reduced witness(es)",
        state.population.len(),
        state.divergents.len()
    );
    println!("metrics: {}", tel.registry().snapshot().render());
    if let Some(dir) = &out_dir {
        println!("state: {}", dir.join("state.json").display());
    }
    Ok(())
}

fn progen_reduce(args: &[String]) -> Result<(), String> {
    let src = load_source(args)?;
    let probe = match flag_value(args, "--input-hex") {
        Some(h) => hex_decode(&h)?,
        None => read_input(args)?,
    };
    let witness = progen::reduce(&src, &probe)?;
    eprintln!(
        "reduced in {} oracle steps; witness pair impls ({}, {}); signature {}",
        witness.steps, witness.witness_pair.0, witness.witness_pair.1, witness.signature
    );
    match flag_value(args, "--out") {
        Some(path) => std::fs::write(&path, &witness.source)
            .map_err(|e| format!("cannot write {path}: {e}"))?,
        None => print!("{}", witness.source),
    }
    Ok(())
}
