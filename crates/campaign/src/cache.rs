//! The shared binary cache: each target's `k + 1` binaries (the ten
//! differential implementations plus the coverage-instrumented fuzz
//! binary) are compiled exactly once per campaign and shared by every
//! worker through `Arc`s.
//!
//! Without this, every (target × seed-shard) job would recompile the full
//! implementation set — `CompDiff::from_source_default` pays the frontend
//! plus ten backend pipelines per call, which dominates short shards.

use compdiff::{CompDiff, DiffConfig};
use minc::FrontendError;
use minc_compile::{Binary, CompilerImpl};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use targets::Target;

/// One target, fully compiled: the differential engine over the `k`
/// implementations plus the fuzz binary. Immutable after construction, so
/// safely shared across workers.
#[derive(Debug)]
pub struct CompiledTarget {
    /// Target name (catalog key).
    pub name: String,
    /// The differential engine (owns the `k` binaries).
    pub diff: CompDiff,
    /// The coverage-instrumented fuzz binary (B_fuzz).
    pub fuzz_binary: Binary,
    /// Fuzzing seed inputs.
    pub seeds: Vec<Vec<u8>>,
    /// The format's 2-byte magic (fed to the fuzzer as a dictionary token).
    pub magic: [u8; 2],
}

impl CompiledTarget {
    /// Fresh persistent sessions over the differential binaries, one per
    /// implementation. The compiled target itself is immutable and shared
    /// across workers; each worker's job creates its own session set as
    /// the mutable per-(worker, binary) execution state.
    pub fn diff_sessions(&self) -> Vec<minc_vm::ExecSession> {
        self.diff.make_sessions()
    }
}

/// Per-target compilation slot: workers asking for the same target
/// serialize on the slot, not on the whole cache.
#[derive(Default)]
struct Slot(Mutex<Option<Arc<CompiledTarget>>>);

/// The campaign-wide compilation cache.
#[derive(Default)]
pub struct BinaryCache {
    slots: Mutex<HashMap<String, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BinaryCache {
    /// Empty cache.
    pub fn new() -> Self {
        BinaryCache::default()
    }

    /// Returns the compiled form of `target`, compiling it on first use.
    /// Concurrent calls for the same target block until the one compile
    /// finishes; calls for different targets proceed in parallel.
    ///
    /// # Errors
    ///
    /// Returns the frontend error if the target source does not check.
    pub fn get_or_compile(
        &self,
        target: &Target,
        diff_config: &DiffConfig,
        fuzz_impl: CompilerImpl,
    ) -> Result<Arc<CompiledTarget>, FrontendError> {
        let slot = {
            let mut slots = self.slots.lock().unwrap();
            Arc::clone(slots.entry(target.spec.name.to_string()).or_default())
        };
        let mut guard = slot.0.lock().unwrap();
        if let Some(ct) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(ct));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let checked = minc::check(&target.src)?;
        let binaries: Vec<Binary> = CompilerImpl::default_set()
            .iter()
            .map(|&ci| minc_compile::compile(&checked, ci))
            .collect();
        let fuzz_binary = minc_compile::compile(&checked, fuzz_impl);
        let ct = Arc::new(CompiledTarget {
            name: target.spec.name.to_string(),
            diff: CompDiff::new(binaries, diff_config.clone()),
            fuzz_binary,
            seeds: target.seeds.clone(),
            magic: target.spec.magic,
        });
        *guard = Some(Arc::clone(&ct));
        Ok(ct)
    }

    /// `(hits, misses)` — misses equal the number of compiles performed.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minc_compile::CompilerImpl;
    use targets::{build, catalog};

    fn fuzz_impl() -> CompilerImpl {
        CompilerImpl::parse("clang-O1").unwrap()
    }

    #[test]
    fn compiles_once_per_target() {
        let cache = BinaryCache::new();
        let t = build(&catalog()[0]);
        let a = cache
            .get_or_compile(&t, &DiffConfig::default(), fuzz_impl())
            .unwrap();
        let b = cache
            .get_or_compile(&t, &DiffConfig::default(), fuzz_impl())
            .unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "second lookup must reuse the first compile"
        );
        assert_eq!(cache.counters(), (1, 1));
        assert_eq!(a.diff.binaries().len(), 10);
    }

    #[test]
    fn concurrent_lookups_share_one_compile() {
        let cache = Arc::new(BinaryCache::new());
        let t = Arc::new(build(&catalog()[1]));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_compile(&t, &DiffConfig::default(), fuzz_impl())
                    .unwrap()
            }));
        }
        let compiled: Vec<Arc<CompiledTarget>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ct in &compiled[1..] {
            assert!(Arc::ptr_eq(&compiled[0], ct));
        }
        let (hits, misses) = cache.counters();
        assert_eq!(misses, 1, "exactly one compile");
        assert_eq!(hits, 3);
    }
}
