//! The shared binary cache: each target's `k + 1` binaries (the ten
//! differential implementations plus the coverage-instrumented fuzz
//! binary) are compiled exactly once per campaign and shared by every
//! worker through `Arc`s.
//!
//! Without this, every (target × seed-shard) job would recompile the full
//! implementation set — `CompDiff::from_source_default` pays the frontend
//! plus ten backend pipelines per call, which dominates short shards.
//!
//! Compiles run inside `catch_unwind`: a panic in the compiler pipeline
//! (a bug in one backend, or an injected fault) surfaces as
//! [`CacheError::Panic`] on *this* lookup and leaves the slot empty, so
//! the campaign can quarantine just that target — and a retry recompiles
//! from scratch — instead of poisoning the slot mutex and wedging every
//! later worker that touches the target.

use crate::faults::{panic_message, FaultKind, FaultPlan};
use compdiff::{hash64, CompDiff, DiffConfig};
use minc::FrontendError;
use minc_compile::{Binary, CompilerImpl};
use minc_vm::BlockProgram;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use targets::Target;

/// One target, fully compiled: the differential engine over the `k`
/// implementations plus the fuzz binary. Immutable after construction, so
/// safely shared across workers.
#[derive(Debug)]
pub struct CompiledTarget {
    /// Target name (catalog key).
    pub name: String,
    /// The differential engine (owns the `k` binaries).
    pub diff: CompDiff,
    /// The coverage-instrumented fuzz binary (B_fuzz).
    pub fuzz_binary: Binary,
    /// Fuzzing seed inputs.
    pub seeds: Vec<Vec<u8>>,
    /// The format's 2-byte magic (fed to the fuzzer as a dictionary token).
    pub magic: [u8; 2],
    /// Block translations of the differential binaries (indexed like
    /// `diff.binaries()`), done once at compile time and shared with every
    /// session any worker creates.
    pub diff_blocks: Vec<Arc<BlockProgram>>,
    /// Block translation of the fuzz binary.
    pub fuzz_blocks: Arc<BlockProgram>,
}

impl CompiledTarget {
    /// Fresh persistent sessions over the differential binaries, one per
    /// implementation, each pre-seeded with the shared block translation.
    /// The compiled target itself is immutable and shared across workers;
    /// each worker's job creates its own session set as the mutable
    /// per-(worker, binary) execution state.
    pub fn diff_sessions(&self) -> Vec<minc_vm::ExecSession> {
        let mut sessions = self.diff.make_sessions();
        for (s, p) in sessions.iter_mut().zip(&self.diff_blocks) {
            s.set_block_program(Arc::clone(p));
        }
        sessions
    }

    /// Total superblocks across all translated binaries of this target.
    pub fn block_count(&self) -> u64 {
        self.diff_blocks
            .iter()
            .chain(std::iter::once(&self.fuzz_blocks))
            .map(|p| p.block_count() as u64)
            .sum()
    }
}

/// Why a target could not be compiled.
#[derive(Debug)]
pub enum CacheError {
    /// The target source failed the frontend (a real compile error).
    Frontend(FrontendError),
    /// The compiler pipeline panicked; the payload is carried so the
    /// failure record names the cause.
    Panic(String),
    /// An injected `fail@compile:...` fault (deterministic testing only).
    Injected(String),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Frontend(e) => write!(f, "frontend error: {e}"),
            CacheError::Panic(m) => write!(f, "compile panicked: {m}"),
            CacheError::Injected(m) => write!(f, "injected compile failure: {m}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<FrontendError> for CacheError {
    fn from(e: FrontendError) -> Self {
        CacheError::Frontend(e)
    }
}

/// Per-target compilation slot: workers asking for the same target
/// serialize on the slot, not on the whole cache.
#[derive(Default)]
struct Slot(Mutex<Option<Arc<CompiledTarget>>>);

/// The campaign-wide compilation cache.
#[derive(Default)]
pub struct BinaryCache {
    slots: Mutex<HashMap<String, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    blocks_translated: AtomicU64,
}

/// Locks a mutex, shrugging off poison: every write the cache makes under
/// its locks is either complete or absent (the slot stays `None` when a
/// compile unwinds), so a poisoned lock carries no torn state.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl BinaryCache {
    /// Empty cache.
    pub fn new() -> Self {
        BinaryCache::default()
    }

    /// Returns the compiled form of `target`, compiling it on first use.
    /// Concurrent calls for the same target block until the one compile
    /// finishes; calls for different targets proceed in parallel.
    ///
    /// `faults`/`attempt` feed the deterministic injection harness; pass
    /// `None` (the production default) to skip it entirely.
    ///
    /// # Errors
    ///
    /// [`CacheError::Frontend`] if the target source does not check,
    /// [`CacheError::Panic`] if the compiler pipeline panics (the slot is
    /// left empty, so a retry recompiles), [`CacheError::Injected`] for
    /// an injected compile fault.
    pub fn get_or_compile(
        &self,
        target: &Target,
        diff_config: &DiffConfig,
        fuzz_impl: CompilerImpl,
        faults: Option<&FaultPlan>,
        attempt: u32,
    ) -> Result<Arc<CompiledTarget>, CacheError> {
        let name = target.spec.name.as_str();
        let slot = {
            let mut slots = lock_clean(&self.slots);
            Arc::clone(slots.entry(name.to_string()).or_default())
        };
        let mut guard = lock_clean(&slot.0);
        if let Some(ct) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(ct));
        }
        let injected = faults.and_then(|p| p.fire_compile(name, attempt));
        if injected == Some(FaultKind::CompileFail) {
            return Err(CacheError::Injected(format!(
                "fault plan failed compile of `{name}` (attempt {attempt})"
            )));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // `catch_unwind` so a panicking backend fails this lookup instead
        // of the whole campaign. On unwind the slot guard still holds
        // `None` — nothing partial is published, which is what makes the
        // poison-shrugging `lock_clean` sound.
        let compiled = catch_unwind(AssertUnwindSafe(|| {
            if injected == Some(FaultKind::Panic) {
                panic!("fault plan panicked compile of `{name}` (attempt {attempt})");
            }
            let checked = minc::check(&target.src)?;
            let binaries: Vec<Binary> = CompilerImpl::default_set()
                .iter()
                .map(|&ci| minc_compile::compile(&checked, ci))
                .collect();
            let fuzz_binary = minc_compile::compile(&checked, fuzz_impl);
            // Translate for block-mode execution while we hold the slot:
            // once per binary per campaign, amortized across every job
            // and session that touches this target.
            let diff_blocks = binaries
                .iter()
                .map(|b| Arc::new(BlockProgram::translate(b)))
                .collect();
            let fuzz_blocks = Arc::new(BlockProgram::translate(&fuzz_binary));
            Ok(CompiledTarget {
                name: name.to_string(),
                // Tag the engine with the program's content hash so
                // campaign-wide signature dedup keys on (program, shape),
                // not shape alone — distinct generated programs with the
                // same exit-code split stay distinct findings.
                diff: CompDiff::new(binaries, diff_config.clone())
                    .with_src_hash(hash64(target.src.as_bytes())),
                fuzz_binary,
                seeds: target.seeds.clone(),
                magic: target.spec.magic,
                diff_blocks,
                fuzz_blocks,
            })
        }));
        let ct = match compiled {
            Ok(Ok(ct)) => Arc::new(ct),
            Ok(Err(e)) => return Err(CacheError::Frontend(e)),
            Err(payload) => return Err(CacheError::Panic(panic_message(payload.as_ref()))),
        };
        self.blocks_translated
            .fetch_add(ct.block_count(), Ordering::Relaxed);
        *guard = Some(Arc::clone(&ct));
        Ok(ct)
    }

    /// `(hits, misses)` — misses equal the number of compiles started
    /// (including ones that failed or panicked).
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Superblocks translated by this cache's up-front per-binary
    /// translation (reported as `vm.blocks_translated`).
    pub fn blocks_translated(&self) -> u64 {
        self.blocks_translated.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    // test-only: unwraps in this module assert test invariants.
    use super::*;
    use minc_compile::CompilerImpl;
    use targets::{build, catalog};

    fn fuzz_impl() -> CompilerImpl {
        CompilerImpl::parse("clang-O1").unwrap()
    }

    #[test]
    fn compiles_once_per_target() {
        let cache = BinaryCache::new();
        let t = build(&catalog()[0]);
        let a = cache
            .get_or_compile(&t, &DiffConfig::default(), fuzz_impl(), None, 1)
            .unwrap();
        let b = cache
            .get_or_compile(&t, &DiffConfig::default(), fuzz_impl(), None, 1)
            .unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "second lookup must reuse the first compile"
        );
        assert_eq!(cache.counters(), (1, 1));
        assert_eq!(a.diff.binaries().len(), 10);
    }

    #[test]
    fn concurrent_lookups_share_one_compile() {
        let cache = Arc::new(BinaryCache::new());
        let t = Arc::new(build(&catalog()[1]));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_compile(&t, &DiffConfig::default(), fuzz_impl(), None, 1)
                    .unwrap()
            }));
        }
        let compiled: Vec<Arc<CompiledTarget>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ct in &compiled[1..] {
            assert!(Arc::ptr_eq(&compiled[0], ct));
        }
        let (hits, misses) = cache.counters();
        assert_eq!(misses, 1, "exactly one compile");
        assert_eq!(hits, 3);
    }

    /// A panicking compile must fail only its own lookup: the slot stays
    /// usable, the retry recompiles, and other targets are unaffected.
    #[test]
    fn compile_panic_leaves_slot_retryable() {
        let plan = FaultPlan::parse("panic@compile:any", 9).unwrap();
        let cache = BinaryCache::new();
        let t = build(&catalog()[0]);

        let err = cache
            .get_or_compile(&t, &DiffConfig::default(), fuzz_impl(), Some(&plan), 1)
            .unwrap_err();
        match err {
            CacheError::Panic(m) => assert!(m.contains("fault plan"), "payload carried: {m}"),
            other => panic!("expected Panic, got {other:?}"),
        }

        // Attempt 2 is past the rule's default count of 1: the retry
        // recompiles cleanly on the same (unpoisoned) slot.
        let ct = cache
            .get_or_compile(&t, &DiffConfig::default(), fuzz_impl(), Some(&plan), 2)
            .unwrap();
        assert_eq!(ct.diff.binaries().len(), 10);
        assert_eq!(cache.counters(), (0, 2), "both attempts were misses");
    }

    #[test]
    fn injected_compile_failure_is_typed() {
        let plan = FaultPlan::parse("fail@compile:jq*inf", 9).unwrap();
        let cache = BinaryCache::new();
        let jq = catalog()
            .iter()
            .find(|s| s.name == "jq")
            .map(build)
            .expect("jq in catalog");
        let err = cache
            .get_or_compile(&jq, &DiffConfig::default(), fuzz_impl(), Some(&plan), 3)
            .unwrap_err();
        assert!(matches!(err, CacheError::Injected(_)), "got {err:?}");
        // Injected failures happen before the miss counter: compile work
        // was never started.
        assert_eq!(cache.counters(), (0, 0));
    }
}
