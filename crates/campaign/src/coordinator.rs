//! The coordinator side of the multi-process campaign (DESIGN.md §17).
//!
//! [`run_procs`] owns everything a campaign must have exactly one of:
//! the shard queues and lease table, the checkpoint writer, the
//! campaign-wide signature dedup (via the shared [`ResultHandler`]), and
//! the metric registry the status endpoint and final snapshot read.
//! Worker *processes* own nothing durable — they connect over a local
//! TCP socket, receive the campaign config, and trade
//! `lease_req`/`lease`/`done`/`failed` frames until the coordinator
//! broadcasts `shutdown`.
//!
//! Determinism: shards are *partitioned* round-robin across the `n`
//! logical worker indexes (no stealing), each job's RNG seed depends
//! only on `(campaign seed, target, shard)`, retries re-queue at the
//! same [`retry_backoff`] position the in-process pool uses, and events
//! are buffered and re-sorted into canonical [`crate::EventKey`] order
//! before they hit the recorder. A clean 1-worker-process campaign is
//! therefore byte-identical — report and metrics stream — to the
//! in-process `workers = 1` run, and any clean N-process campaign is
//! byte-identical to itself across runs.
//!
//! Fault tolerance: a worker that dies or drops its connection
//! mid-lease surfaces as EOF on its socket; the coordinator reclaims
//! the lease as a [`FailureKind::Lost`] attempt (feeding the ordinary
//! retry/quarantine policy) and respawns a replacement process while
//! its shard queue is non-empty. A worker that hangs without renewing
//! is reclaimed the same way after `lease_timeout_ms`.

use crate::proto::{
    config_frame, frame_type, lease_frame, read_frame, tagged, vm_from_json, write_frame,
};
use crate::scheduler::{retry_backoff, Decision, Job, JobFailure, JobOutput, JobResult};
use crate::state::{FailureKind, JobRecord};
use crate::telem::CampaignTelemetry;
use crate::{
    build_telemetry, prepare, CampaignConfig, CampaignError, CampaignReport, Prepared,
    ResultHandler,
};
use compdiff::Json;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use targets::Target;
use telemetry::{MetricRegistry, Telemetry};

/// How often the main loop wakes with no traffic: lease-expiry scans and
/// child reaping run at this cadence.
const TICK: Duration = Duration::from_millis(200);

/// Replacement processes granted beyond the initial `n` before the
/// coordinator gives up (a crash-looping worker binary would otherwise
/// respawn forever).
const RESPAWN_SLACK: usize = 256;

/// The lost-lease failure message for a closed connection (worker death
/// or injected drop — indistinguishable at the socket, by design).
const MSG_CONN_LOST: &str = "worker process lost mid-lease (connection closed)";

/// Locates the worker executable the coordinator spawns: the config's
/// `worker_exe` if set, else `$COMPDIFF_WORKER_EXE`, else the running
/// `compdiff` binary itself, else a `compdiff` next to (or one directory
/// above) the current executable — the latter finds `target/<profile>/
/// compdiff` from test and bench binaries in `target/<profile>/deps/`.
///
/// # Errors
///
/// [`CampaignError::Proto`] when no candidate exists.
pub fn resolve_worker_exe(cfg: &CampaignConfig) -> Result<PathBuf, CampaignError> {
    if let Some(exe) = &cfg.worker_exe {
        return Ok(exe.clone());
    }
    if let Ok(exe) = std::env::var("COMPDIFF_WORKER_EXE") {
        return Ok(PathBuf::from(exe));
    }
    let exe = std::env::current_exe()
        .map_err(|e| CampaignError::Proto(format!("cannot locate current executable: {e}")))?;
    if exe.file_stem().and_then(|s| s.to_str()) == Some("compdiff") {
        return Ok(exe);
    }
    if let Some(dir) = exe.parent() {
        let sibling = dir.join("compdiff");
        if sibling.is_file() {
            return Ok(sibling);
        }
        if let Some(up) = dir.parent() {
            let above = up.join("compdiff");
            if above.is_file() {
                return Ok(above);
            }
        }
    }
    Err(CampaignError::Proto(
        "cannot locate the compdiff worker executable; set CampaignConfig::worker_exe \
         or the COMPDIFF_WORKER_EXE environment variable"
            .to_string(),
    ))
}

/// What the socket threads deliver to the single-threaded main loop.
enum Ev {
    /// A worker process said hello; `out` feeds its writer thread and
    /// `sever` is a handle the coordinator can `shutdown()` to force the
    /// connection closed (dropping the writer alone does not EOF the
    /// worker while other clones of the socket live).
    Hello {
        conn: u64,
        out: mpsc::Sender<Json>,
        sever: Option<TcpStream>,
    },
    /// One frame from a connected worker.
    Frame { conn: u64, frame: Json },
    /// The worker's connection closed (clean bye or mid-lease death).
    Gone { conn: u64 },
    /// A status client wants the live progress object.
    Status { reply: mpsc::Sender<Json> },
}

/// Per-connection coordinator state.
struct ConnState {
    /// The logical worker index (deque) this process serves.
    widx: usize,
    /// Frames to the writer thread.
    out: mpsc::Sender<Json>,
    /// A socket handle for forcing the connection closed.
    sever: Option<TcpStream>,
    /// The lease this worker currently holds, if any.
    lease: Option<u64>,
    /// True if the worker asked for a lease while its deque was empty —
    /// a retry landing there re-grants immediately.
    parked: bool,
}

/// One outstanding lease.
struct LeaseInfo {
    job: Job,
    conn: u64,
    last_renew: Instant,
}

/// Reads one frame, forwards the stream to the main loop, and (for
/// worker connections) owns the writer thread. Runs on its own thread
/// per accepted connection.
fn serve_conn(stream: TcpStream, id: u64, ev_tx: &mpsc::Sender<Ev>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let Ok(Some(first)) = read_frame(&mut reader) else {
        return;
    };
    match frame_type(&first) {
        Some("status") => {
            let (tx, rx) = mpsc::channel();
            if ev_tx.send(Ev::Status { reply: tx }).is_err() {
                return;
            }
            if let Ok(reply) = rx.recv() {
                let mut w = BufWriter::new(stream);
                let _ = write_frame(&mut w, &reply);
            }
        }
        Some("hello") => {
            let sever = stream.try_clone().ok();
            let (out_tx, out_rx) = mpsc::channel::<Json>();
            let writer = std::thread::spawn(move || {
                let mut w = BufWriter::new(stream);
                for frame in out_rx {
                    if write_frame(&mut w, &frame).is_err() {
                        break;
                    }
                }
            });
            if ev_tx
                .send(Ev::Hello {
                    conn: id,
                    out: out_tx,
                    sever,
                })
                .is_err()
            {
                return;
            }
            while let Ok(Some(frame)) = read_frame(&mut reader) {
                if ev_tx.send(Ev::Frame { conn: id, frame }).is_err() {
                    break;
                }
            }
            let _ = ev_tx.send(Ev::Gone { conn: id });
            let _ = writer.join();
        }
        _ => {}
    }
}

/// The single-threaded campaign brain: every field that must exist
/// exactly once, mutated only from the event loop.
struct Coordinator<'a> {
    cfg: &'a CampaignConfig,
    tel: &'a Arc<Telemetry>,
    ctel: &'a CampaignTelemetry,
    selected: &'a [Target],
    handler: ResultHandler<'a>,
    /// Logical worker indexes (deque count) — *not* live process count.
    n: usize,
    /// Per-index shard queues; index `i` gets jobs `i, i+n, i+2n, ...`.
    deques: Vec<VecDeque<Job>>,
    /// Jobs queued or leased but not yet resolved.
    outstanding: usize,
    conns: HashMap<u64, ConnState>,
    leases: HashMap<u64, LeaseInfo>,
    lease_seq: u64,
    /// Worker indexes with no live connection serving them.
    free_idx: BTreeSet<usize>,
    /// Queued jobs dropped by quarantine sweeps.
    swept: Vec<Job>,
    stopping: bool,
    finishing: bool,
    children: Vec<Child>,
    /// Total processes ever spawned (respawn-cap accounting).
    spawned: usize,
    /// Processes spawned but not yet hello'd.
    pending_spawns: usize,
    exe: PathBuf,
    addr: String,
    /// Latest metric snapshot per connection (a respawned process gets a
    /// fresh connection id, so dead workers' final snapshots survive).
    worker_metrics: HashMap<u64, Json>,
    /// Summed worker-side binary-cache (hits, misses) from bye frames.
    cache_sums: (u64, u64),
    /// Summed worker-side cache block translations from bye frames.
    blocks_sum: u64,
    /// First unrecoverable protocol error; aborts the event loop.
    fatal: Option<CampaignError>,
}

impl Coordinator<'_> {
    fn fail(&mut self, e: CampaignError) {
        self.fatal.get_or_insert(e);
    }

    fn ack(&self, conn: u64) {
        if let Some(c) = self.conns.get(&conn) {
            let _ = c.out.send(tagged("ack"));
        }
    }

    /// Forces `conn`'s socket closed. Its serve thread will deliver
    /// `Gone` shortly after.
    fn sever(&self, conn: u64) {
        if let Some(c) = self.conns.get(&conn) {
            if let Some(s) = &c.sever {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }

    fn broadcast_shutdown(&self) {
        for c in self.conns.values() {
            let _ = c.out.send(tagged("shutdown"));
        }
    }

    /// The free worker index most in need of a process: longest deque,
    /// ties to the smallest index.
    fn pick_index(&self) -> Option<usize> {
        self.free_idx
            .iter()
            .copied()
            .max_by_key(|&i| (self.deques[i].len(), std::cmp::Reverse(i)))
    }

    fn spawn_worker(&mut self) -> Result<(), CampaignError> {
        if self.spawned >= self.n + RESPAWN_SLACK {
            return Err(CampaignError::Proto(format!(
                "worker respawn cap exceeded ({} spawns for {} worker slots)",
                self.spawned, self.n
            )));
        }
        let child = Command::new(&self.exe)
            .args(["campaign-worker", "--connect", &self.addr])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| {
                CampaignError::Proto(format!("cannot spawn worker `{}`: {e}", self.exe.display()))
            })?;
        self.children.push(child);
        self.spawned += 1;
        self.pending_spawns += 1;
        self.ctel.workers_spawned.inc();
        Ok(())
    }

    /// Spawns processes until every free index with queued work has one
    /// on the way. The only respawn site, so a burst of lost leases
    /// cannot over-spawn.
    fn ensure_workers(&mut self) {
        if self.finishing || self.stopping || self.fatal.is_some() {
            return;
        }
        let needy = self
            .free_idx
            .iter()
            .filter(|&&i| !self.deques[i].is_empty())
            .count();
        while self.pending_spawns < needy {
            if let Err(e) = self.spawn_worker() {
                self.fail(e);
                return;
            }
        }
    }

    /// Resolves `job` as a lost lease (worker death, dropped connection,
    /// or expiry) through the ordinary failure policy.
    fn lost(&mut self, widx: usize, job: Job, message: &str) {
        let decision = self.handler.on_result(JobResult::Failed(JobFailure {
            worker: widx,
            job,
            target: self.selected[job.target_index].spec.name.clone(),
            kind: FailureKind::Lost,
            message: message.to_string(),
            dur_us: 0,
        }));
        self.apply_decision(decision);
    }

    fn maybe_finish(&mut self) {
        if !self.finishing && !self.stopping && self.outstanding == 0 {
            self.finishing = true;
            self.broadcast_shutdown();
        }
    }

    fn apply_decision(&mut self, decision: Decision) {
        match decision {
            Decision::Continue => {
                self.outstanding -= 1;
                self.maybe_finish();
            }
            Decision::Retry(job) => {
                // Identical backoff math to the in-process pool: the
                // retry lands mid-deque at a position derived only from
                // the campaign seed and the job identity.
                let name = self.selected[job.target_index].spec.name.as_str();
                let back = retry_backoff(self.cfg.seed, name, job.shard, job.attempt);
                let d = (back % self.n as u64) as usize;
                let dq = &mut self.deques[d];
                let pos = ((back >> 32) as usize) % (dq.len() + 1);
                dq.insert(pos, job);
                let parked = self
                    .conns
                    .iter()
                    .find(|(_, c)| c.widx == d && c.parked)
                    .map(|(&id, _)| id);
                match parked {
                    Some(id) => self.try_grant(id),
                    None => self.ensure_workers(),
                }
            }
            Decision::Quarantine { target_index } => {
                self.outstanding -= 1;
                let mut removed = 0usize;
                let swept = &mut self.swept;
                for dq in &mut self.deques {
                    dq.retain(|j| {
                        let hit = j.target_index == target_index;
                        if hit {
                            swept.push(*j);
                            removed += 1;
                        }
                        !hit
                    });
                }
                self.outstanding -= removed;
                self.maybe_finish();
            }
            Decision::Stop => {
                self.stopping = true;
                self.broadcast_shutdown();
            }
        }
    }

    /// Answers a `lease_req`: pop the connection's own deque (no
    /// stealing — partitioning is what keeps N processes deterministic)
    /// or park the worker until a retry lands there.
    fn try_grant(&mut self, conn: u64) {
        if self.finishing || self.stopping {
            if let Some(c) = self.conns.get(&conn) {
                let _ = c.out.send(tagged("shutdown"));
            }
            return;
        }
        let (widx, job) = {
            let Some(c) = self.conns.get_mut(&conn) else {
                return;
            };
            match self.deques[c.widx].pop_front() {
                Some(job) => {
                    c.parked = false;
                    (c.widx, job)
                }
                None => {
                    c.parked = true;
                    return;
                }
            }
        };
        self.lease_seq += 1;
        let lease = self.lease_seq;
        self.ctel.leases_granted.inc();
        if self
            .cfg
            .fault_plan
            .as_deref()
            .is_some_and(|p| p.fire_conn(lease))
        {
            // Injected connection drop: sever instead of granting. The
            // popped job is immediately a lost lease; `Gone` follows and
            // respawns a replacement for the queue.
            self.sever(conn);
            self.lost(widx, job, MSG_CONN_LOST);
            return;
        }
        self.leases.insert(
            lease,
            LeaseInfo {
                job,
                conn,
                last_renew: Instant::now(),
            },
        );
        if let Some(c) = self.conns.get_mut(&conn) {
            c.lease = Some(lease);
            let _ = c.out.send(lease_frame(lease, job));
        }
    }

    /// Applies a `done`/`failed` frame: resolve the lease, feed the
    /// shared result handler, answer `ack`.
    fn handle_result(&mut self, conn: u64, frame: &Json) {
        if let Some(m) = frame.get("metrics") {
            self.worker_metrics.insert(conn, m.clone());
        }
        let Some(lease) = frame.get("lease").and_then(Json::as_u64) else {
            self.fail(CampaignError::Proto(
                "result frame without a lease".to_string(),
            ));
            return;
        };
        let Some(li) = self.leases.remove(&lease) else {
            // The lease was already reclaimed (expired or severed); the
            // job re-ran elsewhere. First resolution won, drop this one.
            self.ctel.stale_results.inc();
            self.ack(conn);
            return;
        };
        if let Some(c) = self.conns.get_mut(&conn) {
            c.lease = None;
        }
        if self.stopping {
            // Stop parity with the in-process pool: in-flight results
            // are dropped, but the worker is still acked so it reaches
            // its shutdown cleanly.
            self.ack(conn);
            return;
        }
        let widx = self.conns.get(&conn).map_or(0, |c| c.widx);
        let result = if frame_type(frame) == Some("done") {
            let record = frame
                .get("record")
                .ok_or_else(|| "done frame without a record".to_string())
                .and_then(JobRecord::from_json);
            match record {
                Ok(record) => JobResult::Done(JobOutput {
                    worker: widx,
                    record,
                    dur_us: frame.get("dur_us").and_then(Json::as_u64).unwrap_or(0),
                    vm: frame.get("vm").map(vm_from_json).unwrap_or_default(),
                }),
                Err(e) => {
                    self.fail(CampaignError::Proto(format!("bad done frame: {e}")));
                    return;
                }
            }
        } else {
            let kind = frame
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| "failed frame without a kind".to_string())
                .and_then(FailureKind::parse);
            match kind {
                Ok(kind) => JobResult::Failed(JobFailure {
                    worker: widx,
                    job: li.job,
                    target: self.selected[li.job.target_index].spec.name.clone(),
                    kind,
                    message: frame
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    dur_us: frame.get("dur_us").and_then(Json::as_u64).unwrap_or(0),
                }),
                Err(e) => {
                    self.fail(CampaignError::Proto(format!("bad failed frame: {e}")));
                    return;
                }
            }
        };
        let decision = self.handler.on_result(result);
        self.apply_decision(decision);
        self.ack(conn);
    }

    fn handle_frame(&mut self, conn: u64, frame: Json) {
        match frame_type(&frame) {
            Some("lease_req") => self.try_grant(conn),
            Some("renew") => {
                if let Some(l) = frame.get("lease").and_then(Json::as_u64) {
                    if let Some(li) = self.leases.get_mut(&l) {
                        li.last_renew = Instant::now();
                    }
                }
            }
            Some("done") | Some("failed") => self.handle_result(conn, &frame),
            Some("bye") => {
                let u = |k: &str| frame.get(k).and_then(Json::as_u64).unwrap_or(0);
                self.cache_sums.0 += u("cache_hits");
                self.cache_sums.1 += u("cache_misses");
                self.blocks_sum += u("blocks_translated");
                if let Some(m) = frame.get("metrics") {
                    self.worker_metrics.insert(conn, m.clone());
                }
            }
            _ => {}
        }
    }

    fn handle_gone(&mut self, conn: u64) {
        let Some(c) = self.conns.remove(&conn) else {
            return;
        };
        self.free_idx.insert(c.widx);
        if let Some(lease) = c.lease {
            if let Some(li) = self.leases.remove(&lease) {
                if !self.stopping {
                    self.lost(c.widx, li.job, MSG_CONN_LOST);
                }
            }
        }
        self.ensure_workers();
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Hello { conn, out, sever } => {
                if self.finishing || self.stopping {
                    // A straggler connecting after the campaign drained:
                    // shut it down without tracking it.
                    let _ = out.send(tagged("shutdown"));
                    return;
                }
                self.pending_spawns = self.pending_spawns.saturating_sub(1);
                let Some(widx) = self.pick_index() else {
                    let _ = out.send(tagged("shutdown"));
                    return;
                };
                self.free_idx.remove(&widx);
                let _ = out.send(config_frame(self.cfg, self.selected));
                self.conns.insert(
                    conn,
                    ConnState {
                        widx,
                        out,
                        sever,
                        lease: None,
                        parked: false,
                    },
                );
            }
            Ev::Frame { conn, frame } => self.handle_frame(conn, frame),
            Ev::Gone { conn } => self.handle_gone(conn),
            Ev::Status { reply } => {
                let _ = reply.send(self.status());
            }
        }
    }

    /// Reclaims leases whose workers stopped renewing. Wall-clock by
    /// necessity (a hung worker is a wall-clock phenomenon), which is
    /// why `lease_timeout_ms` must dwarf `renew_ms`.
    fn expire_leases(&mut self) {
        if self.cfg.lease_timeout_ms == 0 {
            return;
        }
        let timeout = Duration::from_millis(self.cfg.lease_timeout_ms);
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, li)| li.last_renew.elapsed() >= timeout)
            .map(|(&l, _)| l)
            .collect();
        for l in expired {
            let Some(li) = self.leases.remove(&l) else {
                continue;
            };
            self.ctel.leases_expired.inc();
            let widx = self.conns.get(&li.conn).map_or(0, |c| c.widx);
            if let Some(c) = self.conns.get_mut(&li.conn) {
                c.lease = None;
            }
            // Sever: a late result from the hung worker must not race
            // the re-run (and would be dropped as stale anyway).
            self.sever(li.conn);
            if !self.stopping {
                self.lost(widx, li.job, "lease expired without renewal");
            }
        }
    }

    /// Reaps exited worker processes (avoids zombie accumulation during
    /// long campaigns with respawns).
    fn reap(&mut self) {
        self.children
            .retain_mut(|child| !matches!(child.try_wait(), Ok(Some(_))));
    }

    /// The live status object: progress counters plus a merged metric
    /// snapshot (coordinator registry + every worker's latest snapshot).
    fn status(&self) -> Json {
        let reg = MetricRegistry::new();
        reg.merge_snapshot(&self.tel.registry().snapshot());
        for m in self.worker_metrics.values() {
            reg.merge_snapshot(m);
        }
        let st = &self.handler.stats;
        Json::obj(vec![
            ("t", Json::Str("status".to_string())),
            ("jobs_total", Json::Int(st.jobs_total as i64)),
            ("jobs_done", Json::Int(st.jobs_done as i64)),
            ("jobs_failed", Json::Int(st.jobs_failed as i64)),
            ("execs", Json::Int(st.execs as i64)),
            ("divergent", Json::Int(st.divergent as i64)),
            ("signatures", Json::Int(st.signatures.len() as i64)),
            ("failures", Json::Int(st.failures as i64)),
            ("workers", Json::Int(self.conns.len() as i64)),
            ("leases_active", Json::Int(self.leases.len() as i64)),
            ("outstanding", Json::Int(self.outstanding as i64)),
            ("metrics", reg.snapshot()),
        ])
    }
}

/// Runs the campaign as a coordinator over `cfg.workers_proc` worker
/// processes. Same contract as the in-process path: identical results,
/// identical report shape, partial results instead of aborts.
pub(crate) fn run_procs(cfg: &CampaignConfig) -> Result<CampaignReport, CampaignError> {
    let n = cfg.workers_proc.unwrap_or(1).max(1);
    let started = Instant::now();
    let tel = build_telemetry(cfg)?;
    let started_us = tel.now_micros();
    let ctel = CampaignTelemetry::new(Arc::clone(&tel));
    let Prepared {
        selected,
        pending,
        state,
        stats,
        ledger,
        policy,
    } = prepare(cfg, &tel, &ctel, n)?;
    let mut handler = ResultHandler::new(cfg, &tel, &ctel, &selected, state, stats, ledger, policy);
    handler.started = started;
    // Results arrive in socket order; buffering + the canonical EventKey
    // sort is what keeps the recorded stream deterministic.
    handler.buffer_events = true;

    let exe = resolve_worker_exe(cfg)?;
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| CampaignError::Proto(format!("cannot bind coordinator socket: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CampaignError::Proto(format!("cannot read coordinator address: {e}")))?
        .to_string();
    if let Some(path) = &cfg.status_addr_out {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| CampaignError::Proto(format!("cannot write status address file: {e}")))?;
    }

    let (ev_tx, ev_rx) = mpsc::channel::<Ev>();
    let stop_accept = Arc::new(AtomicBool::new(false));
    let accept_handle = {
        let ev_tx = ev_tx.clone();
        let stop_accept = Arc::clone(&stop_accept);
        std::thread::spawn(move || {
            let mut next_id: u64 = 0;
            for stream in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                next_id += 1;
                let id = next_id;
                let ev_tx = ev_tx.clone();
                std::thread::spawn(move || serve_conn(stream, id, &ev_tx));
            }
        })
    };

    let mut deques: Vec<VecDeque<Job>> = (0..n).map(|_| VecDeque::new()).collect();
    for (i, &job) in pending.iter().enumerate() {
        deques[i % n].push_back(job);
    }
    let mut co = Coordinator {
        cfg,
        tel: &tel,
        ctel: &ctel,
        selected: &selected,
        handler,
        n,
        outstanding: pending.len(),
        deques,
        conns: HashMap::new(),
        leases: HashMap::new(),
        lease_seq: 0,
        free_idx: (0..n).collect(),
        swept: Vec::new(),
        stopping: false,
        finishing: false,
        children: Vec::new(),
        spawned: 0,
        pending_spawns: 0,
        exe,
        addr: addr.clone(),
        worker_metrics: HashMap::new(),
        cache_sums: (0, 0),
        blocks_sum: 0,
        fatal: None,
    };
    if co.outstanding == 0 {
        // Everything was replayed from the checkpoint; no workers needed.
        co.finishing = true;
    } else {
        for _ in 0..n {
            if let Err(e) = co.spawn_worker() {
                co.fail(e);
                break;
            }
        }
    }

    loop {
        if co.fatal.is_some() {
            break;
        }
        if (co.finishing || co.stopping) && co.conns.is_empty() {
            break;
        }
        match ev_rx.recv_timeout(TICK) {
            Ok(ev) => co.handle(ev),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                co.expire_leases();
                co.reap();
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    // Teardown: stop accepting (the dummy connection unblocks the
    // blocking accept), close every worker connection, reap children.
    stop_accept.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(&addr);
    let _ = accept_handle.join();
    let Coordinator {
        handler,
        mut children,
        swept,
        worker_metrics,
        cache_sums,
        blocks_sum,
        fatal,
        ..
    } = co;
    let deadline = Instant::now() + Duration::from_secs(10);
    for mut child in children.drain(..) {
        loop {
            match child.try_wait() {
                Ok(Some(_)) | Err(_) => break,
                Ok(None) => {
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }
    if let Some(e) = fatal {
        return Err(e);
    }

    // Fold every worker's final metric snapshot into the campaign
    // registry (commutative merges — HashMap order does not matter), so
    // the final snapshot reads identically to the in-process run.
    for m in worker_metrics.values() {
        tel.registry().merge_snapshot(m);
    }
    Ok(handler.finalize(&swept, &selected, cache_sums, blocks_sum, started_us))
}
