//! Deterministic fault injection: the campaign's chaos harness.
//!
//! Long differential campaigns die to worker panics, torn checkpoints,
//! and flaky I/O. The recovery paths for those failures are exactly the
//! code that never runs in a clean test suite, so this module makes the
//! failures *schedulable*: a [`FaultPlan`] names concrete injection
//! points (a job attempt, a compile, a checkpoint append) and the
//! scheduler, binary cache, and checkpoint writer consult it at each
//! point. The default (`None` plan) is a single `Option` check — no
//! fault machinery runs in production campaigns.
//!
//! Determinism is the design constraint: every firing decision is a pure
//! function of the site identity (target, shard, attempt number, append
//! sequence) and the campaign seed — never of wall-clock time or thread
//! timing — so the same seed plus the same plan replays the same
//! failures, and a killed campaign resumed under the same plan walks the
//! same recovery path. (The one exception: `checkpoint:any` rules with a
//! finite count keep a process-local budget, and append sequence numbers
//! count attempts in the current process; plans meant to survive
//! kill/resume should use attempt-scoped job rules or indexed checkpoint
//! rules that fire before the kill point.)
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of rules, each `kind@site[*count]`:
//!
//! ```text
//! panic@tcpdump#1          panic on the first attempt of job tcpdump#1
//! panic@tcpdump#any*2      panic on attempts 1-2 of every tcpdump shard
//! panic@any#any*inf        every job attempt panics
//! panic@seeded#7*inf       panic on jobs whose seed is divisible by 7
//! io@jq#0                  job jq#0 fails with a (non-panic) I/O error
//! panic@compile:mujs       the mujs compile panics (first attempt only)
//! fail@compile:jq*inf      every jq compile returns an error
//! io@checkpoint:3          the 3rd checkpoint append fails
//! io@checkpoint:any*inf    every checkpoint append fails
//! die@tcpdump#0            the worker *process* running tcpdump#0 exits
//! drop@conn:1              the coordinator severs the 1st lease grant
//! drop@conn:any*2          ...the first 2 grants
//! ```
//!
//! Kinds: `panic` (job or compile sites), `io` (job or checkpoint
//! sites), `fail` (compile sites), `die` (job sites; the worker process
//! exits mid-lease — a no-op in in-process pools, which have no process
//! to kill), `drop` (conn sites; the coordinator closes the connection
//! instead of delivering a lease grant). `*count` bounds the attempt
//! number a rule still fires at (`*inf` = every attempt); the default is
//! 1, i.e. "fail once, let the retry succeed". For `conn:any` rules the
//! count is a firing budget over grant sequence numbers, like
//! `checkpoint:any`. Target names are not validated against the catalog
//! — an unknown name simply never matches.

use crate::scheduler::job_seed;
use std::sync::atomic::{AtomicU64, Ordering};

/// What an injection point does when its rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind with a panic (exercises `catch_unwind` isolation).
    Panic,
    /// Fail with a synthetic I/O error (no unwinding).
    Io,
    /// A compile returns an error instead of a binary.
    CompileFail,
    /// The worker *process* exits mid-lease (coordinator/worker mode
    /// only; the in-process pool ignores it — there is no process to
    /// kill without taking the campaign down).
    Die,
    /// The coordinator severs the connection instead of delivering a
    /// lease grant.
    Drop,
}

/// Where a rule applies.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Site {
    /// A (target × shard) job attempt; `None` is a wildcard.
    Job {
        target: Option<String>,
        shard: Option<u32>,
    },
    /// Jobs whose [`job_seed`] is divisible by `modulus` — a
    /// campaign-seed-dependent pseudo-random selection.
    Seeded { modulus: u64 },
    /// A target's compilation in the binary cache.
    Compile { target: Option<String> },
    /// A checkpoint append; `None` is a wildcard over sequence numbers.
    Checkpoint { index: Option<u64> },
    /// A coordinator→worker lease grant, by grant sequence number;
    /// `None` is a wildcard.
    Conn { index: Option<u64> },
}

/// One `kind@site*count` rule.
#[derive(Debug)]
struct Rule {
    kind: FaultKind,
    site: Site,
    /// Highest attempt number this rule still fires at (`None` = every
    /// attempt). For `checkpoint:any` rules this is a firing budget.
    count: Option<u64>,
    /// Firings consumed so far — only consulted by `checkpoint:any`
    /// rules, whose "attempts" have no stable cross-process identity.
    spent: AtomicU64,
}

/// A parsed, shareable fault plan. See the module docs for the grammar.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// Parses `spec` into a plan. `seed` is the campaign seed; it drives
    /// `seeded#k` site matching so the selected jobs vary with the
    /// campaign, not with the plan text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending rule on any syntax error
    /// or invalid kind/site combination.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            rules.push(parse_rule(raw)?);
        }
        if rules.is_empty() {
            return Err("empty fault plan".to_string());
        }
        Ok(FaultPlan { seed, rules })
    }

    /// Consults job-site rules for `target`/`shard` at `attempt`
    /// (1-based). Returns the first matching rule's kind.
    pub fn fire_job(&self, target: &str, shard: u32, attempt: u32) -> Option<FaultKind> {
        self.rules.iter().find_map(|r| {
            let site_hit = match &r.site {
                Site::Job {
                    target: t,
                    shard: s,
                } => t.as_deref().is_none_or(|t| t == target) && s.is_none_or(|s| s == shard),
                Site::Seeded { modulus } => {
                    job_seed(self.seed, target, shard).is_multiple_of(*modulus)
                }
                _ => return None,
            };
            (site_hit && r.count.is_none_or(|c| u64::from(attempt) <= c)).then_some(r.kind)
        })
    }

    /// Consults compile-site rules for `target`; `attempt` is the job
    /// attempt the compile serves (compiles are retried with their job).
    pub fn fire_compile(&self, target: &str, attempt: u32) -> Option<FaultKind> {
        self.rules.iter().find_map(|r| {
            let Site::Compile { target: t } = &r.site else {
                return None;
            };
            (t.as_deref().is_none_or(|t| t == target)
                && r.count.is_none_or(|c| u64::from(attempt) <= c))
            .then_some(r.kind)
        })
    }

    /// Consults checkpoint-site rules for append attempt `seq` (1-based,
    /// counting every append attempt the writer makes). Returns true if
    /// the append should fail with an injected I/O error.
    pub fn fire_checkpoint(&self, seq: u64) -> bool {
        self.rules.iter().any(|r| {
            let Site::Checkpoint { index } = &r.site else {
                return false;
            };
            match index {
                Some(i) => *i == seq,
                None => match r.count {
                    None => true,
                    Some(budget) => r.spent.fetch_add(1, Ordering::Relaxed) < budget,
                },
            }
        })
    }

    /// Consults conn-site rules for lease grant `seq` (1-based, counting
    /// every grant the coordinator makes). Returns true if the
    /// coordinator should sever the connection instead of delivering the
    /// grant. Same budget semantics as [`Self::fire_checkpoint`]:
    /// `conn:any*N` keeps a process-local firing budget.
    pub fn fire_conn(&self, seq: u64) -> bool {
        self.rules.iter().any(|r| {
            let Site::Conn { index } = &r.site else {
                return false;
            };
            match index {
                Some(i) => *i == seq,
                None => match r.count {
                    None => true,
                    Some(budget) => r.spent.fetch_add(1, Ordering::Relaxed) < budget,
                },
            }
        })
    }
}

fn parse_rule(raw: &str) -> Result<Rule, String> {
    let (kind_str, rest) = raw
        .split_once('@')
        .ok_or_else(|| format!("bad fault rule `{raw}`: expected kind@site"))?;
    let kind = match kind_str {
        "panic" => FaultKind::Panic,
        "io" => FaultKind::Io,
        "fail" => FaultKind::CompileFail,
        "die" => FaultKind::Die,
        "drop" => FaultKind::Drop,
        other => return Err(format!("bad fault kind `{other}` in `{raw}`")),
    };
    let (site_str, count) = match rest.rsplit_once('*') {
        Some((site, "inf")) => (site, None),
        Some((site, n)) => (
            site,
            Some(
                n.parse::<u64>()
                    .map_err(|_| format!("bad fault count `{n}` in `{raw}`"))?,
            ),
        ),
        None => (rest, Some(1)),
    };
    let site = parse_site(site_str, raw)?;
    let valid = matches!(
        (kind, &site),
        (
            FaultKind::Panic,
            Site::Job { .. } | Site::Seeded { .. } | Site::Compile { .. }
        ) | (
            FaultKind::Io,
            Site::Job { .. } | Site::Seeded { .. } | Site::Checkpoint { .. }
        ) | (FaultKind::CompileFail, Site::Compile { .. })
            | (FaultKind::Die, Site::Job { .. } | Site::Seeded { .. })
            | (FaultKind::Drop, Site::Conn { .. })
    );
    if !valid {
        return Err(format!(
            "fault kind `{kind_str}` cannot target site `{site_str}` in `{raw}`"
        ));
    }
    Ok(Rule {
        kind,
        site,
        count,
        spent: AtomicU64::new(0),
    })
}

fn parse_site(site: &str, raw: &str) -> Result<Site, String> {
    if let Some(rest) = site.strip_prefix("compile:") {
        return Ok(Site::Compile {
            target: wildcard(rest).map(str::to_string),
        });
    }
    if let Some(rest) = site.strip_prefix("checkpoint:") {
        let index = match wildcard(rest) {
            None => None,
            Some(n) => Some(
                n.parse::<u64>()
                    .map_err(|_| format!("bad checkpoint index `{n}` in `{raw}`"))?,
            ),
        };
        return Ok(Site::Checkpoint { index });
    }
    if let Some(rest) = site.strip_prefix("conn:") {
        let index = match wildcard(rest) {
            None => None,
            Some(n) => Some(
                n.parse::<u64>()
                    .map_err(|_| format!("bad conn index `{n}` in `{raw}`"))?,
            ),
        };
        return Ok(Site::Conn { index });
    }
    if let Some(rest) = site.strip_prefix("seeded#") {
        let modulus = rest
            .parse::<u64>()
            .map_err(|_| format!("bad seeded modulus `{rest}` in `{raw}`"))?;
        if modulus == 0 {
            return Err(format!("seeded modulus must be nonzero in `{raw}`"));
        }
        return Ok(Site::Seeded { modulus });
    }
    let (target, shard) = site
        .split_once('#')
        .ok_or_else(|| format!("bad fault site `{site}` in `{raw}`"))?;
    let shard = match wildcard(shard) {
        None => None,
        Some(s) => Some(
            s.parse::<u32>()
                .map_err(|_| format!("bad shard `{s}` in `{raw}`"))?,
        ),
    };
    Ok(Site::Job {
        target: wildcard(target).map(str::to_string),
        shard,
    })
}

fn wildcard(s: &str) -> Option<&str> {
    (s != "any").then_some(s)
}

/// Renders a caught panic payload as text (panics carry `&str` or
/// `String` payloads in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    // test-only: unwraps in this module assert test invariants.
    use super::*;

    #[test]
    fn job_rules_scope_by_attempt() {
        let p = FaultPlan::parse("panic@tcpdump#1*2", 9).unwrap();
        assert_eq!(p.fire_job("tcpdump", 1, 1), Some(FaultKind::Panic));
        assert_eq!(p.fire_job("tcpdump", 1, 2), Some(FaultKind::Panic));
        assert_eq!(p.fire_job("tcpdump", 1, 3), None, "retry 3 must succeed");
        assert_eq!(p.fire_job("tcpdump", 0, 1), None, "other shard");
        assert_eq!(p.fire_job("jq", 1, 1), None, "other target");
    }

    #[test]
    fn wildcards_and_io_kind() {
        let p = FaultPlan::parse("io@any#any*inf", 9).unwrap();
        assert_eq!(p.fire_job("x", 0, 1), Some(FaultKind::Io));
        assert_eq!(p.fire_job("y", 9, 40), Some(FaultKind::Io));

        let p = FaultPlan::parse("panic@tcpdump#any", 9).unwrap();
        assert_eq!(p.fire_job("tcpdump", 3, 1), Some(FaultKind::Panic));
        assert_eq!(p.fire_job("tcpdump", 3, 2), None, "default count is 1");
    }

    #[test]
    fn seeded_site_depends_on_campaign_seed() {
        let p = FaultPlan::parse("panic@seeded#3*inf", 1).unwrap();
        let fired: Vec<bool> = (0..32)
            .map(|s| p.fire_job("tcpdump", s, 1).is_some())
            .collect();
        assert!(fired.iter().any(|&b| b), "some shard must fire");
        assert!(!fired.iter().all(|&b| b), "not every shard fires");
        // A different campaign seed selects a different shard subset.
        let q = FaultPlan::parse("panic@seeded#3*inf", 2).unwrap();
        let fired_q: Vec<bool> = (0..32)
            .map(|s| q.fire_job("tcpdump", s, 1).is_some())
            .collect();
        assert_ne!(fired, fired_q);
    }

    #[test]
    fn compile_and_checkpoint_sites() {
        let p = FaultPlan::parse("fail@compile:jq*inf,panic@compile:mujs", 9).unwrap();
        assert_eq!(p.fire_compile("jq", 5), Some(FaultKind::CompileFail));
        assert_eq!(p.fire_compile("mujs", 1), Some(FaultKind::Panic));
        assert_eq!(p.fire_compile("mujs", 2), None);
        assert_eq!(p.fire_compile("tcpdump", 1), None);

        let p = FaultPlan::parse("io@checkpoint:3", 9).unwrap();
        assert!(!p.fire_checkpoint(2));
        assert!(p.fire_checkpoint(3));
        assert!(!p.fire_checkpoint(4));

        let p = FaultPlan::parse("io@checkpoint:any*2", 9).unwrap();
        assert!(p.fire_checkpoint(1));
        assert!(p.fire_checkpoint(7), "index is irrelevant for `any`");
        assert!(!p.fire_checkpoint(8), "budget of 2 exhausted");
    }

    #[test]
    fn conn_sites_fire_by_grant_sequence() {
        let p = FaultPlan::parse("drop@conn:2", 9).unwrap();
        assert!(!p.fire_conn(1));
        assert!(p.fire_conn(2));
        assert!(!p.fire_conn(3));

        let p = FaultPlan::parse("drop@conn:any*2", 9).unwrap();
        assert!(p.fire_conn(1));
        assert!(p.fire_conn(5), "index is irrelevant for `any`");
        assert!(!p.fire_conn(6), "budget of 2 exhausted");

        // die@ is a job-site kind and flows through fire_job like any
        // other; the in-process pool ignores it.
        let p = FaultPlan::parse("die@tcpdump#0", 9).unwrap();
        assert_eq!(p.fire_job("tcpdump", 0, 1), Some(FaultKind::Die));
        assert_eq!(p.fire_job("tcpdump", 0, 2), None, "default count is 1");
        assert!(!p.fire_conn(1), "no conn rule in the plan");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        for bad in [
            "",
            "panic",
            "zap@tcpdump#1",
            "panic@checkpoint:1",
            "fail@tcpdump#1",
            "io@compile:jq",
            "panic@tcpdump#x",
            "panic@tcpdump#1*many",
            "panic@seeded#0",
            "io@checkpoint:x",
            "panic@conn:1",
            "drop@tcpdump#0",
            "die@checkpoint:1",
            "drop@conn:x",
        ] {
            assert!(
                FaultPlan::parse(bad, 0).is_err(),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(s.as_ref()), "boom");
        let s: Box<dyn std::any::Any + Send> = Box::new("grown".to_string());
        assert_eq!(panic_message(s.as_ref()), "grown");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(panic_message(s.as_ref()), "non-string panic payload");
    }
}
