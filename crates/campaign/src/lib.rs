//! # campaign — parallel multi-target differential-fuzzing campaigns
//!
//! The paper's evaluation fuzzes 23 targets × 24 hours with CompDiff
//! attached; this crate is the orchestrator that makes that workload
//! practical: a work-stealing [`scheduler`] shards every target's budget
//! into (target × seed-slice) jobs across N worker threads, a shared
//! [`cache::BinaryCache`] compiles each target's ten differential binaries
//! (plus the fuzz binary) exactly once, a crash-resilient
//! [`state::CampaignState`] checkpoints each finished job to a JSONL file
//! so a killed campaign resumes where it stopped, and a
//! [`stats::CampaignStats`] aggregator dedups discrepancies campaign-wide
//! by [`compdiff::signature_of`].
//!
//! Campaigns are deterministic in their *results*: each job's fuzzing RNG
//! is seeded from `(campaign seed, target, shard)` only, so the deduped
//! signature set is identical at any worker count — completion order is
//! the only thing parallelism changes.
//!
//! ```
//! let report = campaign::run(&campaign::CampaignConfig {
//!     workers: 2,
//!     execs_per_target: 60,
//!     shards_per_target: 2,
//!     target_filter: Some(vec!["tcpdump".to_string()]),
//!     ..Default::default()
//! })
//! .unwrap();
//! assert_eq!(report.stats.jobs_done, 2);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod scheduler;
pub mod state;
pub mod stats;

pub use cache::{BinaryCache, CompiledTarget};
pub use scheduler::{execs_for_shard, job_seed, Job};
pub use state::{CampaignHeader, CampaignState, JobRecord, StateError, CHECKPOINT_FILE};
pub use stats::{CampaignStats, TargetStats};

use compdiff::DiffConfig;
use minc::FrontendError;
use minc_compile::CompilerImpl;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use targets::Target;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker threads.
    pub workers: usize,
    /// Fuzz-binary execution budget per target (split across shards).
    pub execs_per_target: u64,
    /// Seed shards per target; also the campaign's unit of checkpointing.
    pub shards_per_target: u32,
    /// Root RNG seed.
    pub seed: u64,
    /// Maximum fuzzed input length.
    pub max_input_len: usize,
    /// Differential-engine configuration (implementations, VM limits).
    pub diff_config: DiffConfig,
    /// Implementation used for the coverage-instrumented fuzz binary.
    pub fuzz_impl: CompilerImpl,
    /// Directory for `checkpoint.jsonl`; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from an existing checkpoint instead of starting fresh.
    pub resume: bool,
    /// Restrict the campaign to these catalog targets (default: all 23).
    pub target_filter: Option<Vec<String>>,
    /// Abort after this many *live* jobs finish — the test hook that
    /// simulates a mid-campaign kill.
    pub stop_after_jobs: Option<usize>,
    /// Suppress the live progress line.
    pub quiet: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workers: 4,
            execs_per_target: 2_000,
            shards_per_target: 4,
            seed: 0xCA3D,
            max_input_len: 64,
            diff_config: DiffConfig::default(),
            fuzz_impl: CompilerImpl::parse("clang-O1").expect("clang-O1 is a valid impl"),
            checkpoint_dir: None,
            resume: false,
            target_filter: None,
            stop_after_jobs: None,
            quiet: true,
        }
    }
}

/// Errors a campaign can fail with.
#[derive(Debug)]
pub enum CampaignError {
    /// A target failed to compile (catalog targets never should).
    Frontend(FrontendError),
    /// The checkpoint could not be created, read, or appended.
    State(StateError),
    /// The target filter matched nothing.
    UnknownTarget(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Frontend(e) => write!(f, "target compilation failed: {e}"),
            CampaignError::State(e) => write!(f, "{e}"),
            CampaignError::UnknownTarget(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<StateError> for CampaignError {
    fn from(e: StateError) -> Self {
        CampaignError::State(e)
    }
}

/// The result of [`run`].
#[derive(Debug)]
pub struct CampaignReport {
    /// Aggregated statistics (including checkpoint-replayed jobs).
    pub stats: CampaignStats,
    /// Wall-clock time of this process's portion of the campaign.
    pub elapsed: Duration,
    /// Binary-cache `(hits, misses)`; misses = compiles performed.
    pub cache: (u64, u64),
    /// Checkpoint file, if checkpointing was enabled.
    pub checkpoint: Option<PathBuf>,
    /// True if the campaign stopped early (`stop_after_jobs`).
    pub aborted: bool,
}

impl CampaignReport {
    /// The campaign-wide deduped discrepancy-signature set.
    pub fn signatures(&self) -> &BTreeSet<String> {
        &self.stats.signatures
    }

    /// The end-of-campaign summary.
    pub fn render_summary(&self) -> String {
        self.stats.render_summary(self.elapsed, self.cache)
    }
}

/// Runs a campaign to completion (or to `stop_after_jobs`).
///
/// # Errors
///
/// Fails if the target filter matches nothing, the checkpoint is
/// unusable ([`StateError`]), or a target does not compile.
pub fn run(cfg: &CampaignConfig) -> Result<CampaignReport, CampaignError> {
    let started = Instant::now();
    let selected: Vec<Target> = select_targets(cfg)?;
    let names: Vec<String> = selected.iter().map(|t| t.spec.name.to_string()).collect();

    let header = CampaignHeader {
        seed: cfg.seed,
        execs_per_target: cfg.execs_per_target,
        shards_per_target: cfg.shards_per_target,
        targets: names,
    };
    let mut state = match &cfg.checkpoint_dir {
        Some(dir) if cfg.resume => Some(CampaignState::resume(dir, &header)?),
        Some(dir) => Some(CampaignState::create(dir, &header)?),
        None => None,
    };

    let all_jobs: Vec<Job> = (0..selected.len())
        .flat_map(|t| {
            (0..cfg.shards_per_target).map(move |s| Job {
                target_index: t,
                shard: s,
            })
        })
        .collect();
    let mut stats = CampaignStats::new(cfg.workers.max(1), all_jobs.len());
    if let Some(st) = &state {
        for rec in st.done().values() {
            stats.absorb(None, rec);
        }
    }
    let pending: Vec<Job> = all_jobs
        .into_iter()
        .filter(|j| match &state {
            Some(st) => !st.is_done(selected[j.target_index].spec.name, j.shard),
            None => true,
        })
        .collect();

    let cache = BinaryCache::new();
    let mut aborted = false;
    let mut state_err: Option<StateError> = None;
    let mut live_done = 0usize;
    scheduler::run_pool(&selected, &cache, cfg, &pending, |out| {
        // Checkpoint first, aggregate second: a job is "done" only once
        // its record is durably on disk.
        if let Some(st) = state.as_mut() {
            if let Err(e) = st.record(out.record.clone()) {
                state_err = Some(e);
                return false;
            }
        }
        stats.absorb(Some(out.worker), &out.record);
        live_done += 1;
        if !cfg.quiet {
            eprintln!(
                "{} <- {}#{}",
                stats.progress_line(),
                out.record.target,
                out.record.shard
            );
        }
        match cfg.stop_after_jobs {
            Some(k) if live_done >= k => {
                aborted = true;
                false
            }
            _ => true,
        }
    })
    .map_err(CampaignError::Frontend)?;
    if let Some(e) = state_err {
        return Err(CampaignError::State(e));
    }

    Ok(CampaignReport {
        stats,
        elapsed: started.elapsed(),
        cache: cache.counters(),
        checkpoint: state.map(|s| s.path().to_path_buf()),
        aborted,
    })
}

fn select_targets(cfg: &CampaignConfig) -> Result<Vec<Target>, CampaignError> {
    let specs = targets::catalog();
    match &cfg.target_filter {
        None => Ok(specs.iter().map(targets::build).collect()),
        Some(filter) => {
            let mut out = Vec::new();
            for want in filter {
                let spec = specs.iter().find(|s| s.name == want).ok_or_else(|| {
                    let known: Vec<&str> = specs.iter().map(|s| s.name).collect();
                    CampaignError::UnknownTarget(format!(
                        "unknown target `{want}`; catalog: {}",
                        known.join(", ")
                    ))
                })?;
                out.push(targets::build(spec));
            }
            Ok(out)
        }
    }
}
