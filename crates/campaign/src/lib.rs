//! # campaign — parallel multi-target differential-fuzzing campaigns
//!
//! The paper's evaluation fuzzes 23 targets × 24 hours with CompDiff
//! attached; this crate is the orchestrator that makes that workload
//! practical: a work-stealing [`scheduler`] shards every target's budget
//! into (target × seed-slice) jobs across N worker threads, a shared
//! [`cache::BinaryCache`] compiles each target's ten differential binaries
//! (plus the fuzz binary) exactly once, a crash-resilient
//! [`state::CampaignState`] checkpoints each finished job to a JSONL file
//! so a killed campaign resumes where it stopped, and a
//! [`stats::CampaignStats`] aggregator dedups discrepancies campaign-wide
//! by [`compdiff::signature_of`].
//!
//! Campaigns are deterministic in their *results*: each job's fuzzing RNG
//! is seeded from `(campaign seed, target, shard)` only, so the deduped
//! signature set is identical at any worker count — completion order is
//! the only thing parallelism changes.
//!
//! Campaigns are also *fault-tolerant*: a panicking job or compile is
//! caught ([`scheduler`], [`cache`]) and becomes a structured
//! [`state::FailureRecord`]; failed jobs are retried with deterministic
//! backoff and repeatedly failing targets are quarantined
//! ([`policy`]); checkpoints are fsynced per record and survive
//! kill/resume including their failure history ([`state`]); and every
//! recovery path is exercisable on demand through the seeded
//! fault-injection harness ([`faults`]). A campaign with failing jobs
//! completes with a partial-results report instead of aborting.
//!
//! ```
//! let report = campaign::run(&campaign::CampaignConfig {
//!     workers: 2,
//!     execs_per_target: 60,
//!     shards_per_target: 2,
//!     target_filter: Some(vec!["tcpdump".to_string()]),
//!     ..Default::default()
//! })
//! .unwrap();
//! assert_eq!(report.stats.jobs_done, 2);
//! ```

#![warn(missing_docs)]

pub mod cache;
mod coordinator;
pub mod faults;
pub mod policy;
pub(crate) mod proto;
pub mod scheduler;
pub mod state;
pub mod stats;
pub mod telem;
pub mod worker;

pub use cache::{BinaryCache, CacheError, CompiledTarget};
pub use coordinator::resolve_worker_exe;
pub use faults::{FaultKind, FaultPlan};
pub use policy::{Disposition, FaultLedger, RetryPolicy};
pub use scheduler::{execs_for_shard, job_seed, retry_backoff, Decision, Job, JobResult};
pub use state::{
    CampaignHeader, CampaignState, FailureKind, FailureRecord, JobRecord, StateError,
    CHECKPOINT_FILE, LOCK_FILE,
};
pub use stats::{CampaignStats, TargetStats};
pub use telem::CampaignTelemetry;
pub use worker::{query_status, run_worker};

use compdiff::{DiffConfig, Json};
use minc_compile::CompilerImpl;
use std::collections::{BTreeMap, BTreeSet};
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use targets::{SharedSource, Target};
use telemetry::{JsonlRecorder, MonotonicClock, NoopRecorder, Telemetry, TestClock};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker threads.
    pub workers: usize,
    /// Fuzz-binary execution budget per target (split across shards).
    pub execs_per_target: u64,
    /// Seed shards per target; also the campaign's unit of checkpointing.
    pub shards_per_target: u32,
    /// Root RNG seed.
    pub seed: u64,
    /// Maximum fuzzed input length.
    pub max_input_len: usize,
    /// Differential-engine configuration (implementations, VM limits).
    pub diff_config: DiffConfig,
    /// Implementation used for the coverage-instrumented fuzz binary.
    pub fuzz_impl: CompilerImpl,
    /// Directory for `checkpoint.jsonl`; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from an existing checkpoint instead of starting fresh.
    pub resume: bool,
    /// Where the campaign's programs come from (default: the static
    /// 23-target catalog). Generated programs enter here — e.g.
    /// `targets::dir_source` over a `compdiff progen` output directory.
    pub source: SharedSource,
    /// Restrict the campaign to these source targets (default: all).
    pub target_filter: Option<Vec<String>>,
    /// Abort after this many *live* job attempts resolve (done or
    /// failed) — the test hook that simulates a mid-campaign kill at any
    /// job boundary, including failure boundaries.
    pub stop_after_jobs: Option<usize>,
    /// Re-runs granted to a failed job before it is abandoned.
    pub max_retries: u32,
    /// Cumulative failures after which a target is quarantined (its
    /// remaining shards are skipped and the campaign reports partial
    /// results).
    pub quarantine_after: u32,
    /// Deterministic fault-injection plan; `None` (the production
    /// default) reduces every injection point to one `Option` check.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Suppress the live progress line.
    pub quiet: bool,
    /// Stream telemetry events (JSONL, one `compdiff::json` object per
    /// line) to this path; `None` leaves event recording disabled.
    pub metrics_out: Option<PathBuf>,
    /// Emit a progress line to stderr every this many finished jobs;
    /// `0` disables periodic progress.
    pub progress_every: usize,
    /// Pin the telemetry clock to this fixed microsecond reading instead
    /// of wall time. With one worker this makes the event stream
    /// byte-identical across runs (the determinism test hook).
    pub fixed_clock_us: Option<u64>,
    /// Inputs per batched oracle sweep: each differential binary runs the
    /// whole batch before the next binary starts, and only inputs whose
    /// output digests disagree are bisected through the full per-input
    /// escalation path. `1` restores strict per-input interleaving.
    pub batch_size: usize,
    /// Run the sanitizer meta-oracle over every selected target after
    /// fuzzing finishes, publishing `sancheck.*` metrics (site counts,
    /// sanitizer false negatives/alarms, cross-impl verdict splits).
    pub sancheck: bool,
    /// Run the campaign as a coordinator over this many worker
    /// *processes* (the JSONL socket protocol; see DESIGN.md §17)
    /// instead of the in-process thread pool. `None` (the default) keeps
    /// the in-process path.
    pub workers_proc: Option<usize>,
    /// Worker executable the coordinator spawns; `None` resolves the
    /// `compdiff` binary next to the current executable.
    pub worker_exe: Option<PathBuf>,
    /// The textual fault-plan spec, carried alongside `fault_plan` so
    /// worker processes can re-parse it under the campaign seed
    /// (`Arc<FaultPlan>` does not cross a process boundary).
    pub fault_plan_spec: Option<String>,
    /// Milliseconds without a renewal after which a lease is reclaimed
    /// and its job re-queued; `0` disables expiry (coordinator mode).
    pub lease_timeout_ms: u64,
    /// Worker lease-renewal period in milliseconds (coordinator mode).
    pub renew_ms: u64,
    /// Write the coordinator's status-endpoint address (`host:port`
    /// plus a newline) to this file once it is listening.
    pub status_addr_out: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workers: 4,
            execs_per_target: 2_000,
            shards_per_target: 4,
            seed: 0xCA3D,
            max_input_len: 64,
            diff_config: DiffConfig::default(),
            fuzz_impl: CompilerImpl::parse("clang-O1").expect("clang-O1 is a valid impl"),
            checkpoint_dir: None,
            resume: false,
            source: SharedSource::default(),
            target_filter: None,
            stop_after_jobs: None,
            max_retries: 2,
            quarantine_after: 3,
            fault_plan: None,
            quiet: true,
            metrics_out: None,
            progress_every: 0,
            fixed_clock_us: None,
            batch_size: 16,
            sancheck: false,
            workers_proc: None,
            worker_exe: None,
            fault_plan_spec: None,
            lease_timeout_ms: 30_000,
            renew_ms: 500,
            status_addr_out: None,
        }
    }
}

/// Errors a campaign can fail with. A failing *job* is not among them:
/// compile errors, panics, and I/O faults inside jobs are handled by the
/// retry/quarantine machinery and reported as partial results.
#[derive(Debug)]
pub enum CampaignError {
    /// The checkpoint could not be created or read.
    State(StateError),
    /// The target filter matched nothing.
    UnknownTarget(String),
    /// The `metrics_out` stream could not be created.
    Metrics(std::io::Error),
    /// Invalid configuration (e.g. an unparseable fault-plan spec).
    Config(String),
    /// The coordinator/worker protocol failed (socket setup, worker
    /// spawn, or a malformed frame).
    Proto(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::State(e) => write!(f, "{e}"),
            CampaignError::UnknownTarget(m) => write!(f, "{m}"),
            CampaignError::Metrics(e) => write!(f, "cannot open metrics stream: {e}"),
            CampaignError::Config(m) => write!(f, "invalid campaign config: {m}"),
            CampaignError::Proto(m) => write!(f, "campaign protocol error: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<StateError> for CampaignError {
    fn from(e: StateError) -> Self {
        CampaignError::State(e)
    }
}

/// The result of [`run`].
#[derive(Debug)]
pub struct CampaignReport {
    /// Aggregated statistics (including checkpoint-replayed jobs).
    pub stats: CampaignStats,
    /// Wall-clock time of this process's portion of the campaign.
    pub elapsed: Duration,
    /// Binary-cache `(hits, misses)`; misses = compiles performed.
    pub cache: (u64, u64),
    /// Checkpoint file, if checkpointing was enabled.
    pub checkpoint: Option<PathBuf>,
    /// True if the campaign stopped early (`stop_after_jobs`).
    pub aborted: bool,
    /// True if checkpointing was disabled mid-campaign after a
    /// persistent append failure (the campaign itself kept running).
    pub checkpoint_degraded: bool,
    /// Final snapshot of the campaign's metric registry (always
    /// populated — aggregation runs even when the event stream is off).
    pub metrics: Json,
}

impl CampaignReport {
    /// The campaign-wide deduped discrepancy-signature set.
    pub fn signatures(&self) -> &BTreeSet<String> {
        &self.stats.signatures
    }

    /// The end-of-campaign summary, with the machine-readable metrics
    /// snapshot merged in as its last line.
    pub fn render_summary(&self) -> String {
        let mut s = self.stats.render_summary(self.elapsed, self.cache);
        s.push_str(&format!("metrics: {}\n", self.metrics.render()));
        s
    }
}

/// Runs a campaign to completion (or to `stop_after_jobs`): the
/// in-process thread pool by default, or a coordinator over
/// `workers_proc` worker processes when that field is set.
///
/// # Errors
///
/// Fails if the target filter matches nothing, the checkpoint is
/// unusable ([`StateError`]), the fault-plan spec does not parse, or —
/// in coordinator mode — the protocol breaks down
/// ([`CampaignError::Proto`]).
pub fn run(cfg: &CampaignConfig) -> Result<CampaignReport, CampaignError> {
    let mut cfg = cfg.clone();
    if cfg.fault_plan.is_none() {
        if let Some(spec) = &cfg.fault_plan_spec {
            let plan = FaultPlan::parse(spec, cfg.seed).map_err(CampaignError::Config)?;
            cfg.fault_plan = Some(Arc::new(plan));
        }
    }
    if cfg.workers_proc.is_some() {
        coordinator::run_procs(&cfg)
    } else {
        run_in_process(&cfg)
    }
}

/// The original single-process campaign: a work-stealing thread pool in
/// this process.
fn run_in_process(cfg: &CampaignConfig) -> Result<CampaignReport, CampaignError> {
    let started = Instant::now();
    let tel = build_telemetry(cfg)?;
    let started_us = tel.now_micros();
    let ctel = CampaignTelemetry::new(Arc::clone(&tel));
    let Prepared {
        selected,
        pending,
        state,
        stats,
        ledger,
        policy,
    } = prepare(cfg, &tel, &ctel, cfg.workers.max(1))?;

    let cache = BinaryCache::new();
    let mut handler = ResultHandler::new(cfg, &tel, &ctel, &selected, state, stats, ledger, policy);
    handler.started = started;
    let pool_outcome = scheduler::run_pool(&selected, &cache, cfg, &ctel, &pending, |result| {
        handler.on_result(result)
    });
    Ok(handler.finalize(
        &pool_outcome.swept,
        &selected,
        cache.counters(),
        cache.blocks_translated(),
        started_us,
    ))
}

/// Everything a campaign (either mode) sets up before jobs run.
pub(crate) struct Prepared {
    /// The selected targets, in schedule order.
    pub(crate) selected: Vec<Target>,
    /// Jobs still to run (checkpoint-replayed ones are filtered out).
    pub(crate) pending: Vec<Job>,
    /// The open checkpoint, if checkpointing is enabled.
    pub(crate) state: Option<CampaignState>,
    /// The aggregator, pre-loaded with any checkpoint-replayed jobs.
    pub(crate) stats: CampaignStats,
    /// The retry/quarantine ledger, pre-loaded from the checkpoint.
    pub(crate) ledger: FaultLedger,
    /// The retry policy in force.
    pub(crate) policy: RetryPolicy,
}

/// The shared campaign preamble: target selection, the pre-fuzz lint
/// pass, checkpoint open (create or resume), failure-history replay, and
/// the pending-job filter.
pub(crate) fn prepare(
    cfg: &CampaignConfig,
    tel: &Arc<Telemetry>,
    ctel: &CampaignTelemetry,
    workers: usize,
) -> Result<Prepared, CampaignError> {
    let selected: Vec<Target> = select_targets(cfg)?;
    let names: Vec<String> = selected.iter().map(|t| t.spec.name.to_string()).collect();

    // Pre-fuzz static pass: lint every selected target so the metrics
    // snapshot carries the static-channel evidence (`lint.findings.*`)
    // next to the dynamic divergence counters. Metrics only — no events —
    // so the event stream stays byte-identical run to run.
    let lint = staticheck_ir::UnstableLint::new();
    for t in &selected {
        let t0 = tel.now_micros();
        if let Ok(findings) = lint.run_source(&t.src) {
            ctel.record_lint(&findings, tel.now_micros().saturating_sub(t0));
        }
    }

    let header = CampaignHeader {
        seed: cfg.seed,
        execs_per_target: cfg.execs_per_target,
        shards_per_target: cfg.shards_per_target,
        targets: names,
    };
    let mut state = match &cfg.checkpoint_dir {
        Some(dir) if cfg.resume => Some(CampaignState::resume(dir, &header)?),
        Some(dir) => Some(CampaignState::create(dir, &header)?),
        None => None,
    };
    if let (Some(st), Some(plan)) = (state.as_mut(), &cfg.fault_plan) {
        st.set_faults(Arc::clone(plan));
    }

    let policy = RetryPolicy {
        max_retries: cfg.max_retries,
        quarantine_after: cfg.quarantine_after,
    };
    let mut ledger = FaultLedger::new();

    let all_jobs: Vec<Job> = (0..selected.len())
        .flat_map(|t| {
            (0..cfg.shards_per_target).map(move |s| Job {
                target_index: t,
                shard: s,
                attempt: 1,
            })
        })
        .collect();
    let mut stats = CampaignStats::new(workers, all_jobs.len());
    if let Some(st) = &state {
        for rec in st.done().values() {
            stats.absorb(None, rec);
        }
        // Replay the failure history through the same policy state
        // machine the live path uses: attempt counts, retry totals, and
        // the quarantine set come out exactly as the uninterrupted run
        // built them.
        for f in st.failures().to_vec() {
            stats.note_failure(&f.target);
            match ledger.note_failure(&policy, &f.target, f.shard, f.attempt) {
                Disposition::Retry { .. } => stats.note_retry(),
                Disposition::Quarantine => {
                    stats.note_quarantine(&f.target);
                    stats.note_failed_job();
                }
                Disposition::Exhausted | Disposition::AlreadyQuarantined => {
                    stats.note_failed_job();
                }
            }
        }
        ctel.targets_quarantined
            .set(ledger.quarantined.len() as u64);
    }
    let mut pending: Vec<Job> = Vec::new();
    for mut j in all_jobs {
        let name = selected[j.target_index].spec.name.as_str();
        if state.as_ref().is_some_and(|st| st.is_done(name, j.shard)) {
            continue;
        }
        if ledger.failed_jobs.contains(&(name.to_string(), j.shard)) {
            // Terminally failed before the kill: already counted via the
            // replay above; rescheduling it would diverge from the
            // uninterrupted run.
            continue;
        }
        if ledger.quarantined.contains(name) {
            stats.note_skipped(name, 1);
            continue;
        }
        j.attempt = ledger.prior_attempts(name, j.shard) + 1;
        pending.push(j);
    }

    Ok(Prepared {
        selected,
        pending,
        state,
        stats,
        ledger,
        policy,
    })
}

/// Canonical event order for coordinator-mode buffering: `(target
/// index, shard, done-after-failures flag, attempt, failure-before-
/// quarantine rank)`. A clean single-worker in-process run emits its
/// events in exactly this order already, so sorting buffered
/// coordinator events by this key reproduces that stream byte for byte.
pub(crate) type EventKey = (usize, u32, u8, u32, u8);

/// One buffered telemetry event: canonical sort key, event name, fields.
type BufferedEvent = (EventKey, &'static str, Vec<(&'static str, Json)>);

/// The campaign's per-result state machine, shared verbatim by the
/// in-process pool and the coordinator: checkpoint-then-aggregate,
/// event emission, retry/quarantine dispositions, and `stop_after_jobs`
/// accounting. The coordinator sets `buffer_events` so events can be
/// re-sorted into canonical order before hitting the recorder (results
/// arrive in socket order, which is not deterministic at N > 1).
pub(crate) struct ResultHandler<'a> {
    cfg: &'a CampaignConfig,
    tel: &'a Arc<Telemetry>,
    ctel: &'a CampaignTelemetry,
    policy: RetryPolicy,
    pub(crate) state: Option<CampaignState>,
    pub(crate) degraded: bool,
    pub(crate) stats: CampaignStats,
    pub(crate) ledger: FaultLedger,
    live_resolved: usize,
    pub(crate) aborted: bool,
    started: Instant,
    pub(crate) buffer_events: bool,
    buffered: Vec<BufferedEvent>,
    target_index_of: BTreeMap<String, usize>,
}

impl<'a> ResultHandler<'a> {
    #[allow(clippy::too_many_arguments)] // a constructor over `Prepared`'s parts
    pub(crate) fn new(
        cfg: &'a CampaignConfig,
        tel: &'a Arc<Telemetry>,
        ctel: &'a CampaignTelemetry,
        selected: &[Target],
        state: Option<CampaignState>,
        stats: CampaignStats,
        ledger: FaultLedger,
        policy: RetryPolicy,
    ) -> Self {
        ResultHandler {
            cfg,
            tel,
            ctel,
            policy,
            state,
            degraded: false,
            stats,
            ledger,
            live_resolved: 0,
            aborted: false,
            started: Instant::now(),
            buffer_events: false,
            buffered: Vec::new(),
            target_index_of: selected
                .iter()
                .enumerate()
                .map(|(i, t)| (t.spec.name.to_string(), i))
                .collect(),
        }
    }

    /// Emits (or buffers) one event.
    fn emit(&mut self, key: EventKey, name: &'static str, fields: Vec<(&'static str, Json)>) {
        if !self.tel.events_enabled() {
            return;
        }
        if self.buffer_events {
            self.buffered.push((key, name, fields));
        } else {
            self.tel.event(name, fields);
        }
    }

    /// Applies one resolved job attempt and returns the scheduler's next
    /// move. Exactly the in-process coordinator loop's body.
    pub(crate) fn on_result(&mut self, result: JobResult) -> Decision {
        let mut decision = Decision::Continue;
        match result {
            JobResult::Done(out) => {
                // Checkpoint first, aggregate second: a job is "done"
                // only once its record is durably on disk (or
                // checkpointing has been degraded away).
                persist(
                    &mut self.state,
                    &mut self.degraded,
                    self.ctel,
                    self.cfg.quiet,
                    Rec::Job(out.record.clone()),
                );
                self.stats.absorb(Some(out.worker), &out.record);
                let ti = self
                    .target_index_of
                    .get(&out.record.target)
                    .copied()
                    .unwrap_or(0);
                self.emit(
                    (ti, out.record.shard, 1, 0, 0),
                    "job",
                    vec![
                        ("target", Json::Str(out.record.target.clone())),
                        ("shard", Json::Int(i64::from(out.record.shard))),
                        ("worker", Json::Int(out.worker as i64)),
                        ("dur_us", Json::Int(out.dur_us as i64)),
                        ("execs", Json::Int(out.record.execs as i64)),
                        ("oracle_execs", Json::Int(out.record.oracle_execs as i64)),
                        ("divergent", Json::Int(out.record.divergent as i64)),
                        ("crashes", Json::Int(out.record.crashes as i64)),
                        ("signatures", Json::Int(out.record.signatures.len() as i64)),
                        ("pages_restored", Json::Int(out.vm.pages_restored as i64)),
                        (
                            "pages_materialized",
                            Json::Int(out.vm.pages_materialized as i64),
                        ),
                        (
                            "bulk_builtin_ops",
                            Json::Int(out.vm.bulk_builtin_ops as i64),
                        ),
                        (
                            "fallback_builtin_ops",
                            Json::Int(out.vm.fallback_builtin_ops as i64),
                        ),
                        ("block_exec", Json::Int(out.vm.block_exec as i64)),
                        ("interp_fallback", Json::Int(out.vm.interp_fallback as i64)),
                    ],
                );
                if !self.cfg.quiet {
                    eprintln!(
                        "{} <- {}#{}",
                        self.stats.progress_line(),
                        out.record.target,
                        out.record.shard
                    );
                }
            }
            JobResult::Failed(f) => {
                self.stats.note_failure(&f.target);
                if f.kind == FailureKind::Panic {
                    self.ctel.worker_panics.inc();
                }
                persist(
                    &mut self.state,
                    &mut self.degraded,
                    self.ctel,
                    self.cfg.quiet,
                    Rec::Fail(FailureRecord {
                        target: f.target.clone(),
                        shard: f.job.shard,
                        attempt: f.job.attempt,
                        kind: f.kind,
                        message: f.message.clone(),
                    }),
                );
                let disposition =
                    self.ledger
                        .note_failure(&self.policy, &f.target, f.job.shard, f.job.attempt);
                self.emit(
                    (f.job.target_index, f.job.shard, 0, f.job.attempt, 0),
                    "failure",
                    vec![
                        ("target", Json::Str(f.target.clone())),
                        ("shard", Json::Int(i64::from(f.job.shard))),
                        ("attempt", Json::Int(i64::from(f.job.attempt))),
                        ("kind", Json::Str(f.kind.to_string())),
                        ("worker", Json::Int(f.worker as i64)),
                        ("message", Json::Str(f.message.clone())),
                    ],
                );
                if !self.cfg.quiet {
                    eprintln!(
                        "{} !! {}#{} attempt {} failed ({}): {}",
                        self.stats.progress_line(),
                        f.target,
                        f.job.shard,
                        f.job.attempt,
                        f.kind,
                        f.message
                    );
                }
                match disposition {
                    Disposition::Retry { next_attempt } => {
                        self.stats.note_retry();
                        self.ctel.job_retries.inc();
                        decision = Decision::Retry(Job {
                            target_index: f.job.target_index,
                            shard: f.job.shard,
                            attempt: next_attempt,
                        });
                    }
                    Disposition::Quarantine => {
                        self.stats.note_failed_job();
                        self.stats.note_quarantine(&f.target);
                        self.ctel
                            .targets_quarantined
                            .set(self.ledger.quarantined.len() as u64);
                        let failures = self
                            .ledger
                            .target_failures
                            .get(&f.target)
                            .copied()
                            .unwrap_or(0);
                        self.emit(
                            (f.job.target_index, f.job.shard, 0, f.job.attempt, 1),
                            "quarantine",
                            vec![
                                ("target", Json::Str(f.target.clone())),
                                ("failures", Json::Int(i64::from(failures))),
                            ],
                        );
                        if !self.cfg.quiet {
                            eprintln!("quarantined {} after repeated failures", f.target);
                        }
                        decision = Decision::Quarantine {
                            target_index: f.job.target_index,
                        };
                    }
                    Disposition::Exhausted | Disposition::AlreadyQuarantined => {
                        self.stats.note_failed_job();
                    }
                }
            }
        }
        self.live_resolved += 1;
        if self.cfg.progress_every > 0 && self.live_resolved.is_multiple_of(self.cfg.progress_every)
        {
            let secs = self.started.elapsed().as_secs_f64().max(1e-9);
            eprintln!(
                "{} [{:.0} execs/sec]",
                self.stats.progress_line(),
                self.stats.execs as f64 / secs
            );
        }
        match self.cfg.stop_after_jobs {
            Some(k) if self.live_resolved >= k => {
                self.aborted = true;
                Decision::Stop
            }
            _ => decision,
        }
    }

    /// The shared campaign epilogue: quarantine-swept accounting, the
    /// post-fuzz sanitizer audit, the final metric readings, buffered
    /// events in canonical order, the metrics snapshot event, and the
    /// report. Under a fixed clock, `elapsed` derives from the telemetry
    /// clock so the report renders byte-identically across runs and
    /// modes.
    pub(crate) fn finalize(
        mut self,
        swept: &[Job],
        selected: &[Target],
        cache: (u64, u64),
        blocks_translated: u64,
        started_us: u64,
    ) -> CampaignReport {
        for j in swept {
            self.stats
                .note_skipped(&selected[j.target_index].spec.name, 1);
        }

        // Post-fuzz sanitizer audit: run the meta-oracle over every
        // selected target so the metrics snapshot carries the
        // sanitizer-trust evidence (`sancheck.*`) next to the divergence
        // counters. Like the pre-fuzz lint this is metrics-only — no
        // events — so the event stream stays byte-identical run to run.
        if self.cfg.sancheck {
            let scfg = sancheck::SancheckConfig {
                vm: self.cfg.diff_config.vm.clone(),
                ..sancheck::SancheckConfig::default()
            };
            for t in selected {
                let t0 = self.tel.now_micros();
                if let Ok(report) = sancheck::check_source(&t.src, &scfg) {
                    self.ctel
                        .record_sancheck(&report, self.tel.now_micros().saturating_sub(t0));
                }
            }
        }

        self.ctel.record_cache(cache);
        self.ctel.record_blocks_translated(blocks_translated);
        self.ctel.record_execs_per_sec(
            self.stats.execs,
            self.tel.now_micros().saturating_sub(started_us),
        );
        let mut buffered = std::mem::take(&mut self.buffered);
        buffered.sort_by_key(|e| e.0);
        for (_, name, fields) in buffered {
            self.tel.event(name, fields);
        }
        let metrics = self.tel.registry().snapshot();
        self.tel
            .event("metrics", vec![("metrics", metrics.clone())]);
        self.tel.flush();

        let elapsed = if self.cfg.fixed_clock_us.is_some() {
            Duration::from_micros(self.tel.now_micros().saturating_sub(started_us))
        } else {
            self.started.elapsed()
        };
        CampaignReport {
            stats: self.stats,
            elapsed,
            cache,
            checkpoint: self.state.map(|s| s.path().to_path_buf()),
            aborted: self.aborted,
            checkpoint_degraded: self.degraded,
            metrics,
        }
    }
}

/// A checkpointable record, job or failure, for [`persist`].
enum Rec {
    Job(JobRecord),
    Fail(FailureRecord),
}

fn append_rec(st: &mut CampaignState, rec: &Rec) -> Result<(), StateError> {
    match rec {
        Rec::Job(r) => st.append_job(r.clone()),
        Rec::Fail(r) => st.append_failure(r.clone()),
    }
}

/// Appends one record with the repair-then-degrade policy: a failed
/// append is repaired (truncating any partial write) and retried once;
/// if the retry or the fsync also fails, checkpointing is disabled for
/// the rest of the campaign (`degraded`) and the campaign carries on —
/// durability is best-effort, forward progress is not. This is what
/// turns a flaky checkpoint disk into a degraded report instead of an
/// abort or a hang.
fn persist(
    state: &mut Option<CampaignState>,
    degraded: &mut bool,
    ctel: &CampaignTelemetry,
    quiet: bool,
    rec: Rec,
) {
    if *degraded {
        return;
    }
    let Some(st) = state.as_mut() else { return };
    let t0 = ctel.tel.now_micros();
    let mut result = append_rec(st, &rec);
    if let Err(e) = &result {
        ctel.checkpoint_errors.inc();
        if !quiet {
            eprintln!("checkpoint append failed ({e}); repairing and retrying");
        }
        result = st.repair().and_then(|()| append_rec(st, &rec));
    }
    let synced = result.and_then(|()| {
        ctel.checkpoint_write_us
            .record(ctel.tel.now_micros().saturating_sub(t0));
        let t1 = ctel.tel.now_micros();
        st.sync()?;
        ctel.checkpoint_sync_us
            .record(ctel.tel.now_micros().saturating_sub(t1));
        Ok(())
    });
    if let Err(e) = synced {
        ctel.checkpoint_errors.inc();
        *degraded = true;
        if !quiet {
            eprintln!("checkpointing disabled for the rest of the campaign: {e}");
        }
    }
}

/// Assembles the campaign's [`Telemetry`] from the config: a JSONL
/// recorder when `metrics_out` is set (otherwise no-op; the registry
/// aggregates either way), over a monotonic or pinned test clock.
fn build_telemetry(cfg: &CampaignConfig) -> Result<Arc<Telemetry>, CampaignError> {
    let tel = match (&cfg.metrics_out, cfg.fixed_clock_us) {
        (Some(path), clock) => {
            let file = File::create(path).map_err(CampaignError::Metrics)?;
            let rec = JsonlRecorder::new(BufWriter::new(file));
            match clock {
                Some(t) => Telemetry::new(TestClock::fixed(t), rec),
                None => Telemetry::new(MonotonicClock::new(), rec),
            }
        }
        (None, Some(t)) => Telemetry::new(TestClock::fixed(t), NoopRecorder),
        (None, None) => Telemetry::new(MonotonicClock::new(), NoopRecorder),
    };
    Ok(tel)
}

fn select_targets(cfg: &CampaignConfig) -> Result<Vec<Target>, CampaignError> {
    let built = cfg.source.get().targets();
    match &cfg.target_filter {
        None => Ok(built),
        Some(filter) => {
            let mut out = Vec::new();
            for want in filter {
                let t = built.iter().find(|t| t.spec.name == *want).ok_or_else(|| {
                    let known: Vec<&str> = built.iter().map(|t| t.spec.name.as_str()).collect();
                    CampaignError::UnknownTarget(format!(
                        "unknown target `{want}`; {}: {}",
                        cfg.source.get().label(),
                        known.join(", ")
                    ))
                })?;
                out.push(t.clone());
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    // test-only: unwraps in this module assert test invariants.
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("compdiff-telem-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The tentpole acceptance test: one worker plus a pinned test clock
    /// makes the `--metrics-out` stream byte-identical across runs, every
    /// line parses with `compdiff::json`, and the final line is the
    /// metrics snapshot.
    #[test]
    fn metrics_stream_is_deterministic() {
        let dir = temp_dir("determinism");
        let run_once = |path: PathBuf| {
            let report = run(&CampaignConfig {
                workers: 1,
                execs_per_target: 40,
                shards_per_target: 2,
                target_filter: Some(vec!["tcpdump".to_string()]),
                metrics_out: Some(path.clone()),
                fixed_clock_us: Some(0),
                ..Default::default()
            })
            .unwrap();
            (std::fs::read_to_string(path).unwrap(), report)
        };
        let (first, report) = run_once(dir.join("a.jsonl"));
        let (second, _) = run_once(dir.join("b.jsonl"));
        assert_eq!(first, second, "same seed + fixed clock => identical stream");

        let lines: Vec<&str> = first.lines().collect();
        assert!(lines.len() >= 3, "expected job events plus snapshot");
        for line in &lines {
            Json::parse(line).unwrap_or_else(|e| panic!("bad event line {line}: {e}"));
        }
        let job_events = lines
            .iter()
            .filter(|l| Json::parse(l).unwrap().get("ev").and_then(Json::as_str) == Some("job"))
            .count();
        assert_eq!(job_events, 2, "one event per job");
        let last = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("ev").and_then(Json::as_str), Some("metrics"));
        let counters = last.get("metrics").and_then(|m| m.get("counters")).unwrap();
        assert_eq!(
            counters.get("fuzz.execs").and_then(Json::as_u64),
            Some(report.stats.execs),
            "registry agrees with the aggregator"
        );
        assert_eq!(
            counters.get("campaign.jobs_done").and_then(Json::as_u64),
            Some(2)
        );

        // The snapshot is merged into the human summary too.
        assert!(report.render_summary().contains("metrics: {"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Disabled telemetry still aggregates: no stream, but the report
    /// carries a populated snapshot.
    #[test]
    fn disabled_telemetry_still_snapshots() {
        let report = run(&CampaignConfig {
            workers: 1,
            execs_per_target: 20,
            shards_per_target: 1,
            target_filter: Some(vec!["tcpdump".to_string()]),
            ..Default::default()
        })
        .unwrap();
        let counters = report.metrics.get("counters").unwrap();
        assert_eq!(
            counters.get("fuzz.execs").and_then(Json::as_u64),
            Some(report.stats.execs)
        );
        assert!(
            counters.get("diff.runs").and_then(Json::as_u64).unwrap() > 0,
            "oracle ran"
        );
    }
}
