//! Retry/quarantine policy: what happens after a job attempt fails.
//!
//! The policy is deliberately a pure, replayable state machine: the
//! campaign loop feeds every failure into [`FaultLedger::note_failure`]
//! as it happens, and the resume path feeds the checkpoint's replayed
//! [`FailureRecord`](crate::state::FailureRecord)s through the *same*
//! function in the *same* order — so a killed-and-resumed campaign
//! reconstructs attempt counts, per-target failure counts, and the
//! quarantine set exactly as the uninterrupted run built them.
//!
//! The policy itself: a failed attempt is retried (with deterministic,
//! schedule-position backoff — see
//! [`retry_backoff`](crate::scheduler::retry_backoff)) until the job has
//! failed `max_retries + 1` times, at which point it is abandoned.
//! Independently, every failure counts against the job's *target*; once
//! a target accumulates `quarantine_after` failures it is quarantined —
//! its queued shards are dropped and the campaign completes with a
//! partial-results report instead of burning its budget on a degenerate
//! target.

use std::collections::{BTreeMap, BTreeSet};

/// The campaign's failure-handling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-runs granted to a failed job before it is abandoned (so a job
    /// is attempted at most `max_retries + 1` times).
    pub max_retries: u32,
    /// Cumulative failures (across all shards and attempts) after which
    /// a target is quarantined.
    pub quarantine_after: u32,
}

/// What the policy decided for one failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Re-run the job as attempt `next_attempt`.
    Retry {
        /// The attempt number the re-run will carry.
        next_attempt: u32,
    },
    /// The job exhausted its retry budget; it is abandoned.
    Exhausted,
    /// This failure pushed the target over `quarantine_after`: the job
    /// is abandoned and the target's queued shards must be dropped.
    Quarantine,
    /// The target was already quarantined (an in-flight straggler on a
    /// parallel campaign); the job is abandoned without a retry.
    AlreadyQuarantined,
}

impl Disposition {
    /// True if the job is finished (failed) rather than retried.
    pub fn is_terminal(self) -> bool {
        !matches!(self, Disposition::Retry { .. })
    }
}

/// The replayable failure state of one campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLedger {
    /// Highest failed attempt per `(target, shard)` job.
    pub attempts: BTreeMap<(String, u32), u32>,
    /// Cumulative failures per target.
    pub target_failures: BTreeMap<String, u32>,
    /// Targets over the quarantine threshold.
    pub quarantined: BTreeSet<String>,
    /// Jobs resolved as failed (exhausted or quarantined mid-attempt) —
    /// terminal, so resume must not reschedule them.
    pub failed_jobs: BTreeSet<(String, u32)>,
}

impl FaultLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        FaultLedger::default()
    }

    /// Folds in one failed attempt and returns the policy's decision.
    /// Call in failure order — live from the scheduler or replayed from
    /// a checkpoint; both walks produce identical ledgers.
    pub fn note_failure(
        &mut self,
        policy: &RetryPolicy,
        target: &str,
        shard: u32,
        attempt: u32,
    ) -> Disposition {
        let a = self
            .attempts
            .entry((target.to_string(), shard))
            .or_insert(0);
        *a = (*a).max(attempt);
        if self.quarantined.contains(target) {
            self.failed_jobs.insert((target.to_string(), shard));
            return Disposition::AlreadyQuarantined;
        }
        let tf = self.target_failures.entry(target.to_string()).or_insert(0);
        *tf += 1;
        if *tf >= policy.quarantine_after {
            self.quarantined.insert(target.to_string());
            self.failed_jobs.insert((target.to_string(), shard));
            return Disposition::Quarantine;
        }
        if attempt <= policy.max_retries {
            Disposition::Retry {
                next_attempt: attempt + 1,
            }
        } else {
            self.failed_jobs.insert((target.to_string(), shard));
            Disposition::Exhausted
        }
    }

    /// Highest failed attempt recorded for a job (0 = never failed).
    pub fn prior_attempts(&self, target: &str, shard: u32) -> u32 {
        self.attempts
            .get(&(target.to_string(), shard))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    // test-only: unwraps in this module assert test invariants.
    use super::*;

    const POLICY: RetryPolicy = RetryPolicy {
        max_retries: 2,
        quarantine_after: 4,
    };

    #[test]
    fn retries_then_exhausts() {
        let mut l = FaultLedger::new();
        assert_eq!(
            l.note_failure(&POLICY, "t", 0, 1),
            Disposition::Retry { next_attempt: 2 }
        );
        assert_eq!(
            l.note_failure(&POLICY, "t", 0, 2),
            Disposition::Retry { next_attempt: 3 }
        );
        assert_eq!(l.note_failure(&POLICY, "t", 0, 3), Disposition::Exhausted);
        assert!(l.failed_jobs.contains(&("t".to_string(), 0)));
        assert_eq!(l.prior_attempts("t", 0), 3);
        assert_eq!(l.prior_attempts("t", 1), 0);
    }

    #[test]
    fn quarantine_crosses_shards_and_wins_over_retry() {
        let mut l = FaultLedger::new();
        l.note_failure(&POLICY, "t", 0, 1);
        l.note_failure(&POLICY, "t", 1, 1);
        l.note_failure(&POLICY, "t", 2, 1);
        // Fourth failure anywhere in the target quarantines it, even
        // though this job still had retry budget.
        assert_eq!(l.note_failure(&POLICY, "t", 3, 1), Disposition::Quarantine);
        assert!(l.quarantined.contains("t"));
        // Stragglers resolve without retries and without re-counting.
        assert_eq!(
            l.note_failure(&POLICY, "t", 4, 1),
            Disposition::AlreadyQuarantined
        );
        assert_eq!(l.target_failures["t"], 4, "post-quarantine not counted");
        // Other targets are untouched.
        assert_eq!(
            l.note_failure(&POLICY, "u", 0, 1),
            Disposition::Retry { next_attempt: 2 }
        );
    }

    /// The resume guarantee: replaying the same failure sequence through
    /// a fresh ledger reconstructs the exact same state.
    #[test]
    fn replay_reconstructs_identical_ledger() {
        let seq = [
            ("a", 0u32, 1u32),
            ("b", 1, 1),
            ("a", 0, 2),
            ("a", 1, 1),
            ("a", 0, 3),
            ("a", 2, 1),
            ("b", 1, 2),
        ];
        let mut live = FaultLedger::new();
        for (t, s, a) in seq {
            live.note_failure(&POLICY, t, s, a);
        }
        let mut replayed = FaultLedger::new();
        for (t, s, a) in seq {
            replayed.note_failure(&POLICY, t, s, a);
        }
        assert_eq!(live, replayed);
    }
}
