//! The coordinator/worker wire protocol: line-delimited JSON frames
//! over a local TCP socket (see DESIGN.md §17).
//!
//! Every frame is one `compdiff::Json` object on one line, tagged with a
//! `"t"` field. The conversation:
//!
//! ```text
//! worker → hello {pid}                 coordinator → config {campaign...}
//! worker → lease_req                   coordinator → lease {lease, target, shard, attempt}
//! worker → renew {lease}               (no reply; refreshes the expiry clock)
//! worker → done {lease, record, ...}   coordinator → ack
//! worker → failed {lease, kind, ...}   coordinator → ack
//! (campaign drained)                   coordinator → shutdown
//! worker → bye {cache counters, metrics}, closes
//! anyone → status                      coordinator → status {progress...}, closes
//! ```
//!
//! The config frame carries everything a worker needs to rebuild its
//! `CampaignConfig` and target set; targets travel as (name, magic, src,
//! hex seeds) and are recompiled by the worker's own `BinaryCache`.
//! `DiffConfig::filters` does not cross the wire — the CLI cannot set
//! filters, so campaign workers always run with the default (empty)
//! filter set, same as the in-process path.

use crate::{CampaignConfig, FailureKind, JobRecord};
use compdiff::Json;
use minc_compile::CompilerImpl;
use minc_vm::{SessionStats, VmMode};
use std::io::{BufRead, Write};
use targets::{Target, TargetSpec};

/// Writes one frame: compact JSON, newline, flush.
pub(crate) fn write_frame(w: &mut impl Write, v: &Json) -> std::io::Result<()> {
    writeln!(w, "{}", v.render())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` is a clean EOF (peer closed).
pub(crate) fn read_frame(r: &mut impl BufRead) -> std::io::Result<Option<Json>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    Json::parse(line.trim_end())
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// The frame's `"t"` tag.
pub(crate) fn frame_type(v: &Json) -> Option<&str> {
    v.get("t").and_then(Json::as_str)
}

/// A one-field frame: `{"t": tag}`.
pub(crate) fn tagged(tag: &str) -> Json {
    Json::obj(vec![("t", Json::Str(tag.to_string()))])
}

pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

pub(crate) fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex string `{s}`"));
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|_| format!("bad hex string `{s}`"))
        })
        .collect()
}

/// Serializes the campaign parameters plus the selected targets into
/// the config frame the coordinator sends after `hello`.
pub(crate) fn config_frame(cfg: &CampaignConfig, targets: &[Target]) -> Json {
    let targets_json: Vec<Json> = targets
        .iter()
        .map(|t| {
            Json::obj(vec![
                ("name", Json::Str(t.spec.name.clone())),
                (
                    "magic",
                    Json::Array(vec![
                        Json::Int(i64::from(t.spec.magic[0])),
                        Json::Int(i64::from(t.spec.magic[1])),
                    ]),
                ),
                ("src", Json::Str(t.src.clone())),
                (
                    "seeds",
                    Json::Array(t.seeds.iter().map(|s| Json::Str(hex_encode(s))).collect()),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("t", Json::Str("config".to_string())),
        ("seed", Json::Int(cfg.seed as i64)),
        ("execs_per_target", Json::Int(cfg.execs_per_target as i64)),
        ("shards", Json::Int(i64::from(cfg.shards_per_target))),
        ("max_input_len", Json::Int(cfg.max_input_len as i64)),
        ("batch_size", Json::Int(cfg.batch_size as i64)),
        ("fuzz_impl", Json::Str(cfg.fuzz_impl.to_string())),
        ("vm_mode", Json::Str(cfg.diff_config.vm.mode.to_string())),
        (
            "step_limit",
            Json::Int(cfg.diff_config.vm.step_limit as i64),
        ),
        (
            "max_frames",
            Json::Int(cfg.diff_config.vm.max_frames as i64),
        ),
        (
            "heap_limit",
            Json::Int(cfg.diff_config.vm.heap_limit as i64),
        ),
        (
            "timeout_escalations",
            Json::Int(i64::from(cfg.diff_config.timeout_escalations)),
        ),
        (
            "fixed_clock_us",
            match cfg.fixed_clock_us {
                Some(t) => Json::Int(t as i64),
                None => Json::Null,
            },
        ),
        (
            "fault_plan",
            match &cfg.fault_plan_spec {
                Some(spec) => Json::Str(spec.clone()),
                None => Json::Null,
            },
        ),
        ("renew_ms", Json::Int(cfg.renew_ms as i64)),
        ("targets", Json::Array(targets_json)),
    ])
}

/// Rebuilds the worker-side `CampaignConfig` and target set from a
/// config frame. The reconstructed `Target`s carry wire placeholders for
/// the catalog-only metadata (`input_type`, `version`, `bugs`) — the
/// campaign path compiles from `src` and never reads those fields.
pub(crate) fn parse_config(v: &Json) -> Result<(CampaignConfig, Vec<Target>), String> {
    let int = |k: &str| {
        v.get(k)
            .and_then(Json::as_i64)
            .ok_or(format!("config missing {k}"))
    };
    let mut cfg = CampaignConfig {
        seed: int("seed")? as u64,
        execs_per_target: int("execs_per_target")? as u64,
        shards_per_target: u32::try_from(int("shards")?).map_err(|_| "shards out of range")?,
        max_input_len: usize::try_from(int("max_input_len")?)
            .map_err(|_| "max_input_len out of range")?,
        batch_size: usize::try_from(int("batch_size")?).map_err(|_| "batch_size out of range")?,
        renew_ms: int("renew_ms")? as u64,
        ..CampaignConfig::default()
    };
    let fuzz_impl = v
        .get("fuzz_impl")
        .and_then(Json::as_str)
        .ok_or("config missing fuzz_impl")?;
    cfg.fuzz_impl =
        CompilerImpl::parse(fuzz_impl).ok_or(format!("unknown fuzz_impl `{fuzz_impl}`"))?;
    let mode = v
        .get("vm_mode")
        .and_then(Json::as_str)
        .ok_or("config missing vm_mode")?;
    cfg.diff_config.vm.mode = VmMode::parse(mode).ok_or(format!("unknown vm_mode `{mode}`"))?;
    cfg.diff_config.vm.step_limit = int("step_limit")? as u64;
    cfg.diff_config.vm.max_frames =
        usize::try_from(int("max_frames")?).map_err(|_| "max_frames out of range")?;
    cfg.diff_config.vm.heap_limit = int("heap_limit")? as u64;
    cfg.diff_config.timeout_escalations =
        u32::try_from(int("timeout_escalations")?).map_err(|_| "timeout_escalations range")?;
    cfg.fixed_clock_us = match v.get("fixed_clock_us") {
        Some(Json::Null) | None => None,
        Some(t) => Some(t.as_i64().ok_or("bad fixed_clock_us")? as u64),
    };
    cfg.fault_plan_spec = match v.get("fault_plan") {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    };

    let mut targets = Vec::new();
    for t in v
        .get("targets")
        .and_then(Json::as_array)
        .ok_or("config missing targets")?
    {
        let name = t
            .get("name")
            .and_then(Json::as_str)
            .ok_or("target missing name")?
            .to_string();
        let magic_arr = t
            .get("magic")
            .and_then(Json::as_array)
            .ok_or("target missing magic")?;
        let byte = |i: usize| {
            magic_arr
                .get(i)
                .and_then(Json::as_u64)
                .and_then(|b| u8::try_from(b).ok())
                .ok_or("bad magic byte")
        };
        let magic = [byte(0)?, byte(1)?];
        let src = t
            .get("src")
            .and_then(Json::as_str)
            .ok_or("target missing src")?
            .to_string();
        let seeds = t
            .get("seeds")
            .and_then(Json::as_array)
            .ok_or("target missing seeds")?
            .iter()
            .map(|s| hex_decode(s.as_str().ok_or("non-string seed")?))
            .collect::<Result<Vec<_>, _>>()?;
        targets.push(Target {
            spec: TargetSpec {
                name,
                input_type: "wire",
                version: "wire",
                magic,
                bugs: Vec::new(),
            },
            src,
            seeds,
        });
    }
    Ok((cfg, targets))
}

/// Serializes one job's VM-session statistics for the `done` frame.
pub(crate) fn vm_to_json(vm: &SessionStats) -> Json {
    Json::obj(vec![
        ("runs", Json::Int(vm.runs as i64)),
        ("pages_restored", Json::Int(vm.pages_restored as i64)),
        (
            "pages_materialized",
            Json::Int(vm.pages_materialized as i64),
        ),
        ("bulk_builtin_ops", Json::Int(vm.bulk_builtin_ops as i64)),
        (
            "fallback_builtin_ops",
            Json::Int(vm.fallback_builtin_ops as i64),
        ),
        ("poisoned_rebuilds", Json::Int(vm.poisoned_rebuilds as i64)),
        ("blocks_translated", Json::Int(vm.blocks_translated as i64)),
        ("block_cache_hits", Json::Int(vm.block_cache_hits as i64)),
        ("block_exec", Json::Int(vm.block_exec as i64)),
        ("interp_fallback", Json::Int(vm.interp_fallback as i64)),
        ("loader_skips", Json::Int(vm.loader_skips as i64)),
    ])
}

/// Reads the VM statistics back out of a `done` frame.
pub(crate) fn vm_from_json(v: &Json) -> SessionStats {
    let u = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    SessionStats {
        runs: u("runs"),
        pages_restored: u("pages_restored"),
        pages_materialized: u("pages_materialized"),
        bulk_builtin_ops: u("bulk_builtin_ops"),
        fallback_builtin_ops: u("fallback_builtin_ops"),
        poisoned_rebuilds: u("poisoned_rebuilds"),
        blocks_translated: u("blocks_translated"),
        block_cache_hits: u("block_cache_hits"),
        block_exec: u("block_exec"),
        interp_fallback: u("interp_fallback"),
        loader_skips: u("loader_skips"),
    }
}

/// The coordinator's lease grant.
pub(crate) fn lease_frame(lease: u64, job: crate::Job) -> Json {
    Json::obj(vec![
        ("t", Json::Str("lease".to_string())),
        ("lease", Json::Int(lease as i64)),
        ("target", Json::Int(job.target_index as i64)),
        ("shard", Json::Int(i64::from(job.shard))),
        ("attempt", Json::Int(i64::from(job.attempt))),
    ])
}

/// The worker's successful-job report.
pub(crate) fn done_frame(
    lease: u64,
    record: &JobRecord,
    dur_us: u64,
    vm: &SessionStats,
    metrics: Json,
) -> Json {
    Json::obj(vec![
        ("t", Json::Str("done".to_string())),
        ("lease", Json::Int(lease as i64)),
        ("record", record.to_json()),
        ("dur_us", Json::Int(dur_us as i64)),
        ("vm", vm_to_json(vm)),
        ("metrics", metrics),
    ])
}

/// The worker's failed-attempt report.
pub(crate) fn failed_frame(
    lease: u64,
    kind: FailureKind,
    message: &str,
    dur_us: u64,
    metrics: Json,
) -> Json {
    Json::obj(vec![
        ("t", Json::Str("failed".to_string())),
        ("lease", Json::Int(lease as i64)),
        ("kind", Json::Str(kind.as_str().to_string())),
        ("message", Json::Str(message.to_string())),
        ("dur_us", Json::Int(dur_us as i64)),
        ("metrics", metrics),
    ])
}

#[cfg(test)]
mod tests {
    // test-only: unwraps in this module assert test invariants.
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_pipe() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &tagged("hello")).unwrap();
        write_frame(&mut buf, &tagged("ack")).unwrap();
        let mut r = std::io::BufReader::new(buf.as_slice());
        let first = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(frame_type(&first), Some("hello"));
        let second = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(frame_type(&second), Some("ack"));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn config_frame_roundtrips_parameters_and_targets() {
        let mut cfg = CampaignConfig {
            seed: u64::MAX - 3, // exercises the i64 bit-cast
            execs_per_target: 777,
            shards_per_target: 3,
            max_input_len: 48,
            batch_size: 8,
            fault_plan_spec: Some("die@tcpdump#0".to_string()),
            fixed_clock_us: Some(5),
            renew_ms: 250,
            ..CampaignConfig::default()
        };
        cfg.diff_config.vm.mode = VmMode::Interp;
        cfg.diff_config.vm.step_limit = 12_345;
        let targets = vec![Target {
            spec: TargetSpec {
                name: "tcpdump".to_string(),
                input_type: "pcap",
                version: "4.9",
                magic: [0xD4, 0xC3],
                bugs: Vec::new(),
            },
            src: "int main() { return 0; }".to_string(),
            seeds: vec![vec![0xD4, 0xC3, 0x00], vec![]],
        }];
        let frame = config_frame(&cfg, &targets);
        // The frame survives an actual render/parse cycle (the wire).
        let parsed = Json::parse(&frame.render()).unwrap();
        let (got_cfg, got_targets) = parse_config(&parsed).unwrap();
        assert_eq!(got_cfg.seed, cfg.seed);
        assert_eq!(got_cfg.execs_per_target, 777);
        assert_eq!(got_cfg.shards_per_target, 3);
        assert_eq!(got_cfg.max_input_len, 48);
        assert_eq!(got_cfg.batch_size, 8);
        assert_eq!(got_cfg.diff_config.vm.mode, VmMode::Interp);
        assert_eq!(got_cfg.diff_config.vm.step_limit, 12_345);
        assert_eq!(got_cfg.fixed_clock_us, Some(5));
        assert_eq!(got_cfg.fault_plan_spec.as_deref(), Some("die@tcpdump#0"));
        assert_eq!(got_cfg.renew_ms, 250);
        assert_eq!(got_targets.len(), 1);
        assert_eq!(got_targets[0].spec.name, "tcpdump");
        assert_eq!(got_targets[0].spec.magic, [0xD4, 0xC3]);
        assert_eq!(got_targets[0].src, targets[0].src);
        assert_eq!(got_targets[0].seeds, targets[0].seeds);
    }

    #[test]
    fn vm_stats_roundtrip() {
        let vm = SessionStats {
            runs: 1,
            pages_restored: 2,
            pages_materialized: 3,
            bulk_builtin_ops: 4,
            fallback_builtin_ops: 5,
            poisoned_rebuilds: 6,
            blocks_translated: 7,
            block_cache_hits: 8,
            block_exec: 9,
            interp_fallback: 10,
            loader_skips: 11,
        };
        assert_eq!(vm_from_json(&vm_to_json(&vm)), vm);
    }

    #[test]
    fn hex_roundtrips_and_rejects_garbage() {
        assert_eq!(hex_encode(&[0x00, 0xFF, 0x3A]), "00ff3a");
        assert_eq!(hex_decode("00ff3a").unwrap(), vec![0x00, 0xFF, 0x3A]);
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "non-hex digits");
    }
}
