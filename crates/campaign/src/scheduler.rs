//! The work-stealing scheduler: (target × seed-shard) jobs over N workers.
//!
//! Each worker owns a deque seeded round-robin; it pops its own front and,
//! when empty, steals from the *back* of a sibling's deque (the classic
//! Chase–Lev discipline, here with plain mutexed deques — jobs are
//! seconds-long, so contention on the deque locks is noise).
//!
//! Determinism: a job's fuzzing seed is derived from `(campaign seed,
//! target name, shard index)` and *never* from which worker runs it or
//! when. A campaign's deduped signature set is the order-independent union
//! of its jobs' sets, so N workers and 1 worker produce identical results.

use crate::cache::{BinaryCache, CompiledTarget};
use crate::state::JobRecord;
use crate::telem::{CampaignTelemetry, DiffTelemetry};
use crate::CampaignConfig;
use compdiff::{hash64, DiffOutcome, DiffStore};
use fuzzing::{BinaryTarget, FuzzConfig, Fuzzer, Oracle};
use minc::FrontendError;
use minc_vm::{ExecResult, ExecSession, SessionStats};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use targets::Target;

/// One schedulable unit: one seed shard of one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Index into the campaign's target list.
    pub target_index: usize,
    /// Shard index, `0..shards_per_target`.
    pub shard: u32,
}

/// A finished job, tagged with the worker that ran it. Only `record`
/// enters the checkpoint; the rest is telemetry the coordinator turns
/// into events (the checkpoint schema stays stable).
#[derive(Debug)]
pub struct JobOutput {
    /// Worker index.
    pub worker: usize,
    /// The checkpointable record.
    pub record: JobRecord,
    /// Job wall-clock duration in microseconds, by the campaign clock.
    pub dur_us: u64,
    /// Summed VM statistics across the job's differential sessions.
    pub vm: SessionStats,
}

/// The per-job RNG seed: a SplitMix64 mix of the campaign seed, the
/// target's name hash, and the shard index. Worker assignment and timing
/// never enter, which is what makes campaigns reproducible at any `-j`.
pub fn job_seed(campaign_seed: u64, target: &str, shard: u32) -> u64 {
    let mut z = campaign_seed
        .wrapping_add(hash64(target.as_bytes()))
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(shard) + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits a target's execution budget across its shards; shard 0 absorbs
/// the remainder so the budget is spent exactly.
pub fn execs_for_shard(execs_per_target: u64, shards: u32, shard: u32) -> u64 {
    let shards = u64::from(shards.max(1));
    let base = execs_per_target / shards;
    if shard == 0 {
        base + execs_per_target % shards
    } else {
        base
    }
}

/// The differential oracle a worker plugs into its fuzzer: borrows the
/// shared (immutable) engine, writes into job-local accumulators. The
/// sessions are job-local mutable state — one persistent session per
/// differential binary, so every oracle execution in the job runs in
/// persistent mode (the `BinaryCache` shares the read-only binaries
/// across workers; sessions are the per-(worker, binary) hot state).
struct DiffOracle<'a> {
    diff: &'a compdiff::CompDiff,
    sessions: &'a mut [ExecSession],
    store: &'a mut DiffStore,
    oracle_execs: &'a mut u64,
    divergent: &'a mut u64,
    obs: DiffTelemetry<'a>,
}

impl Oracle for DiffOracle<'_> {
    fn examine(&mut self, input: &[u8], _result: &ExecResult) -> bool {
        let outcome: DiffOutcome =
            self.diff
                .run_input_observed(self.sessions, input, &mut self.obs);
        *self.oracle_execs += self.diff.binaries().len() as u64;
        if outcome.divergent {
            *self.divergent += 1;
            self.store.record(self.diff, &outcome, input);
            return true;
        }
        outcome.unresolved_timeout
    }
}

/// Runs one job to completion: a full fuzzing campaign over the shard's
/// seed slice with the CompDiff oracle attached, instrumented through
/// `ctel` (metric updates only — events are the coordinator's job, so a
/// worker thread never touches the recorder).
pub fn run_job(
    ct: &CompiledTarget,
    cfg: &CampaignConfig,
    job: Job,
    worker: usize,
    ctel: &CampaignTelemetry,
) -> JobOutput {
    let job_start_us = ctel.tel.now_micros();
    let seed = job_seed(cfg.seed, &ct.name, job.shard);
    let max_execs = execs_for_shard(cfg.execs_per_target, cfg.shards_per_target, job.shard);
    // The seed-slice: shard s takes every `shards`-th corpus entry
    // starting at s; a shard whose slice is empty falls back to the full
    // corpus (still deterministic — the slice depends only on the shard).
    let mut seeds: Vec<Vec<u8>> = ct
        .seeds
        .iter()
        .skip(job.shard as usize)
        .step_by(cfg.shards_per_target.max(1) as usize)
        .cloned()
        .collect();
    if seeds.is_empty() {
        seeds = ct.seeds.clone();
    }

    let mut store = DiffStore::new();
    let mut oracle_execs = 0u64;
    let mut divergent = 0u64;
    let mut sessions = ct.diff_sessions();
    let stats = Fuzzer::new(
        BinaryTarget::new(&ct.fuzz_binary, cfg.diff_config.vm.clone()),
        DiffOracle {
            diff: &ct.diff,
            sessions: &mut sessions,
            store: &mut store,
            oracle_execs: &mut oracle_execs,
            divergent: &mut divergent,
            obs: ctel.diff_observer(),
        },
        FuzzConfig {
            max_execs,
            seed,
            max_input_len: cfg.max_input_len,
            deterministic: true,
            dictionary: vec![ct.magic.to_vec()],
        },
    )
    .with_observer(ctel.fuzz_observer())
    .run(&seeds);

    let mut vm = SessionStats::default();
    for s in &sessions {
        vm.merge(s.stats());
    }
    ctel.record_vm(vm);
    ctel.jobs_done.inc();
    let dur_us = ctel.tel.now_micros().saturating_sub(job_start_us);
    ctel.job_us.record(dur_us);

    let signatures: BTreeSet<String> = store
        .reports()
        .iter()
        .map(|d| d.signature.clone())
        .collect();
    JobOutput {
        worker,
        record: JobRecord {
            target: ct.name.clone(),
            shard: job.shard,
            execs: stats.execs,
            oracle_execs,
            divergent,
            crashes: stats.crashes.len() as u64,
            signatures: signatures.into_iter().collect(),
        },
        dur_us,
        vm,
    }
}

/// Runs `jobs` across `cfg.workers` work-stealing workers, invoking
/// `on_result` on the coordinating thread for every finished job (in
/// completion order). `on_result` returning `false` aborts the campaign:
/// workers stop picking up new jobs and in-flight results are dropped —
/// the simulated `kill` the resume path recovers from.
///
/// # Errors
///
/// Propagates the first target-compilation failure.
pub fn run_pool(
    targets: &[Target],
    cache: &BinaryCache,
    cfg: &CampaignConfig,
    ctel: &CampaignTelemetry,
    jobs: &[Job],
    mut on_result: impl FnMut(JobOutput) -> bool,
) -> Result<(), FrontendError> {
    let workers = cfg.workers.max(1);
    let deques: Vec<Mutex<VecDeque<Job>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, &job) in jobs.iter().enumerate() {
        deques[i % workers].lock().unwrap().push_back(job);
    }
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<Result<JobOutput, FrontendError>>();

    let mut first_err: Option<FrontendError> = None;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let abort = &abort;
            scope.spawn(move || {
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    // Own work first (front), then steal (back).
                    let job = deques[w].lock().unwrap().pop_front().or_else(|| {
                        (1..workers)
                            .find_map(|d| deques[(w + d) % workers].lock().unwrap().pop_back())
                    });
                    let Some(job) = job else { break };
                    let msg = cache
                        .get_or_compile(&targets[job.target_index], &cfg.diff_config, cfg.fuzz_impl)
                        .map(|ct| run_job(&ct, cfg, job, w, ctel));
                    if tx.send(msg).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for msg in rx {
            match msg {
                Ok(out) => {
                    if !on_result(out) {
                        abort.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                Err(e) => {
                    abort.store(true, Ordering::Relaxed);
                    first_err = Some(e);
                    break;
                }
            }
        }
        // Dropping `rx` here unblocks any worker mid-`send`.
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_seed_depends_on_all_inputs() {
        let base = job_seed(1, "tcpdump", 0);
        assert_ne!(base, job_seed(2, "tcpdump", 0));
        assert_ne!(base, job_seed(1, "mujs", 0));
        assert_ne!(base, job_seed(1, "tcpdump", 1));
        assert_eq!(base, job_seed(1, "tcpdump", 0), "pure function");
    }

    #[test]
    fn shard_budgets_sum_to_target_budget() {
        for (total, shards) in [(1_000u64, 4u32), (7u64, 3u32), (5u64, 8u32)] {
            let sum: u64 = (0..shards).map(|s| execs_for_shard(total, shards, s)).sum();
            assert_eq!(sum, total);
        }
    }
}
