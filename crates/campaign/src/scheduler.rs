//! The fault-tolerant work-stealing scheduler: (target × seed-shard) job
//! attempts over N workers.
//!
//! Each worker owns a deque seeded round-robin; it pops its own front
//! and, when empty, steals from the *back* of a sibling's deque (the
//! classic Chase–Lev discipline, here with one mutexed state block —
//! jobs are seconds-long, so lock contention is noise). A condvar parks
//! idle workers while retries may still be requeued: a worker only exits
//! when no job is queued *and* none is outstanding.
//!
//! Fault tolerance: every job attempt (compile included) runs inside
//! `catch_unwind`, so a panic becomes a [`JobResult::Failed`] delivered
//! to the coordinator instead of a dead pool. The coordinator answers
//! each result with a [`Decision`] — retry (requeued at a deterministic
//! backoff position), quarantine (the target's queued jobs are swept and
//! reported back), continue, or stop. The worker blocks until its result
//! is decided, which keeps single-worker campaigns fully serialized and
//! therefore byte-identical across runs.
//!
//! Determinism: a job's fuzzing seed is derived from `(campaign seed,
//! target name, shard index)` and *never* from which worker runs it or
//! when. Retry backoff is a *queue position* derived from the same seed
//! material — no wall-clock sleeps — so a campaign with failures replays
//! exactly under the same seed and fault plan. A campaign's deduped
//! signature set is the order-independent union of its jobs' sets, so N
//! workers and 1 worker produce identical results.

use crate::cache::{BinaryCache, CacheError, CompiledTarget};
use crate::faults::{panic_message, FaultKind};
use crate::state::{FailureKind, JobRecord};
use crate::telem::{CampaignTelemetry, DiffTelemetry};
use crate::CampaignConfig;
use compdiff::{hash64, DiffOutcome, DiffStore};
use fuzzing::{BinaryTarget, FuzzConfig, Fuzzer, Oracle};
use minc_vm::{ExecResult, ExecSession, SessionStats};
use std::collections::{BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Condvar, Mutex, MutexGuard};
use targets::Target;

/// One schedulable unit: one attempt at one seed shard of one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Index into the campaign's target list.
    pub target_index: usize,
    /// Shard index, `0..shards_per_target`.
    pub shard: u32,
    /// 1-based attempt number (2+ are retries).
    pub attempt: u32,
}

/// A finished job, tagged with the worker that ran it. Only `record`
/// enters the checkpoint; the rest is telemetry the coordinator turns
/// into events (the checkpoint schema stays stable).
#[derive(Debug)]
pub struct JobOutput {
    /// Worker index.
    pub worker: usize,
    /// The checkpointable record.
    pub record: JobRecord,
    /// Job wall-clock duration in microseconds, by the campaign clock.
    pub dur_us: u64,
    /// Summed VM statistics across the job's differential sessions.
    pub vm: SessionStats,
}

/// A failed job attempt, already converted to structured data — panic
/// payloads and compile errors never cross the channel raw.
#[derive(Debug)]
pub struct JobFailure {
    /// Worker index.
    pub worker: usize,
    /// The attempt that failed.
    pub job: Job,
    /// Target name (resolved from `job.target_index`).
    pub target: String,
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable cause (panic payload, compile error, ...).
    pub message: String,
    /// Attempt wall-clock duration in microseconds.
    pub dur_us: u64,
}

/// What one job attempt resolved to.
#[derive(Debug)]
pub enum JobResult {
    /// The attempt completed and produced a checkpointable record.
    Done(JobOutput),
    /// The attempt failed (panic, compile error, or injected fault).
    Failed(JobFailure),
}

/// The coordinator's answer to a [`JobResult`] — how the pool proceeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Nothing to do; the job is resolved.
    Continue,
    /// Requeue this job (its `attempt` already incremented) at a
    /// deterministic backoff position.
    Retry(Job),
    /// Drop every queued job of this target; the swept jobs are returned
    /// in [`PoolOutcome::swept`].
    Quarantine {
        /// Index into the campaign's target list.
        target_index: usize,
    },
    /// Abort the campaign: workers stop picking up jobs and in-flight
    /// results are dropped — the simulated `kill` the resume path
    /// recovers from.
    Stop,
}

/// What the pool did beyond invoking the callback.
#[derive(Debug, Default)]
pub struct PoolOutcome {
    /// Queued jobs dropped by [`Decision::Quarantine`] sweeps, in sweep
    /// order — the coordinator counts these as skipped.
    pub swept: Vec<Job>,
}

/// The per-job RNG seed: a SplitMix64 mix of the campaign seed, the
/// target's name hash, and the shard index. Worker assignment and timing
/// never enter, which is what makes campaigns reproducible at any `-j`.
pub fn job_seed(campaign_seed: u64, target: &str, shard: u32) -> u64 {
    let mut z = campaign_seed
        .wrapping_add(hash64(target.as_bytes()))
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(shard) + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic retry backoff. Instead of a wall-clock delay (which
/// would reintroduce timing into an otherwise pure schedule), backoff is
/// expressed as *queue position* material: the retried job is inserted
/// mid-deque so other queued work runs first. A pure function of the
/// campaign seed and the job identity, so kill/resume replays it.
pub fn retry_backoff(campaign_seed: u64, target: &str, shard: u32, attempt: u32) -> u64 {
    let salt = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(attempt));
    job_seed(campaign_seed ^ salt, target, shard)
}

/// Splits a target's execution budget across its shards; the remainder
/// `r` is spread one-exec-each over the first `r` shards, so the budget
/// is spent exactly and no shard carries more than one extra exec (shard
/// 0 used to absorb the whole remainder, making lease 0 up to
/// `shards - 1` execs heavier than every other lease).
pub fn execs_for_shard(execs_per_target: u64, shards: u32, shard: u32) -> u64 {
    let shards = u64::from(shards.max(1));
    let base = execs_per_target / shards;
    base + u64::from(u64::from(shard) < execs_per_target % shards)
}

/// Locks a mutex, shrugging off poison. The pool's shared state is only
/// mutated under short, panic-free critical sections (deque ops and
/// counter bumps), so a poisoned lock carries no torn state.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The differential oracle a worker plugs into its fuzzer: borrows the
/// shared (immutable) engine, writes into job-local accumulators. The
/// sessions are job-local mutable state — one persistent session per
/// differential binary, so every oracle execution in the job runs in
/// persistent mode (the `BinaryCache` shares the read-only binaries
/// across workers; sessions are the per-(worker, binary) hot state).
struct DiffOracle<'a> {
    diff: &'a compdiff::CompDiff,
    sessions: &'a mut [ExecSession],
    store: &'a mut DiffStore,
    oracle_execs: &'a mut u64,
    divergent: &'a mut u64,
    obs: DiffTelemetry<'a>,
}

impl DiffOracle<'_> {
    fn verdict(&mut self, outcome: &DiffOutcome, input: &[u8]) -> bool {
        if outcome.divergent {
            *self.divergent += 1;
            self.store.record(self.diff, outcome, input);
            return true;
        }
        outcome.unresolved_timeout
    }
}

impl Oracle for DiffOracle<'_> {
    fn examine(&mut self, input: &[u8], _result: &ExecResult) -> bool {
        let outcome: DiffOutcome =
            self.diff
                .run_input_observed(self.sessions, input, &mut self.obs);
        *self.oracle_execs += self.diff.binaries().len() as u64;
        self.verdict(&outcome, input)
    }

    fn examine_batch(&mut self, items: &[(Vec<u8>, ExecResult)]) -> Vec<bool> {
        let inputs: Vec<&[u8]> = items.iter().map(|(i, _)| i.as_slice()).collect();
        let outcomes = self
            .diff
            .run_batch_observed(self.sessions, &inputs, &mut self.obs);
        *self.oracle_execs += (self.diff.binaries().len() * items.len()) as u64;
        outcomes
            .iter()
            .zip(&inputs)
            .map(|(outcome, input)| self.verdict(outcome, input))
            .collect()
    }
}

/// Runs one job attempt to completion: a full fuzzing campaign over the
/// shard's seed slice with the CompDiff oracle attached, instrumented
/// through `ctel` (metric updates only — events are the coordinator's
/// job, so a worker thread never touches the recorder).
///
/// # Errors
///
/// Returns the failure kind and message for an injected (non-panic) job
/// fault; injected *panics* unwind out of this function and are caught
/// by the worker loop.
///
/// # Panics
///
/// Panics deliberately when the fault plan schedules `panic@...` for
/// this job attempt (and whenever the fuzzing or VM stack itself has a
/// bug — which is exactly what the worker's `catch_unwind` isolates).
pub fn run_job(
    ct: &CompiledTarget,
    cfg: &CampaignConfig,
    job: Job,
    worker: usize,
    ctel: &CampaignTelemetry,
) -> Result<JobOutput, (FailureKind, String)> {
    let job_start_us = ctel.tel.now_micros();
    if let Some(plan) = cfg.fault_plan.as_deref() {
        match plan.fire_job(&ct.name, job.shard, job.attempt) {
            Some(FaultKind::Panic) => panic!(
                "fault plan panicked job {}#{} (attempt {})",
                ct.name, job.shard, job.attempt
            ),
            Some(FaultKind::Io) => {
                return Err((
                    FailureKind::Io,
                    format!(
                        "injected I/O error in job {}#{} (attempt {})",
                        ct.name, job.shard, job.attempt
                    ),
                ));
            }
            _ => {}
        }
    }
    let seed = job_seed(cfg.seed, &ct.name, job.shard);
    let max_execs = execs_for_shard(cfg.execs_per_target, cfg.shards_per_target, job.shard);
    // The seed-slice: shard s takes every `shards`-th corpus entry
    // starting at s; a shard whose slice is empty falls back to the full
    // corpus (still deterministic — the slice depends only on the shard).
    let mut seeds: Vec<Vec<u8>> = ct
        .seeds
        .iter()
        .skip(job.shard as usize)
        .step_by(cfg.shards_per_target.max(1) as usize)
        .cloned()
        .collect();
    if seeds.is_empty() {
        seeds = ct.seeds.clone();
    }

    let mut store = DiffStore::new();
    let mut oracle_execs = 0u64;
    let mut divergent = 0u64;
    let mut sessions = ct.diff_sessions();
    let stats = Fuzzer::new(
        BinaryTarget::new(&ct.fuzz_binary, cfg.diff_config.vm.clone())
            .with_block_program(std::sync::Arc::clone(&ct.fuzz_blocks)),
        DiffOracle {
            diff: &ct.diff,
            sessions: &mut sessions,
            store: &mut store,
            oracle_execs: &mut oracle_execs,
            divergent: &mut divergent,
            obs: ctel.diff_observer(),
        },
        FuzzConfig {
            max_execs,
            seed,
            max_input_len: cfg.max_input_len,
            deterministic: true,
            dictionary: vec![ct.magic.to_vec()],
            batch_size: cfg.batch_size,
        },
    )
    .with_observer(ctel.fuzz_observer())
    .run(&seeds);

    let mut vm = SessionStats::default();
    for s in &sessions {
        vm.merge(s.stats());
    }
    ctel.record_vm(vm);
    ctel.jobs_done.inc();
    let dur_us = ctel.tel.now_micros().saturating_sub(job_start_us);
    ctel.job_us.record(dur_us);

    let signatures: BTreeSet<String> = store
        .reports()
        .iter()
        .map(|d| d.signature.clone())
        .collect();
    Ok(JobOutput {
        worker,
        record: JobRecord {
            target: ct.name.clone(),
            shard: job.shard,
            execs: stats.execs,
            oracle_execs,
            divergent,
            crashes: stats.crashes.len() as u64,
            signatures: signatures.into_iter().collect(),
        },
        dur_us,
        vm,
    })
}

/// Shared pool state: the work deques plus the accounting the exit
/// condition needs. `outstanding` counts jobs that are queued *or*
/// resolving (popped but not yet decided) — a worker may only exit when
/// it is zero, because until then a retry could still be requeued.
struct Shared {
    deques: Vec<VecDeque<Job>>,
    outstanding: usize,
    abort: bool,
}

/// One attempt result in flight to the coordinator. The worker blocks on
/// `ack` until the coordinator has applied its [`Decision`], so at
/// `workers = 1` the schedule is a strict job → decision → job
/// alternation — the property the byte-identical determinism tests rely
/// on.
struct Msg {
    result: JobResult,
    ack: mpsc::Sender<()>,
}

/// Runs `jobs` across `cfg.workers` work-stealing workers, invoking
/// `on_result` on the coordinating thread for every resolved job attempt
/// (in completion order) and applying the [`Decision`] it returns.
/// Worker panics are caught and delivered as [`JobResult::Failed`]; the
/// pool itself never aborts on a failing job.
pub fn run_pool(
    targets: &[Target],
    cache: &BinaryCache,
    cfg: &CampaignConfig,
    ctel: &CampaignTelemetry,
    jobs: &[Job],
    mut on_result: impl FnMut(JobResult) -> Decision,
) -> PoolOutcome {
    let workers = cfg.workers.max(1);
    let mut deques: Vec<VecDeque<Job>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, &job) in jobs.iter().enumerate() {
        deques[i % workers].push_back(job);
    }
    let shared = Mutex::new(Shared {
        deques,
        outstanding: jobs.len(),
        abort: false,
    });
    let cvar = Condvar::new();
    let (tx, rx) = mpsc::channel::<Msg>();
    let faults = cfg.fault_plan.as_deref();

    let mut outcome = PoolOutcome::default();
    ctel.workers_spawned.add(workers as u64);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let shared = &shared;
            let cvar = &cvar;
            scope.spawn(move || loop {
                let job = {
                    let mut sh = lock_clean(shared);
                    loop {
                        if sh.abort {
                            break None;
                        }
                        // Own work first (front), then steal (back).
                        if let Some(j) = sh.deques[w].pop_front() {
                            break Some(j);
                        }
                        if let Some(j) =
                            (1..workers).find_map(|d| sh.deques[(w + d) % workers].pop_back())
                        {
                            break Some(j);
                        }
                        if sh.outstanding == 0 {
                            break None;
                        }
                        // Queues are empty but a retry may still arrive.
                        sh = cvar.wait(sh).unwrap_or_else(|e| e.into_inner());
                    }
                };
                let Some(job) = job else { break };
                // A thread popping a job is the in-process analogue of a
                // lease grant, so clean-run metric snapshots match the
                // coordinator/worker mode byte for byte.
                ctel.leases_granted.inc();
                let target = &targets[job.target_index];
                let start_us = ctel.tel.now_micros();
                // The unwind boundary: a panic anywhere in the compile or
                // the job (real or injected) resolves *this attempt*, not
                // the pool.
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    let ct = cache
                        .get_or_compile(
                            target,
                            &cfg.diff_config,
                            cfg.fuzz_impl,
                            faults,
                            job.attempt,
                        )
                        .map_err(|e| {
                            let kind = match &e {
                                CacheError::Frontend(_)
                                | CacheError::Panic(_)
                                | CacheError::Injected(_) => FailureKind::Compile,
                            };
                            (kind, e.to_string())
                        })?;
                    run_job(&ct, cfg, job, w, ctel)
                }));
                let result = match attempt {
                    Ok(Ok(out)) => JobResult::Done(out),
                    Ok(Err((kind, message))) => JobResult::Failed(JobFailure {
                        worker: w,
                        job,
                        target: target.spec.name.to_string(),
                        kind,
                        message,
                        dur_us: ctel.tel.now_micros().saturating_sub(start_us),
                    }),
                    Err(payload) => JobResult::Failed(JobFailure {
                        worker: w,
                        job,
                        target: target.spec.name.to_string(),
                        kind: FailureKind::Panic,
                        message: panic_message(payload.as_ref()),
                        dur_us: ctel.tel.now_micros().saturating_sub(start_us),
                    }),
                };
                let (ack_tx, ack_rx) = mpsc::channel::<()>();
                if tx
                    .send(Msg {
                        result,
                        ack: ack_tx,
                    })
                    .is_err()
                {
                    break;
                }
                // Wait for the coordinator's decision before taking more
                // work (an Err means the coordinator stopped — the abort
                // flag is already set and the next pop exits).
                let _ = ack_rx.recv();
            });
        }
        drop(tx);
        for Msg { result, ack } in rx {
            let decision = on_result(result);
            {
                let mut sh = lock_clean(&shared);
                match decision {
                    Decision::Continue => sh.outstanding -= 1,
                    Decision::Retry(job) => {
                        let name = targets[job.target_index].spec.name.as_str();
                        let back = retry_backoff(cfg.seed, name, job.shard, job.attempt);
                        let d = (back % workers as u64) as usize;
                        let dq = &mut sh.deques[d];
                        let pos = ((back >> 32) as usize) % (dq.len() + 1);
                        dq.insert(pos, job);
                        // `outstanding` unchanged: the job is queued again.
                    }
                    Decision::Quarantine { target_index } => {
                        sh.outstanding -= 1;
                        let before = outcome.swept.len();
                        for dq in &mut sh.deques {
                            dq.retain(|j| {
                                let hit = j.target_index == target_index;
                                if hit {
                                    outcome.swept.push(*j);
                                }
                                !hit
                            });
                        }
                        sh.outstanding -= outcome.swept.len() - before;
                    }
                    Decision::Stop => {
                        // Set under the lock, *then* notify: a worker
                        // between its abort check and its wait would
                        // otherwise miss the wakeup.
                        sh.abort = true;
                    }
                }
                cvar.notify_all();
            }
            let _ = ack.send(());
            if decision == Decision::Stop {
                break;
            }
        }
        // Dropping `rx` here unblocks any worker mid-`send`.
    });
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_seed_depends_on_all_inputs() {
        let base = job_seed(1, "tcpdump", 0);
        assert_ne!(base, job_seed(2, "tcpdump", 0));
        assert_ne!(base, job_seed(1, "mujs", 0));
        assert_ne!(base, job_seed(1, "tcpdump", 1));
        assert_eq!(base, job_seed(1, "tcpdump", 0), "pure function");
    }

    #[test]
    fn shard_budgets_sum_to_target_budget() {
        for (total, shards) in [
            (1_000u64, 4u32),
            (7u64, 3u32),
            (5u64, 8u32),
            (2_001u64, 4u32),
            (0u64, 3u32),
        ] {
            let budgets: Vec<u64> = (0..shards)
                .map(|s| execs_for_shard(total, shards, s))
                .collect();
            let sum: u64 = budgets.iter().sum();
            assert_eq!(sum, total);
            let max = budgets.iter().max().copied().unwrap_or(0);
            let min = budgets.iter().min().copied().unwrap_or(0);
            assert!(
                max - min <= 1,
                "remainder must be spread evenly, got {budgets:?} for {total}/{shards}"
            );
        }
    }

    #[test]
    fn retry_backoff_is_pure_and_attempt_dependent() {
        let a = retry_backoff(1, "tcpdump", 0, 2);
        assert_eq!(a, retry_backoff(1, "tcpdump", 0, 2), "pure function");
        assert_ne!(a, retry_backoff(1, "tcpdump", 0, 3), "varies by attempt");
        assert_ne!(a, retry_backoff(2, "tcpdump", 0, 2), "varies by seed");
    }
}
