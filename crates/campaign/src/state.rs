//! Crash-resilient campaign state: a JSONL checkpoint file.
//!
//! The file is append-only. Line 1 is a header pinning the campaign
//! parameters (seed, budget, shard count, target list); every later line
//! records either one finished (target × shard) job with its deduped
//! discrepancy signatures, or one failed job attempt (a
//! [`FailureRecord`]) so retry counts and quarantine state survive a
//! kill. Each record is flushed *and fsynced* (`File::sync_all`) as soon
//! as the job resolves, so a `kill -9` — or a power loss — loses at most
//! the in-flight jobs; a flush alone only moves bytes into the OS page
//! cache, which power loss discards, and an acknowledged job must never
//! be lost once the campaign reported it done. Because a job's result is
//! a pure function of `(campaign seed, target, shard)`, redoing the lost
//! jobs on resume reproduces the exact same campaign state.
//!
//! A torn trailing line (the process died mid-write) is detected by the
//! strict JSON parser and skipped; a torn line anywhere *else* means the
//! file was corrupted by something other than a crash mid-append, and
//! resume refuses to guess. A fresh campaign refuses to open a directory
//! that already holds a checkpoint (`create_new` semantics) — silently
//! truncating weeks of results on a name collision is the one failure no
//! retry can undo.

use crate::faults::FaultPlan;
use compdiff::Json;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Checkpoint format version (line 1 of every checkpoint file).
/// Version 2 added `failure` records (failed job attempts).
pub const STATE_VERSION: i64 = 2;

/// Name of the checkpoint file inside the campaign directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.jsonl";

/// Name of the writer-lock sidecar next to [`CHECKPOINT_FILE`].
pub const LOCK_FILE: &str = "checkpoint.lock";

/// The campaign parameters a checkpoint is only valid for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignHeader {
    /// Root RNG seed.
    pub seed: u64,
    /// Fuzz-binary execution budget per target.
    pub execs_per_target: u64,
    /// Number of seed shards each target's budget is split into.
    pub shards_per_target: u32,
    /// Target names, in schedule order.
    pub targets: Vec<String>,
}

impl CampaignHeader {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", Json::Str("header".to_string())),
            ("version", Json::Int(STATE_VERSION)),
            // u64 seeds round-trip through a bit-cast so the JSON integer
            // space (i64) covers the full seed space.
            ("seed", Json::Int(self.seed as i64)),
            ("execs_per_target", Json::Int(self.execs_per_target as i64)),
            ("shards", Json::Int(i64::from(self.shards_per_target))),
            ("targets", Json::strings(self.targets.iter())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        if v.get("type").and_then(Json::as_str) != Some("header") {
            return Err("first line is not a campaign header".to_string());
        }
        let version = v
            .get("version")
            .and_then(Json::as_i64)
            .ok_or("header missing version")?;
        if version != STATE_VERSION {
            return Err(format!(
                "checkpoint version {version}, expected {STATE_VERSION}"
            ));
        }
        let targets = v
            .get("targets")
            .and_then(Json::as_array)
            .ok_or("header missing targets")?
            .iter()
            .map(|t| {
                t.as_str()
                    .map(str::to_string)
                    .ok_or("non-string target name")
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignHeader {
            seed: v
                .get("seed")
                .and_then(Json::as_i64)
                .ok_or("header missing seed")? as u64,
            execs_per_target: v
                .get("execs_per_target")
                .and_then(Json::as_i64)
                .ok_or("header missing execs_per_target")? as u64,
            shards_per_target: v
                .get("shards")
                .and_then(Json::as_i64)
                .and_then(|s| u32::try_from(s).ok())
                .ok_or("header missing shards")?,
            targets,
        })
    }
}

/// One finished (target × shard) job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Target name.
    pub target: String,
    /// Shard index within the target, `0..shards_per_target`.
    pub shard: u32,
    /// Fuzz-binary executions performed.
    pub execs: u64,
    /// Differential (oracle) executions performed.
    pub oracle_execs: u64,
    /// Inputs whose differential run diverged.
    pub divergent: u64,
    /// Unique crash buckets found by the fuzzer.
    pub crashes: u64,
    /// Deduped discrepancy signatures seen in this job, sorted.
    pub signatures: Vec<String>,
}

impl JobRecord {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", Json::Str("job".to_string())),
            ("target", Json::Str(self.target.clone())),
            ("shard", Json::Int(i64::from(self.shard))),
            ("execs", Json::Int(self.execs as i64)),
            ("oracle_execs", Json::Int(self.oracle_execs as i64)),
            ("divergent", Json::Int(self.divergent as i64)),
            ("crashes", Json::Int(self.crashes as i64)),
            ("signatures", Json::strings(self.signatures.iter())),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self, String> {
        if v.get("type").and_then(Json::as_str) != Some("job") {
            return Err("record line is not a job record".to_string());
        }
        let int = |k: &str| {
            v.get(k)
                .and_then(Json::as_i64)
                .ok_or(format!("job missing {k}"))
        };
        let signatures = v
            .get("signatures")
            .and_then(Json::as_array)
            .ok_or("job missing signatures")?
            .iter()
            .map(|s| s.as_str().map(str::to_string).ok_or("non-string signature"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(JobRecord {
            target: v
                .get("target")
                .and_then(Json::as_str)
                .ok_or("job missing target")?
                .to_string(),
            shard: u32::try_from(int("shard")?).map_err(|_| "shard out of range")?,
            execs: int("execs")? as u64,
            oracle_execs: int("oracle_execs")? as u64,
            divergent: int("divergent")? as u64,
            crashes: int("crashes")? as u64,
            signatures,
        })
    }
}

/// How a job attempt failed (the failure taxonomy; see DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureKind {
    /// The worker panicked mid-job (caught by `catch_unwind`).
    Panic,
    /// The target failed to compile (frontend error or compile panic).
    Compile,
    /// An I/O error surfaced inside the job.
    Io,
    /// The worker *process* holding the job's lease died or stopped
    /// renewing; the coordinator reclaimed the lease (coordinator/worker
    /// mode only).
    Lost,
}

impl FailureKind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Compile => "compile",
            FailureKind::Io => "io",
            FailureKind::Lost => "lost",
        }
    }

    pub(crate) fn parse(s: &str) -> Result<Self, String> {
        match s {
            "panic" => Ok(FailureKind::Panic),
            "compile" => Ok(FailureKind::Compile),
            "io" => Ok(FailureKind::Io),
            "lost" => Ok(FailureKind::Lost),
            other => Err(format!("unknown failure kind `{other}`")),
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One failed job attempt. Appended to the checkpoint like a
/// [`JobRecord`], so resume can replay the retry/quarantine state
/// machine instead of forgetting that a target was degraded.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FailureRecord {
    /// Target name.
    pub target: String,
    /// Shard index within the target.
    pub shard: u32,
    /// 1-based attempt number that failed.
    pub attempt: u32,
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable cause (panic payload, compile error, ...).
    pub message: String,
}

impl FailureRecord {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", Json::Str("failure".to_string())),
            ("target", Json::Str(self.target.clone())),
            ("shard", Json::Int(i64::from(self.shard))),
            ("attempt", Json::Int(i64::from(self.attempt))),
            ("kind", Json::Str(self.kind.as_str().to_string())),
            ("message", Json::Str(self.message.clone())),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self, String> {
        if v.get("type").and_then(Json::as_str) != Some("failure") {
            return Err("record line is not a failure record".to_string());
        }
        let int = |k: &str| {
            v.get(k)
                .and_then(Json::as_i64)
                .ok_or(format!("failure missing {k}"))
        };
        let text = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("failure missing {k}"))
        };
        Ok(FailureRecord {
            target: text("target")?,
            shard: u32::try_from(int("shard")?).map_err(|_| "shard out of range")?,
            attempt: u32::try_from(int("attempt")?).map_err(|_| "attempt out of range")?,
            kind: FailureKind::parse(&text("kind")?)?,
            message: text("message")?,
        })
    }
}

/// Errors opening or updating a checkpoint.
#[derive(Debug)]
pub enum StateError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A fresh campaign pointed at a directory that already holds a
    /// checkpoint. Never clobbered silently.
    AlreadyExists(PathBuf),
    /// A non-trailing line failed to parse — not a crash artifact.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The checkpoint was written by a campaign with different parameters.
    HeaderMismatch(String),
    /// The checkpoint is held open for write by another live process. A
    /// campaign checkpoint has exactly one writer (the coordinator); a
    /// second writer would corrupt the `good_len` watermark.
    Locked {
        /// The lock sidecar's path.
        path: PathBuf,
        /// PID recorded in the lock file.
        owner_pid: u64,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            StateError::AlreadyExists(p) => write!(
                f,
                "a checkpoint already exists at {}; pass --resume to continue \
                 that campaign or point --checkpoint at a fresh directory",
                p.display()
            ),
            StateError::Corrupt { line, message } => {
                write!(f, "checkpoint corrupt at line {line}: {message}")
            }
            StateError::HeaderMismatch(m) => write!(f, "checkpoint header mismatch: {m}"),
            StateError::Locked { path, owner_pid } => write!(
                f,
                "checkpoint is locked by live process {owner_pid} ({}); a campaign \
                 checkpoint has exactly one writer — workers must not open it",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StateError {}

impl From<std::io::Error> for StateError {
    fn from(e: std::io::Error) -> Self {
        StateError::Io(e)
    }
}

/// An exclusive writer lock on a campaign directory: a `create_new`'d
/// sidecar file ([`LOCK_FILE`]) holding the owner's PID. Acquired before
/// the checkpoint itself is opened, released on drop. A lock whose owner
/// is no longer alive (the coordinator was `kill -9`'d) is stale and is
/// stolen; a lock whose owner is live is a hard [`StateError::Locked`]
/// refusal — the single-writer invariant the `good_len` watermark
/// depends on.
#[derive(Debug)]
struct StateLock {
    path: PathBuf,
}

/// True when `pid` names a live process. `/proc` is authoritative on
/// Linux; on targets without `/proc` every foreign lock reads as stale,
/// which degrades to last-locker-wins rather than false refusals.
fn pid_alive(pid: u64) -> bool {
    if pid == u64::from(std::process::id()) {
        return true;
    }
    if !Path::new("/proc").is_dir() {
        return false;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

impl StateLock {
    fn acquire(dir: &Path) -> Result<Self, StateError> {
        let path = dir.join(LOCK_FILE);
        // Two tries: the second one runs only after a stale lock was
        // unlinked (a concurrent live locker still refuses).
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    writeln!(f, "{{\"pid\": {}}}", std::process::id())?;
                    return Ok(StateLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let owner_pid = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|text| Json::parse(&text).ok())
                        .and_then(|v| v.get("pid").and_then(Json::as_u64))
                        .unwrap_or(0);
                    if owner_pid != 0 && pid_alive(owner_pid) {
                        return Err(StateError::Locked { path, owner_pid });
                    }
                    // Stale (dead owner or unreadable): steal and retry.
                    std::fs::remove_file(&path)?;
                }
                Err(e) => return Err(StateError::Io(e)),
            }
        }
        Err(StateError::Io(std::io::Error::other(format!(
            "could not acquire checkpoint lock {} (contended)",
            path.display()
        ))))
    }
}

impl Drop for StateLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The live campaign state: finished jobs, failed attempts, and the
/// append handle.
pub struct CampaignState {
    path: PathBuf,
    /// Held for the state's lifetime; releases [`LOCK_FILE`] on drop.
    _lock: StateLock,
    file: BufWriter<File>,
    done: BTreeMap<(String, u32), JobRecord>,
    failures: Vec<FailureRecord>,
    /// Byte length of the file after the last *successful* append — the
    /// truncation point [`repair`](CampaignState::repair) restores after
    /// a failed (possibly partial) write.
    good_len: u64,
    /// Append attempts made through this handle plus the records already
    /// on disk when it was opened (1-based sequence for fault injection).
    seq: u64,
    faults: Option<Arc<FaultPlan>>,
}

impl std::fmt::Debug for CampaignState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignState")
            .field("path", &self.path)
            .field("done", &self.done.len())
            .field("failures", &self.failures.len())
            .finish()
    }
}

impl CampaignState {
    /// Starts a fresh checkpoint in `dir` (created if missing). Refuses
    /// to touch a directory that already holds a checkpoint: a campaign
    /// name collision must surface as an error, not as a silent
    /// truncation of the previous campaign's results.
    ///
    /// # Errors
    ///
    /// [`StateError::AlreadyExists`] if `dir` already has a checkpoint,
    /// [`StateError::Locked`] if another live process holds the writer
    /// lock, [`StateError::Io`] if the directory or file cannot be
    /// created.
    pub fn create(dir: &Path, header: &CampaignHeader) -> Result<Self, StateError> {
        std::fs::create_dir_all(dir)?;
        // The writer lock comes first: if the checkpoint already exists
        // the refusal below releases it on drop.
        let lock = StateLock::acquire(dir)?;
        let path = dir.join(CHECKPOINT_FILE);
        let file = match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                return Err(StateError::AlreadyExists(path));
            }
            Err(e) => return Err(StateError::Io(e)),
        };
        let mut state = CampaignState {
            path,
            _lock: lock,
            file: BufWriter::new(file),
            done: BTreeMap::new(),
            failures: Vec::new(),
            good_len: 0,
            seq: 0,
            faults: None,
        };
        // The header is written before any fault plan is attached, so a
        // plan can never fail a campaign at birth.
        state.append_line(&header.to_json())?;
        state.sync()?;
        Ok(state)
    }

    /// Reopens an existing checkpoint, validating it against `header` and
    /// loading every finished job and failed attempt. A torn final line
    /// (the previous process died mid-append) is skipped; its job simply
    /// re-runs.
    ///
    /// # Errors
    ///
    /// [`StateError::HeaderMismatch`] if the checkpoint belongs to a
    /// campaign with different parameters, [`StateError::Corrupt`] if a
    /// non-trailing line is unreadable, [`StateError::Locked`] if
    /// another live process holds the writer lock.
    pub fn resume(dir: &Path, header: &CampaignHeader) -> Result<Self, StateError> {
        enum Line {
            Header,
            Job(JobRecord),
            Fail(FailureRecord),
        }
        let lock = StateLock::acquire(dir)?;
        let path = dir.join(CHECKPOINT_FILE);
        let text = std::fs::read_to_string(&path)?;
        let lines: Vec<&str> = text.lines().collect();
        if lines.is_empty() {
            return Err(StateError::Corrupt {
                line: 1,
                message: "empty checkpoint (no header)".to_string(),
            });
        }
        // Byte offset where each line starts, for truncating a torn tail.
        let mut starts = Vec::with_capacity(lines.len());
        let mut off = 0usize;
        for line in &lines {
            starts.push(off as u64);
            off += line.len() + 1;
        }
        let mut truncate_to: Option<u64> = None;
        let mut done = BTreeMap::new();
        let mut failures = Vec::new();
        for (idx, line) in lines.iter().enumerate() {
            let is_last = idx + 1 == lines.len();
            let parsed = Json::parse(line).map_err(|e| e.to_string()).and_then(|v| {
                if idx == 0 {
                    let found = CampaignHeader::from_json(&v)?;
                    if found != *header {
                        return Err(format!(
                            "this campaign was started with different parameters \
                             (seed/budget/shards/targets); pass the original flags \
                             or start a fresh checkpoint ({})",
                            path.display()
                        ));
                    }
                    Ok(Line::Header)
                } else {
                    match v.get("type").and_then(Json::as_str) {
                        Some("job") => JobRecord::from_json(&v).map(Line::Job),
                        Some("failure") => FailureRecord::from_json(&v).map(Line::Fail),
                        other => Err(format!("unknown record type {other:?}")),
                    }
                }
            });
            match parsed {
                Ok(Line::Job(rec)) => {
                    done.insert((rec.target.clone(), rec.shard), rec);
                }
                Ok(Line::Fail(rec)) => failures.push(rec),
                Ok(Line::Header) => {}
                Err(message) if idx == 0 => return Err(StateError::HeaderMismatch(message)),
                // Torn trailing line: the crash artifact resume exists
                // for. Truncate it away so later appends start on a
                // fresh line (it may lack its newline) and the next
                // resume never mistakes it for mid-file corruption.
                Err(_) if is_last => truncate_to = Some(starts[idx]),
                Err(message) => {
                    return Err(StateError::Corrupt {
                        line: idx + 1,
                        message,
                    })
                }
            }
        }
        let good_len = match truncate_to {
            Some(len) => {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(len)?;
                len
            }
            None => text.len() as u64,
        };
        let file = OpenOptions::new().append(true).open(&path)?;
        let seq = (done.len() + failures.len()) as u64;
        Ok(CampaignState {
            path,
            _lock: lock,
            file: BufWriter::new(file),
            done,
            failures,
            good_len,
            seq,
            faults: None,
        })
    }

    /// Attaches a fault plan: subsequent appends consult it (the
    /// `io@checkpoint:...` injection point).
    pub fn set_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Appends one finished job, flushes, and fsyncs it.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Io`] if the append, flush, or sync fails.
    pub fn record(&mut self, rec: JobRecord) -> Result<(), StateError> {
        self.append_job(rec)?;
        self.sync()
    }

    /// Appends one finished job and flushes it (no fsync — pair with
    /// [`sync`](CampaignState::sync), or use
    /// [`record`](CampaignState::record)).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Io`] if the append or flush fails; call
    /// [`repair`](CampaignState::repair) before retrying so a partial
    /// write cannot corrupt the file.
    pub fn append_job(&mut self, rec: JobRecord) -> Result<(), StateError> {
        self.append_record(&rec.to_json())?;
        self.done.insert((rec.target.clone(), rec.shard), rec);
        Ok(())
    }

    /// Appends one failed job attempt and flushes it, so retry counts and
    /// quarantine state survive kill/resume.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Io`] if the append or flush fails; call
    /// [`repair`](CampaignState::repair) before retrying.
    pub fn append_failure(&mut self, rec: FailureRecord) -> Result<(), StateError> {
        self.append_record(&rec.to_json())?;
        self.failures.push(rec);
        Ok(())
    }

    /// Forces the appended records to stable storage (`sync_all`). A
    /// flush only reaches the OS page cache; only the fsync makes the
    /// record durable against power loss.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Io`] if the flush or sync fails.
    pub fn sync(&mut self) -> Result<(), StateError> {
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        Ok(())
    }

    /// Recovers the append handle after a failed write: discards any
    /// bytes still buffered, truncates the file back to the last
    /// successfully appended record (clipping a partial write), and
    /// reopens for append. After `repair`, retrying the failed append is
    /// safe — without it a half-written line followed by a retry would
    /// read as mid-file corruption on the next resume.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Io`] if the truncate or reopen fails.
    pub fn repair(&mut self) -> Result<(), StateError> {
        let fresh = OpenOptions::new().append(true).open(&self.path)?;
        // `into_parts` (not drop) so the old buffer is discarded instead
        // of flushed after the truncate.
        let old = std::mem::replace(&mut self.file, BufWriter::new(fresh));
        let (old_file, _discarded) = old.into_parts();
        drop(old_file);
        let f = OpenOptions::new().write(true).open(&self.path)?;
        f.set_len(self.good_len)?;
        Ok(())
    }

    /// Writes one record line: consults the fault plan, appends, flushes,
    /// and advances the good-length watermark.
    fn append_record(&mut self, v: &Json) -> Result<(), StateError> {
        self.seq += 1;
        if let Some(plan) = &self.faults {
            if plan.fire_checkpoint(self.seq) {
                return Err(StateError::Io(std::io::Error::other(format!(
                    "injected checkpoint I/O fault (append #{})",
                    self.seq
                ))));
            }
        }
        self.append_line(v)
    }

    fn append_line(&mut self, v: &Json) -> Result<(), StateError> {
        let line = format!("{}\n", v.render());
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.good_len += line.len() as u64;
        Ok(())
    }

    /// Finished jobs, keyed by `(target, shard)`.
    pub fn done(&self) -> &BTreeMap<(String, u32), JobRecord> {
        &self.done
    }

    /// Failed job attempts, in append (i.e. failure) order.
    pub fn failures(&self) -> &[FailureRecord] {
        &self.failures
    }

    /// True if this `(target, shard)` job already has a checkpoint record.
    pub fn is_done(&self, target: &str, shard: u32) -> bool {
        self.done.contains_key(&(target.to_string(), shard))
    }

    /// Path of the checkpoint file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    // test-only: unwraps in this module assert test invariants.
    use super::*;

    fn header() -> CampaignHeader {
        CampaignHeader {
            seed: 0xFEED_u64,
            execs_per_target: 1_000,
            shards_per_target: 4,
            targets: vec!["tcpdump".to_string(), "mujs".to_string()],
        }
    }

    fn record(target: &str, shard: u32) -> JobRecord {
        JobRecord {
            target: target.to_string(),
            shard,
            execs: 250,
            oracle_execs: 2_500,
            divergent: 3,
            crashes: 1,
            signatures: vec!["sig-a".to_string(), "sig-b".to_string()],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("compdiff-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrips_header_and_jobs() {
        let dir = temp_dir("roundtrip");
        let mut st = CampaignState::create(&dir, &header()).unwrap();
        st.record(record("tcpdump", 0)).unwrap();
        st.record(record("mujs", 2)).unwrap();
        drop(st);

        let st = CampaignState::resume(&dir, &header()).unwrap();
        assert_eq!(st.done().len(), 2);
        assert_eq!(st.done()[&("tcpdump".to_string(), 0)], record("tcpdump", 0));
        assert!(st.is_done("mujs", 2));
        assert!(!st.is_done("mujs", 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_trailing_line_is_skipped() {
        let dir = temp_dir("torn");
        let mut st = CampaignState::create(&dir, &header()).unwrap();
        st.record(record("tcpdump", 0)).unwrap();
        drop(st);
        // Simulate a crash mid-append: half a JSON object, no newline.
        let path = dir.join(CHECKPOINT_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"type\":\"job\",\"target\":\"mujs\",\"sha").unwrap();
        drop(f);

        let mut st = CampaignState::resume(&dir, &header()).unwrap();
        assert_eq!(st.done().len(), 1, "torn line must not count as done");
        // The torn fragment is truncated away, so the redone job lands on
        // a fresh line and the *next* resume reads a clean file.
        st.record(record("mujs", 1)).unwrap();
        drop(st);
        let st = CampaignState::resume(&dir, &header()).unwrap();
        assert_eq!(st.done().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let dir = temp_dir("corrupt");
        let mut st = CampaignState::create(&dir, &header()).unwrap();
        st.record(record("tcpdump", 0)).unwrap();
        drop(st);
        let path = dir.join(CHECKPOINT_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mangled = format!("{}\nnot json at all\n{}\n", lines[0], lines[1]);
        std::fs::write(&path, mangled).unwrap();

        match CampaignState::resume(&dir, &header()) {
            Err(StateError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let dir = temp_dir("mismatch");
        let st = CampaignState::create(&dir, &header()).unwrap();
        drop(st);
        let mut other = header();
        other.seed = 7;
        assert!(matches!(
            CampaignState::resume(&dir, &other),
            Err(StateError::HeaderMismatch(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_campaign_refuses_to_clobber_existing_checkpoint() {
        let dir = temp_dir("clobber");
        let mut st = CampaignState::create(&dir, &header()).unwrap();
        st.record(record("tcpdump", 0)).unwrap();
        drop(st);

        match CampaignState::create(&dir, &header()) {
            Err(StateError::AlreadyExists(p)) => {
                assert_eq!(p, dir.join(CHECKPOINT_FILE));
            }
            other => panic!("expected AlreadyExists, got {other:?}"),
        }
        // The refusal must not have damaged the original checkpoint.
        let st = CampaignState::resume(&dir, &header()).unwrap();
        assert_eq!(st.done().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failure_records_roundtrip_and_torn_failure_tail_is_skipped() {
        let fail = FailureRecord {
            target: "tcpdump".to_string(),
            shard: 1,
            attempt: 2,
            kind: FailureKind::Panic,
            message: "index out of bounds: len 3".to_string(),
        };
        let dir = temp_dir("failures");
        let mut st = CampaignState::create(&dir, &header()).unwrap();
        st.append_failure(fail.clone()).unwrap();
        st.sync().unwrap();
        st.record(record("tcpdump", 1)).unwrap();
        drop(st);

        let st = CampaignState::resume(&dir, &header()).unwrap();
        assert_eq!(st.failures(), std::slice::from_ref(&fail));
        assert!(st.is_done("tcpdump", 1));
        drop(st);

        // A crash mid-way through appending a *failure* line is skipped
        // just like a torn job line.
        let path = dir.join(CHECKPOINT_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"type\":\"failure\",\"target\":\"mu").unwrap();
        drop(f);
        let st = CampaignState::resume(&dir, &header()).unwrap();
        assert_eq!(st.failures(), &[fail]);
        assert_eq!(st.done().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// An injected checkpoint I/O fault surfaces as `StateError::Io`;
    /// after `repair()` the retry succeeds and the file reads back clean
    /// (the failed attempt leaves no trace).
    #[test]
    fn injected_append_fault_repairs_and_retries() {
        use crate::faults::FaultPlan;
        let dir = temp_dir("inject");
        let mut st = CampaignState::create(&dir, &header()).unwrap();
        st.record(record("tcpdump", 0)).unwrap();
        // Fail the second record append (seq counts record appends only,
        // not the header).
        st.set_faults(Arc::new(FaultPlan::parse("io@checkpoint:2", 1).unwrap()));

        let err = st.record(record("mujs", 1)).unwrap_err();
        assert!(matches!(err, StateError::Io(_)), "got {err:?}");
        st.repair().unwrap();
        // The retry is append #3, past the injected fault.
        st.record(record("mujs", 1)).unwrap();
        drop(st);

        let st = CampaignState::resume(&dir, &header()).unwrap();
        assert_eq!(st.done().len(), 2);
        assert!(st.is_done("mujs", 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// While a `CampaignState` is live, any second open of the same
    /// directory — create *or* resume — is refused with a typed
    /// `Locked` error naming the owning PID; dropping the state
    /// releases the lock.
    #[test]
    fn second_writer_is_refused_while_lock_is_held() {
        let dir = temp_dir("locked");
        let st = CampaignState::create(&dir, &header()).unwrap();
        for attempt in [
            CampaignState::create(&dir, &header()),
            CampaignState::resume(&dir, &header()),
        ] {
            match attempt {
                Err(StateError::Locked { path, owner_pid }) => {
                    assert_eq!(path, dir.join(LOCK_FILE));
                    assert_eq!(owner_pid, u64::from(std::process::id()));
                }
                other => panic!("expected Locked, got {other:?}"),
            }
        }
        drop(st);
        assert!(!dir.join(LOCK_FILE).exists(), "drop must release the lock");
        let st = CampaignState::resume(&dir, &header()).unwrap();
        drop(st);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A lock left behind by a dead process (kill -9 skips Drop) is
    /// stale and must be stolen, not refused forever.
    #[test]
    fn stale_lock_from_dead_process_is_stolen() {
        let dir = temp_dir("stale-lock");
        let st = CampaignState::create(&dir, &header()).unwrap();
        drop(st);
        // PIDs are bounded well below this on Linux (pid_max <= 2^22).
        std::fs::write(dir.join(LOCK_FILE), "{\"pid\": 999999999}\n").unwrap();
        let st = CampaignState::resume(&dir, &header()).unwrap();
        drop(st);
        // An unreadable lock file is treated as stale, too.
        std::fs::write(dir.join(LOCK_FILE), "not json").unwrap();
        let st = CampaignState::resume(&dir, &header()).unwrap();
        drop(st);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Every campaign parameter is pinned by the header: a resume with a
    /// different budget, shard count, or target set (including a rename,
    /// a dropped target, or a reordering) must be refused — and the
    /// original header must still resume cleanly afterwards.
    #[test]
    fn resume_rejects_any_changed_parameter() {
        type Mutation = (&'static str, fn(&mut CampaignHeader));
        let mutations: [Mutation; 5] = [
            ("execs", |h| h.execs_per_target += 1),
            ("shards", |h| h.shards_per_target += 1),
            ("dropped-target", |h| {
                h.targets.pop();
            }),
            ("renamed-target", |h| {
                h.targets[0] = "libxml2".to_string();
            }),
            ("reordered-targets", |h| h.targets.reverse()),
        ];
        for (tag, mutate) in mutations {
            let dir = temp_dir(&format!("mismatch-{tag}"));
            let mut st = CampaignState::create(&dir, &header()).unwrap();
            st.record(record("tcpdump", 0)).unwrap();
            drop(st);

            let mut changed = header();
            mutate(&mut changed);
            match CampaignState::resume(&dir, &changed) {
                Err(StateError::HeaderMismatch(_)) => {}
                other => panic!("{tag}: expected HeaderMismatch, got {other:?}"),
            }
            let st = CampaignState::resume(&dir, &header())
                .unwrap_or_else(|e| panic!("{tag}: original header must resume: {e}"));
            assert_eq!(st.done().len(), 1);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
