//! Crash-resilient campaign state: a JSONL checkpoint file.
//!
//! The file is append-only. Line 1 is a header pinning the campaign
//! parameters (seed, budget, shard count, target list); every later line
//! records one finished (target × shard) job with its deduped discrepancy
//! signatures. Each record is flushed as soon as the job completes, so a
//! `kill -9` loses at most the in-flight jobs — and because a job's result
//! is a pure function of `(campaign seed, target, shard)`, redoing the
//! lost jobs on resume reproduces the exact same campaign state.
//!
//! A torn trailing line (the process died mid-write) is detected by the
//! strict JSON parser and skipped; a torn line anywhere *else* means the
//! file was corrupted by something other than a crash mid-append, and
//! resume refuses to guess.

use compdiff::Json;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Checkpoint format version (line 1 of every checkpoint file).
pub const STATE_VERSION: i64 = 1;

/// Name of the checkpoint file inside the campaign directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.jsonl";

/// The campaign parameters a checkpoint is only valid for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignHeader {
    /// Root RNG seed.
    pub seed: u64,
    /// Fuzz-binary execution budget per target.
    pub execs_per_target: u64,
    /// Number of seed shards each target's budget is split into.
    pub shards_per_target: u32,
    /// Target names, in schedule order.
    pub targets: Vec<String>,
}

impl CampaignHeader {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", Json::Str("header".to_string())),
            ("version", Json::Int(STATE_VERSION)),
            // u64 seeds round-trip through a bit-cast so the JSON integer
            // space (i64) covers the full seed space.
            ("seed", Json::Int(self.seed as i64)),
            ("execs_per_target", Json::Int(self.execs_per_target as i64)),
            ("shards", Json::Int(i64::from(self.shards_per_target))),
            ("targets", Json::strings(self.targets.iter())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        if v.get("type").and_then(Json::as_str) != Some("header") {
            return Err("first line is not a campaign header".to_string());
        }
        let version = v
            .get("version")
            .and_then(Json::as_i64)
            .ok_or("header missing version")?;
        if version != STATE_VERSION {
            return Err(format!(
                "checkpoint version {version}, expected {STATE_VERSION}"
            ));
        }
        let targets = v
            .get("targets")
            .and_then(Json::as_array)
            .ok_or("header missing targets")?
            .iter()
            .map(|t| {
                t.as_str()
                    .map(str::to_string)
                    .ok_or("non-string target name")
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignHeader {
            seed: v
                .get("seed")
                .and_then(Json::as_i64)
                .ok_or("header missing seed")? as u64,
            execs_per_target: v
                .get("execs_per_target")
                .and_then(Json::as_i64)
                .ok_or("header missing execs_per_target")? as u64,
            shards_per_target: v
                .get("shards")
                .and_then(Json::as_i64)
                .and_then(|s| u32::try_from(s).ok())
                .ok_or("header missing shards")?,
            targets,
        })
    }
}

/// One finished (target × shard) job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Target name.
    pub target: String,
    /// Shard index within the target, `0..shards_per_target`.
    pub shard: u32,
    /// Fuzz-binary executions performed.
    pub execs: u64,
    /// Differential (oracle) executions performed.
    pub oracle_execs: u64,
    /// Inputs whose differential run diverged.
    pub divergent: u64,
    /// Unique crash buckets found by the fuzzer.
    pub crashes: u64,
    /// Deduped discrepancy signatures seen in this job, sorted.
    pub signatures: Vec<String>,
}

impl JobRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", Json::Str("job".to_string())),
            ("target", Json::Str(self.target.clone())),
            ("shard", Json::Int(i64::from(self.shard))),
            ("execs", Json::Int(self.execs as i64)),
            ("oracle_execs", Json::Int(self.oracle_execs as i64)),
            ("divergent", Json::Int(self.divergent as i64)),
            ("crashes", Json::Int(self.crashes as i64)),
            ("signatures", Json::strings(self.signatures.iter())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        if v.get("type").and_then(Json::as_str) != Some("job") {
            return Err("record line is not a job record".to_string());
        }
        let int = |k: &str| {
            v.get(k)
                .and_then(Json::as_i64)
                .ok_or(format!("job missing {k}"))
        };
        let signatures = v
            .get("signatures")
            .and_then(Json::as_array)
            .ok_or("job missing signatures")?
            .iter()
            .map(|s| s.as_str().map(str::to_string).ok_or("non-string signature"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(JobRecord {
            target: v
                .get("target")
                .and_then(Json::as_str)
                .ok_or("job missing target")?
                .to_string(),
            shard: u32::try_from(int("shard")?).map_err(|_| "shard out of range")?,
            execs: int("execs")? as u64,
            oracle_execs: int("oracle_execs")? as u64,
            divergent: int("divergent")? as u64,
            crashes: int("crashes")? as u64,
            signatures,
        })
    }
}

/// Errors opening or updating a checkpoint.
#[derive(Debug)]
pub enum StateError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A non-trailing line failed to parse — not a crash artifact.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The checkpoint was written by a campaign with different parameters.
    HeaderMismatch(String),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            StateError::Corrupt { line, message } => {
                write!(f, "checkpoint corrupt at line {line}: {message}")
            }
            StateError::HeaderMismatch(m) => write!(f, "checkpoint header mismatch: {m}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<std::io::Error> for StateError {
    fn from(e: std::io::Error) -> Self {
        StateError::Io(e)
    }
}

/// The live campaign state: finished jobs plus the append handle.
pub struct CampaignState {
    path: PathBuf,
    file: BufWriter<File>,
    done: BTreeMap<(String, u32), JobRecord>,
}

impl std::fmt::Debug for CampaignState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignState")
            .field("path", &self.path)
            .field("done", &self.done.len())
            .finish()
    }
}

impl CampaignState {
    /// Starts a fresh checkpoint in `dir` (created if missing), truncating
    /// any previous one.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Io`] if the directory or file cannot be
    /// created.
    pub fn create(dir: &Path, header: &CampaignHeader) -> Result<Self, StateError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(CHECKPOINT_FILE);
        let file = File::create(&path)?;
        let mut state = CampaignState {
            path,
            file: BufWriter::new(file),
            done: BTreeMap::new(),
        };
        state.append_line(&header.to_json())?;
        Ok(state)
    }

    /// Reopens an existing checkpoint, validating it against `header` and
    /// loading every finished job. A torn final line (the previous process
    /// died mid-append) is skipped; its job simply re-runs.
    ///
    /// # Errors
    ///
    /// [`StateError::HeaderMismatch`] if the checkpoint belongs to a
    /// campaign with different parameters, [`StateError::Corrupt`] if a
    /// non-trailing line is unreadable.
    pub fn resume(dir: &Path, header: &CampaignHeader) -> Result<Self, StateError> {
        let path = dir.join(CHECKPOINT_FILE);
        let text = std::fs::read_to_string(&path)?;
        let lines: Vec<&str> = text.lines().collect();
        if lines.is_empty() {
            return Err(StateError::Corrupt {
                line: 1,
                message: "empty checkpoint (no header)".to_string(),
            });
        }
        // Byte offset where each line starts, for truncating a torn tail.
        let mut starts = Vec::with_capacity(lines.len());
        let mut off = 0usize;
        for line in &lines {
            starts.push(off as u64);
            off += line.len() + 1;
        }
        let mut truncate_to: Option<u64> = None;
        let mut done = BTreeMap::new();
        for (idx, line) in lines.iter().enumerate() {
            let is_last = idx + 1 == lines.len();
            let parsed = Json::parse(line).map_err(|e| e.to_string()).and_then(|v| {
                if idx == 0 {
                    let found = CampaignHeader::from_json(&v)?;
                    if found != *header {
                        return Err(format!(
                            "this campaign was started with different parameters \
                             (seed/budget/shards/targets); pass the original flags \
                             or start a fresh checkpoint ({})",
                            path.display()
                        ));
                    }
                    Ok(None)
                } else {
                    JobRecord::from_json(&v).map(Some)
                }
            });
            match parsed {
                Ok(Some(rec)) => {
                    done.insert((rec.target.clone(), rec.shard), rec);
                }
                Ok(None) => {}
                Err(message) if idx == 0 => return Err(StateError::HeaderMismatch(message)),
                // Torn trailing line: the crash artifact resume exists
                // for. Truncate it away so later appends start on a
                // fresh line (it may lack its newline) and the next
                // resume never mistakes it for mid-file corruption.
                Err(_) if is_last => truncate_to = Some(starts[idx]),
                Err(message) => {
                    return Err(StateError::Corrupt {
                        line: idx + 1,
                        message,
                    })
                }
            }
        }
        if let Some(len) = truncate_to {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(len)?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(CampaignState {
            path,
            file: BufWriter::new(file),
            done,
        })
    }

    /// Appends one finished job and flushes it to disk immediately.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Io`] if the append or flush fails.
    pub fn record(&mut self, rec: JobRecord) -> Result<(), StateError> {
        self.append_line(&rec.to_json())?;
        self.done.insert((rec.target.clone(), rec.shard), rec);
        Ok(())
    }

    fn append_line(&mut self, v: &Json) -> Result<(), StateError> {
        writeln!(self.file, "{}", v.render())?;
        self.file.flush()?;
        Ok(())
    }

    /// Finished jobs, keyed by `(target, shard)`.
    pub fn done(&self) -> &BTreeMap<(String, u32), JobRecord> {
        &self.done
    }

    /// True if this `(target, shard)` job already has a checkpoint record.
    pub fn is_done(&self, target: &str, shard: u32) -> bool {
        self.done.contains_key(&(target.to_string(), shard))
    }

    /// Path of the checkpoint file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> CampaignHeader {
        CampaignHeader {
            seed: 0xFEED_u64,
            execs_per_target: 1_000,
            shards_per_target: 4,
            targets: vec!["tcpdump".to_string(), "mujs".to_string()],
        }
    }

    fn record(target: &str, shard: u32) -> JobRecord {
        JobRecord {
            target: target.to_string(),
            shard,
            execs: 250,
            oracle_execs: 2_500,
            divergent: 3,
            crashes: 1,
            signatures: vec!["sig-a".to_string(), "sig-b".to_string()],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("compdiff-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrips_header_and_jobs() {
        let dir = temp_dir("roundtrip");
        let mut st = CampaignState::create(&dir, &header()).unwrap();
        st.record(record("tcpdump", 0)).unwrap();
        st.record(record("mujs", 2)).unwrap();
        drop(st);

        let st = CampaignState::resume(&dir, &header()).unwrap();
        assert_eq!(st.done().len(), 2);
        assert_eq!(st.done()[&("tcpdump".to_string(), 0)], record("tcpdump", 0));
        assert!(st.is_done("mujs", 2));
        assert!(!st.is_done("mujs", 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_trailing_line_is_skipped() {
        let dir = temp_dir("torn");
        let mut st = CampaignState::create(&dir, &header()).unwrap();
        st.record(record("tcpdump", 0)).unwrap();
        drop(st);
        // Simulate a crash mid-append: half a JSON object, no newline.
        let path = dir.join(CHECKPOINT_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"type\":\"job\",\"target\":\"mujs\",\"sha").unwrap();
        drop(f);

        let mut st = CampaignState::resume(&dir, &header()).unwrap();
        assert_eq!(st.done().len(), 1, "torn line must not count as done");
        // The torn fragment is truncated away, so the redone job lands on
        // a fresh line and the *next* resume reads a clean file.
        st.record(record("mujs", 1)).unwrap();
        drop(st);
        let st = CampaignState::resume(&dir, &header()).unwrap();
        assert_eq!(st.done().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let dir = temp_dir("corrupt");
        let mut st = CampaignState::create(&dir, &header()).unwrap();
        st.record(record("tcpdump", 0)).unwrap();
        drop(st);
        let path = dir.join(CHECKPOINT_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mangled = format!("{}\nnot json at all\n{}\n", lines[0], lines[1]);
        std::fs::write(&path, mangled).unwrap();

        match CampaignState::resume(&dir, &header()) {
            Err(StateError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let dir = temp_dir("mismatch");
        let st = CampaignState::create(&dir, &header()).unwrap();
        drop(st);
        let mut other = header();
        other.seed = 7;
        assert!(matches!(
            CampaignState::resume(&dir, &other),
            Err(StateError::HeaderMismatch(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Every campaign parameter is pinned by the header: a resume with a
    /// different budget, shard count, or target set (including a rename,
    /// a dropped target, or a reordering) must be refused — and the
    /// original header must still resume cleanly afterwards.
    #[test]
    fn resume_rejects_any_changed_parameter() {
        type Mutation = (&'static str, fn(&mut CampaignHeader));
        let mutations: [Mutation; 5] = [
            ("execs", |h| h.execs_per_target += 1),
            ("shards", |h| h.shards_per_target += 1),
            ("dropped-target", |h| {
                h.targets.pop();
            }),
            ("renamed-target", |h| {
                h.targets[0] = "libxml2".to_string();
            }),
            ("reordered-targets", |h| h.targets.reverse()),
        ];
        for (tag, mutate) in mutations {
            let dir = temp_dir(&format!("mismatch-{tag}"));
            let mut st = CampaignState::create(&dir, &header()).unwrap();
            st.record(record("tcpdump", 0)).unwrap();
            drop(st);

            let mut changed = header();
            mutate(&mut changed);
            match CampaignState::resume(&dir, &changed) {
                Err(StateError::HeaderMismatch(_)) => {}
                other => panic!("{tag}: expected HeaderMismatch, got {other:?}"),
            }
            let st = CampaignState::resume(&dir, &header())
                .unwrap_or_else(|e| panic!("{tag}: original header must resume: {e}"));
            assert_eq!(st.done().len(), 1);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
