//! Campaign-wide aggregation: per-worker throughput, per-target divergence
//! counts, the global deduped discrepancy-signature set, and the
//! fault-tolerance ledger view (retries, failed jobs, quarantines).

use crate::state::JobRecord;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Aggregated results for one target across all of its shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TargetStats {
    /// Shards finished.
    pub jobs: u32,
    /// Fuzz-binary executions.
    pub execs: u64,
    /// Differential (oracle) executions.
    pub oracle_execs: u64,
    /// Divergent inputs found.
    pub divergent: u64,
    /// Unique crash buckets found.
    pub crashes: u64,
    /// Failed job attempts (each retry that failed counts once).
    pub failures: u64,
    /// Shards skipped because the target was quarantined.
    pub skipped: u32,
    /// Deduped discrepancy signatures (by [`compdiff::signature_of`]).
    pub signatures: BTreeSet<String>,
}

/// The campaign aggregator. Fed one [`JobRecord`] at a time — either live
/// from a worker or replayed from a checkpoint on resume — and renders the
/// live progress line plus the final summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Jobs in the whole campaign (including checkpointed ones).
    pub jobs_total: usize,
    /// Jobs finished (including checkpointed ones).
    pub jobs_done: usize,
    /// Jobs replayed from the checkpoint rather than run in this process.
    pub jobs_resumed: usize,
    /// Fuzz-binary executions by each worker *in this process*.
    pub per_worker_execs: Vec<u64>,
    /// Per-target aggregates.
    pub per_target: BTreeMap<String, TargetStats>,
    /// Campaign-wide deduped discrepancy signatures.
    pub signatures: BTreeSet<String>,
    /// Total fuzz-binary executions.
    pub execs: u64,
    /// Total differential executions.
    pub oracle_execs: u64,
    /// Total divergent inputs.
    pub divergent: u64,
    /// Total unique crash buckets (summed per shard).
    pub crashes: u64,
    /// Jobs that resolved as failed (retries exhausted or quarantined).
    pub jobs_failed: usize,
    /// Jobs never run because their target was quarantined.
    pub jobs_skipped: usize,
    /// Job attempts that were re-run after a failure.
    pub retries: u64,
    /// Failed job attempts (every failure, including retried ones).
    pub failures: u64,
    /// Targets quarantined after repeated failures.
    pub quarantined: BTreeSet<String>,
}

impl CampaignStats {
    /// A fresh aggregator for `workers` workers over `jobs_total` jobs.
    pub fn new(workers: usize, jobs_total: usize) -> Self {
        CampaignStats {
            jobs_total,
            per_worker_execs: vec![0; workers],
            ..Default::default()
        }
    }

    /// Folds one finished job in. `worker` is `Some(i)` for live results
    /// and `None` for jobs replayed from a checkpoint (they count toward
    /// totals but not toward any worker's throughput).
    pub fn absorb(&mut self, worker: Option<usize>, rec: &JobRecord) {
        self.jobs_done += 1;
        match worker {
            Some(w) => {
                // Grows on demand: in coordinator/worker mode a respawned
                // worker process can carry an index past the initial count.
                if self.per_worker_execs.len() <= w {
                    self.per_worker_execs.resize(w + 1, 0);
                }
                self.per_worker_execs[w] += rec.execs;
            }
            None => self.jobs_resumed += 1,
        }
        self.execs += rec.execs;
        self.oracle_execs += rec.oracle_execs;
        self.divergent += rec.divergent;
        self.crashes += rec.crashes;
        let t = self.per_target.entry(rec.target.clone()).or_default();
        t.jobs += 1;
        t.execs += rec.execs;
        t.oracle_execs += rec.oracle_execs;
        t.divergent += rec.divergent;
        t.crashes += rec.crashes;
        for sig in &rec.signatures {
            t.signatures.insert(sig.clone());
            self.signatures.insert(sig.clone());
        }
    }

    /// Folds in one failed job attempt (the attempt may still be retried;
    /// terminal failures are reported via
    /// [`note_failed_job`](CampaignStats::note_failed_job)).
    pub fn note_failure(&mut self, target: &str) {
        self.failures += 1;
        self.per_target
            .entry(target.to_string())
            .or_default()
            .failures += 1;
    }

    /// Counts one retry (a failed attempt that was requeued).
    pub fn note_retry(&mut self) {
        self.retries += 1;
    }

    /// Resolves one job as failed — retries exhausted or its target
    /// quarantined mid-attempt.
    pub fn note_failed_job(&mut self) {
        self.jobs_failed += 1;
    }

    /// Marks a target quarantined.
    pub fn note_quarantine(&mut self, target: &str) {
        self.quarantined.insert(target.to_string());
    }

    /// Counts `n` of `target`'s jobs as skipped (swept by a quarantine,
    /// or never scheduled on resume because the target was already
    /// quarantined).
    pub fn note_skipped(&mut self, target: &str, n: u32) {
        self.jobs_skipped += n as usize;
        self.per_target
            .entry(target.to_string())
            .or_default()
            .skipped += n;
    }

    /// True if every job resolved successfully (nothing failed or
    /// skipped) — i.e. the campaign's results are complete, not partial.
    pub fn is_complete(&self) -> bool {
        self.jobs_failed == 0 && self.jobs_skipped == 0
    }

    /// One-line live progress, suitable for overwriting a terminal line.
    pub fn progress_line(&self) -> String {
        let failed = if self.jobs_failed > 0 {
            format!(" failed={}", self.jobs_failed)
        } else {
            String::new()
        };
        format!(
            "[{}/{} jobs] execs={} diffs={} ({} unique) crashes={}{failed}",
            self.jobs_done,
            self.jobs_total,
            self.execs,
            self.divergent,
            self.signatures.len(),
            self.crashes
        )
    }

    /// The end-of-campaign summary table.
    pub fn render_summary(&self, elapsed: Duration, cache: (u64, u64)) -> String {
        let mut s = String::new();
        if self.is_complete() {
            s.push_str("== campaign summary ==\n");
        } else {
            s.push_str("== campaign summary (PARTIAL RESULTS) ==\n");
        }
        s.push_str(&format!(
            "jobs: {}/{} done ({} resumed from checkpoint)\n",
            self.jobs_done, self.jobs_total, self.jobs_resumed
        ));
        if self.failures > 0 || self.jobs_skipped > 0 {
            s.push_str(&format!(
                "fault tolerance: {} failed attempts, {} retries, {} jobs failed, {} skipped\n",
                self.failures, self.retries, self.jobs_failed, self.jobs_skipped
            ));
            for t in &self.quarantined {
                let ts = self.per_target.get(t);
                s.push_str(&format!(
                    "  quarantined: {t} ({} failures, {} shards skipped)\n",
                    ts.map_or(0, |t| t.failures),
                    ts.map_or(0, |t| t.skipped)
                ));
            }
        }
        s.push_str(&format!(
            "execs: {} fuzz + {} differential in {:.1}s\n",
            self.execs,
            self.oracle_execs,
            elapsed.as_secs_f64()
        ));
        let secs = elapsed.as_secs_f64().max(1e-9);
        for (w, execs) in self.per_worker_execs.iter().enumerate() {
            s.push_str(&format!(
                "  worker {w}: {execs} execs ({:.0} execs/sec)\n",
                *execs as f64 / secs
            ));
        }
        s.push_str(&format!(
            "binary cache: {} compiles, {} reuses\n",
            cache.1, cache.0
        ));
        s.push_str(&format!(
            "discrepancies: {} divergent inputs, {} unique signatures, {} crash buckets\n",
            self.divergent,
            self.signatures.len(),
            self.crashes
        ));
        s.push_str("per-target:\n");
        for (name, t) in &self.per_target {
            s.push_str(&format!(
                "  {name:<14} execs={:<7} divergent={:<5} unique={:<3} crashes={}\n",
                t.execs,
                t.divergent,
                t.signatures.len(),
                t.crashes
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(target: &str, shard: u32, sigs: &[&str]) -> JobRecord {
        JobRecord {
            target: target.to_string(),
            shard,
            execs: 100,
            oracle_execs: 1_000,
            divergent: sigs.len() as u64,
            crashes: 1,
            signatures: sigs.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn absorb_aggregates_and_dedups() {
        let mut st = CampaignStats::new(2, 4);
        st.absorb(Some(0), &rec("a", 0, &["s1", "s2"]));
        st.absorb(Some(1), &rec("a", 1, &["s2", "s3"]));
        st.absorb(None, &rec("b", 0, &["s1"]));
        assert_eq!(st.jobs_done, 3);
        assert_eq!(st.jobs_resumed, 1);
        assert_eq!(st.execs, 300);
        assert_eq!(st.per_worker_execs, vec![100, 100]);
        assert_eq!(st.signatures.len(), 3, "global dedup across targets");
        assert_eq!(st.per_target["a"].signatures.len(), 3);
        assert_eq!(st.per_target["b"].signatures.len(), 1);
        let summary = st.render_summary(Duration::from_secs(2), (5, 2));
        assert!(summary.contains("3/4 done"));
        assert!(summary.contains("worker 0: 100 execs (50 execs/sec)"));
        assert!(st.progress_line().contains("[3/4 jobs]"));
        // A clean campaign reports no fault-tolerance noise.
        assert!(!summary.contains("PARTIAL"));
        assert!(!summary.contains("fault tolerance:"));
        assert!(!st.progress_line().contains("failed="));
    }

    #[test]
    fn failure_accounting_renders_partial_results() {
        let mut st = CampaignStats::new(1, 4);
        st.absorb(Some(0), &rec("a", 0, &[]));
        st.note_failure("b");
        st.note_retry();
        st.note_failure("b");
        st.note_failed_job();
        st.note_quarantine("b");
        st.note_skipped("b", 2);
        assert!(!st.is_complete());
        assert_eq!(st.per_target["b"].failures, 2);
        assert_eq!(st.per_target["b"].skipped, 2);
        let summary = st.render_summary(Duration::from_secs(1), (0, 1));
        assert!(summary.contains("PARTIAL RESULTS"));
        assert!(summary
            .contains("fault tolerance: 2 failed attempts, 1 retries, 1 jobs failed, 2 skipped"));
        assert!(summary.contains("quarantined: b (2 failures, 2 shards skipped)"));
        assert!(st.progress_line().ends_with("failed=1"));
    }
}
