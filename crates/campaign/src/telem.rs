//! Telemetry wiring: the campaign-side adapters that bridge the
//! dependency-free observability seams of the lower crates onto one
//! [`telemetry`] registry.
//!
//! The instrumented crates deliberately do not depend on `telemetry`:
//! `compdiff` exposes [`DiffObserver`], `fuzzing` exposes
//! [`FuzzObserver`], and `minc_vm` maintains intrinsic
//! [`SessionStats`] counters. This module is the one place those seams
//! meet a [`MetricRegistry`](telemetry::MetricRegistry): handles are
//! resolved by name once per campaign, so the per-execution adapters only
//! touch relaxed atomics and the injected clock.

use compdiff::{DiffObserver, DiffOutcome};
use fuzzing::FuzzObserver;
use minc_compile::CompilerImpl;
use minc_vm::{ExecResult, SessionStats};
use std::sync::Arc;
use telemetry::{Counter, Gauge, Histogram, Telemetry};

/// Pre-resolved metric handles for one campaign, shared by every worker.
#[derive(Debug)]
pub struct CampaignTelemetry {
    /// The shared facade: clock, recorder, and registry.
    pub tel: Arc<Telemetry>,
    /// `campaign.jobs_done` — jobs finished live in this process.
    pub jobs_done: Arc<Counter>,
    /// `campaign.job_us` — per-job wall-clock duration.
    pub job_us: Arc<Histogram>,
    /// `campaign.checkpoint_write_us` — checkpoint append+flush latency.
    pub checkpoint_write_us: Arc<Histogram>,
    /// `campaign.checkpoint_sync_us` — checkpoint fsync latency.
    pub checkpoint_sync_us: Arc<Histogram>,
    /// `campaign.checkpoint_errors` — failed checkpoint appends
    /// (including injected ones).
    pub checkpoint_errors: Arc<Counter>,
    /// `campaign.worker_panics` — job attempts that panicked and were
    /// isolated by `catch_unwind`.
    pub worker_panics: Arc<Counter>,
    /// `campaign.job_retries` — failed attempts that were requeued.
    pub job_retries: Arc<Counter>,
    /// `campaign.leases_granted` — jobs handed to a worker (thread pops
    /// in-process; lease grants in coordinator/worker mode).
    pub leases_granted: Arc<Counter>,
    /// `campaign.leases_expired` — leases reclaimed because the holding
    /// worker process stopped renewing them.
    pub leases_expired: Arc<Counter>,
    /// `campaign.workers_spawned` — workers started (threads in-process;
    /// processes, including respawns, in coordinator/worker mode).
    pub workers_spawned: Arc<Counter>,
    /// `campaign.stale_results` — results that arrived for a lease that
    /// had already expired and been re-queued (the result is dropped).
    pub stale_results: Arc<Counter>,
    /// `campaign.targets_quarantined` — targets degraded out of the
    /// schedule after repeated failures.
    pub targets_quarantined: Arc<Gauge>,
    /// `campaign.cache_hits` — binary-cache reuses (set at campaign end).
    pub cache_hits: Arc<Gauge>,
    /// `campaign.cache_misses` — compiles performed (set at campaign end).
    pub cache_misses: Arc<Gauge>,
    /// `lint.scan_us` — per-target pre-fuzz unstable-code lint latency.
    pub lint_scan_us: Arc<Histogram>,
    /// `sancheck.scan_us` — per-target post-fuzz sanitizer-audit latency.
    pub sancheck_scan_us: Arc<Histogram>,
    /// `sancheck.sites` — UB-site-map entries across audited targets.
    pub sancheck_sites: Arc<Counter>,
    /// `sancheck.san_fn` — sanitizer false negatives (silent on a
    /// must-site in scope).
    pub sancheck_fn: Arc<Counter>,
    /// `sancheck.san_fp` — sanitizer false alarms (fired a statically
    /// refuted class).
    pub sancheck_fp: Arc<Counter>,
    /// `sancheck.verdict_splits` — cross-implementation sanitizer-verdict
    /// divergences.
    pub sancheck_splits: Arc<Counter>,
    /// `fuzz.execs` — fuzz-binary executions.
    pub fuzz_execs: Arc<Counter>,
    /// `fuzz.exec_us` — fuzz-binary execution latency.
    pub fuzz_exec_us: Arc<Histogram>,
    /// `fuzz.queue_depth_max` — high-water mark of the seed queue.
    pub queue_depth_max: Arc<Gauge>,
    /// `fuzz.execs_per_sec` — fuzz-binary throughput over the campaign's
    /// clock (set once at campaign end; 0 under a fixed clock).
    pub fuzz_execs_per_sec: Arc<Gauge>,
    /// `diff.runs` — differential outcomes examined.
    pub diff_runs: Arc<Counter>,
    /// `diff.divergent` — outcomes with more than one equivalence class.
    pub diff_divergent: Arc<Counter>,
    /// `diff.classes` — equivalence-class count per divergent outcome.
    pub diff_classes: Arc<Histogram>,
    /// `diff.escalation_reruns` — re-executions under a doubled step
    /// budget (the timeout-escalation policy).
    pub escalation_reruns: Arc<Counter>,
    /// `diff.batch_size` — inputs per batched oracle sweep.
    pub batch_size: Arc<Histogram>,
    /// `diff.batch_bisections` — batched inputs whose digests disagreed
    /// (or timed out) and were bisected through the per-input path.
    pub batch_bisections: Arc<Counter>,
    /// `diff.exec_us.<impl>` — per-implementation execution latency,
    /// indexed like the differential binary set.
    pub exec_us_by_impl: Vec<Arc<Histogram>>,
    /// `vm.pages_restored` — dirty pages lazily restored on reset.
    pub pages_restored: Arc<Counter>,
    /// `vm.pages_materialized` — pages first-touch materialized.
    pub pages_materialized: Arc<Counter>,
    /// `vm.bulk_builtin_ops` — builtin memory ops on the bulk fast path.
    pub bulk_builtin_ops: Arc<Counter>,
    /// `vm.fallback_builtin_ops` — builtin memory ops on the per-byte
    /// fallback path.
    pub fallback_builtin_ops: Arc<Counter>,
    /// `vm.blocks_translated` — superblocks translated (cache misses in
    /// sessions plus the `BinaryCache`'s up-front per-binary translation).
    pub blocks_translated: Arc<Counter>,
    /// `vm.block_cache_hits` — block-mode runs that reused a cached
    /// translation.
    pub block_cache_hits: Arc<Counter>,
    /// `vm.block_exec` — runs executed through the block dispatcher.
    pub block_exec: Arc<Counter>,
    /// `vm.interp_fallback` — runs executed through the per-instruction
    /// interpreter.
    pub interp_fallback: Arc<Counter>,
    /// `vm.loader_skips` — batched runs that reused the session's
    /// post-loader page image instead of re-running the loader pass.
    pub loader_skips: Arc<Counter>,
}

impl CampaignTelemetry {
    /// Resolves every handle against `tel`'s registry. The
    /// per-implementation histograms are named after the paper's default
    /// implementation set, which is what [`crate::BinaryCache`] compiles.
    pub fn new(tel: Arc<Telemetry>) -> Self {
        let r = tel.registry();
        let exec_us_by_impl = CompilerImpl::default_set()
            .iter()
            .map(|ci| r.histogram(&format!("diff.exec_us.{ci}")))
            .collect();
        CampaignTelemetry {
            jobs_done: r.counter("campaign.jobs_done"),
            job_us: r.histogram("campaign.job_us"),
            checkpoint_write_us: r.histogram("campaign.checkpoint_write_us"),
            checkpoint_sync_us: r.histogram("campaign.checkpoint_sync_us"),
            checkpoint_errors: r.counter("campaign.checkpoint_errors"),
            worker_panics: r.counter("campaign.worker_panics"),
            job_retries: r.counter("campaign.job_retries"),
            leases_granted: r.counter("campaign.leases_granted"),
            leases_expired: r.counter("campaign.leases_expired"),
            workers_spawned: r.counter("campaign.workers_spawned"),
            stale_results: r.counter("campaign.stale_results"),
            targets_quarantined: r.gauge("campaign.targets_quarantined"),
            cache_hits: r.gauge("campaign.cache_hits"),
            cache_misses: r.gauge("campaign.cache_misses"),
            lint_scan_us: r.histogram("lint.scan_us"),
            sancheck_scan_us: r.histogram("sancheck.scan_us"),
            sancheck_sites: r.counter("sancheck.sites"),
            sancheck_fn: r.counter("sancheck.san_fn"),
            sancheck_fp: r.counter("sancheck.san_fp"),
            sancheck_splits: r.counter("sancheck.verdict_splits"),
            fuzz_execs: r.counter("fuzz.execs"),
            fuzz_exec_us: r.histogram("fuzz.exec_us"),
            queue_depth_max: r.gauge("fuzz.queue_depth_max"),
            fuzz_execs_per_sec: r.gauge("fuzz.execs_per_sec"),
            diff_runs: r.counter("diff.runs"),
            diff_divergent: r.counter("diff.divergent"),
            diff_classes: r.histogram("diff.classes"),
            escalation_reruns: r.counter("diff.escalation_reruns"),
            batch_size: r.histogram("diff.batch_size"),
            batch_bisections: r.counter("diff.batch_bisections"),
            exec_us_by_impl,
            pages_restored: r.counter("vm.pages_restored"),
            pages_materialized: r.counter("vm.pages_materialized"),
            bulk_builtin_ops: r.counter("vm.bulk_builtin_ops"),
            fallback_builtin_ops: r.counter("vm.fallback_builtin_ops"),
            blocks_translated: r.counter("vm.blocks_translated"),
            block_cache_hits: r.counter("vm.block_cache_hits"),
            block_exec: r.counter("vm.block_exec"),
            interp_fallback: r.counter("vm.interp_fallback"),
            loader_skips: r.counter("vm.loader_skips"),
            tel,
        }
    }

    /// A fresh per-job adapter for the differential engine's
    /// [`DiffObserver`] seam.
    pub fn diff_observer(&self) -> DiffTelemetry<'_> {
        DiffTelemetry {
            ct: self,
            start_us: 0,
        }
    }

    /// A fresh per-job adapter for the fuzzer's [`FuzzObserver`] seam.
    pub fn fuzz_observer(&self) -> FuzzTelemetry<'_> {
        FuzzTelemetry {
            ct: self,
            start_us: 0,
        }
    }

    /// Folds one job's summed VM-session statistics into the registry.
    pub fn record_vm(&self, vm: SessionStats) {
        self.pages_restored.add(vm.pages_restored);
        self.pages_materialized.add(vm.pages_materialized);
        self.bulk_builtin_ops.add(vm.bulk_builtin_ops);
        self.fallback_builtin_ops.add(vm.fallback_builtin_ops);
        self.blocks_translated.add(vm.blocks_translated);
        self.block_cache_hits.add(vm.block_cache_hits);
        self.block_exec.add(vm.block_exec);
        self.interp_fallback.add(vm.interp_fallback);
        self.loader_skips.add(vm.loader_skips);
    }

    /// Adds superblocks translated outside any session — the
    /// `BinaryCache` translates each compiled binary once up front and
    /// reports the total at campaign end.
    pub fn record_blocks_translated(&self, blocks: u64) {
        self.blocks_translated.add(blocks);
    }

    /// Records one pre-fuzz lint scan: its duration plus one count per
    /// reported defect class (`lint.findings.<defect>`). Counters are
    /// resolved by name so only defect classes that were actually
    /// reported appear in the registry snapshot.
    pub fn record_lint(&self, findings: &[staticheck_ir::LintFinding], scan_us: u64) {
        self.lint_scan_us.record(scan_us);
        let r = self.tel.registry();
        for f in findings {
            r.counter(&format!("lint.findings.{}", f.finding.defect))
                .add(1);
        }
    }

    /// Records one post-fuzz sanitizer-audit scan: its duration plus the
    /// report's site, false-negative, false-alarm, and verdict-split
    /// totals (`sancheck.*`).
    pub fn record_sancheck(&self, report: &sancheck::SancheckReport, scan_us: u64) {
        self.sancheck_scan_us.record(scan_us);
        self.sancheck_sites.add(report.map.sites.len() as u64);
        self.sancheck_fn.add(report.false_negatives.len() as u64);
        self.sancheck_fp.add(report.false_positives.len() as u64);
        self.sancheck_splits.add(report.divergences.len() as u64);
    }

    /// Publishes the binary cache's final `(hits, misses)`.
    pub fn record_cache(&self, counters: (u64, u64)) {
        self.cache_hits.set(counters.0);
        self.cache_misses.set(counters.1);
    }

    /// Publishes the campaign's fuzz-binary throughput from the final
    /// exec count and the elapsed clock microseconds. Under a fixed test
    /// clock the elapsed time is zero and the gauge stays 0, keeping the
    /// metric stream deterministic.
    pub fn record_execs_per_sec(&self, execs: u64, elapsed_us: u64) {
        if let Some(rate) = execs.saturating_mul(1_000_000).checked_div(elapsed_us) {
            self.fuzz_execs_per_sec.set(rate);
        }
    }
}

/// Per-job [`DiffObserver`]: times every differential execution into its
/// implementation's latency histogram and counts escalation re-runs and
/// divergence classes. Executions within one oracle run are sequential,
/// so a single begin-timestamp field suffices.
#[derive(Debug)]
pub struct DiffTelemetry<'a> {
    ct: &'a CampaignTelemetry,
    start_us: u64,
}

impl DiffObserver for DiffTelemetry<'_> {
    fn exec_begin(&mut self, _impl_idx: usize, _escalation_round: u32) {
        self.start_us = self.ct.tel.now_micros();
    }

    fn exec_end(&mut self, impl_idx: usize, _result: &ExecResult, escalation_round: u32) {
        let dur = self.ct.tel.now_micros().saturating_sub(self.start_us);
        if let Some(h) = self.ct.exec_us_by_impl.get(impl_idx) {
            h.record(dur);
        }
        if escalation_round > 0 {
            self.ct.escalation_reruns.inc();
        }
    }

    fn outcome(&mut self, outcome: &DiffOutcome) {
        self.ct.diff_runs.inc();
        if outcome.divergent {
            self.ct.diff_divergent.inc();
            self.ct.diff_classes.record(outcome.classes.len() as u64);
        }
    }

    fn batch(&mut self, size: usize, bisections: usize) {
        self.ct.batch_size.record(size as u64);
        self.ct.batch_bisections.add(bisections as u64);
    }
}

/// Per-job [`FuzzObserver`]: times every fuzz-binary execution and tracks
/// the seed queue's high-water mark.
#[derive(Debug)]
pub struct FuzzTelemetry<'a> {
    ct: &'a CampaignTelemetry,
    start_us: u64,
}

impl FuzzObserver for FuzzTelemetry<'_> {
    fn exec_begin(&mut self) {
        self.start_us = self.ct.tel.now_micros();
    }

    fn exec_end(&mut self, _result: &ExecResult, queue_depth: usize) {
        let dur = self.ct.tel.now_micros().saturating_sub(self.start_us);
        self.ct.fuzz_execs.inc();
        self.ct.fuzz_exec_us.record(dur);
        self.ct.queue_depth_max.set_max(queue_depth as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::TestClock;

    #[test]
    fn adapters_update_the_registry() {
        let tel = Telemetry::new(TestClock::stepping(0, 5), telemetry::NoopRecorder);
        let ct = CampaignTelemetry::new(Arc::clone(&tel));

        let mut fo = ct.fuzz_observer();
        let r = ExecResult {
            status: minc_vm::ExitStatus::Code(0),
            stdout: Vec::new(),
            steps: 0,
        };
        fo.exec_begin(); // t=0
        fo.exec_end(&r, 3); // t=5 -> dur 5
        fo.exec_begin();
        fo.exec_end(&r, 9);
        assert_eq!(ct.fuzz_execs.get(), 2);
        assert_eq!(ct.fuzz_exec_us.count(), 2);
        assert_eq!(ct.queue_depth_max.get(), 9);

        let mut dobs = ct.diff_observer();
        dobs.exec_begin(0, 0);
        dobs.exec_end(0, &r, 0);
        dobs.exec_begin(1, 2);
        dobs.exec_end(1, &r, 2);
        assert_eq!(ct.exec_us_by_impl[0].count(), 1);
        assert_eq!(ct.exec_us_by_impl[1].count(), 1);
        assert_eq!(ct.escalation_reruns.get(), 1);

        ct.record_vm(SessionStats {
            runs: 2,
            pages_restored: 7,
            pages_materialized: 4,
            bulk_builtin_ops: 3,
            fallback_builtin_ops: 1,
            poisoned_rebuilds: 0,
            blocks_translated: 6,
            block_cache_hits: 12,
            block_exec: 14,
            interp_fallback: 1,
            loader_skips: 8,
        });
        assert_eq!(ct.pages_restored.get(), 7);
        assert_eq!(ct.bulk_builtin_ops.get(), 3);
        assert_eq!(ct.blocks_translated.get(), 6);
        assert_eq!(ct.block_cache_hits.get(), 12);
        assert_eq!(ct.block_exec.get(), 14);
        assert_eq!(ct.interp_fallback.get(), 1);
        assert_eq!(ct.loader_skips.get(), 8);
        ct.record_blocks_translated(9);
        assert_eq!(ct.blocks_translated.get(), 15);
        ct.record_cache((5, 2));
        assert_eq!(ct.cache_hits.get(), 5);
        assert_eq!(ct.cache_misses.get(), 2);
    }
}
