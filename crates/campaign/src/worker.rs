//! The worker-process side of the coordinator/worker protocol
//! (DESIGN.md §17): connect, receive the campaign config, then loop
//! lease → run `run_job` → report, renewing the held lease from a
//! daemon thread so a hung VM does not silently keep its lease.
//!
//! A worker is stateless beyond its own `BinaryCache` and VM sessions:
//! all scheduling, checkpointing, dedup, and event emission live in the
//! coordinator. Killing a worker at any point loses at most its
//! in-flight lease, which the coordinator reclaims and re-queues.

use crate::faults::FaultKind;
use crate::proto::{
    done_frame, failed_frame, frame_type, parse_config, read_frame, tagged, write_frame,
};
use crate::scheduler::{run_job, Job};
use crate::state::FailureKind;
use crate::{faults, BinaryCache, CacheError, CampaignTelemetry, FaultPlan};
use compdiff::Json;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use telemetry::{MonotonicClock, NoopRecorder, Telemetry, TestClock};

fn io_err(context: &str, e: std::io::Error) -> String {
    format!("worker {context}: {e}")
}

fn send(writer: &Mutex<BufWriter<TcpStream>>, frame: &Json) -> Result<(), String> {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    write_frame(&mut *w, frame).map_err(|e| io_err("send", e))
}

/// Runs one campaign worker process against the coordinator at `addr`
/// (`host:port`). Returns when the coordinator sends `shutdown` or
/// closes the connection.
///
/// # Errors
///
/// Returns a message when the connection fails, a frame is malformed,
/// or the coordinator disappears mid-campaign.
pub fn run_worker(addr: &str) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| io_err("clone", e))?);
    let writer = Arc::new(Mutex::new(BufWriter::new(stream)));

    send(
        &writer,
        &Json::obj(vec![
            ("t", Json::Str("hello".to_string())),
            ("pid", Json::Int(i64::from(std::process::id()))),
        ]),
    )?;
    let first = read_frame(&mut reader)
        .map_err(|e| io_err("read config", e))?
        .ok_or("coordinator closed before sending config")?;
    match frame_type(&first) {
        // A late joiner: the campaign already drained. Exit quietly.
        Some("shutdown") => return Ok(()),
        Some("config") => {}
        other => return Err(format!("expected config frame, got {other:?}")),
    }
    let (mut cfg, targets) = parse_config(&first)?;
    if let Some(spec) = &cfg.fault_plan_spec {
        cfg.fault_plan = Some(Arc::new(FaultPlan::parse(spec, cfg.seed)?));
    }

    // Worker telemetry: registry only (no recorder) — snapshots ride the
    // `done`/`failed` frames and the coordinator merges them. Under a
    // fixed clock every duration reads as zero, exactly like the
    // in-process pool under the same clock.
    let tel = match cfg.fixed_clock_us {
        Some(t) => Telemetry::new(TestClock::fixed(t), NoopRecorder),
        None => Telemetry::new(MonotonicClock::new(), NoopRecorder),
    };
    let ctel = CampaignTelemetry::new(Arc::clone(&tel));
    let cache = BinaryCache::new();

    // The lease currently held (0 = none), renewed by a daemon thread so
    // long-running jobs keep their lease without the job loop's help.
    let current_lease = Arc::new(AtomicU64::new(0));
    {
        let current_lease = Arc::clone(&current_lease);
        let writer = Arc::clone(&writer);
        let renew_ms = cfg.renew_ms.max(1);
        std::thread::spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_millis(renew_ms));
            let lease = current_lease.load(Ordering::Relaxed);
            if lease != 0 {
                let frame = Json::obj(vec![
                    ("t", Json::Str("renew".to_string())),
                    ("lease", Json::Int(lease as i64)),
                ]);
                if send(&writer, &frame).is_err() {
                    break;
                }
            }
        });
    }

    send(&writer, &tagged("lease_req"))?;
    loop {
        let Some(frame) = read_frame(&mut reader).map_err(|e| io_err("read", e))? else {
            return Err("coordinator closed the connection mid-campaign".to_string());
        };
        match frame_type(&frame) {
            Some("lease") => {
                let u = |k: &str| {
                    frame
                        .get(k)
                        .and_then(Json::as_u64)
                        .ok_or(format!("lease frame missing {k}"))
                };
                let lease = u("lease")?;
                let job = Job {
                    target_index: usize::try_from(u("target")?).map_err(|e| e.to_string())?,
                    shard: u32::try_from(u("shard")?).map_err(|e| e.to_string())?,
                    attempt: u32::try_from(u("attempt")?).map_err(|e| e.to_string())?,
                };
                let target = targets
                    .get(job.target_index)
                    .ok_or(format!("lease names unknown target {}", job.target_index))?;
                // The worker-death injection point: exit *while holding
                // the lease*, before any result frame, so the
                // coordinator must reclaim via lease expiry / EOF.
                if let Some(plan) = cfg.fault_plan.as_deref() {
                    if plan.fire_job(&target.spec.name, job.shard, job.attempt)
                        == Some(FaultKind::Die)
                    {
                        std::process::exit(137);
                    }
                }
                current_lease.store(lease, Ordering::Relaxed);
                let start_us = tel.now_micros();
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    let ct = cache
                        .get_or_compile(
                            target,
                            &cfg.diff_config,
                            cfg.fuzz_impl,
                            cfg.fault_plan.as_deref(),
                            job.attempt,
                        )
                        .map_err(|e| {
                            let kind = match &e {
                                CacheError::Frontend(_)
                                | CacheError::Panic(_)
                                | CacheError::Injected(_) => FailureKind::Compile,
                            };
                            (kind, e.to_string())
                        })?;
                    // Worker index 0 on the wire; the coordinator stamps
                    // the connection's logical index into the output.
                    run_job(&ct, &cfg, job, 0, &ctel)
                }));
                current_lease.store(0, Ordering::Relaxed);
                let metrics = tel.registry().snapshot();
                let reply = match attempt {
                    Ok(Ok(out)) => done_frame(lease, &out.record, out.dur_us, &out.vm, metrics),
                    Ok(Err((kind, message))) => failed_frame(
                        lease,
                        kind,
                        &message,
                        tel.now_micros().saturating_sub(start_us),
                        metrics,
                    ),
                    Err(payload) => failed_frame(
                        lease,
                        FailureKind::Panic,
                        &faults::panic_message(payload.as_ref()),
                        tel.now_micros().saturating_sub(start_us),
                        metrics,
                    ),
                };
                send(&writer, &reply)?;
            }
            Some("ack") => send(&writer, &tagged("lease_req"))?,
            Some("shutdown") => {
                let (hits, misses) = cache.counters();
                send(
                    &writer,
                    &Json::obj(vec![
                        ("t", Json::Str("bye".to_string())),
                        ("cache_hits", Json::Int(hits as i64)),
                        ("cache_misses", Json::Int(misses as i64)),
                        (
                            "blocks_translated",
                            Json::Int(cache.blocks_translated() as i64),
                        ),
                        ("metrics", tel.registry().snapshot()),
                    ]),
                )?;
                return Ok(());
            }
            other => return Err(format!("unexpected frame {other:?}")),
        }
    }
}

/// Queries a running coordinator's status endpoint at `addr` (the
/// address written via `--status-addr-out`) and returns the status
/// object: job progress, lease/worker counts, and the merged metric
/// snapshot.
///
/// # Errors
///
/// Returns a message when the connection or the reply fails.
pub fn query_status(addr: &str) -> Result<Json, String> {
    let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| io_err("clone", e))?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &tagged("status")).map_err(|e| io_err("send", e))?;
    read_frame(&mut reader)
        .map_err(|e| io_err("read", e))?
        .ok_or_else(|| "coordinator closed without replying".to_string())
}
