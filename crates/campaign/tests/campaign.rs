//! Campaign-level guarantees: worker-count-independent results,
//! batch-size-independent findings, kill/resume equivalence, and the
//! block-backend guarantee for generated (dir-source) targets.

use campaign::{CampaignConfig, CampaignState, StateError};
use compdiff::Json;
use std::path::PathBuf;

fn base_config() -> CampaignConfig {
    CampaignConfig {
        execs_per_target: 2_000,
        shards_per_target: 3,
        seed: 0x5EED,
        target_filter: Some(vec!["tcpdump".to_string(), "jq".to_string()]),
        ..Default::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("compdiff-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deduped signature set — the campaign's *finding* — must not depend
/// on how many workers raced over the jobs.
#[test]
fn worker_count_does_not_change_results() {
    let solo = campaign::run(&CampaignConfig {
        workers: 1,
        ..base_config()
    })
    .unwrap();
    let pool = campaign::run(&CampaignConfig {
        workers: 3,
        ..base_config()
    })
    .unwrap();

    assert_eq!(solo.stats.jobs_done, 6, "2 targets x 3 shards");
    assert_eq!(solo.signatures(), pool.signatures());
    assert_eq!(solo.stats.per_target, pool.stats.per_target);
    assert_eq!(solo.stats.execs, pool.stats.execs);
    assert_eq!(solo.stats.divergent, pool.stats.divergent);
    assert!(
        !solo.signatures().is_empty(),
        "catalog targets must yield discrepancies"
    );
}

/// Kill a campaign mid-flight (stop_after_jobs), resume it, and the final
/// checkpoint + stats must match an uninterrupted run exactly.
#[test]
fn resume_after_kill_matches_uninterrupted_run() {
    let full_dir = temp_dir("full");
    let killed_dir = temp_dir("killed");

    let full = campaign::run(&CampaignConfig {
        workers: 2,
        checkpoint_dir: Some(full_dir.clone()),
        ..base_config()
    })
    .unwrap();
    assert!(!full.aborted);

    let partial = campaign::run(&CampaignConfig {
        workers: 2,
        checkpoint_dir: Some(killed_dir.clone()),
        stop_after_jobs: Some(2),
        ..base_config()
    })
    .unwrap();
    assert!(partial.aborted);
    assert!(partial.stats.jobs_done < full.stats.jobs_done);

    let resumed = campaign::run(&CampaignConfig {
        workers: 2,
        checkpoint_dir: Some(killed_dir.clone()),
        resume: true,
        ..base_config()
    })
    .unwrap();
    assert!(!resumed.aborted);
    assert!(
        resumed.stats.jobs_resumed >= 2,
        "checkpointed jobs must not rerun"
    );

    assert_eq!(resumed.stats.jobs_done, full.stats.jobs_done);
    assert_eq!(resumed.signatures(), full.signatures());
    assert_eq!(resumed.stats.per_target, full.stats.per_target);
    assert_eq!(resumed.stats.execs, full.stats.execs);

    // The two checkpoints hold identical record sets (order may differ).
    let header = campaign::CampaignHeader {
        seed: 0x5EED,
        execs_per_target: 2_000,
        shards_per_target: 3,
        targets: vec!["tcpdump".to_string(), "jq".to_string()],
    };
    let a = CampaignState::resume(&full_dir, &header).unwrap();
    let b = CampaignState::resume(&killed_dir, &header).unwrap();
    assert_eq!(a.done(), b.done());

    std::fs::remove_dir_all(&full_dir).unwrap();
    std::fs::remove_dir_all(&killed_dir).unwrap();
}

/// The batched oracle must not change what the campaign finds: signatures,
/// per-target stats, and exec counts are identical at batch size 1 (strict
/// per-input interleaving) and 64 (whole queue chunks). This pins the two
/// batching invariants: divergences are recorded in input order (so
/// first-seen signature dedup is deterministic regardless of how a batch
/// was bisected), and the fuzz-binary side of the loop never depends on
/// when the oracle verdicts arrive.
#[test]
fn batch_size_does_not_change_results() {
    let single = campaign::run(&CampaignConfig {
        workers: 1,
        batch_size: 1,
        ..base_config()
    })
    .unwrap();
    let batched = campaign::run(&CampaignConfig {
        workers: 1,
        batch_size: 64,
        ..base_config()
    })
    .unwrap();

    assert_eq!(single.signatures(), batched.signatures());
    assert_eq!(single.stats.per_target, batched.stats.per_target);
    assert_eq!(single.stats.execs, batched.stats.execs);
    assert_eq!(single.stats.divergent, batched.stats.divergent);
    assert!(
        !single.signatures().is_empty(),
        "catalog targets must yield discrepancies"
    );
}

fn counter(metrics: &Json, name: &str) -> i64 {
    match metrics.get("counters").and_then(|c| c.get(name)) {
        Some(Json::Int(n)) => *n,
        other => panic!("counter {name} missing or non-int: {other:?}"),
    }
}

/// Generated programs loaded via `dir_source` (the `--progen-dir` path)
/// must run on the block backend like catalog targets: the `BinaryCache`
/// compiles and block-translates every target the campaign's source
/// yields, so a silent per-instruction-interpreter fallback for generated
/// targets is a regression.
#[test]
fn progen_dir_targets_run_on_the_block_backend() {
    let dir = temp_dir("progen-src");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("sum.mc"),
        "int main() {\n\
             char b[8];\n\
             long n = read_input(b, 8L);\n\
             int acc = 0;\n\
             long i;\n\
             for (i = 0; i < n; i++) { acc += b[i]; }\n\
             printf(\"%d\\n\", acc);\n\
             return 0;\n\
         }\n",
    )
    .unwrap();
    let generated = targets::dir_source(&dir).unwrap();

    let report = campaign::run(&CampaignConfig {
        workers: 1,
        execs_per_target: 300,
        shards_per_target: 1,
        source: targets::SharedSource::new(generated),
        fixed_clock_us: Some(7),
        ..CampaignConfig::default()
    })
    .unwrap();

    assert!(report.stats.execs > 0, "the generated target was fuzzed");
    assert_eq!(
        counter(&report.metrics, "vm.interp_fallback"),
        0,
        "generated targets must not fall back to the interpreter"
    );
    assert!(
        counter(&report.metrics, "vm.block_exec") > 0,
        "generated targets must execute through the block dispatcher"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Resuming with different campaign parameters must be refused, not
/// silently mixed into the old checkpoint.
#[test]
fn resume_rejects_changed_parameters() {
    let dir = temp_dir("params");
    campaign::run(&CampaignConfig {
        workers: 1,
        execs_per_target: 60,
        shards_per_target: 1,
        checkpoint_dir: Some(dir.clone()),
        target_filter: Some(vec!["curl".to_string()]),
        ..CampaignConfig::default()
    })
    .unwrap();

    let err = campaign::run(&CampaignConfig {
        workers: 1,
        execs_per_target: 61,
        shards_per_target: 1,
        checkpoint_dir: Some(dir.clone()),
        resume: true,
        target_filter: Some(vec!["curl".to_string()]),
        ..CampaignConfig::default()
    })
    .unwrap_err();
    assert!(matches!(
        err,
        campaign::CampaignError::State(StateError::HeaderMismatch(_))
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}
