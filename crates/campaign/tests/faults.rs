//! Fault-tolerance guarantees, exercised end to end through the seeded
//! fault-injection harness: panic isolation, retry, quarantine,
//! checkpoint repair/degradation, and kill/resume equivalence under
//! injected failures.

use campaign::{CampaignConfig, CampaignReport, CampaignState, FailureKind, FaultPlan, StateError};
use compdiff::Json;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("compdiff-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fresh plan per run: `checkpoint:any` budgets are process-local
/// state, so sharing one parsed plan across runs would couple them.
fn plan(spec: &str, seed: u64) -> Option<Arc<FaultPlan>> {
    Some(Arc::new(FaultPlan::parse(spec, seed).unwrap()))
}

fn counter(report: &CampaignReport, name: &str) -> u64 {
    report
        .metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn gauge(report: &CampaignReport, name: &str) -> u64 {
    report
        .metrics
        .get("gauges")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// A transient panic and a transient I/O fault are retried and the
/// campaign still delivers *complete* results identical to a clean run.
#[test]
fn transient_faults_are_retried_to_full_results() {
    let dir = temp_dir("transient");
    let base = CampaignConfig {
        workers: 2,
        execs_per_target: 120,
        shards_per_target: 2,
        seed: 11,
        target_filter: Some(vec!["tcpdump".to_string()]),
        ..Default::default()
    };
    let clean = campaign::run(&base).unwrap();
    let faulty = campaign::run(&CampaignConfig {
        checkpoint_dir: Some(dir.clone()),
        fault_plan: plan("panic@tcpdump#0,io@tcpdump#1", 11),
        ..base.clone()
    })
    .unwrap();

    assert!(faulty.stats.is_complete(), "both retries must succeed");
    assert_eq!(faulty.stats.failures, 2);
    assert_eq!(faulty.stats.retries, 2);
    assert_eq!(faulty.stats.jobs_failed, 0);
    assert_eq!(faulty.signatures(), clean.signatures());
    assert_eq!(faulty.stats.execs, clean.stats.execs);
    assert_eq!(counter(&faulty, "campaign.worker_panics"), 1);
    assert_eq!(counter(&faulty, "campaign.job_retries"), 2);
    let summary = faulty.render_summary();
    assert!(summary.contains("fault tolerance: 2 failed attempts, 2 retries"));
    assert!(!summary.contains("PARTIAL"), "results are complete");

    // Both failure kinds were durably checkpointed.
    let header = campaign::CampaignHeader {
        seed: 11,
        execs_per_target: 120,
        shards_per_target: 2,
        targets: vec!["tcpdump".to_string()],
    };
    let st = CampaignState::resume(&dir, &header).unwrap();
    let mut kinds: Vec<FailureKind> = st.failures().iter().map(|f| f.kind).collect();
    kinds.sort_by_key(|k| k.to_string());
    assert_eq!(kinds, vec![FailureKind::Io, FailureKind::Panic]);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A persistently panicking target is quarantined — its remaining shards
/// are skipped, the other target's results are untouched, and the
/// campaign completes with a partial-results report instead of aborting.
#[test]
fn persistent_panic_quarantines_target_and_reports_partial_results() {
    let base = CampaignConfig {
        workers: 1,
        execs_per_target: 120,
        shards_per_target: 2,
        seed: 12,
        max_retries: 1,
        quarantine_after: 2,
        target_filter: Some(vec!["tcpdump".to_string(), "jq".to_string()]),
        ..Default::default()
    };
    let clean = campaign::run(&CampaignConfig {
        target_filter: Some(vec!["jq".to_string()]),
        ..base.clone()
    })
    .unwrap();
    let report = campaign::run(&CampaignConfig {
        fault_plan: plan("panic@tcpdump#any*inf", 12),
        ..base.clone()
    })
    .unwrap();

    assert!(!report.aborted, "quarantine is completion, not abort");
    assert_eq!(report.stats.jobs_done, 2, "jq's shards still finished");
    assert_eq!(report.stats.failures, 2);
    assert_eq!(report.stats.retries, 1);
    assert_eq!(report.stats.jobs_failed, 1);
    assert_eq!(report.stats.jobs_skipped, 1, "tcpdump#1 swept");
    assert!(report.stats.quarantined.contains("tcpdump"));
    assert_eq!(report.stats.per_target["jq"], clean.stats.per_target["jq"]);
    assert_eq!(counter(&report, "campaign.worker_panics"), 2);
    assert_eq!(gauge(&report, "campaign.targets_quarantined"), 1);
    let summary = report.render_summary();
    assert!(summary.contains("PARTIAL RESULTS"));
    assert!(summary.contains("quarantined: tcpdump (2 failures, 1 shards skipped)"));

    // Same plan under a parallel pool: in-flight stragglers may add
    // failures, but the pool must neither hang nor abort, and jq's
    // results must still be complete and identical.
    let parallel = campaign::run(&CampaignConfig {
        workers: 3,
        fault_plan: plan("panic@tcpdump#any*inf", 12),
        ..base
    })
    .unwrap();
    assert!(!parallel.aborted);
    assert!(parallel.stats.quarantined.contains("tcpdump"));
    assert_eq!(
        parallel.stats.per_target["jq"],
        clean.stats.per_target["jq"]
    );
}

/// An injected compile failure quarantines just that target: compiles are
/// never attempted again once quarantined, and the healthy target's
/// results match a clean run.
#[test]
fn compile_failure_quarantines_only_that_target() {
    let base = CampaignConfig {
        workers: 2,
        execs_per_target: 120,
        shards_per_target: 2,
        seed: 13,
        max_retries: 1,
        quarantine_after: 2,
        target_filter: Some(vec!["tcpdump".to_string(), "jq".to_string()]),
        ..Default::default()
    };
    let clean = campaign::run(&CampaignConfig {
        target_filter: Some(vec!["tcpdump".to_string()]),
        ..base.clone()
    })
    .unwrap();
    let report = campaign::run(&CampaignConfig {
        fault_plan: plan("fail@compile:jq*inf", 13),
        ..base
    })
    .unwrap();

    assert!(!report.aborted);
    assert!(report.stats.quarantined.contains("jq"));
    assert!(!report.stats.quarantined.contains("tcpdump"));
    assert_eq!(
        report.stats.per_target["tcpdump"],
        clean.stats.per_target["tcpdump"]
    );
    assert_eq!(report.stats.per_target["jq"].jobs, 0, "jq never ran");
    assert_eq!(
        counter(&report, "campaign.worker_panics"),
        0,
        "no panics: typed error path"
    );
}

/// One injected checkpoint-append fault is repaired and retried; every
/// record still reaches disk and checkpointing stays enabled.
#[test]
fn single_checkpoint_fault_is_repaired() {
    let dir = temp_dir("repair");
    let report = campaign::run(&CampaignConfig {
        workers: 1,
        execs_per_target: 120,
        shards_per_target: 2,
        seed: 14,
        target_filter: Some(vec!["tcpdump".to_string()]),
        checkpoint_dir: Some(dir.clone()),
        fault_plan: plan("io@checkpoint:2", 14),
        ..Default::default()
    })
    .unwrap();

    assert!(report.stats.is_complete());
    assert!(!report.checkpoint_degraded);
    assert_eq!(counter(&report, "campaign.checkpoint_errors"), 1);

    let header = campaign::CampaignHeader {
        seed: 14,
        execs_per_target: 120,
        shards_per_target: 2,
        targets: vec!["tcpdump".to_string()],
    };
    let st = CampaignState::resume(&dir, &header).unwrap();
    assert_eq!(st.done().len(), 2, "the faulted append was retried to disk");
    assert!(
        st.failures().is_empty(),
        "checkpoint faults are not job failures"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A persistently failing checkpoint disk degrades checkpointing but the
/// campaign still runs to completion — no abort, no hang.
#[test]
fn persistent_checkpoint_faults_degrade_but_campaign_completes() {
    let dir = temp_dir("degrade");
    let report = campaign::run(&CampaignConfig {
        workers: 2,
        execs_per_target: 120,
        shards_per_target: 2,
        seed: 15,
        target_filter: Some(vec!["tcpdump".to_string()]),
        checkpoint_dir: Some(dir.clone()),
        fault_plan: plan("io@checkpoint:any*inf", 15),
        ..Default::default()
    })
    .unwrap();

    assert!(!report.aborted);
    assert!(report.checkpoint_degraded);
    assert_eq!(report.stats.jobs_done, 2, "results survive a dead disk");
    assert!(counter(&report, "campaign.checkpoint_errors") >= 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Determinism under injected faults: same seed, same plan, one worker,
/// pinned clock — the metrics stream and the checkpoint are
/// byte-identical across runs.
#[test]
fn fault_campaign_is_byte_deterministic() {
    let dir = temp_dir("deterministic");
    std::fs::create_dir_all(&dir).unwrap();
    let run_once = |tag: &str| {
        let ckpt = dir.join(tag);
        let metrics = dir.join(format!("{tag}.jsonl"));
        let report = campaign::run(&CampaignConfig {
            workers: 1,
            execs_per_target: 120,
            shards_per_target: 2,
            seed: 16,
            target_filter: Some(vec!["tcpdump".to_string()]),
            checkpoint_dir: Some(ckpt.clone()),
            metrics_out: Some(metrics.clone()),
            fixed_clock_us: Some(0),
            fault_plan: plan("panic@tcpdump#0,io@checkpoint:3", 16),
            ..Default::default()
        })
        .unwrap();
        assert!(report.stats.is_complete());
        (
            std::fs::read_to_string(metrics).unwrap(),
            std::fs::read_to_string(ckpt.join(campaign::CHECKPOINT_FILE)).unwrap(),
        )
    };
    let (events_a, ckpt_a) = run_once("a");
    let (events_b, ckpt_b) = run_once("b");
    assert_eq!(events_a, events_b, "metrics streams must be byte-identical");
    assert_eq!(ckpt_a, ckpt_b, "checkpoints must be byte-identical");
    assert!(
        events_a.lines().any(|l| {
            let j = Json::parse(l).unwrap();
            j.get("ev").and_then(Json::as_str) == Some("failure")
        }),
        "the injected failure must appear in the event stream"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The torture test: under a fault plan that mixes a transient panic
/// (retried to success) with a persistent one (quarantine), kill the
/// campaign at *every* job-resolution boundary, resume it, and the
/// final stats, job records, and per-target failure counts must match
/// the uninterrupted run — retry counts and quarantine state survive
/// the kill.
#[test]
fn kill_resume_under_faults_matches_uninterrupted_run() {
    let spec = "panic@tcpdump#0*2,panic@jq#any*inf";
    let base = CampaignConfig {
        workers: 1,
        execs_per_target: 120,
        shards_per_target: 2,
        seed: 17,
        max_retries: 2,
        quarantine_after: 3,
        target_filter: Some(vec!["tcpdump".to_string(), "jq".to_string()]),
        ..Default::default()
    };
    let header = campaign::CampaignHeader {
        seed: 17,
        execs_per_target: 120,
        shards_per_target: 2,
        targets: vec!["tcpdump".to_string(), "jq".to_string()],
    };
    // Normalizes away the fields that legitimately differ between an
    // uninterrupted run and a killed-and-resumed pair of runs: which
    // worker ran what, and how many records arrived via replay.
    let normalize = |r: &CampaignReport| {
        let mut s = r.stats.clone();
        s.per_worker_execs = Vec::new();
        s.jobs_resumed = 0;
        s
    };
    // Which exact (shard, attempt) fails before a *cross-shard*
    // quarantine threshold trips depends on requeue positions, which a
    // resume legitimately rebuilds; the schedule-independent guarantee
    // is the per-target failure multiset (and the totals asserted via
    // `normalize`).
    let failures_by_target = |st: &CampaignState| {
        let mut v: Vec<(String, String)> = st
            .failures()
            .iter()
            .map(|f| (f.target.clone(), f.kind.to_string()))
            .collect();
        v.sort();
        v
    };

    let full_dir = temp_dir("torture-full");
    let full = campaign::run(&CampaignConfig {
        checkpoint_dir: Some(full_dir.clone()),
        fault_plan: plan(spec, 17),
        ..base.clone()
    })
    .unwrap();
    assert!(!full.aborted);
    // The plan's arithmetic: tcpdump#0 fails twice then succeeds,
    // tcpdump#1 succeeds, jq#0 fails three times (quarantine at the
    // third), jq#1 is swept. 7 resolution events in total.
    assert_eq!(full.stats.failures, 5);
    assert_eq!(full.stats.retries, 4);
    assert_eq!(full.stats.jobs_done, 2);
    assert_eq!(full.stats.jobs_failed, 1);
    assert_eq!(full.stats.jobs_skipped, 1);
    assert!(full.stats.quarantined.contains("jq"));
    let full_state = CampaignState::resume(&full_dir, &header).unwrap();

    for kill_at in 1..=6 {
        let dir = temp_dir(&format!("torture-k{kill_at}"));
        let killed = campaign::run(&CampaignConfig {
            checkpoint_dir: Some(dir.clone()),
            stop_after_jobs: Some(kill_at),
            fault_plan: plan(spec, 17),
            ..base.clone()
        })
        .unwrap();
        assert!(killed.aborted, "kill point {kill_at} must trigger");

        let resumed = campaign::run(&CampaignConfig {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            fault_plan: plan(spec, 17),
            ..base.clone()
        })
        .unwrap();
        assert!(!resumed.aborted, "kill point {kill_at}");
        assert_eq!(
            normalize(&resumed),
            normalize(&full),
            "kill point {kill_at}: resumed stats must match the uninterrupted run"
        );
        let resumed_state = CampaignState::resume(&dir, &header).unwrap();
        assert_eq!(
            resumed_state.done(),
            full_state.done(),
            "kill point {kill_at}: job records"
        );
        assert_eq!(
            failures_by_target(&resumed_state),
            failures_by_target(&full_state),
            "kill point {kill_at}: failure records"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&full_dir).unwrap();
}

/// Starting a fresh campaign onto an existing checkpoint is refused with
/// a typed error instead of truncating the old records.
#[test]
fn fresh_campaign_refuses_to_clobber_checkpoint() {
    let dir = temp_dir("clobber");
    let cfg = CampaignConfig {
        workers: 1,
        execs_per_target: 60,
        shards_per_target: 1,
        seed: 18,
        target_filter: Some(vec!["tcpdump".to_string()]),
        checkpoint_dir: Some(dir.clone()),
        ..Default::default()
    };
    campaign::run(&cfg).unwrap();
    let err = campaign::run(&cfg).unwrap_err();
    assert!(
        matches!(
            &err,
            campaign::CampaignError::State(StateError::AlreadyExists(_))
        ),
        "{err}"
    );
    assert!(err.to_string().contains("--resume"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}
