//! The coordinator/worker protocol, exercised end to end with real
//! worker processes: mode equivalence (1 worker process ==
//! in-process `--workers 1`, byte for byte), N-process determinism,
//! worker-death and dropped-connection recovery, coordinator
//! kill/resume, the single-checkpoint-writer guarantee across
//! processes, and the live status endpoint.

use campaign::{CampaignConfig, CampaignReport, CampaignState, FailureKind};
use compdiff::Json;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("compdiff-proto-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The worker executable for coordinator-mode configs: the `compdiff`
/// binary Cargo built for this test run.
fn worker_exe() -> Option<PathBuf> {
    Some(PathBuf::from(env!("CARGO_BIN_EXE_compdiff")))
}

fn counter(report: &CampaignReport, name: &str) -> u64 {
    report
        .metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// The tentpole equivalence guarantee: a clean 1-worker-process
/// campaign is byte-identical — rendered report and recorded metrics
/// stream — to the in-process `workers = 1` run of the same campaign.
#[test]
fn one_proc_report_matches_in_process_single_worker() {
    let dir = temp_dir("one-proc");
    let base = CampaignConfig {
        workers: 1,
        execs_per_target: 60,
        shards_per_target: 2,
        seed: 11,
        target_filter: Some(vec!["tcpdump".to_string()]),
        fixed_clock_us: Some(0),
        ..Default::default()
    };
    let in_proc = campaign::run(&CampaignConfig {
        metrics_out: Some(dir.join("inproc.jsonl")),
        ..base.clone()
    })
    .unwrap();
    let proc = campaign::run(&CampaignConfig {
        workers_proc: Some(1),
        worker_exe: worker_exe(),
        metrics_out: Some(dir.join("proc.jsonl")),
        ..base
    })
    .unwrap();

    assert_eq!(
        in_proc.render_summary(),
        proc.render_summary(),
        "reports must be byte-identical across execution modes"
    );
    assert_eq!(
        std::fs::read_to_string(dir.join("inproc.jsonl")).unwrap(),
        std::fs::read_to_string(dir.join("proc.jsonl")).unwrap(),
        "metrics streams must be byte-identical across execution modes"
    );
    assert_eq!(counter(&proc, "campaign.leases_granted"), 2);
    assert_eq!(counter(&proc, "campaign.workers_spawned"), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A clean 2-process campaign is deterministic: same seed, same fixed
/// clock, identical report and metrics stream across runs — buffered
/// canonical-order events and commutative registry merges at work.
#[test]
fn two_proc_campaign_is_deterministic() {
    let dir = temp_dir("two-proc");
    let run_once = |tag: &str| {
        let metrics = dir.join(format!("{tag}.jsonl"));
        let report = campaign::run(&CampaignConfig {
            workers_proc: Some(2),
            worker_exe: worker_exe(),
            execs_per_target: 60,
            shards_per_target: 2,
            seed: 11,
            target_filter: Some(vec!["readelf".to_string(), "brotli".to_string()]),
            metrics_out: Some(metrics.clone()),
            fixed_clock_us: Some(0),
            ..Default::default()
        })
        .unwrap();
        (
            report.render_summary(),
            std::fs::read_to_string(metrics).unwrap(),
        )
    };
    let (report_a, events_a) = run_once("a");
    let (report_b, events_b) = run_once("b");
    assert_eq!(report_a, report_b, "2-process reports must be identical");
    assert_eq!(events_a, events_b, "2-process streams must be identical");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A worker process that dies mid-lease (injected `die@`) is reclaimed:
/// the lease resolves as a `lost` failure, the job is retried on a
/// respawned process, and the final results match a clean run.
#[test]
fn worker_death_mid_lease_recovers() {
    let dir = temp_dir("die");
    let base = CampaignConfig {
        workers_proc: Some(1),
        worker_exe: worker_exe(),
        execs_per_target: 60,
        shards_per_target: 2,
        seed: 11,
        target_filter: Some(vec!["tcpdump".to_string()]),
        ..Default::default()
    };
    let clean = campaign::run(&base).unwrap();
    let faulty = campaign::run(&CampaignConfig {
        checkpoint_dir: Some(dir.clone()),
        fault_plan_spec: Some("die@tcpdump#0".to_string()),
        ..base
    })
    .unwrap();

    assert!(faulty.stats.is_complete(), "the retry must succeed");
    assert_eq!(faulty.stats.failures, 1);
    assert_eq!(faulty.stats.retries, 1);
    assert_eq!(faulty.signatures(), clean.signatures());
    assert_eq!(faulty.stats.execs, clean.stats.execs);
    assert_eq!(
        counter(&faulty, "campaign.workers_spawned"),
        2,
        "a replacement process was spawned"
    );
    assert_eq!(counter(&faulty, "campaign.job_retries"), 1);

    // The reclaimed lease was durably recorded as a lost attempt.
    let header = campaign::CampaignHeader {
        seed: 11,
        execs_per_target: 60,
        shards_per_target: 2,
        targets: vec!["tcpdump".to_string()],
    };
    let st = CampaignState::resume(&dir, &header).unwrap();
    let kinds: Vec<FailureKind> = st.failures().iter().map(|f| f.kind).collect();
    assert_eq!(kinds, vec![FailureKind::Lost]);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// An injected connection drop (`drop@conn:1`) severs the first lease
/// grant: the job is immediately reclaimed, re-granted to a respawned
/// process, and the campaign still delivers complete results.
#[test]
fn dropped_connection_regrants() {
    let base = CampaignConfig {
        workers_proc: Some(1),
        worker_exe: worker_exe(),
        execs_per_target: 60,
        shards_per_target: 2,
        seed: 11,
        target_filter: Some(vec!["tcpdump".to_string()]),
        ..Default::default()
    };
    let clean = campaign::run(&base).unwrap();
    let faulty = campaign::run(&CampaignConfig {
        fault_plan_spec: Some("drop@conn:1".to_string()),
        ..base
    })
    .unwrap();

    assert!(faulty.stats.is_complete(), "the re-grant must succeed");
    assert_eq!(faulty.stats.failures, 1, "one lost lease");
    assert_eq!(faulty.stats.retries, 1);
    assert_eq!(faulty.signatures(), clean.signatures());
    assert_eq!(faulty.stats.execs, clean.stats.execs);
    assert_eq!(
        counter(&faulty, "campaign.leases_granted"),
        3,
        "2 jobs + 1 dropped grant"
    );
    assert_eq!(counter(&faulty, "campaign.workers_spawned"), 2);
}

/// The coordinator-mode torture test: under a worker-death fault, kill
/// the coordinator at every job-resolution boundary, resume in
/// coordinator mode, and the stats and checkpoint must match the
/// uninterrupted coordinator run.
#[test]
fn coordinator_kill_resume_matches_uninterrupted() {
    let base = CampaignConfig {
        workers_proc: Some(1),
        worker_exe: worker_exe(),
        execs_per_target: 60,
        shards_per_target: 2,
        seed: 11,
        target_filter: Some(vec!["tcpdump".to_string()]),
        fault_plan_spec: Some("die@tcpdump#0".to_string()),
        ..Default::default()
    };
    let header = campaign::CampaignHeader {
        seed: 11,
        execs_per_target: 60,
        shards_per_target: 2,
        targets: vec!["tcpdump".to_string()],
    };
    let normalize = |r: &CampaignReport| {
        let mut s = r.stats.clone();
        s.per_worker_execs = Vec::new();
        s.jobs_resumed = 0;
        s
    };

    let full_dir = temp_dir("proc-torture-full");
    let full = campaign::run(&CampaignConfig {
        checkpoint_dir: Some(full_dir.clone()),
        ..base.clone()
    })
    .unwrap();
    assert!(!full.aborted);
    // 3 resolutions: the lost lease, the shard-0 retry, shard 1.
    assert_eq!(full.stats.failures, 1);
    assert_eq!(full.stats.jobs_done, 2);
    let full_state = CampaignState::resume(&full_dir, &header).unwrap();

    for kill_at in 1..=2 {
        let dir = temp_dir(&format!("proc-torture-k{kill_at}"));
        let killed = campaign::run(&CampaignConfig {
            checkpoint_dir: Some(dir.clone()),
            stop_after_jobs: Some(kill_at),
            ..base.clone()
        })
        .unwrap();
        assert!(killed.aborted, "kill point {kill_at} must trigger");

        let resumed = campaign::run(&CampaignConfig {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..base.clone()
        })
        .unwrap();
        assert!(!resumed.aborted, "kill point {kill_at}");
        assert_eq!(
            normalize(&resumed),
            normalize(&full),
            "kill point {kill_at}: resumed stats must match the uninterrupted run"
        );
        let resumed_state = CampaignState::resume(&dir, &header).unwrap();
        assert_eq!(
            resumed_state.done(),
            full_state.done(),
            "kill point {kill_at}: job records"
        );
        assert_eq!(
            resumed_state.failures(),
            full_state.failures(),
            "kill point {kill_at}: failure records"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&full_dir).unwrap();
}

/// The single-writer guarantee across real process boundaries: while
/// this process holds a campaign checkpoint open, a `compdiff campaign`
/// *process* pointed at the same directory is refused with the typed
/// lock error — a worker (or anyone else) can never open the
/// coordinator's checkpoint for writing.
#[test]
fn worker_cannot_open_coordinators_checkpoint() {
    let dir = temp_dir("cross-proc-lock");
    let header = campaign::CampaignHeader {
        seed: 11,
        execs_per_target: 60,
        shards_per_target: 1,
        targets: vec!["tcpdump".to_string()],
    };
    let held = CampaignState::create(&dir, &header).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_compdiff"))
        .args([
            "campaign",
            "--workers",
            "1",
            "--execs-per-target",
            "20",
            "--shards",
            "1",
            "--targets",
            "tcpdump",
            "--quiet",
            "--checkpoint",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "a second process must not open a held checkpoint"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("locked by live process"),
        "typed refusal expected, got: {stderr}"
    );
    assert!(
        stderr.contains("exactly one writer"),
        "refusal names the invariant, got: {stderr}"
    );

    // Releasing the lock makes the directory usable again.
    drop(held);
    assert!(CampaignState::resume(&dir, &header).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The live status endpoint: while a coordinator campaign runs, a
/// status client can connect to the address written via
/// `status_addr_out` and read progress plus a merged metric snapshot.
#[test]
fn status_endpoint_reports_progress() {
    let dir = temp_dir("status");
    let addr_file = dir.join("status.addr");
    let cfg = CampaignConfig {
        workers_proc: Some(1),
        worker_exe: worker_exe(),
        execs_per_target: 20_000,
        shards_per_target: 2,
        seed: 11,
        target_filter: Some(vec!["tcpdump".to_string()]),
        status_addr_out: Some(addr_file.clone()),
        ..Default::default()
    };
    let campaign_thread = std::thread::spawn(move || campaign::run(&cfg).unwrap());

    // The address file is written before workers spawn, so it appears
    // long before the (20k-exec) campaign can finish.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&addr_file) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                break s;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "status address file never appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    let status = loop {
        match campaign::query_status(&addr) {
            Ok(s) => break s,
            Err(e) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "status endpoint never answered: {e}"
                );
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    };
    assert_eq!(status.get("t").and_then(Json::as_str), Some("status"));
    assert_eq!(status.get("jobs_total").and_then(Json::as_u64), Some(2));
    assert!(
        status
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .is_some(),
        "merged metric snapshot present"
    );

    let report = campaign_thread.join().unwrap();
    assert_eq!(report.stats.jobs_done, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}
