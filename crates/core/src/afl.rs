//! CompDiff-AFL++ (paper §3.2, Algorithm 1).
//!
//! AFL++'s core loop is untouched; CompDiff attaches as the extra oracle
//! that runs every generated input on the `k` differential binaries and
//! saves discrepancy-triggering inputs to the `diffs/` store.

use crate::differ::{CompDiff, DiffConfig};
use crate::report::DiffStore;
use fuzzing::{BinaryTarget, CampaignStats, FuzzConfig, Fuzzer, Oracle};
use minc::FrontendError;
use minc_compile::{Binary, CompilerImpl};
use minc_vm::{ExecResult, ExecSession, VmConfig};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// The CompDiff oracle: cross-checks the `k` binaries on each input.
/// Holds one persistent [`ExecSession`] per differential binary, so the
/// `k` executions per examined input run in persistent mode across the
/// whole campaign.
pub struct CompDiffOracle {
    diff: Rc<CompDiff>,
    sessions: Vec<ExecSession>,
    store: Rc<RefCell<DiffStore>>,
    /// Executions performed by the oracle (k per examined input).
    pub oracle_execs: Rc<RefCell<u64>>,
    /// §5 future-work mode: feed novel divergence signatures back into the
    /// fuzzer queue (NEZHA-style).
    divergence_feedback: bool,
    /// One entry per save-verdict handed back to the fuzzer (`true` iff the
    /// divergence signature was novel), popped by [`Oracle::feedback`] in
    /// the same order. A queue rather than a flag because under batching
    /// several verdicts are outstanding before the first feedback call.
    novel_saves: VecDeque<bool>,
}

impl CompDiffOracle {
    /// Cross-checks one outcome: records divergences, queues the novelty
    /// bit for [`Oracle::feedback`], and returns the save verdict.
    fn verdict(&mut self, outcome: &crate::differ::DiffOutcome, input: &[u8]) -> bool {
        if outcome.divergent {
            let novel = self.store.borrow_mut().record(&self.diff, outcome, input);
            self.novel_saves.push_back(novel);
            return true;
        }
        // Unresolved-timeout inputs are saved too (paper RQ6) but flagged,
        // not counted as discrepancies.
        if outcome.unresolved_timeout {
            self.novel_saves.push_back(false);
            return true;
        }
        false
    }
}

impl Oracle for CompDiffOracle {
    fn examine(&mut self, input: &[u8], _result: &ExecResult) -> bool {
        let outcome = self.diff.run_input_sessions(&mut self.sessions, input);
        *self.oracle_execs.borrow_mut() += self.diff.binaries().len() as u64;
        self.verdict(&outcome, input)
    }

    fn examine_batch(&mut self, items: &[(Vec<u8>, ExecResult)]) -> Vec<bool> {
        let inputs: Vec<&[u8]> = items.iter().map(|(i, _)| i.as_slice()).collect();
        let outcomes = self.diff.run_batch_sessions(&mut self.sessions, &inputs);
        *self.oracle_execs.borrow_mut() += (self.diff.binaries().len() * items.len()) as u64;
        outcomes
            .iter()
            .zip(&inputs)
            .map(|(outcome, input)| self.verdict(outcome, input))
            .collect()
    }

    fn feedback(&mut self, _input: &[u8]) -> bool {
        let novel = self.novel_saves.pop_front().unwrap_or(false);
        self.divergence_feedback && novel
    }
}

/// Results of a CompDiff-AFL++ campaign.
#[derive(Debug)]
pub struct CompDiffAflStats {
    /// The plain AFL++ campaign statistics (crashes, coverage, corpus).
    pub campaign: CampaignStats,
    /// The `diffs/` store with every discrepancy report.
    pub store: DiffStore,
    /// Differential executions performed by the oracle.
    pub oracle_execs: u64,
}

/// A configured CompDiff-AFL++ instance.
pub struct CompDiffAfl {
    /// The fuzz binary (B_fuzz, coverage-instrumented like normal AFL++).
    pub fuzz_binary: Binary,
    /// The differential engine over the `k` binaries B_i.
    pub diff: Rc<CompDiff>,
    /// Fuzzer configuration.
    pub fuzz_config: FuzzConfig,
    /// Fuzz-binary execution limits.
    pub vm: VmConfig,
    /// Enable divergence-as-feedback (§5 future work; off = the paper's
    /// base design).
    pub divergence_feedback: bool,
}

impl CompDiffAfl {
    /// Builds B_fuzz with `fuzz_impl` and the differential set with
    /// `impls`, from the same source (the paper's default: B_fuzz is the
    /// fuzzer-configured compiler; B_i are gcc/clang × O0..Os).
    ///
    /// # Errors
    ///
    /// Returns the frontend error if `src` does not parse or check.
    pub fn from_source(
        src: &str,
        fuzz_impl: CompilerImpl,
        impls: &[CompilerImpl],
        fuzz_config: FuzzConfig,
        diff_config: DiffConfig,
    ) -> Result<Self, FrontendError> {
        let checked = minc::check(src)?;
        let fuzz_binary = minc_compile::compile(&checked, fuzz_impl);
        let binaries: Vec<Binary> = impls
            .iter()
            .map(|&i| minc_compile::compile(&checked, i))
            .collect();
        let vm = diff_config.vm.clone();
        Ok(CompDiffAfl {
            fuzz_binary,
            diff: Rc::new(CompDiff::new(binaries, diff_config)),
            fuzz_config,
            vm,
            divergence_feedback: false,
        })
    }

    /// Enables NEZHA-style divergence feedback (§5 future work).
    pub fn with_divergence_feedback(mut self, enabled: bool) -> Self {
        self.divergence_feedback = enabled;
        self
    }

    /// Convenience: default fuzz compiler (clang-O1, a typical
    /// `afl-clang-fast` setting) and the default ten implementations.
    ///
    /// # Errors
    ///
    /// Returns the frontend error if `src` does not parse or check.
    pub fn from_source_default(
        src: &str,
        fuzz_config: FuzzConfig,
        diff_config: DiffConfig,
    ) -> Result<Self, FrontendError> {
        Self::from_source(
            src,
            CompilerImpl::parse("clang-O1").expect("valid"),
            &CompilerImpl::default_set(),
            fuzz_config,
            diff_config,
        )
    }

    /// Runs the campaign from the given seeds.
    pub fn run(self, seeds: &[Vec<u8>]) -> CompDiffAflStats {
        let store = Rc::new(RefCell::new(DiffStore::new()));
        let oracle_execs = Rc::new(RefCell::new(0u64));
        let oracle = CompDiffOracle {
            sessions: self.diff.make_sessions(),
            diff: Rc::clone(&self.diff),
            store: Rc::clone(&store),
            oracle_execs: Rc::clone(&oracle_execs),
            divergence_feedback: self.divergence_feedback,
            novel_saves: VecDeque::new(),
        };
        let target = BinaryTarget::new(&self.fuzz_binary, self.vm.clone());
        let campaign = Fuzzer::new(target, oracle, self.fuzz_config.clone()).run(seeds);
        let store = Rc::try_unwrap(store).expect("oracle dropped").into_inner();
        let oracle_execs = *oracle_execs.borrow();
        CompDiffAflStats {
            campaign,
            store,
            oracle_execs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_input_gated_unstable_code() {
        // The unstable code (uninitialized read) only triggers when the
        // input starts with "UB"; the fuzzer must find it, and the oracle
        // must flag it.
        let src = r#"
            int main() {
                char b[8];
                long n = read_input(b, 8L);
                if (n >= 2 && b[0] == 'U' && b[1] == 'B') {
                    int u;
                    printf("value %d\n", u);
                }
                printf("end\n");
                return 0;
            }
        "#;
        let afl = CompDiffAfl::from_source_default(
            src,
            FuzzConfig {
                max_execs: 4_000,
                seed: 2,
                ..Default::default()
            },
            DiffConfig::default(),
        )
        .unwrap();
        let stats = afl.run(&[b"XXXX".to_vec()]);
        assert!(
            !stats.store.reports().is_empty(),
            "CompDiff-AFL++ should find the gated unstable code ({} execs)",
            stats.campaign.execs
        );
        let rep = &stats.store.reports()[0];
        assert_eq!(&rep.input[..2], b"UB");
        assert!(stats.oracle_execs >= 10);
    }

    #[test]
    fn stable_target_produces_no_discrepancies() {
        let src = r#"
            int main() {
                char b[8];
                long n = read_input(b, 8L);
                long i;
                int acc = 0;
                for (i = 0; i < n; i++) { acc += b[i]; }
                printf("%d\n", acc);
                return 0;
            }
        "#;
        let afl = CompDiffAfl::from_source_default(
            src,
            FuzzConfig {
                max_execs: 1_500,
                seed: 3,
                ..Default::default()
            },
            DiffConfig::default(),
        )
        .unwrap();
        let stats = afl.run(&[b"seed".to_vec()]);
        assert_eq!(
            stats.store.reports().len(),
            0,
            "no false positives on stable code"
        );
    }

    #[test]
    fn sanitizers_remain_compatible_with_the_loop() {
        // Algorithm 1 note: sanitizers instrument B_fuzz; the CompDiff part
        // is orthogonal. Fuzz a crashing target and check both the crash
        // (via B_fuzz) and the diff oracle operate in one campaign.
        let src = r#"
            int main() {
                char b[4];
                long n = read_input(b, 4L);
                if (n >= 1 && b[0] == '#') { int* p = 0; *p = 1; }
                if (n >= 1 && b[0] == '?') { int u; printf("%d\n", u); }
                printf(".\n");
                return 0;
            }
        "#;
        let afl = CompDiffAfl::from_source_default(
            src,
            FuzzConfig {
                max_execs: 6_000,
                seed: 7,
                ..Default::default()
            },
            DiffConfig::default(),
        )
        .unwrap();
        let stats = afl.run(&[b"....".to_vec()]);
        assert!(!stats.campaign.crashes.is_empty(), "crash path found");
        assert!(!stats.store.reports().is_empty(), "diff path found");
    }
}
