//! The compiler-driven differential testing engine (paper §3.1).
//!
//! Workflow: compile the program with `k` compiler implementations, run
//! every binary on the same input, checksum each binary's observable output
//! (stdout + exit status, after optional scrubbing filters), and report a
//! discrepancy when any two checksums differ.

use crate::filters::{apply_filters, OutputFilter};
use crate::murmur::hash64;
use minc::FrontendError;
use minc_compile::{Binary, CompilerImpl};
use minc_vm::{ExecResult, ExecSession, ExitStatus, VmConfig};

/// Configuration of the differential engine.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Per-binary execution limits.
    pub vm: VmConfig,
    /// Output scrubbing filters (RQ5: benign non-determinism).
    pub filters: Vec<OutputFilter>,
    /// How many times to double the step budget when *some* binaries time
    /// out while others terminate (RQ6's timeout-escalation policy).
    pub timeout_escalations: u32,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            vm: VmConfig::default(),
            filters: Vec::new(),
            timeout_escalations: 3,
        }
    }
}

/// The outcome of one differential run.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// Per-implementation execution results (same order as the engine's
    /// implementation list).
    pub results: Vec<ExecResult>,
    /// MurmurHash3 checksum of each implementation's scrubbed output.
    pub hashes: Vec<u64>,
    /// Equivalence classes of implementation indices with equal output.
    pub classes: Vec<Vec<usize>>,
    /// True if at least two implementations produced different output —
    /// the presence of unstable code (Definition 1).
    pub divergent: bool,
    /// True if escalation could not resolve all timeouts; such inputs are
    /// saved but not counted as divergences (no false positives).
    pub unresolved_timeout: bool,
}

/// Observer seam for per-execution instrumentation of a differential
/// run. The engine itself stays dependency-free: a telemetry layer (or a
/// test) implements this trait and receives one `exec_begin`/`exec_end`
/// pair per binary execution — including timeout-escalation re-runs —
/// plus the classified outcome.
pub trait DiffObserver {
    /// About to run implementation `impl_idx`; `escalation_round` is 0
    /// for the initial sweep and `1..=timeout_escalations` for re-runs.
    fn exec_begin(&mut self, _impl_idx: usize, _escalation_round: u32) {}

    /// Implementation `impl_idx` finished with `result`.
    fn exec_end(&mut self, _impl_idx: usize, _result: &ExecResult, _escalation_round: u32) {}

    /// The input's classified outcome (called once per input, last).
    fn outcome(&mut self, _outcome: &DiffOutcome) {}
}

/// The do-nothing observer (the disabled-telemetry path).
impl DiffObserver for () {}

/// The CompDiff engine: `k` binaries of one program.
#[derive(Debug)]
pub struct CompDiff {
    binaries: Vec<Binary>,
    config: DiffConfig,
    /// Content hash of the program source (0 when unknown). Folded into
    /// triage signatures so campaign-wide dedup cannot collapse distinct
    /// programs that happen to diverge with the same exit-code/sanitizer
    /// shape — essential once generated programs enter the pipeline.
    src_hash: u64,
}

impl CompDiff {
    /// Wraps pre-compiled binaries. The source hash is unknown (0); set
    /// it with [`with_src_hash`](CompDiff::with_src_hash) when the caller
    /// has the program text.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two binaries are supplied (differential testing
    /// needs at least two implementations).
    pub fn new(binaries: Vec<Binary>, config: DiffConfig) -> Self {
        assert!(
            binaries.len() >= 2,
            "CompDiff needs at least two compiler implementations"
        );
        CompDiff {
            binaries,
            config,
            src_hash: 0,
        }
    }

    /// Tags the engine with a content hash of the program source; triage
    /// signatures produced through [`DiffStore`](crate::DiffStore) are
    /// then prefixed `p<hash>|`, keeping different programs apart.
    #[must_use]
    pub fn with_src_hash(mut self, src_hash: u64) -> Self {
        self.src_hash = src_hash;
        self
    }

    /// The program-source content hash (0 when unknown).
    pub fn src_hash(&self) -> u64 {
        self.src_hash
    }

    /// Compiles `src` with the given implementations. The engine is
    /// tagged with `src`'s content hash.
    ///
    /// # Errors
    ///
    /// Returns the frontend error if `src` does not parse or check.
    pub fn from_source(
        src: &str,
        impls: &[CompilerImpl],
        config: DiffConfig,
    ) -> Result<Self, FrontendError> {
        let binaries = minc_compile::compile_many(src, impls)?;
        Ok(CompDiff::new(binaries, config).with_src_hash(hash64(src.as_bytes())))
    }

    /// Compiles `src` with the paper's default ten implementations.
    ///
    /// # Errors
    ///
    /// Returns the frontend error if `src` does not parse or check.
    pub fn from_source_default(src: &str, config: DiffConfig) -> Result<Self, FrontendError> {
        Self::from_source(src, &CompilerImpl::default_set(), config)
    }

    /// The implementations, in engine order.
    pub fn impls(&self) -> Vec<CompilerImpl> {
        self.binaries.iter().map(|b| b.impl_id).collect()
    }

    /// The compiled binaries.
    pub fn binaries(&self) -> &[Binary] {
        &self.binaries
    }

    /// The observable (scrubbed) output bytes of one result.
    pub fn observable(&self, result: &ExecResult) -> Vec<u8> {
        let mut out = apply_filters(&result.stdout, &self.config.filters);
        out.push(0x1e);
        out.push(result.status.as_code());
        out
    }

    /// Creates one persistent [`ExecSession`] per binary, in engine order.
    /// Pass the vector to [`run_input_sessions`](CompDiff::run_input_sessions)
    /// to amortize VM setup across many inputs (the persistent-mode /
    /// forkserver analogue).
    pub fn make_sessions(&self) -> Vec<ExecSession> {
        self.binaries.iter().map(ExecSession::new).collect()
    }

    /// Runs every binary on `input` and cross-checks outputs.
    ///
    /// One-shot convenience over [`run_input_sessions`]
    /// (CompDiff::run_input_sessions); loops should create sessions once
    /// via [`make_sessions`](CompDiff::make_sessions) and reuse them.
    pub fn run_input(&self, input: &[u8]) -> DiffOutcome {
        self.run_input_sessions(&mut self.make_sessions(), input)
    }

    /// Runs every binary on `input` using the caller's persistent sessions
    /// (created by [`make_sessions`](CompDiff::make_sessions)), reusing
    /// them for timeout-escalation re-runs as well. Results are bit-for-bit
    /// identical to [`run_input`](CompDiff::run_input).
    ///
    /// # Panics
    ///
    /// Panics if `sessions.len()` differs from the number of binaries.
    pub fn run_input_sessions(&self, sessions: &mut [ExecSession], input: &[u8]) -> DiffOutcome {
        self.run_input_observed(sessions, input, &mut ())
    }

    /// [`run_input_sessions`](CompDiff::run_input_sessions) with an
    /// instrumentation [`DiffObserver`]. The observer never influences
    /// results; outcomes are bit-for-bit those of the unobserved run.
    ///
    /// # Panics
    ///
    /// Panics if `sessions.len()` differs from the number of binaries.
    pub fn run_input_observed(
        &self,
        sessions: &mut [ExecSession],
        input: &[u8],
        obs: &mut impl DiffObserver,
    ) -> DiffOutcome {
        assert_eq!(
            sessions.len(),
            self.binaries.len(),
            "one session per binary"
        );
        let mut results: Vec<ExecResult> = self
            .binaries
            .iter()
            .zip(sessions.iter_mut())
            .enumerate()
            .map(|(i, (b, s))| {
                obs.exec_begin(i, 0);
                let r = s.run(b, input, &self.config.vm);
                obs.exec_end(i, &r, 0);
                r
            })
            .collect();

        // RQ6: partial timeouts would truncate outputs and fake
        // discrepancies; escalate the budget for the timed-out binaries.
        // The config clone is hoisted out of the escalation loop and the
        // same sessions serve the re-runs, so a partial-timeout input does
        // not pay fresh-VM setup on top of its doubled step budget.
        let mut unresolved_timeout = false;
        let any_timeout = |rs: &[ExecResult]| rs.iter().any(|r| r.status == ExitStatus::TimedOut);
        let all_timeout = |rs: &[ExecResult]| rs.iter().all(|r| r.status == ExitStatus::TimedOut);
        if any_timeout(&results) && !all_timeout(&results) {
            let mut cfg = self.config.vm.clone();
            for round in 1..=self.config.timeout_escalations {
                cfg.step_limit = cfg.step_limit.saturating_mul(2);
                for (i, b) in self.binaries.iter().enumerate() {
                    if results[i].status == ExitStatus::TimedOut {
                        obs.exec_begin(i, round);
                        results[i] = sessions[i].run(b, input, &cfg);
                        obs.exec_end(i, &results[i], round);
                    }
                }
                if !any_timeout(&results) {
                    break;
                }
            }
            if any_timeout(&results) {
                unresolved_timeout = true;
            }
        }

        let hashes: Vec<u64> = results
            .iter()
            .map(|r| hash64(&self.observable(r)))
            .collect();

        // Group implementations by hash; timed-out entries form their own
        // class but do not count toward divergence when unresolved.
        let mut classes: Vec<Vec<usize>> = Vec::new();
        let mut class_hash: Vec<u64> = Vec::new();
        for (i, &h) in hashes.iter().enumerate() {
            match class_hash.iter().position(|&ch| ch == h) {
                Some(c) => classes[c].push(i),
                None => {
                    class_hash.push(h);
                    classes.push(vec![i]);
                }
            }
        }
        let divergent = if unresolved_timeout {
            let settled: Vec<u64> = results
                .iter()
                .zip(&hashes)
                .filter(|(r, _)| r.status != ExitStatus::TimedOut)
                .map(|(_, &h)| h)
                .collect();
            settled.windows(2).any(|w| w[0] != w[1])
        } else {
            classes.len() > 1
        };

        let outcome = DiffOutcome {
            results,
            hashes,
            classes,
            divergent,
            unresolved_timeout,
        };
        obs.outcome(&outcome);
        outcome
    }

    /// Convenience: is there *any* divergence on this input?
    pub fn is_divergent(&self, input: &[u8]) -> bool {
        self.run_input(input).divergent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(src: &str) -> CompDiff {
        CompDiff::from_source_default(src, DiffConfig::default()).unwrap()
    }

    #[test]
    fn stable_program_has_no_divergence() {
        let diff = engine(
            r#"
            int main() {
                int i;
                int acc = 0;
                for (i = 0; i < 16; i++) { acc += i * i; }
                printf("%d\n", acc);
                return 0;
            }
        "#,
        );
        let out = diff.run_input(b"");
        assert!(!out.divergent, "classes: {:?}", out.classes);
        assert_eq!(out.classes.len(), 1);
    }

    #[test]
    fn listing1_is_detected() {
        let diff = engine(
            r#"
            int dump_data(int offset, int len) {
                int size = 100;
                if (offset + len > size || offset < 0 || len < 0) { return -1; }
                if (offset + len < offset) { return -1; }
                return 0;
            }
            int main() {
                printf("r=%d\n", dump_data(2147483647 - 100, 101));
                return 0;
            }
        "#,
        );
        let out = diff.run_input(b"");
        assert!(out.divergent);
        assert!(out.classes.len() >= 2);
    }

    #[test]
    fn uninit_print_is_detected() {
        let diff = engine("int main() { int u; printf(\"%d\\n\", u); return 0; }");
        assert!(diff.is_divergent(b""));
    }

    #[test]
    fn divergence_depends_on_input() {
        // Only inputs starting with '!' reach the unstable code.
        let diff = engine(
            r#"
            int main() {
                char b[4];
                long n = read_input(b, 4L);
                if (n > 0 && b[0] == '!') {
                    int u;
                    printf("%d\n", u);
                }
                printf("done\n");
                return 0;
            }
        "#,
        );
        assert!(!diff.is_divergent(b"ok"));
        assert!(diff.is_divergent(b"!x"));
    }

    #[test]
    fn filters_suppress_benign_divergence() {
        // A program that deliberately prints a pointer: always divergent
        // raw, stable once scrubbed.
        let src = r#"
            int g;
            int main() { printf("at %p\n", &g); return 0; }
        "#;
        let raw = engine(src);
        assert!(raw.is_divergent(b""));
        let filtered = CompDiff::from_source_default(
            src,
            DiffConfig {
                filters: vec![OutputFilter::PointerAddresses],
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!filtered.is_divergent(b""));
    }

    #[test]
    fn partial_timeout_is_escalated() {
        // A loop whose bound is large: with a small initial budget some
        // optimization levels (smaller code, fewer steps) finish and others
        // time out; escalation must settle them and find no divergence.
        let src = r#"
            int main() {
                long acc = 0;
                long i;
                for (i = 0; i < 20000; i++) { acc += i; }
                printf("%ld\n", acc);
                return 0;
            }
        "#;
        let cfg = DiffConfig {
            vm: VmConfig {
                step_limit: 150_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let diff = CompDiff::from_source_default(src, cfg).unwrap();
        let out = diff.run_input(b"");
        assert!(
            !out.divergent,
            "escalation should settle timeouts: {:?}",
            out.classes
        );
    }

    #[derive(Default)]
    struct CountingObserver {
        begins: usize,
        ends: usize,
        escalation_reruns: usize,
        outcomes: usize,
    }

    impl DiffObserver for CountingObserver {
        fn exec_begin(&mut self, _i: usize, _round: u32) {
            self.begins += 1;
        }
        fn exec_end(&mut self, _i: usize, _r: &ExecResult, round: u32) {
            self.ends += 1;
            if round > 0 {
                self.escalation_reruns += 1;
            }
        }
        fn outcome(&mut self, _o: &DiffOutcome) {
            self.outcomes += 1;
        }
    }

    #[test]
    fn observer_sees_every_execution_without_changing_results() {
        let diff = engine("int main() { printf(\"hi\\n\"); return 0; }");
        let mut obs = CountingObserver::default();
        let observed = diff.run_input_observed(&mut diff.make_sessions(), b"", &mut obs);
        let plain = diff.run_input(b"");
        assert_eq!(observed.hashes, plain.hashes, "observer must not perturb");
        assert_eq!(obs.begins, diff.binaries().len());
        assert_eq!(obs.ends, diff.binaries().len());
        assert_eq!(obs.escalation_reruns, 0);
        assert_eq!(obs.outcomes, 1);
    }

    #[test]
    fn observer_counts_escalation_reruns() {
        // Same partial-timeout setup as `partial_timeout_is_escalated`:
        // some implementations need budget doubling, and each re-run must
        // reach the observer with its escalation round.
        let src = r#"
            int main() {
                long acc = 0;
                long i;
                for (i = 0; i < 20000; i++) { acc += i; }
                printf("%ld\n", acc);
                return 0;
            }
        "#;
        // Calibrate a budget between the fastest and slowest
        // implementation so some (but not all) time out initially.
        let probe = CompDiff::from_source_default(src, DiffConfig::default()).unwrap();
        let steps: Vec<u64> = probe
            .run_input(b"")
            .results
            .iter()
            .map(|r| r.steps)
            .collect();
        let (min, max) = (*steps.iter().min().unwrap(), *steps.iter().max().unwrap());
        assert!(min < max, "optimization levels must differ in steps");
        let cfg = DiffConfig {
            vm: VmConfig {
                step_limit: min.midpoint(max),
                ..Default::default()
            },
            ..Default::default()
        };
        let diff = CompDiff::from_source_default(src, cfg).unwrap();
        let mut obs = CountingObserver::default();
        let out = diff.run_input_observed(&mut diff.make_sessions(), b"", &mut obs);
        assert!(!out.divergent);
        assert!(obs.escalation_reruns > 0, "expected timeout re-runs");
        assert_eq!(obs.ends, diff.binaries().len() + obs.escalation_reruns);
    }

    #[test]
    fn crash_vs_no_crash_is_a_divergence() {
        // Unused division by zero: trap at -O0, gone at -O2.
        let src = "int main() { int z = (int)input_size(); int dead = 5 / z; printf(\"ok\\n\"); return 0; }";
        let diff = engine(src);
        let out = diff.run_input(b"");
        assert!(out.divergent);
        let statuses: std::collections::HashSet<String> =
            out.results.iter().map(|r| r.status.to_string()).collect();
        assert!(statuses.len() >= 2, "{statuses:?}");
    }
}
