//! The compiler-driven differential testing engine (paper §3.1).
//!
//! Workflow: compile the program with `k` compiler implementations, run
//! every binary on the same input, checksum each binary's observable output
//! (stdout + exit status, after optional scrubbing filters), and report a
//! discrepancy when any two checksums differ.

use crate::filters::{apply_filters, OutputFilter};
use crate::murmur::hash64;
use minc::FrontendError;
use minc_compile::{Binary, CompilerImpl};
use minc_vm::{ExecResult, ExecSession, ExitStatus, VmConfig};

/// Configuration of the differential engine.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Per-binary execution limits.
    pub vm: VmConfig,
    /// Output scrubbing filters (RQ5: benign non-determinism).
    pub filters: Vec<OutputFilter>,
    /// How many times to double the step budget when *some* binaries time
    /// out while others terminate (RQ6's timeout-escalation policy).
    pub timeout_escalations: u32,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            vm: VmConfig::default(),
            filters: Vec::new(),
            timeout_escalations: 3,
        }
    }
}

/// The outcome of one differential run.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// Per-implementation execution results (same order as the engine's
    /// implementation list).
    pub results: Vec<ExecResult>,
    /// MurmurHash3 checksum of each implementation's scrubbed output.
    pub hashes: Vec<u64>,
    /// Equivalence classes of implementation indices with equal output.
    pub classes: Vec<Vec<usize>>,
    /// True if at least two implementations produced different output —
    /// the presence of unstable code (Definition 1).
    pub divergent: bool,
    /// True if escalation could not resolve all timeouts; such inputs are
    /// saved but not counted as divergences (no false positives).
    pub unresolved_timeout: bool,
}

/// Observer seam for per-execution instrumentation of a differential
/// run. The engine itself stays dependency-free: a telemetry layer (or a
/// test) implements this trait and receives one `exec_begin`/`exec_end`
/// pair per binary execution — including timeout-escalation re-runs —
/// plus the classified outcome.
pub trait DiffObserver {
    /// About to run implementation `impl_idx`; `escalation_round` is 0
    /// for the initial sweep and `1..=timeout_escalations` for re-runs.
    fn exec_begin(&mut self, _impl_idx: usize, _escalation_round: u32) {}

    /// Implementation `impl_idx` finished with `result`.
    fn exec_end(&mut self, _impl_idx: usize, _result: &ExecResult, _escalation_round: u32) {}

    /// The input's classified outcome (called once per input, last).
    fn outcome(&mut self, _outcome: &DiffOutcome) {}

    /// A batched sweep finished: `size` inputs were swept impl-major and
    /// `bisections` of them had disagreeing digests (or timeouts) and were
    /// bisected down to exact divergences. Called once per
    /// [`run_batch_observed`](CompDiff::run_batch_observed) call, after
    /// every per-input [`outcome`](DiffObserver::outcome).
    fn batch(&mut self, _size: usize, _bisections: usize) {}
}

/// The do-nothing observer (the disabled-telemetry path).
impl DiffObserver for () {}

/// The CompDiff engine: `k` binaries of one program.
#[derive(Debug)]
pub struct CompDiff {
    binaries: Vec<Binary>,
    config: DiffConfig,
    /// Content hash of the program source (0 when unknown). Folded into
    /// triage signatures so campaign-wide dedup cannot collapse distinct
    /// programs that happen to diverge with the same exit-code/sanitizer
    /// shape — essential once generated programs enter the pipeline.
    src_hash: u64,
}

impl CompDiff {
    /// Wraps pre-compiled binaries. The source hash is unknown (0); set
    /// it with [`with_src_hash`](CompDiff::with_src_hash) when the caller
    /// has the program text.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two binaries are supplied (differential testing
    /// needs at least two implementations).
    pub fn new(binaries: Vec<Binary>, config: DiffConfig) -> Self {
        assert!(
            binaries.len() >= 2,
            "CompDiff needs at least two compiler implementations"
        );
        CompDiff {
            binaries,
            config,
            src_hash: 0,
        }
    }

    /// Tags the engine with a content hash of the program source; triage
    /// signatures produced through [`DiffStore`](crate::DiffStore) are
    /// then prefixed `p<hash>|`, keeping different programs apart.
    #[must_use]
    pub fn with_src_hash(mut self, src_hash: u64) -> Self {
        self.src_hash = src_hash;
        self
    }

    /// The program-source content hash (0 when unknown).
    pub fn src_hash(&self) -> u64 {
        self.src_hash
    }

    /// Compiles `src` with the given implementations. The engine is
    /// tagged with `src`'s content hash.
    ///
    /// # Errors
    ///
    /// Returns the frontend error if `src` does not parse or check.
    pub fn from_source(
        src: &str,
        impls: &[CompilerImpl],
        config: DiffConfig,
    ) -> Result<Self, FrontendError> {
        let binaries = minc_compile::compile_many(src, impls)?;
        Ok(CompDiff::new(binaries, config).with_src_hash(hash64(src.as_bytes())))
    }

    /// Compiles `src` with the paper's default ten implementations.
    ///
    /// # Errors
    ///
    /// Returns the frontend error if `src` does not parse or check.
    pub fn from_source_default(src: &str, config: DiffConfig) -> Result<Self, FrontendError> {
        Self::from_source(src, &CompilerImpl::default_set(), config)
    }

    /// The implementations, in engine order.
    pub fn impls(&self) -> Vec<CompilerImpl> {
        self.binaries.iter().map(|b| b.impl_id).collect()
    }

    /// The compiled binaries.
    pub fn binaries(&self) -> &[Binary] {
        &self.binaries
    }

    /// The observable (scrubbed) output bytes of one result.
    pub fn observable(&self, result: &ExecResult) -> Vec<u8> {
        let mut out = apply_filters(&result.stdout, &self.config.filters);
        out.push(0x1e);
        out.push(result.status.as_code());
        out
    }

    /// [`observable`](CompDiff::observable)'s hash, built in a reusable
    /// scratch buffer so batched sweeps don't allocate per execution.
    /// Identical to `hash64(&self.observable(r))`.
    fn hash_observable(&self, result: &ExecResult, scratch: &mut Vec<u8>) -> u64 {
        scratch.clear();
        if self.config.filters.is_empty() {
            scratch.extend_from_slice(&result.stdout);
        } else {
            let filtered = apply_filters(&result.stdout, &self.config.filters);
            scratch.extend_from_slice(&filtered);
        }
        scratch.push(0x1e);
        scratch.push(result.status.as_code());
        hash64(scratch)
    }

    /// Creates one persistent [`ExecSession`] per binary, in engine order.
    /// Pass the vector to [`run_input_sessions`](CompDiff::run_input_sessions)
    /// to amortize VM setup across many inputs (the persistent-mode /
    /// forkserver analogue).
    pub fn make_sessions(&self) -> Vec<ExecSession> {
        self.binaries.iter().map(ExecSession::new).collect()
    }

    /// Runs every binary on `input` and cross-checks outputs.
    ///
    /// One-shot convenience over [`run_input_sessions`]
    /// (CompDiff::run_input_sessions); loops should create sessions once
    /// via [`make_sessions`](CompDiff::make_sessions) and reuse them.
    pub fn run_input(&self, input: &[u8]) -> DiffOutcome {
        self.run_input_sessions(&mut self.make_sessions(), input)
    }

    /// Runs every binary on `input` using the caller's persistent sessions
    /// (created by [`make_sessions`](CompDiff::make_sessions)), reusing
    /// them for timeout-escalation re-runs as well. Results are bit-for-bit
    /// identical to [`run_input`](CompDiff::run_input).
    ///
    /// # Panics
    ///
    /// Panics if `sessions.len()` differs from the number of binaries.
    pub fn run_input_sessions(&self, sessions: &mut [ExecSession], input: &[u8]) -> DiffOutcome {
        self.run_input_observed(sessions, input, &mut ())
    }

    /// [`run_input_sessions`](CompDiff::run_input_sessions) with an
    /// instrumentation [`DiffObserver`]. The observer never influences
    /// results; outcomes are bit-for-bit those of the unobserved run.
    ///
    /// # Panics
    ///
    /// Panics if `sessions.len()` differs from the number of binaries.
    pub fn run_input_observed(
        &self,
        sessions: &mut [ExecSession],
        input: &[u8],
        obs: &mut impl DiffObserver,
    ) -> DiffOutcome {
        assert_eq!(
            sessions.len(),
            self.binaries.len(),
            "one session per binary"
        );
        let mut results: Vec<ExecResult> = self
            .binaries
            .iter()
            .zip(sessions.iter_mut())
            .enumerate()
            .map(|(i, (b, s))| {
                obs.exec_begin(i, 0);
                let r = s.run(b, input, &self.config.vm);
                obs.exec_end(i, &r, 0);
                r
            })
            .collect();

        let unresolved_timeout = self.escalate(sessions, input, &mut results, obs);
        let outcome = self.classify(results, unresolved_timeout);
        obs.outcome(&outcome);
        outcome
    }

    /// Runs a whole batch of inputs, sweeping each implementation over the
    /// batch (impl-major order) instead of all implementations per input.
    /// Outcomes are bit-for-bit identical to calling
    /// [`run_input_sessions`](CompDiff::run_input_sessions) per input, and
    /// are returned in input order.
    ///
    /// # Panics
    ///
    /// Panics if `sessions.len()` differs from the number of binaries.
    pub fn run_batch_sessions<I: AsRef<[u8]>>(
        &self,
        sessions: &mut [ExecSession],
        inputs: &[I],
    ) -> Vec<DiffOutcome> {
        self.run_batch_observed(sessions, inputs, &mut ())
    }

    /// [`run_batch_sessions`](CompDiff::run_batch_sessions) with an
    /// instrumentation [`DiffObserver`].
    ///
    /// The sweep runs impl-major — one binary executes the whole batch
    /// back to back, so its block translation, code, and session pages
    /// stay hot while session reset cost is amortized across the batch —
    /// and computes one output digest per (impl, input). Inputs whose
    /// digests agree across every implementation are classified straight
    /// from the digests (the common case); the rest are *bisected*: the
    /// disagreement is narrowed to the exact divergence via the full
    /// classification, going through the regular timeout-escalation path
    /// where partial timeouts are involved. Divergences are emitted in
    /// input order (never discovery order), so downstream triage and
    /// dedup see the same stream as a batch-size-1 run.
    ///
    /// Observer semantics are preserved: `exec_begin`/`exec_end` fire once
    /// per (impl, input, round) — only their relative order changes — and
    /// `outcome` fires once per input, in input order. The extra
    /// [`batch`](DiffObserver::batch) hook reports the sweep's size and
    /// how many inputs needed bisection.
    ///
    /// # Panics
    ///
    /// Panics if `sessions.len()` differs from the number of binaries.
    pub fn run_batch_observed<I: AsRef<[u8]>>(
        &self,
        sessions: &mut [ExecSession],
        inputs: &[I],
        obs: &mut impl DiffObserver,
    ) -> Vec<DiffOutcome> {
        assert_eq!(
            sessions.len(),
            self.binaries.len(),
            "one session per binary"
        );
        let (k, n) = (self.binaries.len(), inputs.len());
        // Impl-major sweep: rows[i][j] is implementation i on input j.
        // `run_batched` amortizes the session reset across the batch: the
        // binary's post-loader page image is captured once and untouched
        // loader pages then cost nothing per run. Output digests are
        // computed inline, while the run's stdout is still cache-hot, into
        // one flat impl-major array (hash setup — the scratch buffer — is
        // shared across the whole sweep).
        let mut rows: Vec<Vec<ExecResult>> = Vec::with_capacity(k);
        let mut digests: Vec<u64> = Vec::with_capacity(k * n);
        let mut scratch: Vec<u8> = Vec::new();
        for (i, (b, s)) in self.binaries.iter().zip(sessions.iter_mut()).enumerate() {
            let mut row = Vec::with_capacity(n);
            for input in inputs {
                obs.exec_begin(i, 0);
                let r = s.run_batched(b, input.as_ref(), &self.config.vm);
                obs.exec_end(i, &r, 0);
                digests.push(self.hash_observable(&r, &mut scratch));
                row.push(r);
            }
            rows.push(row);
        }
        // Transpose to input-major so per-input classification (and any
        // escalation re-runs) proceed strictly in input order.
        let mut per_input: Vec<Vec<ExecResult>> = (0..n).map(|_| Vec::with_capacity(k)).collect();
        for row in rows {
            for (j, r) in row.into_iter().enumerate() {
                per_input[j].push(r);
            }
        }

        let mut bisections = 0usize;
        let mut outcomes = Vec::with_capacity(n);
        for (j, mut results) in per_input.into_iter().enumerate() {
            // Cheap cross-impl digest agreement check. The digest covers
            // the scrubbed output *and* the exit status byte, so "all
            // digests equal" also implies no partial timeout (a timed-out
            // impl could never share a digest with a settled one) — the
            // escalation path is provably unreachable for agreeing inputs.
            let agree = (1..k).all(|i| digests[i * n + j] == digests[j]);
            let outcome = if agree {
                // One equivalence class holding every implementation —
                // exactly what `classify` would compute, without hashing
                // the outputs a second time.
                DiffOutcome {
                    hashes: (0..k).map(|i| digests[i * n + j]).collect(),
                    classes: vec![(0..k).collect()],
                    divergent: false,
                    unresolved_timeout: false,
                    results,
                }
            } else {
                // Bisection: narrow the disagreeing input down to its
                // exact divergence, escalating timeouts exactly as the
                // single-input path would.
                bisections += 1;
                let unresolved_timeout =
                    self.escalate(sessions, inputs[j].as_ref(), &mut results, obs);
                self.classify(results, unresolved_timeout)
            };
            obs.outcome(&outcome);
            outcomes.push(outcome);
        }
        obs.batch(inputs.len(), bisections);
        outcomes
    }

    /// RQ6: partial timeouts would truncate outputs and fake
    /// discrepancies; escalate the step budget for the timed-out binaries
    /// (doubling per round, re-running only the timed-out ones in the
    /// caller's sessions). Returns true if timeouts remain unresolved
    /// after every escalation round. No-op unless *some but not all*
    /// results timed out.
    fn escalate(
        &self,
        sessions: &mut [ExecSession],
        input: &[u8],
        results: &mut [ExecResult],
        obs: &mut impl DiffObserver,
    ) -> bool {
        let any_timeout = |rs: &[ExecResult]| rs.iter().any(|r| r.status == ExitStatus::TimedOut);
        let all_timeout = |rs: &[ExecResult]| rs.iter().all(|r| r.status == ExitStatus::TimedOut);
        if !any_timeout(results) || all_timeout(results) {
            return false;
        }
        // The config clone is hoisted out of the escalation loop and the
        // same sessions serve the re-runs, so a partial-timeout input does
        // not pay fresh-VM setup on top of its doubled step budget.
        let mut cfg = self.config.vm.clone();
        for round in 1..=self.config.timeout_escalations {
            cfg.step_limit = cfg.step_limit.saturating_mul(2);
            for (i, b) in self.binaries.iter().enumerate() {
                if results[i].status == ExitStatus::TimedOut {
                    obs.exec_begin(i, round);
                    results[i] = sessions[i].run(b, input, &cfg);
                    obs.exec_end(i, &results[i], round);
                }
            }
            if !any_timeout(results) {
                return false;
            }
        }
        true
    }

    /// Hashes each result's observable output, groups implementations into
    /// equivalence classes, and decides divergence. Timed-out entries form
    /// their own class but do not count toward divergence when unresolved.
    fn classify(&self, results: Vec<ExecResult>, unresolved_timeout: bool) -> DiffOutcome {
        let hashes: Vec<u64> = results
            .iter()
            .map(|r| hash64(&self.observable(r)))
            .collect();

        let mut classes: Vec<Vec<usize>> = Vec::new();
        let mut class_hash: Vec<u64> = Vec::new();
        for (i, &h) in hashes.iter().enumerate() {
            match class_hash.iter().position(|&ch| ch == h) {
                Some(c) => classes[c].push(i),
                None => {
                    class_hash.push(h);
                    classes.push(vec![i]);
                }
            }
        }
        let divergent = if unresolved_timeout {
            let settled: Vec<u64> = results
                .iter()
                .zip(&hashes)
                .filter(|(r, _)| r.status != ExitStatus::TimedOut)
                .map(|(_, &h)| h)
                .collect();
            settled.windows(2).any(|w| w[0] != w[1])
        } else {
            classes.len() > 1
        };

        DiffOutcome {
            results,
            hashes,
            classes,
            divergent,
            unresolved_timeout,
        }
    }

    /// Convenience: is there *any* divergence on this input?
    pub fn is_divergent(&self, input: &[u8]) -> bool {
        self.run_input(input).divergent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(src: &str) -> CompDiff {
        CompDiff::from_source_default(src, DiffConfig::default()).unwrap()
    }

    #[test]
    fn stable_program_has_no_divergence() {
        let diff = engine(
            r#"
            int main() {
                int i;
                int acc = 0;
                for (i = 0; i < 16; i++) { acc += i * i; }
                printf("%d\n", acc);
                return 0;
            }
        "#,
        );
        let out = diff.run_input(b"");
        assert!(!out.divergent, "classes: {:?}", out.classes);
        assert_eq!(out.classes.len(), 1);
    }

    #[test]
    fn listing1_is_detected() {
        let diff = engine(
            r#"
            int dump_data(int offset, int len) {
                int size = 100;
                if (offset + len > size || offset < 0 || len < 0) { return -1; }
                if (offset + len < offset) { return -1; }
                return 0;
            }
            int main() {
                printf("r=%d\n", dump_data(2147483647 - 100, 101));
                return 0;
            }
        "#,
        );
        let out = diff.run_input(b"");
        assert!(out.divergent);
        assert!(out.classes.len() >= 2);
    }

    #[test]
    fn uninit_print_is_detected() {
        let diff = engine("int main() { int u; printf(\"%d\\n\", u); return 0; }");
        assert!(diff.is_divergent(b""));
    }

    #[test]
    fn divergence_depends_on_input() {
        // Only inputs starting with '!' reach the unstable code.
        let diff = engine(
            r#"
            int main() {
                char b[4];
                long n = read_input(b, 4L);
                if (n > 0 && b[0] == '!') {
                    int u;
                    printf("%d\n", u);
                }
                printf("done\n");
                return 0;
            }
        "#,
        );
        assert!(!diff.is_divergent(b"ok"));
        assert!(diff.is_divergent(b"!x"));
    }

    #[test]
    fn filters_suppress_benign_divergence() {
        // A program that deliberately prints a pointer: always divergent
        // raw, stable once scrubbed.
        let src = r#"
            int g;
            int main() { printf("at %p\n", &g); return 0; }
        "#;
        let raw = engine(src);
        assert!(raw.is_divergent(b""));
        let filtered = CompDiff::from_source_default(
            src,
            DiffConfig {
                filters: vec![OutputFilter::PointerAddresses],
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!filtered.is_divergent(b""));
    }

    #[test]
    fn partial_timeout_is_escalated() {
        // A loop whose bound is large: with a small initial budget some
        // optimization levels (smaller code, fewer steps) finish and others
        // time out; escalation must settle them and find no divergence.
        let src = r#"
            int main() {
                long acc = 0;
                long i;
                for (i = 0; i < 20000; i++) { acc += i; }
                printf("%ld\n", acc);
                return 0;
            }
        "#;
        let cfg = DiffConfig {
            vm: VmConfig {
                step_limit: 150_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let diff = CompDiff::from_source_default(src, cfg).unwrap();
        let out = diff.run_input(b"");
        assert!(
            !out.divergent,
            "escalation should settle timeouts: {:?}",
            out.classes
        );
    }

    #[derive(Default)]
    struct CountingObserver {
        begins: usize,
        ends: usize,
        escalation_reruns: usize,
        outcomes: usize,
    }

    impl DiffObserver for CountingObserver {
        fn exec_begin(&mut self, _i: usize, _round: u32) {
            self.begins += 1;
        }
        fn exec_end(&mut self, _i: usize, _r: &ExecResult, round: u32) {
            self.ends += 1;
            if round > 0 {
                self.escalation_reruns += 1;
            }
        }
        fn outcome(&mut self, _o: &DiffOutcome) {
            self.outcomes += 1;
        }
    }

    #[test]
    fn observer_sees_every_execution_without_changing_results() {
        let diff = engine("int main() { printf(\"hi\\n\"); return 0; }");
        let mut obs = CountingObserver::default();
        let observed = diff.run_input_observed(&mut diff.make_sessions(), b"", &mut obs);
        let plain = diff.run_input(b"");
        assert_eq!(observed.hashes, plain.hashes, "observer must not perturb");
        assert_eq!(obs.begins, diff.binaries().len());
        assert_eq!(obs.ends, diff.binaries().len());
        assert_eq!(obs.escalation_reruns, 0);
        assert_eq!(obs.outcomes, 1);
    }

    #[test]
    fn observer_counts_escalation_reruns() {
        // Same partial-timeout setup as `partial_timeout_is_escalated`:
        // some implementations need budget doubling, and each re-run must
        // reach the observer with its escalation round.
        let src = r#"
            int main() {
                long acc = 0;
                long i;
                for (i = 0; i < 20000; i++) { acc += i; }
                printf("%ld\n", acc);
                return 0;
            }
        "#;
        // Calibrate a budget between the fastest and slowest
        // implementation so some (but not all) time out initially.
        let probe = CompDiff::from_source_default(src, DiffConfig::default()).unwrap();
        let steps: Vec<u64> = probe
            .run_input(b"")
            .results
            .iter()
            .map(|r| r.steps)
            .collect();
        let (min, max) = (*steps.iter().min().unwrap(), *steps.iter().max().unwrap());
        assert!(min < max, "optimization levels must differ in steps");
        let cfg = DiffConfig {
            vm: VmConfig {
                step_limit: min.midpoint(max),
                ..Default::default()
            },
            ..Default::default()
        };
        let diff = CompDiff::from_source_default(src, cfg).unwrap();
        let mut obs = CountingObserver::default();
        let out = diff.run_input_observed(&mut diff.make_sessions(), b"", &mut obs);
        assert!(!out.divergent);
        assert!(obs.escalation_reruns > 0, "expected timeout re-runs");
        assert_eq!(obs.ends, diff.binaries().len() + obs.escalation_reruns);
    }

    /// Asserts batch outcomes are bit-for-bit those of per-input runs.
    fn assert_batch_matches_single(diff: &CompDiff, inputs: &[Vec<u8>]) -> Vec<DiffOutcome> {
        let batched = diff.run_batch_sessions(&mut diff.make_sessions(), inputs);
        assert_eq!(batched.len(), inputs.len());
        let mut sessions = diff.make_sessions();
        for (j, input) in inputs.iter().enumerate() {
            let single = diff.run_input_sessions(&mut sessions, input);
            assert_eq!(batched[j].results, single.results, "input {j}");
            assert_eq!(batched[j].hashes, single.hashes, "input {j}");
            assert_eq!(batched[j].classes, single.classes, "input {j}");
            assert_eq!(batched[j].divergent, single.divergent, "input {j}");
            assert_eq!(
                batched[j].unresolved_timeout, single.unresolved_timeout,
                "input {j}"
            );
        }
        batched
    }

    /// Inputs starting with '!' reach unstable code (uninitialized read);
    /// inputs starting with '#' trap (null write) on every impl.
    fn edge_case_engine() -> CompDiff {
        engine(
            r#"
            int main() {
                char b[4];
                long n = read_input(b, 4L);
                if (n > 0 && b[0] == '!') {
                    int u;
                    printf("%d\n", u);
                }
                if (n > 0 && b[0] == '#') { int* p = 0; *p = 1; }
                printf("done\n");
                return 0;
            }
        "#,
        )
    }

    #[test]
    fn batch_divergence_in_first_input() {
        let diff = edge_case_engine();
        let inputs = vec![b"!a".to_vec(), b"ok".to_vec(), b"ok".to_vec()];
        let out = assert_batch_matches_single(&diff, &inputs);
        assert!(out[0].divergent);
        assert!(!out[1].divergent && !out[2].divergent);
    }

    #[test]
    fn batch_divergence_in_last_input() {
        let diff = edge_case_engine();
        let inputs = vec![b"ok".to_vec(), b"ok".to_vec(), b"!z".to_vec()];
        let out = assert_batch_matches_single(&diff, &inputs);
        assert!(!out[0].divergent && !out[1].divergent);
        assert!(out[2].divergent);
    }

    #[test]
    fn batch_all_inputs_diverging() {
        let diff = edge_case_engine();
        let inputs = vec![b"!a".to_vec(), b"!b".to_vec(), b"!c".to_vec()];
        let out = assert_batch_matches_single(&diff, &inputs);
        assert!(out.iter().all(|o| o.divergent));
    }

    #[test]
    fn batch_of_one_input() {
        let diff = edge_case_engine();
        for input in [&b"ok"[..], b"!a"] {
            let out = assert_batch_matches_single(&diff, &[input.to_vec()]);
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    fn batch_of_zero_inputs() {
        let diff = edge_case_engine();
        assert!(diff
            .run_batch_sessions::<Vec<u8>>(&mut diff.make_sessions(), &[])
            .is_empty());
    }

    #[test]
    fn trap_mid_batch_does_not_poison_later_inputs() {
        // Input 1 traps on *every* impl mid-run; inputs 2 and 3 (run in
        // the same per-impl sessions immediately after the trap) must
        // still classify exactly as fresh-session runs would.
        let diff = edge_case_engine();
        let inputs = vec![
            b"ok".to_vec(),
            b"#!".to_vec(),
            b"ok".to_vec(),
            b"!q".to_vec(),
        ];
        let out = assert_batch_matches_single(&diff, &inputs);
        assert!(!out[0].divergent);
        assert!(!out[1].divergent, "uniform trap is not a divergence");
        assert!(!out[2].divergent, "trap must not leak into later inputs");
        assert!(out[3].divergent);
    }

    #[derive(Default)]
    struct BatchObserver {
        begins: usize,
        ends: usize,
        outcomes: usize,
        batches: Vec<(usize, usize)>,
    }

    impl DiffObserver for BatchObserver {
        fn exec_begin(&mut self, _i: usize, _round: u32) {
            self.begins += 1;
        }
        fn exec_end(&mut self, _i: usize, _r: &ExecResult, _round: u32) {
            self.ends += 1;
        }
        fn outcome(&mut self, _o: &DiffOutcome) {
            self.outcomes += 1;
        }
        fn batch(&mut self, size: usize, bisections: usize) {
            self.batches.push((size, bisections));
        }
    }

    #[test]
    fn batch_observer_sees_every_execution_and_bisection_count() {
        let diff = edge_case_engine();
        let inputs = vec![b"ok".to_vec(), b"!a".to_vec(), b"ok".to_vec()];
        let mut obs = BatchObserver::default();
        let out = diff.run_batch_observed(&mut diff.make_sessions(), &inputs, &mut obs);
        let k = diff.binaries().len();
        assert_eq!(obs.begins, k * inputs.len(), "one begin per (impl, input)");
        assert_eq!(obs.ends, obs.begins);
        assert_eq!(obs.outcomes, inputs.len(), "one outcome per input");
        assert_eq!(obs.batches, vec![(3, 1)], "only input 1 needed bisection");
        assert!(out[1].divergent);
    }

    #[test]
    fn batch_escalates_partial_timeouts() {
        // Same calibrated partial-timeout setup as the single-input test:
        // batched classification must go through escalation and settle.
        let src = r#"
            int main() {
                long acc = 0;
                long i;
                for (i = 0; i < 20000; i++) { acc += i; }
                printf("%ld\n", acc);
                return 0;
            }
        "#;
        let probe = CompDiff::from_source_default(src, DiffConfig::default()).unwrap();
        let steps: Vec<u64> = probe
            .run_input(b"")
            .results
            .iter()
            .map(|r| r.steps)
            .collect();
        let (min, max) = (*steps.iter().min().unwrap(), *steps.iter().max().unwrap());
        assert!(min < max);
        let cfg = DiffConfig {
            vm: VmConfig {
                step_limit: min.midpoint(max),
                ..Default::default()
            },
            ..Default::default()
        };
        let diff = CompDiff::from_source_default(src, cfg).unwrap();
        let inputs = vec![b"".to_vec(), b"x".to_vec()];
        let mut obs = BatchObserver::default();
        let out = diff.run_batch_observed(&mut diff.make_sessions(), &inputs, &mut obs);
        assert!(out.iter().all(|o| !o.divergent && !o.unresolved_timeout));
        assert_eq!(obs.batches, vec![(2, 2)], "both inputs hit escalation");
        assert_batch_matches_single(&diff, &inputs);
    }

    #[test]
    fn crash_vs_no_crash_is_a_divergence() {
        // Unused division by zero: trap at -O0, gone at -O2.
        let src = "int main() { int z = (int)input_size(); int dead = 5 / z; printf(\"ok\\n\"); return 0; }";
        let diff = engine(src);
        let out = diff.run_input(b"");
        assert!(out.divergent);
        let statuses: std::collections::HashSet<String> =
            out.results.iter().map(|r| r.status.to_string()).collect();
        assert!(statuses.len() >= 2, "{statuses:?}");
    }
}
