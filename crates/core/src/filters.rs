//! Output normalization for programs with benign non-determinism (RQ5).
//!
//! The paper's example: wireshark prepends wall-clock timestamps to warning
//! lines, so the authors strip them with a regular expression before
//! comparison. CompDiff here ships a small set of scrubbing filters that
//! are applied to each binary's output before hashing.

/// A single output-scrubbing rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputFilter {
    /// Replaces `HH:MM:SS(.ffffff)?` timestamps with `<TS>`.
    Timestamps,
    /// Replaces `0x`-prefixed hex pointers with `<PTR>`. (Addresses are
    /// layout-dependent by design; a target that deliberately prints `%p`
    /// would otherwise always diverge — the paper's objdump "printing
    /// pointer address instead of value" bug was a real finding precisely
    /// because it was *not* scrubbed, so only enable this when wanted.)
    PointerAddresses,
    /// Replaces every decimal run longer than `min_digits` with `<NUM>`.
    LongNumbers {
        /// Minimum digits before a run is scrubbed.
        min_digits: usize,
    },
    /// Replaces a literal byte pattern.
    Literal {
        /// Pattern to find.
        from: Vec<u8>,
        /// Replacement.
        to: Vec<u8>,
    },
}

impl OutputFilter {
    /// Applies the filter to `data`, returning the scrubbed output.
    pub fn apply(&self, data: &[u8]) -> Vec<u8> {
        match self {
            OutputFilter::Timestamps => scrub_timestamps(data),
            OutputFilter::PointerAddresses => scrub_pointers(data),
            OutputFilter::LongNumbers { min_digits } => scrub_numbers(data, *min_digits),
            OutputFilter::Literal { from, to } => replace_all(data, from, to),
        }
    }
}

/// Applies a filter chain in order.
pub fn apply_filters(data: &[u8], filters: &[OutputFilter]) -> Vec<u8> {
    let mut out = data.to_vec();
    for f in filters {
        out = f.apply(&out);
    }
    out
}

fn is_digit(b: u8) -> bool {
    b.is_ascii_digit()
}

fn scrub_timestamps(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0;
    while i < data.len() {
        // HH:MM:SS with optional .fraction
        if i + 8 <= data.len()
            && is_digit(data[i])
            && is_digit(data[i + 1])
            && data[i + 2] == b':'
            && is_digit(data[i + 3])
            && is_digit(data[i + 4])
            && data[i + 5] == b':'
            && is_digit(data[i + 6])
            && is_digit(data[i + 7])
        {
            let mut j = i + 8;
            if j < data.len() && data[j] == b'.' {
                j += 1;
                while j < data.len() && is_digit(data[j]) {
                    j += 1;
                }
            }
            out.extend_from_slice(b"<TS>");
            i = j;
            continue;
        }
        out.push(data[i]);
        i += 1;
    }
    out
}

fn scrub_pointers(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0;
    while i < data.len() {
        if i + 3 <= data.len()
            && data[i] == b'0'
            && data[i + 1] == b'x'
            && data[i + 2].is_ascii_hexdigit()
        {
            let mut j = i + 2;
            while j < data.len() && data[j].is_ascii_hexdigit() {
                j += 1;
            }
            out.extend_from_slice(b"<PTR>");
            i = j;
            continue;
        }
        out.push(data[i]);
        i += 1;
    }
    out
}

fn scrub_numbers(data: &[u8], min_digits: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0;
    while i < data.len() {
        if is_digit(data[i]) {
            let mut j = i;
            while j < data.len() && is_digit(data[j]) {
                j += 1;
            }
            if j - i >= min_digits {
                out.extend_from_slice(b"<NUM>");
            } else {
                out.extend_from_slice(&data[i..j]);
            }
            i = j;
            continue;
        }
        out.push(data[i]);
        i += 1;
    }
    out
}

fn replace_all(data: &[u8], from: &[u8], to: &[u8]) -> Vec<u8> {
    if from.is_empty() {
        return data.to_vec();
    }
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0;
    while i < data.len() {
        if data[i..].starts_with(from) {
            out.extend_from_slice(to);
            i += from.len();
        } else {
            out.push(data[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_wireshark_style_timestamps() {
        let input = b"10:44:23.405830 [Epan WARNING] something";
        let out = OutputFilter::Timestamps.apply(input);
        assert_eq!(out, b"<TS> [Epan WARNING] something");
    }

    #[test]
    fn strips_plain_hms() {
        assert_eq!(
            OutputFilter::Timestamps.apply(b"at 09:01:59 done"),
            b"at <TS> done"
        );
        assert_eq!(OutputFilter::Timestamps.apply(b"ratio 1:2"), b"ratio 1:2");
    }

    #[test]
    fn strips_pointers() {
        let out = OutputFilter::PointerAddresses.apply(b"ptr=0x7fff1234 end");
        assert_eq!(out, b"ptr=<PTR> end");
        assert_eq!(OutputFilter::PointerAddresses.apply(b"0x"), b"0x");
    }

    #[test]
    fn scrubs_long_numbers_only() {
        let f = OutputFilter::LongNumbers { min_digits: 6 };
        assert_eq!(f.apply(b"id=123 big=1234567"), b"id=123 big=<NUM>");
    }

    #[test]
    fn literal_replacement() {
        let f = OutputFilter::Literal {
            from: b"seed".to_vec(),
            to: b"X".to_vec(),
        };
        assert_eq!(f.apply(b"seed of seeds"), b"X of Xs");
    }

    #[test]
    fn filters_chain_in_order() {
        let out = apply_filters(
            b"0x1f at 10:00:00",
            &[OutputFilter::PointerAddresses, OutputFilter::Timestamps],
        );
        assert_eq!(out, b"<PTR> at <TS>");
    }
}
