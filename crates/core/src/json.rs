//! A small, dependency-free JSON emitter and parser.
//!
//! The workspace must build and test offline, so instead of `serde` /
//! `serde_json` every structure that wants a JSON form implements a
//! `to_json(&self) -> Json` method by hand and renders it with
//! [`Json::render`] (compact) or [`Json::render_pretty`]. The parser
//! exists for the few places that read JSON back — most importantly the
//! campaign checkpoint files, which must survive a mid-write crash, so
//! [`Json::parse`] reports precise errors and callers can skip a torn
//! trailing line.
//!
//! The supported grammar is exactly RFC 8259 JSON with two deliberate
//! simplifications: numbers are kept as either `i64` or `f64` (whichever
//! round-trips), and object keys preserve insertion order (no sorting,
//! no duplicate detection).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (non-finite values render as `null`, like serde_json).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array of strings.
    pub fn strings<S: AsRef<str>, I: IntoIterator<Item = S>>(items: I) -> Json {
        Json::Array(
            items
                .into_iter()
                .map(|s| Json::Str(s.as_ref().to_string()))
                .collect(),
        )
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64` (floats with integral values qualify).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON (two-space indentation).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // Rust's `Display` prints integral floats without a
                    // decimal point (and never uses exponent notation);
                    // keep a `.0` so the value re-parses as a float, not
                    // an `Int` — for every magnitude, not just < 1e15.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parses one JSON document; trailing whitespace is allowed, trailing
    /// garbage is an error (so torn checkpoint lines are detected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\x08' => out.push_str("\\b"),
            '\x0c' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\x08'),
                        b'f' => out.push('\x0c'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 character (input is a &str, so the
                    // encoding is valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            offset: start,
            message: "invalid number".to_string(),
        })
    }
}

/// Convenience: renders a `BTreeMap<String, u64>` (a common aggregate
/// shape) as a JSON object with sorted keys.
pub fn map_to_json(map: &BTreeMap<String, u64>) -> Json {
    Json::Object(
        map.iter()
            .map(|(k, &v)| (k.clone(), Json::Int(v as i64)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::Str("tcpdump".into())),
            ("execs", Json::Int(1000)),
            ("rate", Json::Float(0.5)),
            ("sigs", Json::strings(["a", "b"])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"tcpdump","execs":1000,"rate":0.5,"sigs":["a","b"],"ok":true,"none":null}"#
        );
        assert!(v.render_pretty().contains("\n  \"name\": \"tcpdump\""));
    }

    #[test]
    fn round_trips() {
        let cases = [
            r#"{"a":[1,2.5,-3],"b":"x\ny\"z\\","c":{},"d":[],"e":null}"#,
            r#"[true,false,null,0,-9223372036854775808,9223372036854775807]"#,
            r#""é☃ snowman""#,
            r#""😀""#,
        ];
        for c in cases {
            let v = Json::parse(c).unwrap();
            let again = Json::parse(&v.render()).unwrap();
            assert_eq!(v, again, "{c}");
        }
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 é 😀";
        let v = Json::Str(nasty.to_string());
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn torn_lines_are_errors() {
        // A checkpoint line cut mid-write must parse as an error, never as
        // a silently truncated value.
        for torn in [
            r#"{"target":"tcp"#,
            r#"{"execs":12"#,
            r#"["a","#,
            r#"{"a":1}x"#,
        ] {
            assert!(Json::parse(torn).is_err(), "{torn}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"f":2.0,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_i64), Some(2));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn floats_render_reparseable() {
        let f = Json::Float(3.0);
        assert_eq!(f.render(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn large_integral_floats_stay_floats() {
        // Regression: integral floats >= 1e15 used to render without a
        // decimal point and re-parse as `Int` (a type change).
        for f in [1e15, 1e16, 9e18, 1e300, -1e16, -0.0] {
            let rendered = Json::Float(f).render();
            let back = Json::parse(&rendered).unwrap();
            assert_eq!(back, Json::Float(f), "{f} rendered as {rendered}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        // Pinned, serde_json-compatible behavior: non-finite values have
        // no JSON representation and are emitted as `null`. This is
        // deliberately type-changing on re-read; metrics producers must
        // not emit NaN/inf (histograms and counters are integer-valued).
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::Float(f).render(), "null");
            assert_eq!(Json::parse(&Json::Float(f).render()).unwrap(), Json::Null);
        }
    }

    #[test]
    fn unicode_escapes_parse_and_round_trip() {
        // \u escapes decode to the same value as literal characters, and
        // parse -> render -> parse is a fixed point.
        let cases = [
            ("\\u0041", "A"),
            ("\\u00e9", "\u{e9}"),
            ("\\u2603", "\u{2603}"),
            ("\\ud83d\\ude00", "\u{1f600}"), // surrogate pair
            ("\\u001f", "\u{1f}"),           // control char: re-escaped on render
            ("\\uffff", "\u{ffff}"),         // highest BMP code point
        ];
        for (esc, want) in cases {
            let src = format!("\"{esc}\"");
            let v = Json::parse(&src).unwrap();
            assert_eq!(v.as_str(), Some(want), "{src}");
            let rendered = v.render();
            assert_eq!(Json::parse(&rendered).unwrap(), v, "{src} -> {rendered}");
        }
    }

    #[test]
    fn invalid_surrogates_are_errors() {
        for bad in [
            r#""\ud800""#,       // lone high surrogate
            r#""\ud800x""#,      // high surrogate followed by non-escape
            r#""\ud800\u0041""#, // \u escape follows but is not a low surrogate
            r#""\udc00""#,       // lone low surrogate: from_u32 rejects
            r#""\ud83d\ud83d""#, // high followed by high
        ] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }
}
