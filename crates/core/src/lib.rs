//! # compdiff — compiler-driven differential testing
//!
//! Reproduction of *"Finding Unstable Code via Compiler-Driven Differential
//! Testing"* (Li & Su, ASPLOS 2023). CompDiff detects **unstable code** —
//! code whose runtime semantics differ across legal compiler
//! implementations because the program contains undefined behavior:
//!
//! 1. compile the program with `k` compiler implementations
//!    ({gcc-sim, clang-sim} × {O0, O1, O2, O3, Os} by default);
//! 2. run every binary on the same input;
//! 3. checksum each binary's output (MurmurHash3 over stdout + exit
//!    status) and report any discrepancy.
//!
//! The crate also provides **CompDiff-AFL++** ([`CompDiffAfl`]): the
//! AFL++-style fuzzer from the `fuzzing` crate with CompDiff attached as
//! the per-input oracle of Algorithm 1, plus the subset analysis used for
//! the paper's Figures 1 and 2.
//!
//! ```
//! use compdiff::{CompDiff, DiffConfig};
//!
//! # fn main() -> Result<(), minc::FrontendError> {
//! // The paper's Listing 1: an overflow check that -O2 legally deletes.
//! let diff = CompDiff::from_source_default(
//!     r#"
//!     int dump_data(int offset, int len) {
//!         int size = 100;
//!         if (offset + len > size || offset < 0 || len < 0) { return -1; }
//!         if (offset + len < offset) { return -1; }
//!         return 0;
//!     }
//!     int main() { printf("%d", dump_data(2147483647 - 100, 101)); return 0; }
//!     "#,
//!     DiffConfig::default(),
//! )?;
//! assert!(diff.is_divergent(b""));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
pub mod afl;
pub mod differ;
pub mod filters;
pub mod json;
pub mod minimize;
pub mod murmur;
pub mod report;
pub mod subset;

pub use afl::{CompDiffAfl, CompDiffAflStats, CompDiffOracle};
pub use differ::{CompDiff, DiffConfig, DiffObserver, DiffOutcome};
pub use filters::{apply_filters, OutputFilter};
pub use json::{Json, JsonError};
pub use minimize::{minimize, MinimizeStats};
pub use murmur::{hash64, murmur3_x64_128};
pub use report::{signature_of, signature_with_hash, DiffStore, Discrepancy};
pub use subset::{detected_by, HashVector, SizeStats, SubsetAnalysis};
