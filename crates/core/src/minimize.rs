//! Discrepancy-input minimization (an `afl-tmin` analog for differential
//! bugs).
//!
//! The paper's bug reports (§5) ship a triggering input; smaller inputs
//! make diagnosis easier. Minimization must preserve the *bug*, not just
//! "some divergence": we shrink while the discrepancy keeps the same
//! triage signature (implementation partition × status pattern).

use crate::differ::CompDiff;
use crate::report::signature_of;

/// Statistics from one minimization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Bytes before.
    pub original_len: usize,
    /// Bytes after.
    pub minimized_len: usize,
    /// Differential runs performed.
    pub runs: u64,
}

/// Minimizes `input` while the divergence keeps its signature.
///
/// Strategy (like afl-tmin): repeatedly try removing large chunks, then
/// halves, down to single bytes; then normalize remaining bytes toward
/// `'0'` where possible. Deterministic; terminates because every accepted
/// step strictly shrinks or lexicographically reduces the input.
///
/// Returns the minimized input and statistics.
///
/// # Panics
///
/// Panics if `input` does not produce a divergence under `diff` (callers
/// minimize saved discrepancies, which always do).
pub fn minimize(diff: &CompDiff, input: &[u8]) -> (Vec<u8>, MinimizeStats) {
    let impls = diff.impls();
    let outcome = diff.run_input(input);
    assert!(outcome.divergent, "minimize requires a divergent input");
    let target_sig = signature_of(&impls, &outcome);
    let mut runs = 0u64;

    let keeps_bug = |candidate: &[u8], runs: &mut u64| -> bool {
        *runs += 1;
        let o = diff.run_input(candidate);
        o.divergent && signature_of(&impls, &o) == target_sig
    };

    let mut cur = input.to_vec();

    // Phase 1: chunked deletion, halving chunk sizes.
    let mut chunk = (cur.len() / 2).max(1);
    while chunk >= 1 {
        let mut pos = 0;
        while pos < cur.len() && cur.len() > 1 {
            let end = (pos + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - pos));
            candidate.extend_from_slice(&cur[..pos]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && keeps_bug(&candidate, &mut runs) {
                cur = candidate; // retry the same position
            } else {
                pos += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Phase 2: byte normalization toward '0' (readability of reports).
    for i in 0..cur.len() {
        if cur[i] == b'0' {
            continue;
        }
        let mut candidate = cur.clone();
        candidate[i] = b'0';
        if keeps_bug(&candidate, &mut runs) {
            cur = candidate;
        }
    }

    let stats = MinimizeStats {
        original_len: input.len(),
        minimized_len: cur.len(),
        runs,
    };
    (cur, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differ::DiffConfig;

    fn engine(src: &str) -> CompDiff {
        CompDiff::from_source_default(src, DiffConfig::default()).unwrap()
    }

    #[test]
    fn shrinks_to_the_essential_bytes() {
        // Divergence requires byte0=='K'; everything else is noise.
        let src = r#"
            int main() {
                char b[64];
                long n = read_input(b, 64L);
                if (n >= 1 && b[0] == 'K') {
                    int u;
                    printf("%d\n", u & 255);
                }
                printf("end\n");
                return 0;
            }
        "#;
        let diff = engine(src);
        let noisy = b"KAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA".to_vec();
        assert!(diff.is_divergent(&noisy));
        let (min, stats) = minimize(&diff, &noisy);
        assert_eq!(min, b"K".to_vec(), "only the gate byte should remain");
        assert_eq!(stats.original_len, 32);
        assert_eq!(stats.minimized_len, 1);
        assert!(stats.runs > 0);
    }

    #[test]
    fn preserves_the_signature_not_just_any_divergence() {
        // Two distinct bugs: byte0=='A' -> uninit print; byte0=='B' -> dead
        // null deref (crash-vs-exit partition). Minimizing an 'A' input
        // must not drift onto the 'B' bug.
        let src = r#"
            int main() {
                char b[32];
                long n = read_input(b, 32L);
                if (n >= 1 && b[0] == 'A') { int u; printf("%d\n", u & 255); }
                if (n >= 1 && b[0] == 'B') {
                    int* p = (int*)(long)atoi("0");
                    int dead = *p;
                    printf("B\n");
                }
                printf("end\n");
                return 0;
            }
        "#;
        let diff = engine(src);
        let input = b"Azzzzzzzzzz".to_vec();
        let (min, _) = minimize(&diff, &input);
        assert_eq!(min, b"A".to_vec());
    }

    #[test]
    fn normalizes_payload_bytes() {
        // The gate needs two bytes; the rest should become '0'.
        let src = r#"
            int main() {
                char b[16];
                long n = read_input(b, 16L);
                if (n >= 3 && b[0] == 'G' && b[1] == 'O') {
                    int u;
                    printf("%d\n", u & 255);
                }
                printf(".\n");
                return 0;
            }
        "#;
        let diff = engine(src);
        let (min, _) = minimize(&diff, b"GO!xyz");
        assert_eq!(min.len(), 3, "three bytes needed (n >= 3)");
        assert_eq!(&min[..2], b"GO");
        assert_eq!(min[2], b'0', "payload byte normalized");
    }

    #[test]
    #[should_panic(expected = "divergent")]
    fn panics_on_stable_input() {
        let diff = engine("int main() { printf(\"x\\n\"); return 0; }");
        minimize(&diff, b"whatever");
    }
}
