//! MurmurHash3 (x64, 128-bit variant) — the checksum CompDiff uses to
//! compare binary outputs (paper §3.2: "We reuse the MurmurHash3 hash
//! function supported by AFL++ for the checksum").

/// 128-bit MurmurHash3 (x64 variant) of `data` with `seed`.
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let mut h1 = seed;
    let mut h2 = seed;
    let nblocks = data.len() / 16;

    for i in 0..nblocks {
        let b = &data[i * 16..i * 16 + 16];
        let mut k1 = u64::from_le_bytes(b[0..8].try_into().unwrap());
        let mut k2 = u64::from_le_bytes(b[8..16].try_into().unwrap());

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = &data[nblocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for (i, &b) in tail.iter().enumerate().rev() {
        match i {
            8..=14 => k2 ^= (b as u64) << ((i - 8) * 8),
            _ if i < 8 => k1 ^= (b as u64) << (i * 8),
            _ => k2 ^= (b as u64) << ((i - 8) * 8),
        }
    }
    if !tail.is_empty() {
        if tail.len() > 8 {
            k2 = k2.wrapping_mul(C2);
            k2 = k2.rotate_left(33);
            k2 = k2.wrapping_mul(C1);
            h2 ^= k2;
        }
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// 64-bit convenience digest (first half of the 128-bit hash).
pub fn hash64(data: &[u8]) -> u64 {
    murmur3_x64_128(data, 0).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(b"compdiff"), hash64(b"compdiff"));
        assert_eq!(murmur3_x64_128(b"abc", 7), murmur3_x64_128(b"abc", 7));
    }

    #[test]
    fn distinguishes_inputs() {
        assert_ne!(hash64(b"a"), hash64(b"b"));
        assert_ne!(hash64(b""), hash64(b"\0"));
        assert_ne!(hash64(b"1234567890123456"), hash64(b"12345678901234567"));
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(murmur3_x64_128(b"x", 0), murmur3_x64_128(b"x", 1));
    }

    #[test]
    fn covers_all_tail_lengths() {
        // Exercise every tail-length code path (0..=15 extra bytes).
        let data: Vec<u8> = (0u8..64).collect();
        let hashes: Vec<(u64, u64)> = (0..32).map(|n| murmur3_x64_128(&data[..n], 0)).collect();
        let unique: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(unique.len(), hashes.len());
    }

    #[test]
    fn avalanche_on_single_bit() {
        let a = hash64(b"0000000000000000");
        let b = hash64(b"0000000000000001");
        let diff = (a ^ b).count_ones();
        assert!(
            diff > 16,
            "single-byte change should flip many bits ({diff})"
        );
    }
}
