//! MurmurHash3 (x64, 128-bit variant) — the checksum CompDiff uses to
//! compare binary outputs (paper §3.2: "We reuse the MurmurHash3 hash
//! function supported by AFL++ for the checksum").

/// 128-bit MurmurHash3 (x64 variant) of `data` with `seed`.
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let mut h1 = seed;
    let mut h2 = seed;
    let nblocks = data.len() / 16;

    for i in 0..nblocks {
        let b = &data[i * 16..i * 16 + 16];
        let mut k1 = u64::from_le_bytes(b[0..8].try_into().unwrap());
        let mut k2 = u64::from_le_bytes(b[8..16].try_into().unwrap());

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    // Tail: at most 15 leftover bytes. Bytes 0..8 accumulate into k1,
    // bytes 8..15 into k2; XOR is order-independent, so a forward walk
    // replaces the reference implementation's fall-through switch.
    let tail = &data[nblocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for (i, &b) in tail.iter().enumerate() {
        if i < 8 {
            k1 ^= (b as u64) << (i * 8);
        } else {
            k2 ^= (b as u64) << ((i - 8) * 8);
        }
    }
    if !tail.is_empty() {
        if tail.len() > 8 {
            k2 = k2.wrapping_mul(C2);
            k2 = k2.rotate_left(33);
            k2 = k2.wrapping_mul(C1);
            h2 ^= k2;
        }
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// 64-bit convenience digest (first half of the 128-bit hash).
pub fn hash64(data: &[u8]) -> u64 {
    murmur3_x64_128(data, 0).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(b"compdiff"), hash64(b"compdiff"));
        assert_eq!(murmur3_x64_128(b"abc", 7), murmur3_x64_128(b"abc", 7));
    }

    #[test]
    fn distinguishes_inputs() {
        assert_ne!(hash64(b"a"), hash64(b"b"));
        assert_ne!(hash64(b""), hash64(b"\0"));
        assert_ne!(hash64(b"1234567890123456"), hash64(b"12345678901234567"));
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(murmur3_x64_128(b"x", 0), murmur3_x64_128(b"x", 1));
    }

    #[test]
    fn covers_all_tail_lengths() {
        // Exercise every tail-length code path (0..=15 extra bytes).
        let data: Vec<u8> = (0u8..64).collect();
        let hashes: Vec<(u64, u64)> = (0..32).map(|n| murmur3_x64_128(&data[..n], 0)).collect();
        let unique: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(unique.len(), hashes.len());
    }

    /// Known-answer vectors produced by the canonical SMHasher
    /// `MurmurHash3_x64_128` (MurmurHash3.cpp, which self-verifies with
    /// the official verification value 0x6384BA69). Data is
    /// `byte[i] = (i * 37 + 11) & 0xFF`, seed `0x9747b28c`; prefix lengths
    /// cover every tail length 0..=15 plus one- and multi-block inputs.
    #[test]
    fn known_answer_vectors() {
        const SEED: u64 = 0x9747_b28c;
        let data: Vec<u8> = (0u64..48).map(|i| ((i * 37 + 11) & 0xFF) as u8).collect();
        let vectors: &[(usize, u64, u64)] = &[
            (0, 0x392b_208a_1daa_bbb3, 0x93b0_608f_e302_957a),
            (1, 0x8b6c_e7c6_4b95_028f, 0x2f5a_9203_0c3c_4aa5),
            (2, 0x5434_98c5_a85d_95e5, 0x4426_e3a0_a3bc_cf8b),
            (3, 0xf5c7_b4f8_13b7_983f, 0x6667_4f06_05fc_5d6a),
            (4, 0x6526_401f_9ecf_69a9, 0x9e10_5710_02f4_9713),
            (5, 0xe72f_4a83_e960_bb13, 0x853f_e681_2f22_b644),
            (6, 0x6d67_53dc_8b36_8ab3, 0xc5d2_fb8f_42c9_8722),
            (7, 0xaf12_2a69_1307_450f, 0x4195_17b8_4a66_f1fd),
            (8, 0xd8c6_1819_ff0e_5aa4, 0x42fb_2f48_54e5_0b63),
            (9, 0x6a9d_1bd1_ef80_9a06, 0x2707_3717_8fda_89ed),
            (10, 0x48fa_424e_1c18_0562, 0x3e3c_dae9_700c_4a31),
            (11, 0xf74d_eeee_1bb9_740f, 0xb457_986f_e8a1_aa69),
            (12, 0x0206_8a3b_b445_9c49, 0x632f_8d95_603c_a17b),
            (13, 0x3e31_96f5_c24c_7d04, 0xbec1_6a85_b5a1_8366),
            (14, 0x9ba8_0c5b_5ad2_a1aa, 0x61a0_51b0_f38e_dbec),
            (15, 0x335f_5087_d2c8_cc58, 0x3041_cdcb_b287_c4c5),
            (16, 0xf000_e3ed_91b0_ee1c, 0xa98a_a8ff_5d8a_4c22),
            (17, 0xed57_9093_9ce6_c481, 0x16d4_79de_0bb5_7a3b),
            (31, 0xfd93_7d73_3e2b_266e, 0x868f_6285_d1a6_8169),
            (32, 0xef55_560a_038d_d28f, 0xf656_da74_4b64_242c),
            (33, 0xdf8f_f14b_c2ca_0d4c, 0x3568_941c_7a9c_1896),
            (47, 0xea68_15db_41d6_3c93, 0xfb34_e016_9f23_879f),
            (48, 0x0826_13b3_e6b5_9795, 0x1dc9_5c0d_7529_37b5),
        ];
        for &(len, h1, h2) in vectors {
            assert_eq!(
                murmur3_x64_128(&data[..len], SEED),
                (h1, h2),
                "prefix length {len}"
            );
        }
    }

    #[test]
    fn known_answer_strings() {
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
        assert_eq!(
            murmur3_x64_128(b"hello", 0),
            (0xcbd8_a7b3_41bd_9b02, 0x5b1e_906a_48ae_1d19)
        );
        assert_eq!(
            murmur3_x64_128(b"hello, world", 0),
            (0x342f_ac62_3a5e_bc8e, 0x4cdc_bc07_9642_414d)
        );
        assert_eq!(
            murmur3_x64_128(b"The quick brown fox jumps over the lazy dog", 0x9747_b28c),
            (0x738a_7f3b_d263_3121, 0xf945_7372_7ec0_16e5)
        );
    }

    #[test]
    fn avalanche_on_single_bit() {
        let a = hash64(b"0000000000000000");
        let b = hash64(b"0000000000000001");
        let diff = (a ^ b).count_ones();
        assert!(
            diff > 16,
            "single-byte change should flip many bits ({diff})"
        );
    }
}
