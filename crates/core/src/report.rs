//! Discrepancy reports and the `diffs/` store.
//!
//! The paper saves every discrepancy-triggering input to a `diffs/`
//! directory and triages manually. We keep the store in memory and add the
//! obvious automatic bucketing: two inputs that split the implementations
//! into the same partition with the same status pattern very likely hit
//! the same bug (§5 discusses why full automatic triage is an open
//! problem; this is the approximation used by our experiment harnesses).

use crate::differ::{CompDiff, DiffOutcome};
use crate::json::Json;
use minc_compile::CompilerImpl;
use minc_vm::ExitStatus;
use std::collections::HashMap;

/// One reported discrepancy: everything the paper puts in a bug report
/// (triggering input, reproducing configurations, the divergent outputs).
#[derive(Debug, Clone)]
pub struct Discrepancy {
    /// The triggering input.
    pub input: Vec<u8>,
    /// Implementations grouped by identical output.
    pub classes: Vec<Vec<String>>,
    /// One output preview per class: (implementation, stdout preview, status).
    pub samples: Vec<(String, String, String)>,
    /// Automatic triage signature (partition shape + status pattern).
    pub signature: String,
}

impl Discrepancy {
    /// Builds a report from a divergent outcome.
    pub fn from_outcome(impls: &[CompilerImpl], outcome: &DiffOutcome, input: &[u8]) -> Self {
        let classes: Vec<Vec<String>> = outcome
            .classes
            .iter()
            .map(|c| c.iter().map(|&i| impls[i].to_string()).collect())
            .collect();
        let samples = outcome
            .classes
            .iter()
            .map(|c| {
                let i = c[0];
                let r = &outcome.results[i];
                let preview: String = String::from_utf8_lossy(&r.stdout)
                    .chars()
                    .take(120)
                    .collect();
                (impls[i].to_string(), preview, r.status.to_string())
            })
            .collect();
        let signature = signature_of(impls, outcome);
        Discrepancy {
            input: input.to_vec(),
            classes,
            samples,
            signature,
        }
    }

    /// Renders the report the way it would be filed upstream.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("== CompDiff discrepancy report ==\n");
        s.push_str(&format!(
            "input ({} bytes): {:?}\n",
            self.input.len(),
            preview_bytes(&self.input)
        ));
        s.push_str(&format!("signature: {}\n", self.signature));
        for (impl_, out, status) in &self.samples {
            s.push_str(&format!("  [{impl_}] status={status} stdout={out:?}\n"));
        }
        s.push_str("reproduce with any two implementations from different classes:\n");
        for c in &self.classes {
            s.push_str(&format!("  class: {}\n", c.join(", ")));
        }
        s
    }

    /// Machine-readable form (the `diffs/` directory's metadata files).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "input",
                Json::Array(self.input.iter().map(|&b| Json::Int(b as i64)).collect()),
            ),
            ("signature", Json::Str(self.signature.clone())),
            (
                "classes",
                Json::Array(
                    self.classes
                        .iter()
                        .map(|c| Json::strings(c.iter()))
                        .collect(),
                ),
            ),
            (
                "samples",
                Json::Array(
                    self.samples
                        .iter()
                        .map(|(impl_, out, status)| {
                            Json::obj(vec![
                                ("impl", Json::Str(impl_.clone())),
                                ("stdout", Json::Str(out.clone())),
                                ("status", Json::Str(status.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn preview_bytes(b: &[u8]) -> String {
    let head: Vec<u8> = b.iter().take(32).copied().collect();
    format!(
        "{}{}",
        String::from_utf8_lossy(&head).escape_debug(),
        if b.len() > 32 { "…" } else { "" }
    )
}

/// The triage signature: which implementations group together plus each
/// class's status kind. Input-independent for a given root cause in the
/// common case.
pub fn signature_of(impls: &[CompilerImpl], outcome: &DiffOutcome) -> String {
    let mut parts: Vec<String> = outcome
        .classes
        .iter()
        .map(|c| {
            let members: Vec<String> = c.iter().map(|&i| impls[i].to_string()).collect();
            // The status kind must carry its payload: collapsing every exit
            // code to "exit" (or every sanitizer to "san") merges e.g. an
            // `exit 0` vs `exit 1` split with an `exit 0` vs `exit 2`
            // split, undercounting unique discrepancies.
            let status = match &outcome.results[c[0]].status {
                ExitStatus::Code(code) => format!("exit:{code}"),
                ExitStatus::Trapped(t) => return format!("{}!{t:?}", members.join("+")),
                ExitStatus::Sanitizer(fault) => format!("san:{:?}", fault.kind),
                ExitStatus::TimedOut => "timeout".to_string(),
            };
            format!("{}@{status}", members.join("+"))
        })
        .collect();
    parts.sort();
    parts.join(" | ")
}

/// [`signature_of`] prefixed with the program-source content hash
/// (`p<hash>|…`) when one is known. The prefix is what lets a
/// campaign-wide dedup set distinguish two *different programs* that
/// diverge with the same partition/status shape — without it, generated
/// programs sharing e.g. an `exit:0`-vs-`exit:1` split would collapse
/// into one bucket. A zero hash (unknown source) leaves the signature
/// unchanged, so single-program flows keep their historical form.
pub fn signature_with_hash(src_hash: u64, impls: &[CompilerImpl], outcome: &DiffOutcome) -> String {
    let base = signature_of(impls, outcome);
    if src_hash == 0 {
        base
    } else {
        format!("p{src_hash:016x}|{base}")
    }
}

/// The in-memory `diffs/` directory with signature-based bucketing.
#[derive(Debug, Default)]
pub struct DiffStore {
    discrepancies: Vec<Discrepancy>,
    by_signature: HashMap<String, Vec<usize>>,
}

impl DiffStore {
    /// Empty store.
    pub fn new() -> Self {
        DiffStore::default()
    }

    /// Records a divergent outcome; returns `true` if its signature is new
    /// (a likely-new bug). When the engine knows its source hash, the
    /// stored signature carries the `p<hash>|` program prefix (see
    /// [`signature_with_hash`]).
    pub fn record(&mut self, diff: &CompDiff, outcome: &DiffOutcome, input: &[u8]) -> bool {
        debug_assert!(outcome.divergent);
        let mut report = Discrepancy::from_outcome(&diff.impls(), outcome, input);
        report.signature = signature_with_hash(diff.src_hash(), &diff.impls(), outcome);
        let sig = report.signature.clone();
        let idx = self.discrepancies.len();
        self.discrepancies.push(report);
        let bucket = self.by_signature.entry(sig).or_default();
        bucket.push(idx);
        bucket.len() == 1
    }

    /// All saved reports.
    pub fn reports(&self) -> &[Discrepancy] {
        &self.discrepancies
    }

    /// Number of distinct signatures (the automatic unique-bug estimate).
    pub fn unique_signatures(&self) -> usize {
        self.by_signature.len()
    }

    /// One representative report per signature.
    pub fn representatives(&self) -> Vec<&Discrepancy> {
        let mut v: Vec<&Discrepancy> = self
            .by_signature
            .values()
            .map(|idxs| &self.discrepancies[idxs[0]])
            .collect();
        v.sort_by(|a, b| a.signature.cmp(&b.signature));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differ::DiffConfig;
    use minc_vm::{ExecResult, Fault, SanitizerKind};

    /// A synthetic two-implementation divergence where each class ends
    /// with the given status.
    fn outcome_with(statuses: [ExitStatus; 2]) -> DiffOutcome {
        let results: Vec<ExecResult> = statuses
            .into_iter()
            .map(|status| ExecResult {
                status,
                stdout: Vec::new(),
                steps: 1,
            })
            .collect();
        DiffOutcome {
            hashes: vec![1, 2],
            classes: vec![vec![0], vec![1]],
            divergent: true,
            unresolved_timeout: false,
            results,
        }
    }

    fn two_impls() -> Vec<CompilerImpl> {
        vec![
            CompilerImpl::parse("gcc-O0").unwrap(),
            CompilerImpl::parse("clang-O2").unwrap(),
        ]
    }

    #[test]
    fn signature_keeps_exit_codes_apart() {
        // Regression: these two outcomes differ only in one exit code and
        // used to collapse to the same "…@exit" signature.
        let impls = two_impls();
        let a = outcome_with([ExitStatus::Code(0), ExitStatus::Code(1)]);
        let b = outcome_with([ExitStatus::Code(0), ExitStatus::Code(2)]);
        let sa = signature_of(&impls, &a);
        let sb = signature_of(&impls, &b);
        assert_ne!(sa, sb, "{sa} vs {sb}");
        assert!(sa.contains("exit:1"), "{sa}");
        assert!(sb.contains("exit:2"), "{sb}");
    }

    #[test]
    fn signature_keeps_sanitizer_kinds_apart() {
        let impls = two_impls();
        let asan = outcome_with([
            ExitStatus::Code(0),
            ExitStatus::Sanitizer(Fault::new(SanitizerKind::Asan, "heap-buffer-overflow", "x")),
        ]);
        let msan = outcome_with([
            ExitStatus::Code(0),
            ExitStatus::Sanitizer(Fault::new(
                SanitizerKind::Msan,
                "use-of-uninitialized-value",
                "x",
            )),
        ]);
        let sa = signature_of(&impls, &asan);
        let sm = signature_of(&impls, &msan);
        assert_ne!(sa, sm, "{sa} vs {sm}");
        assert!(sa.contains("san:Asan"), "{sa}");
        assert!(sm.contains("san:Msan"), "{sm}");
    }

    #[test]
    fn store_buckets_exit_codes_separately() {
        // The dedup estimate must count exit-code-only differences as
        // distinct bugs.
        let diff = CompDiff::from_source(
            "int main() { return 0; }",
            &two_impls(),
            DiffConfig::default(),
        )
        .unwrap();
        let a = outcome_with([ExitStatus::Code(0), ExitStatus::Code(1)]);
        let b = outcome_with([ExitStatus::Code(0), ExitStatus::Code(2)]);
        let mut store = DiffStore::new();
        assert!(store.record(&diff, &a, b"a"));
        assert!(store.record(&diff, &b, b"b"), "distinct bucket expected");
        assert_eq!(store.unique_signatures(), 2);
    }

    #[test]
    fn record_and_bucket() {
        let src = "int main() { int u; printf(\"%d\\n\", u); return 0; }";
        let diff = CompDiff::from_source_default(src, DiffConfig::default()).unwrap();
        let out1 = diff.run_input(b"a");
        let out2 = diff.run_input(b"bb");
        assert!(out1.divergent && out2.divergent);
        let mut store = DiffStore::new();
        assert!(store.record(&diff, &out1, b"a"), "first signature is new");
        // Same bug, same partition: bucketed together.
        assert!(!store.record(&diff, &out2, b"bb"));
        assert_eq!(store.unique_signatures(), 1);
        assert_eq!(store.reports().len(), 2);
        assert_eq!(store.representatives().len(), 1);
    }

    #[test]
    fn src_hash_keeps_distinct_programs_apart() {
        // Two different programs with the *same* divergence shape: an
        // uninitialized print splitting the implementations identically.
        // The store's signatures must not collapse across programs.
        let src_a = "int main() { int u; printf(\"%d\\n\", u); return 0; }";
        let src_b = "int main() { int u; int v = 3; printf(\"%d\\n\", u + v - v); return 0; }";
        let da = CompDiff::from_source_default(src_a, DiffConfig::default()).unwrap();
        let db = CompDiff::from_source_default(src_b, DiffConfig::default()).unwrap();
        assert_ne!(da.src_hash(), 0, "from_source tags the hash");
        assert_ne!(da.src_hash(), db.src_hash());
        let (oa, ob) = (da.run_input(b""), db.run_input(b""));
        assert!(oa.divergent && ob.divergent);
        let sa = signature_with_hash(da.src_hash(), &da.impls(), &oa);
        let sb = signature_with_hash(db.src_hash(), &db.impls(), &ob);
        assert_ne!(sa, sb, "program hash must keep signatures apart");
        assert!(sa.starts_with("p"), "{sa}");
        // Unknown hash (0) leaves the historical form untouched.
        assert_eq!(
            signature_with_hash(0, &da.impls(), &oa),
            signature_of(&da.impls(), &oa)
        );
    }

    #[test]
    fn report_rendering_contains_essentials() {
        let src = r#"
            int main() {
                char b[2];
                read_input(b, 1L);
                int u;
                printf("%d\n", u);
                return 0;
            }
        "#;
        let diff = CompDiff::from_source_default(src, DiffConfig::default()).unwrap();
        let out = diff.run_input(b"q");
        assert!(out.divergent);
        let rep = Discrepancy::from_outcome(&diff.impls(), &out, b"q");
        let text = rep.render();
        assert!(text.contains("discrepancy report"));
        assert!(text.contains("gcc-O0"));
        assert!(text.contains("class:"));
    }

    #[test]
    fn signature_distinguishes_trap_patterns() {
        // Crash-vs-exit divergence gets a different signature than
        // value-vs-value divergence.
        let crashy =
            "int main() { int z = (int)input_size(); int d = 5 / z; printf(\"ok\\n\"); return 0; }";
        let valuey = "int main() { int u; printf(\"%d\\n\", u); return 0; }";
        let d1 = CompDiff::from_source_default(crashy, DiffConfig::default()).unwrap();
        let d2 = CompDiff::from_source_default(valuey, DiffConfig::default()).unwrap();
        let s1 = signature_of(&d1.impls(), &d1.run_input(b""));
        let s2 = signature_of(&d2.impls(), &d2.run_input(b""));
        assert_ne!(s1, s2);
        assert!(s1.contains("Sigfpe"), "{s1}");
    }
}
