//! Subset analysis over compiler implementations (paper §4.2 / Figure 1,
//! and RQ4 / Figure 2).
//!
//! A bug is characterized by its *hash vector*: the per-implementation
//! output checksum on the bug-triggering input. A subset `S` of
//! implementations detects the bug iff two members of `S` have different
//! hashes. Because detection is a pure function of the recorded vectors,
//! all `2^k - k - 1` subsets are evaluated without re-running anything.

use minc_compile::CompilerImpl;

/// A bug's per-implementation output hashes (engine order).
pub type HashVector = Vec<u64>;

/// True if implementations in `mask` (bit i = implementation i) disagree.
pub fn detected_by(hashes: &[u64], mask: u32) -> bool {
    let mut first: Option<u64> = None;
    for (i, &h) in hashes.iter().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        match first {
            None => first = Some(h),
            Some(f) if f != h => return true,
            _ => {}
        }
    }
    false
}

/// Detection counts for every subset.
#[derive(Debug, Clone)]
pub struct SubsetAnalysis {
    /// Number of implementations.
    pub k: usize,
    /// Implementation names, bit order.
    pub impls: Vec<String>,
    /// `(mask, subset size, number of bugs detected)` for every subset of
    /// size ≥ 2.
    pub results: Vec<(u32, usize, usize)>,
    /// Total number of bugs analyzed.
    pub total_bugs: usize,
}

/// Per-size distribution summary (one box of the paper's box plots).
#[derive(Debug, Clone)]
pub struct SizeStats {
    /// Subset size.
    pub size: usize,
    /// Fewest bugs detected by any subset of this size.
    pub min: usize,
    /// Most bugs detected.
    pub max: usize,
    /// Median detection count.
    pub median: usize,
    /// Mean detection count.
    pub mean: f64,
    /// The best subset (implementation names).
    pub best: Vec<String>,
    /// The worst subset.
    pub worst: Vec<String>,
}

impl SubsetAnalysis {
    /// Analyzes `bugs` (one hash vector per bug) across the given
    /// implementations.
    ///
    /// # Panics
    ///
    /// Panics if any hash vector's length differs from `impls.len()` or if
    /// `impls.len() > 20` (subset enumeration would explode).
    pub fn analyze(bugs: &[HashVector], impls: &[CompilerImpl]) -> SubsetAnalysis {
        let k = impls.len();
        assert!(
            (2..=20).contains(&k),
            "subset analysis supports 2..=20 implementations"
        );
        for b in bugs {
            assert_eq!(b.len(), k, "hash vector arity mismatch");
        }
        let mut results = Vec::new();
        for mask in 0u32..(1 << k) {
            let size = mask.count_ones() as usize;
            if size < 2 {
                continue;
            }
            let detected = bugs.iter().filter(|b| detected_by(b, mask)).count();
            results.push((mask, size, detected));
        }
        SubsetAnalysis {
            k,
            impls: impls.iter().map(|c| c.to_string()).collect(),
            results,
            total_bugs: bugs.len(),
        }
    }

    fn subset_names(&self, mask: u32) -> Vec<String> {
        (0..self.k)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| self.impls[i].clone())
            .collect()
    }

    /// Distribution statistics for each subset size 2..=k (Figure 1's
    /// boxes).
    pub fn size_stats(&self) -> Vec<SizeStats> {
        (2..=self.k)
            .map(|size| {
                let mut counts: Vec<(u32, usize)> = self
                    .results
                    .iter()
                    .filter(|(_, s, _)| *s == size)
                    .map(|&(m, _, d)| (m, d))
                    .collect();
                counts.sort_by_key(|&(_, d)| d);
                let n = counts.len();
                let min = counts.first().map(|&(_, d)| d).unwrap_or(0);
                let max = counts.last().map(|&(_, d)| d).unwrap_or(0);
                let median = counts[n / 2].1;
                let mean = counts.iter().map(|&(_, d)| d as f64).sum::<f64>() / n as f64;
                SizeStats {
                    size,
                    min,
                    max,
                    median,
                    mean,
                    best: self.subset_names(counts.last().unwrap().0),
                    worst: self.subset_names(counts.first().unwrap().0),
                }
            })
            .collect()
    }

    /// Detection count of the full set.
    pub fn full_set_detection(&self) -> usize {
        let full: u32 = (1 << self.k) - 1;
        self.results
            .iter()
            .find(|&&(m, _, _)| m == full)
            .map(|&(_, _, d)| d)
            .unwrap_or(0)
    }

    /// Detection count of a named subset (e.g. `["gcc-O0", "clang-O3"]`).
    pub fn detection_of(&self, names: &[&str]) -> Option<usize> {
        let mut mask = 0u32;
        for n in names {
            let i = self.impls.iter().position(|x| x == n)?;
            mask |= 1 << i;
        }
        self.results
            .iter()
            .find(|&&(m, _, _)| m == mask)
            .map(|&(_, _, d)| d)
    }

    /// Relative runtime cost of a subset (paper: the full set is ~10×
    /// normal execution; a pair is ~2×, i.e. cost scales with |S|).
    pub fn relative_cost(&self, names: &[&str]) -> f64 {
        names.len() as f64 / self.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn impls10() -> Vec<CompilerImpl> {
        CompilerImpl::default_set()
    }

    #[test]
    fn detected_by_needs_two_members_disagreeing() {
        let h = vec![1, 1, 2, 1];
        assert!(detected_by(&h, 0b0101)); // impls 0 and 2 differ
        assert!(!detected_by(&h, 0b1011)); // impls 0,1,3 agree
        assert!(!detected_by(&h, 0b0100)); // single member: no comparison
    }

    #[test]
    fn monotone_in_subset_inclusion() {
        // Supersets detect at least as much.
        let bugs: Vec<HashVector> = (0..20)
            .map(|i| (0..10).map(|j| if j <= i % 10 { 7 } else { 9 }).collect())
            .collect();
        let a = SubsetAnalysis::analyze(&bugs, &impls10());
        for &(mask, _, d) in &a.results {
            let full = a.full_set_detection();
            assert!(d <= full, "subset {mask:b} detects more than full set");
        }
    }

    #[test]
    fn size_stats_cover_all_sizes() {
        let bugs: Vec<HashVector> = vec![vec![1, 2, 1, 1, 1, 1, 1, 1, 1, 1]];
        let a = SubsetAnalysis::analyze(&bugs, &impls10());
        let stats = a.size_stats();
        assert_eq!(stats.len(), 9); // sizes 2..=10
        assert_eq!(stats[0].size, 2);
        assert_eq!(stats.last().unwrap().size, 10);
        // The only divergence is impl 0 vs impl 1: the best pairs detect 1.
        assert_eq!(stats[0].max, 1);
        assert_eq!(stats[0].min, 0);
        // The full set always detects it.
        assert_eq!(a.full_set_detection(), 1);
    }

    #[test]
    fn named_subset_lookup() {
        let bugs: Vec<HashVector> = vec![
            vec![10, 1, 1, 1, 1, 1, 1, 1, 1, 99],
            vec![5, 5, 5, 5, 5, 5, 5, 5, 5, 5],
        ];
        let a = SubsetAnalysis::analyze(&bugs, &impls10());
        // gcc-O0 (index 0) vs clang-Os (index 9) differ on bug 0 only.
        assert_eq!(a.detection_of(&["gcc-O0", "clang-Os"]), Some(1));
        assert_eq!(a.detection_of(&["gcc-O1", "gcc-O2"]), Some(0));
        assert_eq!(a.detection_of(&["nope-O7"]), None);
        assert!((a.relative_cost(&["gcc-O0", "clang-Os"]) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn subset_count_is_complete() {
        let bugs: Vec<HashVector> = vec![vec![0; 10]];
        let a = SubsetAnalysis::analyze(&bugs, &impls10());
        // 2^10 - 10 - 1 = 1013 subsets of size >= 2.
        assert_eq!(a.results.len(), 1013);
    }
}
