//! AFL-style edge coverage.
//!
//! A 64 KiB byte map indexed by the hash of (previous block, current
//! block); hit counts are bucketed into AFL's eight classes before novelty
//! comparison, exactly like AFL++'s `classify_counts` + `has_new_bits`.

use minc_compile::ir::{BinKind, IrType};
use minc_vm::hooks::{FreeDisposition, Hooks, Loc, PoisonUse};
use minc_vm::result::Fault;

/// Size of the coverage map (AFL's default).
pub const MAP_SIZE: usize = 1 << 16;

/// One execution's raw edge hit counts.
#[derive(Clone)]
pub struct CoverageMap {
    map: Box<[u8; MAP_SIZE]>,
}

impl std::fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoverageMap({} edges)", self.count_edges())
    }
}

impl Default for CoverageMap {
    fn default() -> Self {
        Self::new()
    }
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        CoverageMap {
            map: Box::new([0u8; MAP_SIZE]),
        }
    }

    /// Zeroes the map for the next execution.
    pub fn reset(&mut self) {
        self.map.fill(0);
    }

    fn edge_index(from: Loc, to: Loc) -> usize {
        let a = (from.func as u64)
            .wrapping_mul(0x9e37_79b1)
            .wrapping_add((from.block as u64).wrapping_mul(0x85eb_ca77));
        let b = (to.func as u64)
            .wrapping_mul(0xc2b2_ae3d)
            .wrapping_add((to.block as u64).wrapping_mul(0x27d4_eb2f));
        ((a >> 1) ^ b) as usize & (MAP_SIZE - 1)
    }

    /// Records one edge.
    pub fn record(&mut self, from: Loc, to: Loc) {
        let idx = Self::edge_index(from, to);
        self.map[idx] = self.map[idx].saturating_add(1);
    }

    /// AFL's hit-count bucketing: 0,1,2,3,4-7,8-15,16-31,32-127,128+.
    pub fn classify(count: u8) -> u8 {
        match count {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 4,
            4..=7 => 8,
            8..=15 => 16,
            16..=31 => 32,
            32..=127 => 64,
            _ => 128,
        }
    }

    /// Number of distinct edges hit.
    pub fn count_edges(&self) -> usize {
        self.map.iter().filter(|&&b| b != 0).count()
    }

    /// Iterates (index, bucketed count) of hit edges.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.map
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != 0)
            .map(|(i, &b)| (i, Self::classify(b)))
    }
}

/// Accumulated coverage across a whole campaign ("virgin bits").
#[derive(Clone)]
pub struct GlobalCoverage {
    virgin: Box<[u8; MAP_SIZE]>,
}

impl std::fmt::Debug for GlobalCoverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GlobalCoverage({} edges)", self.edges_seen())
    }
}

impl Default for GlobalCoverage {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalCoverage {
    /// Fresh (all-virgin) global map.
    pub fn new() -> Self {
        GlobalCoverage {
            virgin: Box::new([0u8; MAP_SIZE]),
        }
    }

    /// Merges one execution's coverage; returns `true` if it contributed
    /// any new bucketed bit (AFL's "interesting" criterion).
    pub fn merge(&mut self, exec: &CoverageMap) -> bool {
        let mut new = false;
        for (i, bucket) in exec.buckets() {
            if self.virgin[i] & bucket != bucket {
                self.virgin[i] |= bucket;
                new = true;
            }
        }
        new
    }

    /// Number of edge slots seen so far.
    pub fn edges_seen(&self) -> usize {
        self.virgin.iter().filter(|&&b| b != 0).count()
    }
}

/// Hook adapter that records coverage and forwards everything else to an
/// inner hooks implementation (so coverage composes with sanitizers, as in
/// a real `afl-clang-fast -fsanitize=...` build).
#[derive(Debug)]
pub struct CoveredHooks<'m, H: Hooks> {
    /// The per-execution map being filled.
    pub map: &'m mut CoverageMap,
    /// The inner instrumentation (use [`minc_vm::NoHooks`] for plain AFL).
    pub inner: H,
}

impl<'m, H: Hooks> CoveredHooks<'m, H> {
    /// Creates the adapter.
    pub fn new(map: &'m mut CoverageMap, inner: H) -> Self {
        CoveredHooks { map, inner }
    }
}

impl<H: Hooks> Hooks for CoveredHooks<'_, H> {
    fn on_edge(&mut self, from: Loc, to: Loc) {
        self.map.record(from, to);
        self.inner.on_edge(from, to);
    }
    fn check_load(&mut self, addr: u64, width: u64, loc: Loc) -> Option<Fault> {
        self.inner.check_load(addr, width, loc)
    }
    fn check_store(&mut self, addr: u64, width: u64, loc: Loc) -> Option<Fault> {
        self.inner.check_store(addr, width, loc)
    }
    fn check_bin(
        &mut self,
        op: BinKind,
        ty: IrType,
        a: u64,
        b: u64,
        ub_signed: bool,
        loc: Loc,
    ) -> Option<Fault> {
        self.inner.check_bin(op, ty, a, b, ub_signed, loc)
    }
    fn heap_redzone(&self) -> u64 {
        self.inner.heap_redzone()
    }
    fn on_malloc(&mut self, addr: u64, size: u64) {
        self.inner.on_malloc(addr, size);
    }
    fn on_free(&mut self, addr: u64, size: u64, loc: Loc) -> Result<FreeDisposition, Fault> {
        self.inner.on_free(addr, size, loc)
    }
    fn on_bad_free(&mut self, addr: u64, loc: Loc) -> Option<Fault> {
        self.inner.on_bad_free(addr, loc)
    }
    fn on_frame_enter(&mut self, lo: u64, hi: u64, slots: &[(u64, u64)]) {
        self.inner.on_frame_enter(lo, hi, slots);
    }
    fn on_frame_exit(&mut self, lo: u64, hi: u64) {
        self.inner.on_frame_exit(lo, hi);
    }
    fn track_poison(&self) -> bool {
        self.inner.track_poison()
    }
    fn load_poison(&mut self, addr: u64, width: u64) -> bool {
        self.inner.load_poison(addr, width)
    }
    fn store_poison(&mut self, addr: u64, width: u64, poisoned: bool) {
        self.inner.store_poison(addr, width, poisoned);
    }
    fn on_poison_use(&mut self, use_: PoisonUse, loc: Loc) -> Option<Fault> {
        self.inner.on_poison_use(use_, loc)
    }
    fn on_exit(&mut self, live_heap: &[(u64, u64)]) -> Option<Fault> {
        self.inner.on_exit(live_heap)
    }
    // Coverage instruments edges only, never individual memory accesses,
    // so bulk memory operations are fine whenever the inner hooks allow
    // them (e.g. plain-AFL fuzzing over NoHooks keeps the VM fast path).
    fn bulk_mem_ok(&self) -> bool {
        self.inner.bulk_mem_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(f: u32, b: u32) -> Loc {
        Loc {
            func: f,
            block: b,
            inst: 0,
        }
    }

    #[test]
    fn classify_buckets() {
        assert_eq!(CoverageMap::classify(0), 0);
        assert_eq!(CoverageMap::classify(1), 1);
        assert_eq!(CoverageMap::classify(2), 2);
        assert_eq!(CoverageMap::classify(3), 4);
        assert_eq!(CoverageMap::classify(5), 8);
        assert_eq!(CoverageMap::classify(10), 16);
        assert_eq!(CoverageMap::classify(20), 32);
        assert_eq!(CoverageMap::classify(100), 64);
        assert_eq!(CoverageMap::classify(200), 128);
    }

    #[test]
    fn novelty_detection() {
        let mut global = GlobalCoverage::new();
        let mut exec = CoverageMap::new();
        exec.record(loc(0, 0), loc(0, 1));
        assert!(global.merge(&exec), "first edge is new");
        assert!(!global.merge(&exec), "same coverage is not new");
        // Same edge, higher hit bucket -> new again.
        for _ in 0..10 {
            exec.record(loc(0, 0), loc(0, 1));
        }
        assert!(global.merge(&exec), "new hit-count bucket counts as new");
    }

    #[test]
    fn distinct_edges_mostly_distinct_slots() {
        let mut m = CoverageMap::new();
        for b in 0..200u32 {
            m.record(loc(0, b), loc(0, b + 1));
        }
        assert!(m.count_edges() > 190, "hash collisions should be rare");
    }

    #[test]
    fn reset_clears() {
        let mut m = CoverageMap::new();
        m.record(loc(1, 2), loc(1, 3));
        assert_eq!(m.count_edges(), 1);
        m.reset();
        assert_eq!(m.count_edges(), 0);
    }
}
