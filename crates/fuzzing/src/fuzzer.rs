//! The campaign driver: AFL++'s main loop (paper Algorithm 1, unhighlighted
//! part) with a pluggable extra *oracle* seam (the highlighted part).
//!
//! ```text
//! while not aborted:
//!     s  = select seed
//!     s' = mutate(s)
//!     r  = execute(B_fuzz, s')
//!     if crash: save crash
//!     if new coverage: add to queue
//!     oracle.examine(s', r)        # <- CompDiff plugs in here
//! ```

use crate::coverage::{CoverageMap, GlobalCoverage};
use crate::mutate;
use crate::queue::Queue;
use crate::rng::Rng;
use minc_vm::{ExecResult, ExecSession, ExitStatus, VmConfig};
use std::collections::{HashMap, HashSet};

/// Executes the instrumented target once. Implemented for closures so any
/// binary/hook combination (plain, sanitized, …) can be fuzzed.
pub trait TargetExec {
    /// Runs `input`, filling `map` with edge coverage.
    fn run(&mut self, input: &[u8], map: &mut CoverageMap) -> ExecResult;
}

impl<F: FnMut(&[u8], &mut CoverageMap) -> ExecResult> TargetExec for F {
    fn run(&mut self, input: &[u8], map: &mut CoverageMap) -> ExecResult {
        self(input, map)
    }
}

/// A convenience target: one binary, no extra instrumentation. Holds a
/// persistent [`ExecSession`] so the whole fuzz loop reuses one set of
/// memory pages and pooled frames instead of rebuilding the VM per exec.
#[derive(Debug, Clone)]
pub struct BinaryTarget<'a> {
    /// The fuzz binary (B_fuzz).
    pub binary: &'a minc_compile::Binary,
    /// Execution limits.
    pub vm: VmConfig,
    session: ExecSession,
}

impl<'a> BinaryTarget<'a> {
    /// Creates the target with its persistent execution session.
    pub fn new(binary: &'a minc_compile::Binary, vm: VmConfig) -> Self {
        BinaryTarget {
            binary,
            vm,
            session: ExecSession::new(binary),
        }
    }

    /// Pre-seeds the session's block-translation cache with a shared
    /// translation of the fuzz binary (campaign workers translate once in
    /// the `BinaryCache`; without this, the first block-mode exec of each
    /// job would retranslate).
    pub fn with_block_program(mut self, prog: std::sync::Arc<minc_vm::BlockProgram>) -> Self {
        self.session.set_block_program(prog);
        self
    }

    /// Cumulative statistics of the persistent session (merged into the
    /// per-job VM stats by the campaign scheduler).
    pub fn session_stats(&self) -> minc_vm::SessionStats {
        self.session.stats()
    }
}

impl TargetExec for BinaryTarget<'_> {
    fn run(&mut self, input: &[u8], map: &mut CoverageMap) -> ExecResult {
        let mut hooks = crate::coverage::CoveredHooks::new(map, minc_vm::NoHooks);
        self.session
            .run_with_hooks(self.binary, input, &self.vm, &mut hooks)
    }
}

/// The extra test oracle (paper §3.2): examines every generated input.
pub trait Oracle {
    /// Returns `true` if the input should be saved (e.g. it triggered an
    /// output discrepancy).
    fn examine(&mut self, input: &[u8], result: &ExecResult) -> bool;

    /// Examines a batch of `(input, fuzz-binary result)` pairs at once,
    /// returning one save-verdict per item in order. The fuzzer drains its
    /// pending examinations through this entry point in `batch_size`
    /// chunks, so a differential oracle can sweep each of its binaries
    /// over the whole batch (amortizing session reset and translation
    /// warmth) instead of running all binaries per input. The default
    /// simply maps [`examine`](Oracle::examine), which keeps single-input
    /// oracles correct unchanged.
    fn examine_batch(&mut self, items: &[(Vec<u8>, ExecResult)]) -> Vec<bool> {
        items
            .iter()
            .map(|(input, result)| self.examine(input, result))
            .collect()
    }

    /// Called after [`Oracle::examine`] returned `true`: should the input
    /// *also* enter the seed queue? This is the paper's §5 future-work
    /// idea (NEZHA-style divergence-as-feedback): inputs that expose a
    /// novel behavioural asymmetry are worth mutating further even when
    /// they add no new code coverage. Default: `false` (the paper's base
    /// CompDiff-AFL++ design).
    fn feedback(&mut self, input: &[u8]) -> bool {
        let _ = input;
        false
    }
}

/// No extra oracle: plain AFL++.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOracle;

impl Oracle for NoOracle {
    fn examine(&mut self, _input: &[u8], _result: &ExecResult) -> bool {
        false
    }
}

/// Per-execution instrumentation seam of the fuzz loop. A telemetry
/// layer implements this to derive execs/sec, exec-latency histograms,
/// and queue-depth gauges; the fuzzer itself stays dependency-free and
/// the default observer `()` compiles to nothing.
pub trait FuzzObserver {
    /// About to execute the fuzz binary on one input.
    fn exec_begin(&mut self) {}

    /// The execution finished; `queue_depth` is the current seed-queue
    /// length.
    fn exec_end(&mut self, _result: &ExecResult, _queue_depth: usize) {}
}

/// The do-nothing observer (the disabled-telemetry path).
impl FuzzObserver for () {}

/// Observers pass through mutable references, so a caller can keep
/// ownership (and read the collected data back after the run).
impl<W: FuzzObserver + ?Sized> FuzzObserver for &mut W {
    fn exec_begin(&mut self) {
        (**self).exec_begin();
    }

    fn exec_end(&mut self, result: &ExecResult, queue_depth: usize) {
        (**self).exec_end(result, queue_depth);
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Execution budget (on the fuzz binary; oracle executions are extra).
    pub max_execs: u64,
    /// RNG seed (campaigns are fully deterministic).
    pub seed: u64,
    /// Maximum input length.
    pub max_input_len: usize,
    /// Run the deterministic stage on small seeds.
    pub deterministic: bool,
    /// Dictionary tokens (AFL's `-x`): magic values and keywords the havoc
    /// stage may insert or overwrite with.
    pub dictionary: Vec<Vec<u8>>,
    /// How many generated inputs to buffer before handing them to the
    /// oracle in one [`Oracle::examine_batch`] call. The fuzz-binary
    /// executions, coverage accounting, and mutation schedule are
    /// identical at every batch size; only the oracle's examinations are
    /// deferred (by at most `batch_size - 1` executions). `1` restores
    /// the strict examine-after-every-exec interleaving.
    pub batch_size: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            max_execs: 50_000,
            seed: 0xAF1,
            max_input_len: 128,
            deterministic: true,
            dictionary: Vec::new(),
            batch_size: 16,
        }
    }
}

/// A saved crash.
#[derive(Debug, Clone, PartialEq)]
pub struct Crash {
    /// The triggering input.
    pub input: Vec<u8>,
    /// The crash status.
    pub status: ExitStatus,
    /// Dedup signature (status-derived, like AFL's crash bucketing).
    pub signature: String,
}

/// Campaign results.
#[derive(Debug, Default)]
pub struct CampaignStats {
    /// Total executions of the fuzz binary.
    pub execs: u64,
    /// Unique crashes (first input per signature).
    pub crashes: Vec<Crash>,
    /// Inputs the oracle asked to save (the `diffs/` directory).
    pub oracle_finds: Vec<Vec<u8>>,
    /// Final corpus size.
    pub corpus_len: usize,
    /// Distinct coverage-map slots seen.
    pub edges: usize,
    /// Executions that timed out.
    pub timeouts: u64,
}

/// The fuzzer.
pub struct Fuzzer<T: TargetExec, O: Oracle, W: FuzzObserver = ()> {
    target: T,
    oracle: O,
    observer: W,
    config: FuzzConfig,
    rng: Rng,
    queue: Queue,
    global: GlobalCoverage,
    map: CoverageMap,
    crash_sigs: HashMap<String, usize>,
    oracle_seen: HashSet<Vec<u8>>,
    /// Inputs executed but not yet shown to the oracle, flushed through
    /// [`Oracle::examine_batch`] every `config.batch_size` executions.
    pending: Vec<(Vec<u8>, ExecResult)>,
    /// Per-pending (new coverage?, distinct edges), needed to replay the
    /// feedback decision when the batched verdicts come back.
    pending_meta: Vec<(bool, usize)>,
    stats: CampaignStats,
}

impl<T: TargetExec, O: Oracle> Fuzzer<T, O> {
    /// Creates a fuzzer over a target with an oracle (and no observer;
    /// see [`with_observer`](Fuzzer::with_observer)).
    pub fn new(target: T, oracle: O, config: FuzzConfig) -> Self {
        let rng = Rng::new(config.seed);
        Fuzzer {
            target,
            oracle,
            observer: (),
            config,
            rng,
            queue: Queue::new(),
            global: GlobalCoverage::new(),
            map: CoverageMap::new(),
            crash_sigs: HashMap::new(),
            oracle_seen: HashSet::new(),
            pending: Vec::new(),
            pending_meta: Vec::new(),
            stats: CampaignStats::default(),
        }
    }
}

impl<T: TargetExec, O: Oracle, W: FuzzObserver> Fuzzer<T, O, W> {
    /// Attaches an execution observer, replacing the current one. The
    /// observer sees every fuzz-binary execution; it never influences
    /// scheduling, mutation, or results.
    pub fn with_observer<W2: FuzzObserver>(self, observer: W2) -> Fuzzer<T, O, W2> {
        Fuzzer {
            target: self.target,
            oracle: self.oracle,
            observer,
            config: self.config,
            rng: self.rng,
            queue: self.queue,
            global: self.global,
            map: self.map,
            crash_sigs: self.crash_sigs,
            oracle_seen: self.oracle_seen,
            pending: self.pending,
            pending_meta: self.pending_meta,
            stats: self.stats,
        }
    }

    /// Runs a campaign from the given seed corpus and returns statistics.
    pub fn run(mut self, seeds: &[Vec<u8>]) -> CampaignStats {
        // Dry-run the seeds.
        let mut seen = HashSet::new();
        for s in seeds {
            if !seen.insert(s.clone()) {
                continue;
            }
            if self.stats.execs >= self.config.max_execs {
                break;
            }
            let (result, new_bits, edges) = self.exec_one(s);
            // Initial seeds always enter the queue (AFL keeps them even
            // without novel coverage, as long as they do not crash).
            let _ = new_bits;
            if !result.status.is_crash() {
                self.queue.add(s.clone(), result.steps, edges);
            }
        }
        if self.queue.is_empty() {
            // Fall back to a minimal seed, as afl-fuzz requires one input.
            let s = vec![0u8];
            let (result, _, edges) = self.exec_one(&s);
            if !result.status.is_crash() {
                self.queue.add(s, result.steps, edges);
            }
        }

        // Main loop.
        while self.stats.execs < self.config.max_execs && !self.queue.is_empty() {
            let Some(idx) = self.queue.next_index() else {
                break;
            };
            let seed_input = self.queue.seed(idx).input.clone();

            if self.config.deterministic && !self.queue.seed(idx).det_done && seed_input.len() <= 20
            {
                let mut budget_left = true;
                let mut mutants = Vec::new();
                mutate::deterministic(&seed_input, |m| {
                    mutants.push(m);
                    true
                });
                for m in mutants {
                    if self.stats.execs >= self.config.max_execs {
                        budget_left = false;
                        break;
                    }
                    self.fuzz_one(&m);
                }
                self.queue.mark_det_done(idx);
                if !budget_left {
                    break;
                }
            }

            let energy = self.queue.energy(idx);
            for _ in 0..energy {
                if self.stats.execs >= self.config.max_execs {
                    break;
                }
                let mutant = if !self.config.dictionary.is_empty() && self.rng.one_in(6) {
                    mutate::dictionary(
                        &seed_input,
                        &self.config.dictionary,
                        &mut self.rng,
                        self.config.max_input_len,
                    )
                } else if self.rng.one_in(8) {
                    match self.queue.splice_partner(idx) {
                        Some(p) => {
                            let spliced = mutate::splice(
                                &seed_input,
                                &p.input,
                                &mut self.rng,
                                self.config.max_input_len,
                            );
                            mutate::havoc(&spliced, &mut self.rng, self.config.max_input_len)
                        }
                        None => {
                            mutate::havoc(&seed_input, &mut self.rng, self.config.max_input_len)
                        }
                    }
                } else {
                    mutate::havoc(&seed_input, &mut self.rng, self.config.max_input_len)
                };
                self.fuzz_one(&mutant);
            }
        }

        // Examine whatever is still buffered before reporting.
        self.flush_oracle();

        self.stats.corpus_len = self.queue.len();
        self.stats.edges = self.global.edges_seen();
        self.stats
    }

    /// Executes, returning (result, new coverage?, distinct edges).
    fn exec_one(&mut self, input: &[u8]) -> (ExecResult, bool, usize) {
        self.observer.exec_begin();
        self.map.reset();
        let result = self.target.run(input, &mut self.map);
        self.stats.execs += 1;
        if result.status == ExitStatus::TimedOut {
            self.stats.timeouts += 1;
        }
        self.observer.exec_end(&result, self.queue.len());
        let edges = self.map.count_edges();
        let new_bits = self.global.merge(&self.map);
        (result, new_bits, edges)
    }

    /// The full per-input pipeline of Algorithm 1.
    fn fuzz_one(&mut self, input: &[u8]) {
        let (result, new_bits, edges) = self.exec_one(input);
        if result.status.is_crash() {
            let signature = crash_signature(&result.status);
            if !self.crash_sigs.contains_key(&signature) {
                self.crash_sigs
                    .insert(signature.clone(), self.stats.crashes.len());
                self.stats.crashes.push(Crash {
                    input: input.to_vec(),
                    status: result.status.clone(),
                    signature,
                });
            }
        } else if new_bits {
            self.queue.add(input.to_vec(), result.steps, edges);
        }
        // CompDiff seam: examine outputs on every generated input. The
        // examination is buffered and flushed in `batch_size` chunks so a
        // differential oracle can sweep each implementation over the whole
        // batch; nothing above this line depends on the verdicts, so the
        // fuzz-binary side of the campaign is identical at any batch size.
        self.pending_meta.push((new_bits, edges));
        self.pending.push((input.to_vec(), result));
        if self.pending.len() >= self.config.batch_size.max(1) {
            self.flush_oracle();
        }
    }

    /// Drains the pending buffer through the oracle and applies the save
    /// and feedback decisions in execution order.
    fn flush_oracle(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let items = std::mem::take(&mut self.pending);
        let meta = std::mem::take(&mut self.pending_meta);
        let verdicts = self.oracle.examine_batch(&items);
        debug_assert_eq!(verdicts.len(), items.len());
        for (((input, result), (new_bits, edges)), save) in
            items.into_iter().zip(meta).zip(verdicts)
        {
            if !save {
                continue;
            }
            if self.oracle_seen.insert(input.clone()) {
                self.stats.oracle_finds.push(input.clone());
            }
            // Divergence-as-feedback (§5 future work): a novel divergence
            // earns queue entry even without new coverage bits. Feedback is
            // consulted for every saved input so a stateful oracle observes
            // the same call sequence at every batch size; the verdict only
            // matters when coverage did not already queue the input.
            let fb = self.oracle.feedback(&input);
            if !new_bits && !result.status.is_crash() && fb {
                self.queue.add(input, result.steps, edges);
            }
        }
    }
}

/// AFL-style crash bucketing: by status kind and sanitizer category.
pub fn crash_signature(status: &ExitStatus) -> String {
    match status {
        ExitStatus::Trapped(t) => format!("trap:{t:?}"),
        ExitStatus::Sanitizer(f) => format!("san:{}:{}", f.kind, f.category),
        other => format!("{other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minc_compile::{compile_source, CompilerImpl};

    fn target_binary(src: &str) -> minc_compile::Binary {
        compile_source(src, CompilerImpl::parse("clang-O1").unwrap()).unwrap()
    }

    #[test]
    fn finds_magic_byte_crash() {
        // The classic staged-magic-bytes toy: coverage guidance must find
        // it far faster than random chance (1 in 2^24 blind).
        let src = r#"
            int main() {
                char buf[8];
                long n = read_input(buf, 8L);
                if (n < 3) return 0;
                if (buf[0] == 'F') {
                    if (buf[1] == 'U') {
                        if (buf[2] == 'Z') {
                            int* p = 0;
                            *p = 1;
                        }
                    }
                }
                return 0;
            }
        "#;
        let bin = target_binary(src);
        let target = BinaryTarget::new(&bin, VmConfig::default());
        let config = FuzzConfig {
            max_execs: 60_000,
            seed: 1,
            ..Default::default()
        };
        let stats = Fuzzer::new(target, NoOracle, config).run(&[b"AAAAAAA".to_vec()]);
        assert!(
            stats.crashes.iter().any(|c| c.signature.contains("Segv")),
            "should find the staged crash; stats: {} execs, {} edges, {} corpus",
            stats.execs,
            stats.edges,
            stats.corpus_len
        );
        let crash = &stats.crashes[0];
        assert_eq!(&crash.input[..3], b"FUZ");
    }

    #[test]
    fn campaign_is_deterministic() {
        let src = r#"
            int main() {
                char buf[4];
                read_input(buf, 4L);
                if (buf[0] == 'x' && buf[1] == 'y') { abort(); }
                return 0;
            }
        "#;
        let bin = target_binary(src);
        let run = || {
            let target = BinaryTarget::new(&bin, VmConfig::default());
            let config = FuzzConfig {
                max_execs: 5_000,
                seed: 99,
                ..Default::default()
            };
            let s = Fuzzer::new(target, NoOracle, config).run(&[b"ab".to_vec()]);
            (s.execs, s.edges, s.crashes.len(), s.corpus_len)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn coverage_grows_queue() {
        let src = r#"
            int main() {
                char buf[4];
                long n = read_input(buf, 4L);
                if (n > 0 && buf[0] > 'a') { printf("1"); }
                if (n > 1 && buf[1] > 'b') { printf("2"); }
                if (n > 2 && buf[2] > 'c') { printf("3"); }
                return 0;
            }
        "#;
        let bin = target_binary(src);
        let target = BinaryTarget::new(&bin, VmConfig::default());
        let config = FuzzConfig {
            max_execs: 3_000,
            seed: 3,
            ..Default::default()
        };
        let stats = Fuzzer::new(target, NoOracle, config).run(&[b"....".to_vec()]);
        assert!(stats.corpus_len > 1, "novel paths should be kept");
    }

    #[test]
    fn oracle_finds_are_saved_and_deduped() {
        struct EvenLen;
        impl Oracle for EvenLen {
            fn examine(&mut self, input: &[u8], _r: &ExecResult) -> bool {
                input.len().is_multiple_of(2)
            }
        }
        let bin = target_binary("int main() { return 0; }");
        let target = BinaryTarget::new(&bin, VmConfig::default());
        let config = FuzzConfig {
            max_execs: 500,
            seed: 4,
            ..Default::default()
        };
        let stats = Fuzzer::new(target, EvenLen, config).run(&[b"ab".to_vec()]);
        assert!(!stats.oracle_finds.is_empty());
        let set: HashSet<_> = stats.oracle_finds.iter().collect();
        assert_eq!(set.len(), stats.oracle_finds.len(), "finds must be deduped");
    }

    #[test]
    fn batch_size_does_not_change_campaign_or_findings() {
        // Oracle examinations are buffered and flushed in `batch_size`
        // chunks, but the fuzz-binary side (mutation schedule, coverage,
        // crash handling) never depends on the verdicts — so every batch
        // size must produce the same campaign and the same oracle finds,
        // in the same order. Also exercises `examine_batch` chunk
        // boundaries: 1 (strict interleaving), 7 (partial final flush),
        // and 64 (everything pending at once).
        struct EvenLen;
        impl Oracle for EvenLen {
            fn examine(&mut self, input: &[u8], _r: &ExecResult) -> bool {
                input.len().is_multiple_of(2)
            }
        }
        let src = r#"
            int main() {
                char buf[4];
                long n = read_input(buf, 4L);
                if (n > 0 && buf[0] > 'a') { printf("1"); }
                if (n > 1 && buf[1] == 'q') { abort(); }
                return 0;
            }
        "#;
        let bin = target_binary(src);
        let run_with = |batch_size| {
            let target = BinaryTarget::new(&bin, VmConfig::default());
            let config = FuzzConfig {
                max_execs: 3_000,
                seed: 11,
                batch_size,
                ..Default::default()
            };
            Fuzzer::new(target, EvenLen, config).run(&[b"ab".to_vec()])
        };
        let base = run_with(1);
        assert!(!base.oracle_finds.is_empty());
        for batch_size in [7, 64] {
            let other = run_with(batch_size);
            assert_eq!(base.execs, other.execs, "batch={batch_size}");
            assert_eq!(base.edges, other.edges, "batch={batch_size}");
            assert_eq!(base.corpus_len, other.corpus_len, "batch={batch_size}");
            assert_eq!(
                base.crashes.len(),
                other.crashes.len(),
                "batch={batch_size}"
            );
            assert_eq!(base.oracle_finds, other.oracle_finds, "batch={batch_size}");
        }
    }

    #[test]
    fn observer_sees_every_exec_without_perturbing() {
        #[derive(Default)]
        struct CountObs {
            begins: u64,
            ends: u64,
            max_queue: usize,
        }
        impl FuzzObserver for CountObs {
            fn exec_begin(&mut self) {
                self.begins += 1;
            }
            fn exec_end(&mut self, _r: &ExecResult, depth: usize) {
                self.ends += 1;
                self.max_queue = self.max_queue.max(depth);
            }
        }
        let src = r#"
            int main() {
                char buf[4];
                long n = read_input(buf, 4L);
                if (n > 0 && buf[0] > 'a') { printf("1"); }
                if (n > 1 && buf[1] > 'b') { printf("2"); }
                return 0;
            }
        "#;
        let bin = target_binary(src);
        let config = FuzzConfig {
            max_execs: 2_000,
            seed: 3,
            ..Default::default()
        };
        let run_observed = || {
            let mut obs = CountObs::default();
            let stats = Fuzzer::new(
                BinaryTarget::new(&bin, VmConfig::default()),
                NoOracle,
                config.clone(),
            )
            .with_observer(&mut obs)
            .run(&[b"....".to_vec()]);
            (stats, obs)
        };
        let (stats, obs) = run_observed();
        assert_eq!(obs.begins, stats.execs);
        assert_eq!(obs.ends, stats.execs);
        assert!(obs.max_queue >= 1);
        // And the observed campaign matches the unobserved one exactly.
        let plain = Fuzzer::new(
            BinaryTarget::new(&bin, VmConfig::default()),
            NoOracle,
            config.clone(),
        )
        .run(&[b"....".to_vec()]);
        assert_eq!(plain.execs, stats.execs);
        assert_eq!(plain.edges, stats.edges);
        assert_eq!(plain.corpus_len, stats.corpus_len);
    }

    #[test]
    fn crashes_are_deduped_by_signature() {
        let src = r#"
            int main() {
                char buf[2];
                read_input(buf, 2L);
                if (buf[0] == 'a') { int* p = 0; *p = 1; }
                if (buf[0] == 'b') { int* q = 0; *q = 2; }
                return 0;
            }
        "#;
        let bin = target_binary(src);
        let target = BinaryTarget::new(&bin, VmConfig::default());
        let config = FuzzConfig {
            max_execs: 4_000,
            seed: 5,
            ..Default::default()
        };
        let stats = Fuzzer::new(target, NoOracle, config).run(&[b"zz".to_vec()]);
        // Both crash sites segfault -> one signature bucket.
        assert_eq!(stats.crashes.len(), 1, "{:?}", stats.crashes);
    }
}
