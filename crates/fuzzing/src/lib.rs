//! # fuzzing — an AFL++-style coverage-guided greybox fuzzer for MinC
//!
//! Reproduces the fuzzing substrate the CompDiff paper builds on (AFL++
//! 3.15a): edge-coverage bitmap with hit-count bucketing, a seed queue with
//! an energy schedule, deterministic and havoc/splice mutation stages,
//! crash bucketing, and — the integration point the paper adds — an
//! [`Oracle`] seam invoked on every generated input (Algorithm 1).
//!
//! The forkserver is modeled by in-process persistent execution: the
//! compiled [`minc_compile::Binary`] stays resident and [`BinaryTarget`]
//! keeps a persistent [`minc_vm::ExecSession`] across the whole campaign,
//! so each run only resets — never re-allocates — memory pages and call
//! frames. That is the same amortization AFL++'s persistent mode achieves
//! for real binaries.
//!
//! ```
//! use fuzzing::{BinaryTarget, FuzzConfig, Fuzzer, NoOracle};
//! use minc_compile::{compile_source, CompilerImpl};
//! use minc_vm::VmConfig;
//!
//! # fn main() -> Result<(), minc::FrontendError> {
//! let bin = compile_source(
//!     "int main() { char b[4]; read_input(b, 4L); if (b[0] == '!') abort(); return 0; }",
//!     CompilerImpl::parse("clang-O1").unwrap(),
//! )?;
//! let target = BinaryTarget::new(&bin, VmConfig::default());
//! let stats = Fuzzer::new(target, NoOracle, FuzzConfig { max_execs: 2_000, ..Default::default() })
//!     .run(&[b"seed".to_vec()]);
//! assert!(stats.execs <= 2_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
pub mod coverage;
pub mod fuzzer;
pub mod mutate;
pub mod queue;
pub mod rng;

pub use coverage::{CoverageMap, CoveredHooks, GlobalCoverage, MAP_SIZE};
pub use fuzzer::{
    crash_signature, BinaryTarget, CampaignStats, Crash, FuzzConfig, FuzzObserver, Fuzzer,
    NoOracle, Oracle, TargetExec,
};
pub use queue::{Queue, Seed};
pub use rng::Rng;
