//! Mutation operators, following AFL++'s deterministic and havoc stages.

use crate::rng::Rng;

/// Interesting 8-bit values (AFL's list).
pub const INTERESTING_8: [i8; 9] = [-128, -1, 0, 1, 16, 32, 64, 100, 127];
/// Interesting 16-bit values.
pub const INTERESTING_16: [i16; 10] = [-32768, -129, 128, 255, 256, 512, 1000, 1024, 4096, 32767];
/// Interesting 32-bit values.
pub const INTERESTING_32: [i32; 8] = [
    i32::MIN,
    -100_663_046,
    -32769,
    32768,
    65535,
    65536,
    100_663_045,
    i32::MAX,
];

/// The deterministic stage: every single-bit flip, byte flip, and ±1..35
/// arithmetic and interesting-value substitution at each position.
/// Yields each mutant through `emit`; stops early if `emit` returns false.
pub fn deterministic(input: &[u8], mut emit: impl FnMut(Vec<u8>) -> bool) {
    // Walking bit flips.
    for bit in 0..input.len() * 8 {
        let mut m = input.to_vec();
        m[bit / 8] ^= 1 << (bit % 8);
        if !emit(m) {
            return;
        }
    }
    // Byte flips.
    for i in 0..input.len() {
        let mut m = input.to_vec();
        m[i] ^= 0xff;
        if !emit(m) {
            return;
        }
    }
    // Arithmetic on bytes.
    for i in 0..input.len() {
        for d in [1i16, -1, 7, -7, 35, -35] {
            let mut m = input.to_vec();
            m[i] = (m[i] as i16).wrapping_add(d) as u8;
            if !emit(m) {
                return;
            }
        }
    }
    // Interesting byte values.
    for i in 0..input.len() {
        for v in INTERESTING_8 {
            let mut m = input.to_vec();
            m[i] = v as u8;
            if !emit(m) {
                return;
            }
        }
    }
    // Interesting 16/32-bit values (little-endian).
    for i in 0..input.len().saturating_sub(1) {
        for v in INTERESTING_16 {
            let mut m = input.to_vec();
            m[i..i + 2].copy_from_slice(&v.to_le_bytes());
            if !emit(m) {
                return;
            }
        }
    }
    for i in 0..input.len().saturating_sub(3) {
        for v in INTERESTING_32 {
            let mut m = input.to_vec();
            m[i..i + 4].copy_from_slice(&v.to_le_bytes());
            if !emit(m) {
                return;
            }
        }
    }
}

/// One havoc mutation: a stack of 1-8 random edits.
pub fn havoc(input: &[u8], rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let mut m = input.to_vec();
    if m.is_empty() {
        m.push(rng.byte());
    }
    let stack = 1 << (1 + rng.below(3)); // 2, 4, or 8 edits
    for _ in 0..stack {
        match rng.below(11) {
            0 => {
                // Flip a random bit.
                let bit = rng.below(m.len() * 8);
                m[bit / 8] ^= 1 << (bit % 8);
            }
            1 => {
                // Set a random byte to an interesting value.
                let i = rng.below(m.len());
                m[i] = *rng.choose(&INTERESTING_8) as u8;
            }
            2 => {
                // Random byte.
                let i = rng.below(m.len());
                m[i] = rng.byte();
            }
            3 => {
                // Add/sub small value.
                let i = rng.below(m.len());
                let d = rng.below(70) as i16 - 35;
                m[i] = (m[i] as i16).wrapping_add(d) as u8;
            }
            4 if m.len() > 1 => {
                // Delete a random byte.
                let i = rng.below(m.len());
                m.remove(i);
            }
            5 if m.len() < max_len => {
                // Insert a random byte.
                let i = rng.below(m.len() + 1);
                m.insert(i, rng.byte());
            }
            6 if m.len() < max_len.saturating_sub(4) => {
                // Insert a small random block.
                let i = rng.below(m.len() + 1);
                let n = 1 + rng.below(4);
                for _ in 0..n {
                    m.insert(i, rng.byte());
                }
            }
            7 if m.len() >= 2 => {
                // Overwrite with interesting 16-bit value.
                let i = rng.below(m.len() - 1);
                let v = *rng.choose(&INTERESTING_16);
                m[i..i + 2].copy_from_slice(&v.to_le_bytes());
            }
            8 if m.len() >= 4 => {
                // Overwrite with interesting 32-bit value.
                let i = rng.below(m.len() - 3);
                let v = *rng.choose(&INTERESTING_32);
                m[i..i + 4].copy_from_slice(&v.to_le_bytes());
            }
            9 if m.len() >= 2 => {
                // Copy a block within the input.
                let src = rng.below(m.len());
                let dst = rng.below(m.len());
                let n = 1 + rng.below((m.len() - src.max(dst)).max(1));
                for k in 0..n {
                    if src + k < m.len() && dst + k < m.len() {
                        m[dst + k] = m[src + k];
                    }
                }
            }
            _ => {
                // ASCII digit tweak (handy for text protocols).
                let i = rng.below(m.len());
                m[i] = b'0' + rng.below(10) as u8;
            }
        }
    }
    m.truncate(max_len);
    m
}

/// Dictionary mutation (AFL's `-x` tokens): overwrite at or insert a token
/// into a random position, then lightly havoc.
pub fn dictionary(input: &[u8], tokens: &[Vec<u8>], rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let mut m = input.to_vec();
    if m.is_empty() {
        m.push(rng.byte());
    }
    let token = rng.choose(tokens).clone();
    if rng.one_in(2) && token.len() <= m.len() {
        // Overwrite in place.
        let pos = rng.below(m.len() - token.len() + 1);
        m[pos..pos + token.len()].copy_from_slice(&token);
    } else {
        // Insert.
        let pos = rng.below(m.len() + 1);
        for (k, &b) in token.iter().enumerate() {
            m.insert(pos + k, b);
        }
    }
    m.truncate(max_len);
    if rng.one_in(3) {
        return havoc(&m, rng, max_len);
    }
    m
}

/// Splices two inputs at random positions (AFL's splice stage).
pub fn splice(a: &[u8], b: &[u8], rng: &mut Rng, max_len: usize) -> Vec<u8> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let cut_a = rng.below(a.len());
    let cut_b = rng.below(b.len());
    let mut out = a[..cut_a].to_vec();
    out.extend_from_slice(&b[cut_b..]);
    out.truncate(max_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_covers_bitflips_first() {
        let input = vec![0u8; 2];
        let mut first = Vec::new();
        deterministic(&input, |m| {
            first.push(m);
            first.len() < 16
        });
        // First 16 mutants are single-bit flips of two zero bytes.
        for (i, m) in first.iter().enumerate() {
            let expected_byte = i / 8;
            assert_eq!(m[expected_byte], 1 << (i % 8));
        }
    }

    #[test]
    fn deterministic_mutant_count_scales_with_len() {
        let mut n = 0;
        deterministic(&[0u8; 4], |_| {
            n += 1;
            true
        });
        // 32 bitflips + 4 byteflips + 24 arith + 36 interesting8
        // + 30 interesting16 + 8 interesting32.
        assert_eq!(n, 32 + 4 + 24 + 36 + 30 + 8);
    }

    #[test]
    fn havoc_stays_within_bounds() {
        let mut rng = Rng::new(11);
        for _ in 0..500 {
            let m = havoc(b"hello world", &mut rng, 16);
            assert!(m.len() <= 16);
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn havoc_produces_variety() {
        let mut rng = Rng::new(1);
        let outs: std::collections::HashSet<Vec<u8>> =
            (0..100).map(|_| havoc(b"seed", &mut rng, 32)).collect();
        assert!(outs.len() > 50, "havoc should produce diverse mutants");
    }

    #[test]
    fn dictionary_places_tokens() {
        let mut rng = Rng::new(9);
        let tokens = vec![b"MAGIC".to_vec()];
        let mut hits = 0;
        for _ in 0..200 {
            let m = dictionary(b"................", &tokens, &mut rng, 64);
            assert!(m.len() <= 64);
            if m.windows(5).any(|w| w == b"MAGIC") {
                hits += 1;
            }
        }
        assert!(hits > 100, "tokens should usually survive: {hits}/200");
    }

    #[test]
    fn splice_combines_prefix_and_suffix() {
        let mut rng = Rng::new(5);
        let s = splice(b"AAAA", b"BBBB", &mut rng, 64);
        assert!(!s.is_empty());
        assert!(s.len() <= 8);
    }
}
