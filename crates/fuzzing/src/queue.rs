//! The seed queue and power schedule.

/// One queue entry.
#[derive(Debug, Clone)]
pub struct Seed {
    /// The input bytes.
    pub input: Vec<u8>,
    /// Steps the target took on this input (exec-time proxy).
    pub steps: u64,
    /// Distinct edges this input covered when added.
    pub edges: usize,
    /// Whether the deterministic stage already ran for this seed.
    pub det_done: bool,
    /// How many times this seed was selected.
    pub selected: u64,
}

/// A simple AFL-like queue: cyclic selection, energy favoring small, fast,
/// high-coverage, rarely-fuzzed seeds.
#[derive(Debug, Default)]
pub struct Queue {
    seeds: Vec<Seed>,
    cursor: usize,
}

impl Queue {
    /// Empty queue.
    pub fn new() -> Self {
        Queue::default()
    }

    /// Adds a seed.
    pub fn add(&mut self, input: Vec<u8>, steps: u64, edges: usize) {
        self.seeds.push(Seed {
            input,
            steps,
            edges,
            det_done: false,
            selected: 0,
        });
    }

    /// Number of seeds.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// True if no seeds.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Selects the next seed index (round-robin).
    pub fn next_index(&mut self) -> Option<usize> {
        if self.seeds.is_empty() {
            return None;
        }
        let idx = self.cursor % self.seeds.len();
        self.cursor += 1;
        self.seeds[idx].selected += 1;
        Some(idx)
    }

    /// Access a seed.
    pub fn seed(&self, idx: usize) -> &Seed {
        &self.seeds[idx]
    }

    /// Marks the deterministic stage complete.
    pub fn mark_det_done(&mut self, idx: usize) {
        self.seeds[idx].det_done = true;
    }

    /// The havoc energy for a seed: more for high-coverage/fast/small
    /// seeds, tapering with repeated selection (a simplified AFL
    /// `calculate_score`).
    pub fn energy(&self, idx: usize) -> u32 {
        let s = &self.seeds[idx];
        let mut score: f64 = 64.0;
        // Coverage factor relative to the queue average.
        let avg_edges = (self.seeds.iter().map(|s| s.edges).sum::<usize>().max(1)
            / self.seeds.len().max(1)) as f64;
        let cov = (s.edges as f64 / avg_edges.max(1.0)).clamp(0.25, 4.0);
        score *= cov;
        // Speed factor.
        let avg_steps = (self.seeds.iter().map(|s| s.steps).sum::<u64>().max(1)
            / self.seeds.len().max(1) as u64) as f64;
        let speed = (avg_steps.max(1.0) / s.steps.max(1) as f64).clamp(0.25, 4.0);
        score *= speed;
        // Taper with age.
        score /= 1.0 + (s.selected as f64).sqrt();
        score.clamp(8.0, 512.0) as u32
    }

    /// A second seed for splicing (any other index), if available.
    pub fn splice_partner(&self, idx: usize) -> Option<&Seed> {
        if self.seeds.len() < 2 {
            return None;
        }
        let other = (idx + 1 + (idx * 7) % (self.seeds.len() - 1)) % self.seeds.len();
        let other = if other == idx {
            (idx + 1) % self.seeds.len()
        } else {
            other
        };
        Some(&self.seeds[other])
    }

    /// Iterates the corpus inputs.
    pub fn inputs(&self) -> impl Iterator<Item = &[u8]> {
        self.seeds.iter().map(|s| s.input.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_selection() {
        let mut q = Queue::new();
        q.add(b"a".to_vec(), 10, 5);
        q.add(b"b".to_vec(), 10, 5);
        assert_eq!(q.next_index(), Some(0));
        assert_eq!(q.next_index(), Some(1));
        assert_eq!(q.next_index(), Some(0));
    }

    #[test]
    fn empty_queue_yields_none() {
        let mut q = Queue::new();
        assert_eq!(q.next_index(), None);
    }

    #[test]
    fn energy_favors_coverage_and_speed() {
        let mut q = Queue::new();
        q.add(b"slow-low".to_vec(), 100_000, 2);
        q.add(b"fast-high".to_vec(), 100, 50);
        assert!(q.energy(1) > q.energy(0));
    }

    #[test]
    fn energy_tapers_with_selection() {
        let mut q = Queue::new();
        q.add(b"x".to_vec(), 100, 10);
        let before = q.energy(0);
        for _ in 0..20 {
            q.next_index();
        }
        assert!(q.energy(0) < before);
    }

    #[test]
    fn splice_partner_is_distinct() {
        let mut q = Queue::new();
        q.add(b"a".to_vec(), 1, 1);
        assert!(q.splice_partner(0).is_none());
        q.add(b"b".to_vec(), 1, 1);
        let p = q.splice_partner(0).unwrap();
        assert_eq!(p.input, b"b");
    }
}
