//! Deterministic PRNG for the fuzzer (xoshiro256**).
//!
//! The fuzzer must be reproducible: same seed, same campaign. We therefore
//! use our own small generator instead of OS entropy.

/// xoshiro256** by Blackman & Vigna (public domain algorithm).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed (SplitMix64 expansion).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// A random byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() & 0xff) as u8
    }

    /// True with probability `1/n`.
    pub fn one_in(&mut self, n: usize) -> bool {
        self.below(n) == 0
    }

    /// Picks a random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn bytes_cover_range() {
        let mut r = Rng::new(3);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[r.byte() as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }
}
