//! Test-case generators for the 20 CWE categories.
//!
//! Each generated test mirrors Juliet's structure: one self-contained
//! program per case, a `bad` variant with exactly one flaw and a `good`
//! variant without it, and a *flow shape* wrapper (direct, opaque-guard,
//! helper-function, single-iteration loop) that exercises analyzers'
//! flow-sensitivity — the same role Juliet's flow variants play.
//!
//! The variant mixes inside each CWE are chosen to reproduce the paper's
//! *qualitative* Table 3 structure: e.g. most uninitialized-use tests only
//! print the value (MSan's deliberate blind spot, CompDiff's sweet spot),
//! while a minority branch on it (MSan's detection point); memory-error
//! tests mix near overflows (redzone-visible to ASan) with far ones
//! (beyond the redzone — CompDiff's unique finds).

use crate::model::{Cwe, JulietTest};

/// Common globals and helpers included in every test.
const PRELUDE: &str = "int SINK;\nint FLAG = 1;\n";

/// Wraps a core (declarations + statements) in one of four flow shapes.
fn wrap(core: &str, flow: usize, extra_top: &str) -> String {
    let mut src = String::from(PRELUDE);
    src.push_str(extra_top);
    match flow % 4 {
        0 => {
            src.push_str("int main() {\n");
            src.push_str(core);
            src.push_str("    return 0;\n}\n");
        }
        1 => {
            src.push_str("int main() {\n    if (FLAG == 1) {\n");
            src.push_str(core);
            src.push_str("    }\n    return 0;\n}\n");
        }
        2 => {
            src.push_str("void payload() {\n");
            src.push_str(core);
            src.push_str("}\nint main() {\n    payload();\n    return 0;\n}\n");
        }
        _ => {
            src.push_str("int main() {\n    int k0;\n    for (k0 = 0; k0 < 1; k0++) {\n");
            src.push_str(core);
            src.push_str("    }\n    return 0;\n}\n");
        }
    }
    src
}

fn sizes(i: usize) -> u64 {
    [8u64, 16, 32, 64][i % 4]
}

/// Generates test `i` for `cwe`.
pub fn generate(cwe: Cwe, i: usize) -> JulietTest {
    let (bad_core, good_core, extra) = cores(cwe, i);
    let flow = i % 4;
    JulietTest {
        id: format!("{}_{:05}", cwe, i),
        cwe,
        bad: wrap(&bad_core, flow, &extra),
        good: wrap(&good_core, flow, &extra),
    }
}

#[allow(clippy::too_many_lines)]
fn cores(cwe: Cwe, i: usize) -> (String, String, String) {
    let s = sizes(i);
    let no_extra = String::new();
    match cwe {
        // ---- stack buffer overflow (write) ----
        Cwe::Cwe121 => {
            // `tail` is declared before the buffer, so at -O0 (declaration
            // order + padding) it sits between the buffer's end and the
            // frame base — the natural victim of an upward overflow. At
            // -O1+ it is promoted to a register and survives: divergence.
            let fill = format!(
                "    int tail = 9;\n    char buf[{s}];\n    int j;\n    for (j = 0; j < {s}; j++) {{ buf[j] = 'A'; }}\n"
            );
            let near = s + 8 + (i as u64 % 3);
            let idx = |n: u64| {
                if matches!(i % 8, 2 | 3 | 5 | 6) {
                    format!("atoi(\"{n}\")")
                } else {
                    format!("{n}")
                }
            };
            let bad = match i % 8 {
                0..=3 => format!(
                    "{fill}    int idx = {};\n    buf[idx] = 'X';\n    printf(\"t=%d b=%d\\n\", tail, (int)buf[0]);\n",
                    idx(near)
                ),
                4..=6 => format!(
                    "{fill}    int idx = {};\n    buf[idx] = 'X';\n    SINK = tail;\n    printf(\"done\\n\");\n",
                    idx(s + 1)
                ),
                _ => format!(
                    // Far past every redzone: ASan-invisible; the adjacent
                    // junk the test observes is implementation-specific.
                    "{fill}    buf[{}] = 'X';\n    printf(\"t=%d v=%d\\n\", tail, (int)buf[{}]);\n",
                    s + 48,
                    s + 50
                ),
            };
            let good = format!(
                "{fill}    int idx = {};\n    buf[idx] = 'X';\n    printf(\"t=%d b=%d\\n\", tail, (int)buf[0]);\n",
                idx(s - 1)
            );
            (bad, good, no_extra)
        }

        // ---- heap buffer overflow (write) ----
        Cwe::Cwe122 => {
            let alloc = format!(
                "    char* p = (char*)malloc({s}L);\n    char* q = (char*)malloc({s}L);\n    int j;\n    for (j = 0; j < {s}; j++) {{ p[j] = 'A'; q[j] = 'B'; }}\n"
            );
            let idx = |n: u64| {
                if matches!(i % 8, 2 | 3 | 5 | 6) {
                    format!("atoi(\"{n}\")")
                } else {
                    format!("{n}")
                }
            };
            // gcc-sim's allocator places the next chunk closer than
            // clang-sim's (16- vs 32-byte chunk headers); this offset hits
            // q[0] under one family only.
            let far = s.div_ceil(16) * 16 + 16;
            let bad = match i % 8 {
                0..=3 => format!(
                    "{alloc}    int idx = {};\n    p[idx] = 'X';\n    printf(\"q=%d v=%d\\n\", (int)q[0], (int)p[{}]);\n    free(p);\n    free(q);\n",
                    idx(s + 2),
                    s + 3
                ),
                4..=6 => format!(
                    "{alloc}    int idx = {};\n    p[idx] = 'X';\n    SINK = (int)q[0];\n    printf(\"done\\n\");\n    free(p);\n    free(q);\n",
                    idx(s + 1)
                ),
                _ => format!(
                    "{alloc}    p[{far}] = 'X';\n    printf(\"q=%d\\n\", (int)q[0]);\n    free(p);\n    free(q);\n"
                ),
            };
            let good = format!(
                "{alloc}    int idx = {};\n    p[idx] = 'X';\n    printf(\"q=%d v=%d\\n\", (int)q[0], (int)p[0]);\n    free(p);\n    free(q);\n",
                idx(s - 1)
            );
            (bad, good, no_extra)
        }

        // ---- buffer underwrite ----
        Cwe::Cwe124 => {
            // `tail` declared after the buffer sits *below* it on the
            // stack: the victim of an underwrite at -O0, a register at -O1+.
            let decl = format!(
                "    char buf[{s}];\n    int tail = 9;\n    int j;\n    for (j = 0; j < {s}; j++) {{ buf[j] = 'A'; }}\n"
            );
            let idx = |n: i64| {
                if matches!(i % 8, 2 | 3 | 5 | 6) {
                    format!("atoi(\"{n}\")")
                } else {
                    format!("({n})")
                }
            };
            let bad = match i % 8 {
                0..=3 => format!(
                    "{decl}    int idx = {};\n    buf[idx] = 'X';\n    printf(\"t=%d b=%d\\n\", tail, (int)buf[0]);\n",
                    idx(-12 + (i as i64 % 3))
                ),
                4..=6 => format!(
                    "{decl}    int idx = {};\n    buf[idx] = 'X';\n    SINK = tail;\n    printf(\"done\\n\");\n",
                    idx(-1)
                ),
                _ => format!(
                    "{decl}    buf[-48] = 'X';\n    printf(\"t=%d v=%d\\n\", tail, (int)buf[-47]);\n"
                ),
            };
            let good = format!(
                "{decl}    int idx = {};\n    buf[idx] = 'X';\n    printf(\"t=%d b=%d\\n\", tail, (int)buf[0]);\n",
                idx(0)
            );
            (bad, good, no_extra)
        }

        // ---- buffer overread ----
        Cwe::Cwe126 => {
            let decl = format!(
                "    char buf[{s}];\n    int j;\n    for (j = 0; j < {s}; j++) {{ buf[j] = 'A'; }}\n"
            );
            let idx = |n: u64| {
                if matches!(i % 8, 2 | 3 | 5 | 6) {
                    format!("atoi(\"{n}\")")
                } else {
                    format!("{n}")
                }
            };
            let bad = match i % 8 {
                0..=3 => format!(
                    "{decl}    int idx = {};\n    printf(\"v=%d\\n\", (int)buf[idx]);\n",
                    idx(s + 2 + (i as u64 % 3))
                ),
                4..=6 => format!(
                    "{decl}    int idx = {};\n    SINK += (int)buf[idx];\n    printf(\"done\\n\");\n",
                    idx(s + 1)
                ),
                _ => format!("{decl}    printf(\"v=%d\\n\", (int)buf[{}]);\n", s + 48),
            };
            let good = format!(
                "{decl}    int idx = {};\n    printf(\"v=%d\\n\", (int)buf[idx]);\n",
                idx(s - 1)
            );
            (bad, good, no_extra)
        }

        // ---- buffer underread ----
        Cwe::Cwe127 => {
            let decl = format!(
                "    char buf[{s}];\n    int j;\n    for (j = 0; j < {s}; j++) {{ buf[j] = 'A'; }}\n"
            );
            let idx = |n: i64| {
                if matches!(i % 8, 2 | 3 | 5 | 6) {
                    format!("atoi(\"{n}\")")
                } else {
                    format!("({n})")
                }
            };
            let bad = match i % 8 {
                0..=3 => format!(
                    "{decl}    int idx = {};\n    printf(\"v=%d\\n\", (int)buf[idx]);\n",
                    idx(-2 - (i as i64 % 3))
                ),
                4..=6 => format!(
                    "{decl}    int idx = {};\n    SINK += (int)buf[idx];\n    printf(\"done\\n\");\n",
                    idx(-1)
                ),
                _ => format!("{decl}    printf(\"v=%d\\n\", (int)buf[-48]);\n"),
            };
            let good = format!(
                "{decl}    int idx = {};\n    printf(\"v=%d\\n\", (int)buf[idx]);\n",
                idx(0)
            );
            (bad, good, no_extra)
        }

        // ---- double free ----
        Cwe::Cwe415 => {
            let bad = if i % 8 < 4 {
                format!(
                    // Observable: the corrupted allocator hands out shifted
                    // chunks afterwards; the fresh chunk's junk is
                    // implementation-specific.
                    "    char* p = (char*)malloc({s}L);\n    p[0] = 'A';\n    free(p);\n    free(p);\n    char* r1 = (char*)malloc({s}L);\n    char* r2 = (char*)malloc({s}L);\n    printf(\"v=%d\\n\", (int)r2[0]);\n    SINK = (int)r1[0];\n"
                )
            } else {
                format!(
                    "    char* p = (char*)malloc({s}L);\n    p[0] = 'A';\n    free(p);\n    free(p);\n    printf(\"done\\n\");\n"
                )
            };
            let good = format!(
                "    char* p = (char*)malloc({s}L);\n    p[0] = 'A';\n    free(p);\n    p = 0;\n    if (FLAG == 2) {{ free(p); SINK = 1; }}\n    printf(\"done\\n\");\n"
            );
            (bad, good, no_extra)
        }

        // ---- use after free ----
        Cwe::Cwe416 => {
            let bad = if matches!(i % 8, 4..=6) {
                format!(
                    // Write-after-free observed through the recycled chunk:
                    // every allocator recycles the same way here, so only
                    // ASan sees this one.
                    "    char* p = (char*)malloc({s}L);\n    p[0] = 'A';\n    free(p);\n    char* q = (char*)malloc({s}L);\n    q[0] = 'Q';\n    p[0] = 'X';\n    printf(\"q=%d\\n\", (int)q[0]);\n    free(q);\n"
                )
            } else {
                format!(
                    // Read of freed memory: the allocator wrote its
                    // implementation-specific free-list key there.
                    "    char* p = (char*)malloc({s}L);\n    int j;\n    for (j = 0; j < {s}; j++) {{ p[j] = 'A'; }}\n    free(p);\n    printf(\"v=%d\\n\", (int)p[9]);\n"
                )
            };
            let good = format!(
                "    char* p = (char*)malloc({s}L);\n    int j;\n    for (j = 0; j < {s}; j++) {{ p[j] = 'A'; }}\n    printf(\"v=%d\\n\", (int)p[{}]);\n    free(p);\n",
                s - 1
            );
            (bad, good, no_extra)
        }

        // ---- memset with swapped size/value (UB for input to API) ----
        Cwe::Cwe475 => {
            let bad = format!(
                "    char buf[{s}];\n    memset(buf, 'A', 0);\n    printf(\"v=%d\\n\", (int)buf[{}]);\n",
                s / 2
            );
            let good = format!(
                "    char buf[{s}];\n    memset(buf, 'A', {s}L);\n    printf(\"v=%d\\n\", (int)buf[{}]);\n",
                s / 2
            );
            (bad, good, no_extra)
        }

        // ---- access child of non-struct pointer ----
        Cwe::Cwe588 => {
            let near = i.is_multiple_of(2);
            let extra = if near {
                "struct pair { int a; int b; };\n".to_string()
            } else {
                "struct wide { int a; char pad[20]; int far; };\n".to_string()
            };
            let bad = if near {
                "    int x = 5;\n    struct pair* p = (struct pair*)&x;\n    printf(\"v=%d\\n\", p->b);\n"
                    .to_string()
            } else {
                "    int x = 5;\n    struct wide* p = (struct wide*)&x;\n    printf(\"v=%d\\n\", p->far);\n"
                    .to_string()
            };
            let good = if near {
                "    struct pair v;\n    v.a = 5;\n    v.b = 6;\n    struct pair* p = &v;\n    printf(\"v=%d\\n\", p->b);\n"
                    .to_string()
            } else {
                "    struct wide v;\n    v.a = 5;\n    v.far = 6;\n    struct wide* p = &v;\n    printf(\"v=%d\\n\", p->far);\n"
                    .to_string()
            };
            (bad, good, extra)
        }

        // ---- free of non-heap memory ----
        Cwe::Cwe590 => {
            let bad = match i % 8 {
                0..=2 => format!(
                    // Interior-pointer free: silent allocator corruption
                    // whose magnitude differs per implementation.
                    "    char* p = (char*)malloc({s}L);\n    p[0] = 'A';\n    free(p + 8);\n    char* q = (char*)malloc({s}L);\n    printf(\"v=%d\\n\", (int)q[0]);\n    free(p);\n"
                ),
                3..=5 => "    int x = 3;\n    int* p = &x;\n    free(p);\n    printf(\"done\\n\");\n"
                    .to_string(),
                _ => format!(
                    "    char buf[{s}];\n    buf[0] = 'A';\n    free(buf);\n    printf(\"done\\n\");\n"
                ),
            };
            let good = format!(
                "    char* p = (char*)malloc({s}L);\n    p[0] = 'A';\n    free(p);\n    printf(\"done\\n\");\n"
            );
            (bad, good, no_extra)
        }

        // ---- printf with missing variadic arguments ----
        Cwe::Cwe685 => {
            let bad = "    int v = 7;\n    printf(\"%d %d\\n\", v);\n".to_string();
            let good = "    int v = 7;\n    printf(\"%d %d\\n\", v, v + 1);\n".to_string();
            (bad, good, no_extra)
        }

        // ---- miscellaneous UB ----
        Cwe::Cwe758 => {
            let extra_ret = "int fallsoff(int t) { if (t == 4) { return 1; } }\n".to_string();
            let extra_eval = "int ctr;\nint bump() { ctr = ctr + 1; return ctr; }\nint pair2(int a, int b) { return a * 100 + b; }\n".to_string();
            match i % 4 {
                0 => {
                    // Constant oversized shift: -O0 masks like x86, the
                    // optimizer folds to 0 — divergence; sanitizer builds
                    // fold it too, so UBSan misses.
                    let sh = 33 + (i % 20);
                    let bad = format!("    int v = 1 << {sh};\n    printf(\"v=%d\\n\", v);\n");
                    let good = format!(
                        "    int v = 1 << {};\n    printf(\"v=%d\\n\", v);\n",
                        sh % 31
                    );
                    (bad, good, no_extra)
                }
                1 => {
                    // Runtime oversized shift: survives everywhere, all
                    // implementations mask identically — UBSan-only.
                    let bad = format!(
                        "    int sh = atoi(\"{}\");\n    int v = 1 << sh;\n    printf(\"v=%d\\n\", v);\n",
                        40 + (i % 8)
                    );
                    let good = format!(
                        "    int sh = atoi(\"{}\");\n    int v = 1 << sh;\n    printf(\"v=%d\\n\", v);\n",
                        (i % 8) + 3
                    );
                    (bad, good, no_extra)
                }
                2 => {
                    // Falling off the end of a value-returning function.
                    let bad = "    printf(\"v=%d\\n\", fallsoff(3));\n".to_string();
                    let good = "    printf(\"v=%d\\n\", fallsoff(4));\n".to_string();
                    (bad, good, extra_ret)
                }
                _ => {
                    // Unsequenced side effects across call arguments.
                    let bad = "    ctr = 0;\n    printf(\"v=%d\\n\", pair2(bump(), bump()));\n"
                        .to_string();
                    let good = "    ctr = 0;\n    int a = bump();\n    int b = bump();\n    printf(\"v=%d\\n\", pair2(a, b));\n"
                        .to_string();
                    (bad, good, extra_eval)
                }
            }
        }

        // ---- integer overflow ----
        Cwe::Cwe190 => match i % 8 {
            0 | 1 => {
                // Signed addition overflow, value printed: wraps the same
                // everywhere (UBSan's catch, CompDiff's documented miss).
                let k = 1 + (i % 90);
                let bad = format!(
                    "    int big = atoi(\"2147483600\");\n    int r = big + {k} + 100;\n    printf(\"r=%d\\n\", r);\n"
                );
                let good = format!(
                    "    int big = atoi(\"2147483600\");\n    long r = (long)big + {k};\n    if (r > 2147483647L) {{ r = 2147483647L; }}\n    printf(\"r=%ld\\n\", r);\n"
                );
                (bad, good, no_extra)
            }
            2 => {
                // (long)(a*b): the widening divergence (clang-sim -O1+).
                let bad = "    int a = atoi(\"100000\");\n    int b = atoi(\"100001\");\n    long x = (long)(a * b);\n    printf(\"x=%ld\\n\", x);\n"
                    .to_string();
                let good = "    int a = atoi(\"100000\");\n    int b = atoi(\"100001\");\n    long x = (long)a * (long)b;\n    printf(\"x=%ld\\n\", x);\n"
                    .to_string();
                (bad, good, no_extra)
            }
            3..=5 => {
                // Lossy truncation: implementation-defined, not UB — a
                // wrong-but-stable result that neither tool reports.
                let bad = "    long big = atoi(\"70000\") * 100000L;\n    int t = (int)big;\n    printf(\"t=%d\\n\", t);\n"
                    .to_string();
                let good =
                    "    long big = atoi(\"70000\") * 100000L;\n    printf(\"t=%ld\\n\", big);\n"
                        .to_string();
                (bad, good, no_extra)
            }
            _ => {
                // Unsigned wraparound: defined, wrong, stable.
                let bad = "    unsigned u = (unsigned)atoi(\"2000000000\");\n    unsigned r = u + u;\n    printf(\"r=%u\\n\", r);\n"
                    .to_string();
                let good = "    unsigned u = (unsigned)atoi(\"2000000000\");\n    long r = (long)u + (long)u;\n    printf(\"r=%ld\\n\", r);\n"
                    .to_string();
                (bad, good, no_extra)
            }
        },

        // ---- integer underflow ----
        Cwe::Cwe191 => match i % 8 {
            0 | 1 => {
                let k = 1 + (i % 90);
                let bad = format!(
                    "    int small = atoi(\"-2147483600\");\n    int r = small - {k} - 100;\n    printf(\"r=%d\\n\", r);\n"
                );
                let good = format!(
                    "    int small = atoi(\"-2147483600\");\n    long r = (long)small - {k};\n    printf(\"r=%ld\\n\", r);\n"
                );
                (bad, good, no_extra)
            }
            2 => {
                let bad = "    int a = atoi(\"-100000\");\n    int b = atoi(\"100001\");\n    long x = (long)(a * b);\n    printf(\"x=%ld\\n\", x);\n"
                    .to_string();
                let good = "    int a = atoi(\"-100000\");\n    int b = atoi(\"100001\");\n    long x = (long)a * (long)b;\n    printf(\"x=%ld\\n\", x);\n"
                    .to_string();
                (bad, good, no_extra)
            }
            _ => {
                let bad = "    unsigned u = (unsigned)atoi(\"3\");\n    unsigned r = u - 10u;\n    printf(\"r=%u\\n\", r);\n"
                    .to_string();
                let good = "    unsigned u = (unsigned)atoi(\"3\");\n    long r = (long)u - 10L;\n    printf(\"r=%ld\\n\", r);\n"
                    .to_string();
                (bad, good, no_extra)
            }
        },

        // ---- divide by zero ----
        Cwe::Cwe369 => match i % 4 {
            0 => {
                // Result observed: every implementation traps identically.
                let bad =
                    "    int z = atoi(\"0\");\n    SINK = 100 / z;\n    printf(\"done\\n\");\n"
                        .to_string();
                let good = "    int z = atoi(\"0\");\n    if (z != 0) { SINK = 100 / z; }\n    printf(\"done\\n\");\n"
                    .to_string();
                (bad, good, no_extra)
            }
            1 => {
                // Result dead: -O0 traps, -O2 deletes the division.
                let bad =
                    "    int z = atoi(\"0\");\n    int dead = 100 / z;\n    printf(\"done\\n\");\n"
                        .to_string();
                let good = "    int z = atoi(\"0\");\n    int dead = 100 / (z + 1);\n    SINK = dead;\n    printf(\"done\\n\");\n"
                    .to_string();
                (bad, good, no_extra)
            }
            _ => {
                // Float division: Inf/NaN, identical everywhere and not a
                // default UBSan check.
                let bad = "    double z = (double)atoi(\"0\");\n    double r = 5.0 / z;\n    printf(\"r=%f\\n\", r);\n"
                    .to_string();
                let good = "    double z = (double)atoi(\"2\");\n    double r = 5.0 / z;\n    printf(\"r=%f\\n\", r);\n"
                    .to_string();
                (bad, good, no_extra)
            }
        },

        // ---- null pointer dereference ----
        Cwe::Cwe476 => match i % 8 {
            7 => {
                // Observed deref: traps identically everywhere.
                let bad = "    int* p = (int*)(long)atoi(\"0\");\n    SINK = *p;\n    printf(\"done\\n\");\n"
                    .to_string();
                let good =
                    "    int v = 3;\n    int* p = &v;\n    SINK = *p;\n    printf(\"done\\n\");\n"
                        .to_string();
                (bad, good, no_extra)
            }
            _ => {
                // Dead deref: -O0 crashes, the optimizer deletes the load.
                let bad = "    int* p = (int*)(long)atoi(\"0\");\n    int dead = *p;\n    printf(\"done\\n\");\n"
                    .to_string();
                let good = "    int v = 3;\n    int* p = &v;\n    int dead = *p;\n    SINK = dead;\n    printf(\"done\\n\");\n"
                    .to_string();
                (bad, good, no_extra)
            }
        },

        // ---- integer overflow to buffer overflow ----
        Cwe::Cwe680 => match i % 2 {
            0 => {
                // 65536 * 65536 wraps to 0 in 32-bit; the widening
                // implementations allocate 4 GiB (-> NULL) instead.
                let bad = "    int cnt = atoi(\"65536\");\n    long bytes = (long)(cnt * cnt);\n    char* p = (char*)malloc(bytes + 1L);\n    p[0] = 'A';\n    printf(\"v=%d\\n\", (int)p[0]);\n    free(p);\n"
                    .to_string();
                let good = "    int cnt = atoi(\"65536\");\n    long bytes = (long)cnt * 4L;\n    char* p = (char*)malloc(bytes);\n    p[0] = 'A';\n    printf(\"v=%d\\n\", (int)p[0]);\n    free(p);\n"
                    .to_string();
                (bad, good, no_extra)
            }
            _ => {
                // Wrapped size makes the buffer tiny; the write lands far
                // beyond it.
                let bad = "    int cnt = atoi(\"1073741828\");\n    int bytes = cnt * 4;\n    char* p = (char*)malloc((long)bytes);\n    p[12] = 'A';\n    printf(\"v=%d\\n\", (int)p[12]);\n    free(p);\n"
                    .to_string();
                let good = "    long cnt = (long)atoi(\"16\");\n    char* p = (char*)malloc(cnt * 4L);\n    p[12] = 'A';\n    printf(\"v=%d\\n\", (int)p[12]);\n    free(p);\n"
                    .to_string();
                (bad, good, no_extra)
            }
        },

        // ---- use of uninitialized variable ----
        Cwe::Cwe457 => match i % 8 {
            6 => {
                // Branch on the uninitialized value: MSan's detection point.
                let bad = "    int u;\n    if (u == 77) { printf(\"hit\\n\"); }\n    printf(\"done\\n\");\n"
                    .to_string();
                let good = "    int u = 77;\n    if (u == 77) { printf(\"hit\\n\"); }\n    printf(\"done\\n\");\n"
                    .to_string();
                (bad, good, no_extra)
            }
            7 => {
                // Uninitialized heap read, printed.
                let bad = format!(
                    "    int* p = (int*)malloc({s}L);\n    printf(\"v=%d\\n\", p[1]);\n    free(p);\n"
                );
                let good = format!(
                    "    int* p = (int*)malloc({s}L);\n    p[1] = 9;\n    printf(\"v=%d\\n\", p[1]);\n    free(p);\n"
                );
                (bad, good, no_extra)
            }
            _ => {
                // The common shape: print an uninitialized local (MSan's
                // deliberate blind spot, CompDiff's strength).
                let bad =
                    "    int u;\n    int v = u * 2 + 1;\n    printf(\"v=%d\\n\", v);\n".to_string();
                // Some good variants initialize inside a single-iteration
                // loop: clean dynamically, but a may-uninit trap for eager
                // static analyzers (a deliberate false-positive source);
                // the rest initialize directly.
                let good = if i % 8 < 2 {
                    "    int u;\n    int k1;\n    for (k1 = 0; k1 < 1; k1++) { u = 4; }\n    int v = u * 2 + 1;\n    printf(\"v=%d\\n\", v);\n"
                        .to_string()
                } else {
                    "    int u = 4;\n    int v = u * 2 + 1;\n    printf(\"v=%d\\n\", v);\n"
                        .to_string()
                };
                (bad, good, no_extra)
            }
        },

        // ---- improper initialization ----
        Cwe::Cwe665 => match i % 2 {
            0 => {
                // strncpy that fills the buffer without a terminator, then
                // strlen walks into the junk beyond it.
                let bad = format!(
                    "    char buf[{s}];\n    char big[{}];\n    memset(big, 'B', {}L);\n    big[{}] = '\\0';\n    strncpy(buf, big, {s}L);\n    printf(\"n=%d\\n\", (int)strlen(buf));\n",
                    s * 2,
                    s * 2 - 1,
                    s * 2 - 1
                );
                // Good: leave room for the terminator and write it.
                let good = format!(
                    "    char buf[{s}];\n    char big[{}];\n    memset(big, 'B', {}L);\n    big[{}] = '\\0';\n    strncpy(buf, big, {}L);\n    buf[{}] = '\\0';\n    printf(\"n=%d\\n\", (int)strlen(buf));\n",
                    s * 2,
                    s - 2,
                    s - 2,
                    s - 1,
                    s - 1
                );
                (bad, good, no_extra)
            }
            _ => {
                // Partial memset: the tail stays uninitialized.
                let bad = format!(
                    "    char buf[{s}];\n    memset(buf, 'A', {}L);\n    printf(\"v=%d\\n\", (int)buf[{}]);\n",
                    s / 2,
                    s - 1
                );
                let good = format!(
                    "    char buf[{s}];\n    memset(buf, 'A', {s}L);\n    printf(\"v=%d\\n\", (int)buf[{}]);\n",
                    s - 1
                );
                (bad, good, no_extra)
            }
        },

        // ---- pointer subtraction across objects ----
        Cwe::Cwe469 => {
            let bad = format!(
                "    int a[{s}];\n    int b[{s}];\n    a[0] = 1;\n    b[0] = 2;\n    long d = &b[0] - &a[0];\n    printf(\"d=%ld\\n\", d);\n"
            );
            let good = format!(
                "    int a[{s}];\n    a[0] = 1;\n    a[{}] = 2;\n    long d = &a[{}] - &a[0];\n    printf(\"d=%ld\\n\", d);\n",
                s - 1,
                s - 1
            );
            (bad, good, no_extra)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cwes_generate_compilable_variants() {
        for cwe in Cwe::ALL {
            for i in 0..8 {
                let t = generate(cwe, i);
                minc::check(&t.bad)
                    .unwrap_or_else(|e| panic!("{} bad does not compile: {e}\n{}", t.id, t.bad));
                minc::check(&t.good)
                    .unwrap_or_else(|e| panic!("{} good does not compile: {e}\n{}", t.id, t.good));
            }
        }
    }

    #[test]
    fn flow_shapes_rotate() {
        let a = generate(Cwe::Cwe121, 0);
        let b = generate(Cwe::Cwe121, 1);
        let c = generate(Cwe::Cwe121, 2);
        let d = generate(Cwe::Cwe121, 3);
        assert!(!a.bad.contains("payload"));
        assert!(b.bad.contains("if (FLAG == 1)"));
        assert!(c.bad.contains("void payload()"));
        assert!(d.bad.contains("for (k0"));
    }

    #[test]
    fn ids_are_stable_and_unique() {
        let a = generate(Cwe::Cwe190, 3);
        let b = generate(Cwe::Cwe190, 3);
        assert_eq!(a.id, b.id);
        assert_eq!(a.bad, b.bad);
        let c = generate(Cwe::Cwe190, 4);
        assert_ne!(a.id, c.id);
    }
}
