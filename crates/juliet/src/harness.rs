//! The evaluation harness behind Tables 2 and 3 and Figure 1.
//!
//! For each test it runs: the three static analyzer analogs (bad + good
//! variants, for detection and false-positive rates), the IR-level
//! CompDiff lint (the fourth static column), the three sanitizer analogs
//! (bad + good), the sanitizer meta-oracle (the fifth column: per-tool
//! miss/false-alarm rates judged against the static UB ground-truth
//! map), and CompDiff over the ten compiler implementations (bad + good,
//! recording the per-implementation hash vector that Figure 1's subset
//! analysis consumes).

use crate::generators::generate;
use crate::model::{Cwe, Group, JulietTest};
use compdiff::{CompDiff, DiffConfig, HashVector, Json};
use minc_vm::{ExitStatus, SanitizerKind, VmConfig};
use staticheck::{Defect, Tool};

/// Builds the suite at a given scale (`1.0` = the paper's 18,142 tests;
/// every CWE keeps at least 8 tests so variant mixes stay represented).
pub fn suite(scale: f64) -> Vec<JulietTest> {
    let mut out = Vec::new();
    for cwe in Cwe::ALL {
        let n = ((cwe.paper_count() as f64 * scale).round() as usize).max(8);
        for i in 0..n {
            out.push(generate(cwe, i));
        }
    }
    out
}

/// Per-test evaluation outcome.
#[derive(Debug, Clone)]
pub struct TestEval {
    /// Test id.
    pub id: String,
    /// CWE.
    pub cwe: Cwe,
    /// Static tools: detected on bad? (coverity, cppcheck, infer)
    pub static_det: [bool; 3],
    /// Static tools: false alarm on good?
    pub static_fp: [bool; 3],
    /// CompDiff lint (staticheck-ir): detected on bad?
    pub lint_det: bool,
    /// CompDiff lint: false alarm on good?
    pub lint_fp: bool,
    /// Sanitizers: detected on bad? (asan, ubsan, msan)
    pub san_det: [bool; 3],
    /// Sanitizers: false alarm on good?
    pub san_fp: [bool; 3],
    /// Meta-oracle: sanitizer missed a group-relevant `must` UB site on
    /// the bad variant (judged against the static UB ground-truth map).
    pub san_miss: [bool; 3],
    /// Meta-oracle: sanitizer fired a statically refuted class on the
    /// good variant.
    pub san_fa: [bool; 3],
    /// CompDiff: divergence on bad?
    pub compdiff_det: bool,
    /// CompDiff: divergence on good (must stay false — Finding 5)?
    pub compdiff_fp: bool,
    /// Per-implementation output hashes on the bad variant (Figure 1).
    pub hashes: HashVector,
}

/// Defect classes that count as a detection for each Table 3 group
/// (prevents cross-crediting a tool for an unrelated incidental finding).
pub fn relevant_defects(group: Group) -> &'static [Defect] {
    match group {
        Group::MemoryError => &[
            Defect::OutOfBounds,
            Defect::UseAfterFree,
            Defect::DoubleFree,
            Defect::BadFree,
        ],
        Group::BadApiInput => &[Defect::BadApiUsage],
        Group::BadStructPointer => &[Defect::OutOfBounds],
        Group::BadFunctionCall => &[Defect::FormatMismatch],
        Group::UndefinedBehavior => &[Defect::BadShift, Defect::MissingReturn],
        Group::IntegerError => &[Defect::IntegerOverflow],
        Group::DivideByZero => &[Defect::DivByZero],
        Group::NullDeref => &[Defect::NullDeref],
        Group::UninitializedMemory => &[Defect::Uninitialized],
        Group::PointerSubtraction => &[Defect::PointerSubtraction],
    }
}

/// Evaluates one test with every tool.
pub fn evaluate(test: &JulietTest, vm: &VmConfig) -> TestEval {
    let group = test.cwe.group();
    let relevant = relevant_defects(group);

    // Static analysis (source only).
    let tools = [Tool::CoveritySim, Tool::CppcheckSim, Tool::InferSim];
    let mut static_det = [false; 3];
    let mut static_fp = [false; 3];
    let lint = staticheck_ir::UnstableLint::new();
    let mut lint_det = false;
    let mut lint_fp = false;
    if let Ok(checked) = minc::check(&test.bad) {
        for (t, out) in tools.iter().zip(static_det.iter_mut()) {
            *out = staticheck::run_tool(&checked, *t)
                .iter()
                .any(|f| relevant.contains(&f.defect));
        }
        lint_det = lint
            .run(&checked)
            .iter()
            .any(|f| relevant.contains(&f.finding.defect));
    }
    if let Ok(checked) = minc::check(&test.good) {
        for (t, out) in tools.iter().zip(static_fp.iter_mut()) {
            *out = staticheck::run_tool(&checked, *t)
                .iter()
                .any(|f| relevant.contains(&f.defect));
        }
        lint_fp = lint
            .run(&checked)
            .iter()
            .any(|f| relevant.contains(&f.finding.defect));
    }

    // Sanitizers (separate instrumented builds, like -fsanitize).
    let kinds = [
        SanitizerKind::Asan,
        SanitizerKind::Ubsan,
        SanitizerKind::Msan,
    ];
    let mut san_det = [false; 3];
    let mut san_fp = [false; 3];
    if let Ok(bin) = sanitizers::compile_sanitized(&test.bad) {
        for (k, out) in kinds.iter().zip(san_det.iter_mut()) {
            let r = sanitizers::run_sanitized(&bin, b"", vm, *k);
            *out = matches!(r.status, ExitStatus::Sanitizer(_));
        }
    }
    if let Ok(bin) = sanitizers::compile_sanitized(&test.good) {
        for (k, out) in kinds.iter().zip(san_fp.iter_mut()) {
            let r = sanitizers::run_sanitized(&bin, b"", vm, *k);
            *out = matches!(r.status, ExitStatus::Sanitizer(_));
        }
    }

    // Sanitizer meta-oracle: judge each sanitizer against the static UB
    // ground-truth map. The reference build (`gcc-O0` never deletes UB)
    // is the fairest "sanitizer as intended" target; misses are
    // restricted to group-relevant classes so a tool is not blamed for
    // an incidental site outside the row's defect family.
    let scfg = sancheck::SancheckConfig {
        impls: vec![minc_compile::CompilerImpl::parse("gcc-O0").expect("gcc-O0 is valid")],
        vm: vm.clone(),
        ..sancheck::SancheckConfig::default()
    };
    let relevant_classes: Vec<staticheck_ir::UbClass> = relevant
        .iter()
        .filter_map(|d| staticheck_ir::ubmap::class_of_defect(*d))
        .collect();
    let mut san_miss = [false; 3];
    let mut san_fa = [false; 3];
    if let Ok(rep) = sancheck::check_source(&test.bad, &scfg) {
        for (k, out) in kinds.iter().zip(san_miss.iter_mut()) {
            *out = rep
                .false_negatives
                .iter()
                .any(|f| f.kind == *k && relevant_classes.contains(&f.class));
        }
    }
    if let Ok(rep) = sancheck::check_source(&test.good, &scfg) {
        for (k, out) in kinds.iter().zip(san_fa.iter_mut()) {
            *out = rep.false_positives.iter().any(|f| f.kind == *k);
        }
    }

    // CompDiff over the default ten implementations.
    let cfg = DiffConfig {
        vm: vm.clone(),
        ..Default::default()
    };
    let (compdiff_det, hashes) = match CompDiff::from_source_default(&test.bad, cfg.clone()) {
        Ok(diff) => {
            let o = diff.run_input(b"");
            (o.divergent, o.hashes)
        }
        Err(_) => (false, vec![0; 10]),
    };
    let compdiff_fp = match CompDiff::from_source_default(&test.good, cfg) {
        Ok(diff) => diff.run_input(b"").divergent,
        Err(_) => false,
    };

    TestEval {
        id: test.id.clone(),
        cwe: test.cwe,
        static_det,
        static_fp,
        lint_det,
        lint_fp,
        san_det,
        san_fp,
        san_miss,
        san_fa,
        compdiff_det,
        compdiff_fp,
        hashes,
    }
}

/// One Table 3 row (percentages 0-100).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Which group.
    pub group: Group,
    /// Number of bad tests.
    pub tests: usize,
    /// Detection % per static tool (coverity, cppcheck, infer).
    pub static_det: [f64; 3],
    /// False-positive % per static tool.
    pub static_fp: [f64; 3],
    /// CompDiff lint detection %.
    pub lint_det: f64,
    /// CompDiff lint false-positive %.
    pub lint_fp: f64,
    /// Detection % per sanitizer (asan, ubsan, msan).
    pub san_det: [f64; 3],
    /// Detection % of the combined sanitizers.
    pub san_total: f64,
    /// Meta-oracle miss % per sanitizer: silent on a group-relevant
    /// `must` UB site of the bad variant.
    pub san_miss: [f64; 3],
    /// Meta-oracle false-alarm % per sanitizer: fired a statically
    /// refuted class on the good variant.
    pub san_fa: [f64; 3],
    /// CompDiff detection %.
    pub compdiff: f64,
    /// Bugs detected by CompDiff but by no sanitizer.
    pub unique: usize,
    /// CompDiff false positives on good variants (expected 0).
    pub compdiff_fp: usize,
}

/// The full Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Rows in paper order.
    pub rows: Vec<Table3Row>,
}

/// Aggregates per-test evaluations into Table 3.
pub fn table3(evals: &[TestEval]) -> Table3 {
    let pct = |n: usize, d: usize| {
        if d == 0 {
            0.0
        } else {
            100.0 * n as f64 / d as f64
        }
    };
    let rows = Group::ALL
        .iter()
        .map(|&group| {
            let in_group: Vec<&TestEval> =
                evals.iter().filter(|e| e.cwe.group() == group).collect();
            let n = in_group.len();
            let count = |f: &dyn Fn(&TestEval) -> bool| in_group.iter().filter(|e| f(e)).count();
            let static_det = [
                pct(count(&|e| e.static_det[0]), n),
                pct(count(&|e| e.static_det[1]), n),
                pct(count(&|e| e.static_det[2]), n),
            ];
            let static_fp = [
                pct(count(&|e| e.static_fp[0]), n),
                pct(count(&|e| e.static_fp[1]), n),
                pct(count(&|e| e.static_fp[2]), n),
            ];
            let lint_det = pct(count(&|e| e.lint_det), n);
            let lint_fp = pct(count(&|e| e.lint_fp), n);
            let san_det = [
                pct(count(&|e| e.san_det[0]), n),
                pct(count(&|e| e.san_det[1]), n),
                pct(count(&|e| e.san_det[2]), n),
            ];
            let san_total = pct(count(&|e| e.san_det.iter().any(|&d| d)), n);
            let san_miss = [
                pct(count(&|e| e.san_miss[0]), n),
                pct(count(&|e| e.san_miss[1]), n),
                pct(count(&|e| e.san_miss[2]), n),
            ];
            let san_fa = [
                pct(count(&|e| e.san_fa[0]), n),
                pct(count(&|e| e.san_fa[1]), n),
                pct(count(&|e| e.san_fa[2]), n),
            ];
            let compdiff = pct(count(&|e| e.compdiff_det), n);
            let unique = count(&|e| e.compdiff_det && !e.san_det.iter().any(|&d| d));
            let compdiff_fp = count(&|e| e.compdiff_fp);
            Table3Row {
                group,
                tests: n,
                static_det,
                static_fp,
                lint_det,
                lint_fp,
                san_det,
                san_total,
                san_miss,
                san_fa,
                compdiff,
                unique,
                compdiff_fp,
            }
        })
        .collect();
    Table3 { rows }
}

impl Table3 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<24} {:>6} | {:>9} {:>9} {:>9} {:>9} | {:>5} {:>5} {:>5} {:>6} | {:>9} {:>9} {:>9} | {:>8} {:>7} {:>6}\n",
            "Description",
            "#Tests",
            "Coverity",
            "Cppcheck",
            "Infer",
            "CD-lint",
            "ASan",
            "UBSan",
            "MSan",
            "SanTot",
            "ASanM(F)",
            "UBSanM(F)",
            "MSanM(F)",
            "CompDiff",
            "#Unique",
            "CD-FP"
        ));
        s.push_str(&"-".repeat(172));
        s.push('\n');
        for r in &self.rows {
            s.push_str(&format!(
                "{:<24} {:>6} | {:>4.0}%({:>2.0}) {:>4.0}%({:>2.0}) {:>4.0}%({:>2.0}) {:>4.0}%({:>2.0}) | {:>4.0}% {:>4.0}% {:>4.0}% {:>5.0}% | {:>4.0}%({:>2.0}) {:>4.0}%({:>2.0}) {:>4.0}%({:>2.0}) | {:>7.0}% {:>7} {:>6}\n",
                r.group.label(),
                r.tests,
                r.static_det[0],
                r.static_fp[0],
                r.static_det[1],
                r.static_fp[1],
                r.static_det[2],
                r.static_fp[2],
                r.lint_det,
                r.lint_fp,
                r.san_det[0],
                r.san_det[1],
                r.san_det[2],
                r.san_total,
                r.san_miss[0],
                r.san_fa[0],
                r.san_miss[1],
                r.san_fa[1],
                r.san_miss[2],
                r.san_fa[2],
                r.compdiff,
                r.unique,
                r.compdiff_fp
            ));
        }
        s
    }

    /// Total CompDiff-unique bug count (the paper's headline 1,409).
    pub fn total_unique(&self) -> usize {
        self.rows.iter().map(|r| r.unique).sum()
    }

    /// Machine-readable form (the `--json` flag of `exp_table3`).
    pub fn to_json(&self) -> Json {
        let floats = |xs: &[f64; 3]| Json::Array(xs.iter().map(|&f| Json::Float(f)).collect());
        Json::obj(vec![(
            "rows",
            Json::Array(
                self.rows
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("group", Json::Str(r.group.label().to_string())),
                            ("tests", Json::Int(r.tests as i64)),
                            ("static_det", floats(&r.static_det)),
                            ("static_fp", floats(&r.static_fp)),
                            ("lint_det", Json::Float(r.lint_det)),
                            ("lint_fp", Json::Float(r.lint_fp)),
                            ("san_det", floats(&r.san_det)),
                            ("san_total", Json::Float(r.san_total)),
                            ("san_miss", floats(&r.san_miss)),
                            ("san_fa", floats(&r.san_fa)),
                            ("compdiff", Json::Float(r.compdiff)),
                            ("unique", Json::Int(r.unique as i64)),
                            ("compdiff_fp", Json::Int(r.compdiff_fp as i64)),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

/// Renders Table 2 (the suite overview).
pub fn render_table2(scale: f64) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<10} {:<42} {:>8} {:>8}\n",
        "CWE-ID", "Description", "#Paper", "#Here"
    ));
    s.push_str(&"-".repeat(72));
    s.push('\n');
    let mut total_paper = 0;
    let mut total_here = 0;
    for cwe in Cwe::ALL {
        let here = ((cwe.paper_count() as f64 * scale).round() as usize).max(8);
        total_paper += cwe.paper_count();
        total_here += here;
        s.push_str(&format!(
            "{:<10} {:<42} {:>8} {:>8}\n",
            cwe.to_string(),
            cwe.description(),
            cwe.paper_count(),
            here
        ));
    }
    s.push_str(&"-".repeat(72));
    s.push('\n');
    s.push_str(&format!(
        "{:<10} {:<42} {:>8} {:>8}\n",
        "Total", "", total_paper, total_here
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_cwe(cwe: Cwe, i: usize) -> TestEval {
        evaluate(&generate(cwe, i), &VmConfig::default())
    }

    #[test]
    fn suite_scales() {
        let s = suite(0.001);
        // 20 CWEs x >= 8 tests.
        assert!(s.len() >= 160);
        let full: usize = Cwe::ALL.iter().map(|c| c.paper_count()).sum();
        assert_eq!(full, 18_142);
    }

    #[test]
    fn uninit_print_variant_shapes() {
        // Variant 0 of CWE-457: printed uninitialized local.
        let e = eval_cwe(Cwe::Cwe457, 0);
        assert!(e.compdiff_det, "CompDiff must catch printed uninit");
        assert!(!e.san_det[2], "MSan must miss the print-only case");
        assert!(!e.compdiff_fp, "no false positive on the good variant");
    }

    #[test]
    fn uninit_print_variant_is_lints() {
        // The IR lint's fourth column: the printed-uninit variant is a
        // promoted-slot junk read, caught by both lint channels.
        let e = eval_cwe(Cwe::Cwe457, 0);
        assert!(e.lint_det, "CompDiff lint must catch printed uninit");
        // Variant 0's good program initializes inside a single-iteration
        // loop — the generator's deliberate may-uninit trap. The lint is a
        // may-analysis, so it takes the bait just like coverity/infer.
        assert!(e.lint_fp, "loop-init good variant is a known FP trap");
        // Variant 2's good program initializes directly: no false alarm.
        let e2 = eval_cwe(Cwe::Cwe457, 2);
        assert!(e2.lint_det);
        assert!(!e2.lint_fp, "directly-initialized good variant is clean");
    }

    #[test]
    fn uninit_branch_variant_is_msans() {
        // Variant 6: branch on uninitialized value.
        let e = eval_cwe(Cwe::Cwe457, 6);
        assert!(e.san_det[2], "MSan catches branch-on-uninit");
    }

    #[test]
    fn memory_near_overflow_is_asans() {
        let e = eval_cwe(Cwe::Cwe121, 0);
        assert!(e.san_det[0], "ASan catches near overflow");
    }

    #[test]
    fn memory_far_overflow_is_compdiff_unique() {
        let e = eval_cwe(Cwe::Cwe121, 7);
        assert!(!e.san_det[0], "far overflow lands beyond the redzone");
        assert!(e.compdiff_det, "layout divergence catches it");
    }

    #[test]
    fn pointer_subtraction_only_compdiff() {
        let e = eval_cwe(Cwe::Cwe469, 0);
        assert!(e.compdiff_det);
        assert!(!e.san_det.iter().any(|&d| d));
        assert!(!e.static_det.iter().any(|&d| d));
        assert!(!e.compdiff_fp);
    }

    #[test]
    fn printf_arity_everybody_who_should() {
        let e = eval_cwe(Cwe::Cwe685, 1);
        assert!(e.compdiff_det, "junk vararg diverges");
        assert!(
            e.static_det[0] && e.static_det[1],
            "coverity+cppcheck check arity"
        );
        assert!(!e.static_det[2], "infer does not");
    }

    #[test]
    fn meta_oracle_column_flags_msan_print_only_miss() {
        // Variant 0 of CWE-457 prints the uninitialized local without
        // branching on it, so MSan stays silent — yet the static map has
        // a `must` uninit site on the unconditional path. The fifth
        // column charges that miss to MSan (and only MSan; the site is
        // outside ASan's and UBSan's scope).
        let e = eval_cwe(Cwe::Cwe457, 0);
        assert!(e.san_miss[2], "MSan print-only blind spot must be charged");
        assert!(!e.san_miss[0] && !e.san_miss[1], "{:?}", e.san_miss);
        assert!(
            !e.san_fa.iter().any(|&f| f),
            "clean good variant must not produce meta-oracle false alarms"
        );
        // The caught branch-on-uninit variant is not a miss.
        let e6 = eval_cwe(Cwe::Cwe457, 6);
        assert!(!e6.san_miss[2], "a firing sanitizer is never a miss");
        // The column lands in the rendered table and the JSON form.
        let t = table3(&[e]);
        assert!(t.render().contains("MSanM(F)"));
        let j = t.to_json().render();
        assert!(j.contains("san_miss") && j.contains("san_fa"));
    }

    #[test]
    fn table3_aggregation_math() {
        let evals = vec![eval_cwe(Cwe::Cwe469, 0), eval_cwe(Cwe::Cwe469, 1)];
        let t = table3(&evals);
        let row = t
            .rows
            .iter()
            .find(|r| r.group == Group::PointerSubtraction)
            .unwrap();
        assert_eq!(row.tests, 2);
        assert_eq!(row.compdiff, 100.0);
        assert_eq!(row.unique, 2);
        let rendered = t.render();
        assert!(rendered.contains("UB of pointer Sub."));
    }

    #[test]
    fn table2_renders_totals() {
        let s = render_table2(1.0);
        assert!(s.contains("18142"));
        assert!(s.contains("CWE-121"));
    }
}
