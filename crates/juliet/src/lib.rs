//! # juliet — a Juliet-style CWE benchmark for the CompDiff evaluation
//!
//! The paper evaluates CompDiff against sanitizers and static analyzers on
//! 18,142 tests from the NIST Juliet C/C++ suite, spanning the 20 CWEs of
//! its Table 2. This crate reproduces that benchmark's *structure* as a
//! deterministic generator: per-CWE test templates with bad/good variants,
//! four flow shapes, and a variant mix engineered to exercise the same
//! tool blind spots the paper reports (e.g. print-only uninitialized uses
//! for MSan, far overflows beyond redzones for ASan, wrap-identical
//! overflows for CompDiff).
//!
//! The [`harness`] runs every tool on every test and aggregates the
//! paper's Table 3, plus the per-bug hash vectors for Figure 1.
//!
//! ```
//! // A tiny slice of the suite end-to-end.
//! let tests = juliet::suite(0.0001);
//! assert!(tests.len() >= 160); // >= 8 tests per CWE even at tiny scale
//! ```

#![warn(missing_docs)]
pub mod generators;
pub mod harness;
pub mod model;

pub use generators::generate;
pub use harness::{evaluate, render_table2, suite, table3, Table3, Table3Row, TestEval};
pub use model::{Cwe, Group, JulietTest};
