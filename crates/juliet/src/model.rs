//! The benchmark model: CWEs, groups, and test cases.

use std::fmt;

/// The 20 CWE categories of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Cwe {
    Cwe121,
    Cwe122,
    Cwe124,
    Cwe126,
    Cwe127,
    Cwe415,
    Cwe416,
    Cwe475,
    Cwe588,
    Cwe590,
    Cwe685,
    Cwe758,
    Cwe190,
    Cwe191,
    Cwe369,
    Cwe476,
    Cwe680,
    Cwe457,
    Cwe665,
    Cwe469,
}

impl Cwe {
    /// All CWEs in Table 2 order.
    pub const ALL: [Cwe; 20] = [
        Cwe::Cwe121,
        Cwe::Cwe122,
        Cwe::Cwe124,
        Cwe::Cwe126,
        Cwe::Cwe127,
        Cwe::Cwe415,
        Cwe::Cwe416,
        Cwe::Cwe475,
        Cwe::Cwe588,
        Cwe::Cwe590,
        Cwe::Cwe685,
        Cwe::Cwe758,
        Cwe::Cwe190,
        Cwe::Cwe191,
        Cwe::Cwe369,
        Cwe::Cwe476,
        Cwe::Cwe680,
        Cwe::Cwe457,
        Cwe::Cwe665,
        Cwe::Cwe469,
    ];

    /// Numeric id.
    pub fn number(self) -> u32 {
        match self {
            Cwe::Cwe121 => 121,
            Cwe::Cwe122 => 122,
            Cwe::Cwe124 => 124,
            Cwe::Cwe126 => 126,
            Cwe::Cwe127 => 127,
            Cwe::Cwe415 => 415,
            Cwe::Cwe416 => 416,
            Cwe::Cwe475 => 475,
            Cwe::Cwe588 => 588,
            Cwe::Cwe590 => 590,
            Cwe::Cwe685 => 685,
            Cwe::Cwe758 => 758,
            Cwe::Cwe190 => 190,
            Cwe::Cwe191 => 191,
            Cwe::Cwe369 => 369,
            Cwe::Cwe476 => 476,
            Cwe::Cwe680 => 680,
            Cwe::Cwe457 => 457,
            Cwe::Cwe665 => 665,
            Cwe::Cwe469 => 469,
        }
    }

    /// Table 2 description.
    pub fn description(self) -> &'static str {
        match self {
            Cwe::Cwe121 => "Stack Based Buffer Overflow",
            Cwe::Cwe122 => "Heap Based Buffer Overflow",
            Cwe::Cwe124 => "Buffer Underwrite",
            Cwe::Cwe126 => "Buffer Overread",
            Cwe::Cwe127 => "Buffer Underread",
            Cwe::Cwe415 => "Double Free",
            Cwe::Cwe416 => "Use After Free",
            Cwe::Cwe475 => "Undefined Behavior for Input to API",
            Cwe::Cwe588 => "Access Child of Non Struct. Pointer",
            Cwe::Cwe590 => "Free Memory Not on Heap",
            Cwe::Cwe685 => "Function Call With Incorrect #Args.",
            Cwe::Cwe758 => "Undefined Behavior",
            Cwe::Cwe190 => "Integer Overflow",
            Cwe::Cwe191 => "Integer Underflow",
            Cwe::Cwe369 => "Divide by Zero",
            Cwe::Cwe476 => "NULL Pointer Dereference",
            Cwe::Cwe680 => "Integer Overflow to Buffer Overflow",
            Cwe::Cwe457 => "Use of Uninitialized Variable",
            Cwe::Cwe665 => "Improper Initialization",
            Cwe::Cwe469 => "Use of Pointer Sub. to Determine Size",
        }
    }

    /// Table 2 test counts (scale 1.0).
    pub fn paper_count(self) -> usize {
        match self {
            Cwe::Cwe121 => 2951,
            Cwe::Cwe122 => 3575,
            Cwe::Cwe124 => 1024,
            Cwe::Cwe126 => 721,
            Cwe::Cwe127 => 1022,
            Cwe::Cwe415 => 820,
            Cwe::Cwe416 => 394,
            Cwe::Cwe475 => 18,
            Cwe::Cwe588 => 80,
            Cwe::Cwe590 => 2280,
            Cwe::Cwe685 => 18,
            Cwe::Cwe758 => 523,
            Cwe::Cwe190 => 1564,
            Cwe::Cwe191 => 1169,
            Cwe::Cwe369 => 437,
            Cwe::Cwe476 => 306,
            Cwe::Cwe680 => 196,
            Cwe::Cwe457 => 928,
            Cwe::Cwe665 => 98,
            Cwe::Cwe469 => 18,
        }
    }

    /// The Table 3 row this CWE is merged into.
    pub fn group(self) -> Group {
        match self {
            Cwe::Cwe121
            | Cwe::Cwe122
            | Cwe::Cwe124
            | Cwe::Cwe126
            | Cwe::Cwe127
            | Cwe::Cwe415
            | Cwe::Cwe416
            | Cwe::Cwe590 => Group::MemoryError,
            Cwe::Cwe475 => Group::BadApiInput,
            Cwe::Cwe588 => Group::BadStructPointer,
            Cwe::Cwe685 => Group::BadFunctionCall,
            Cwe::Cwe758 => Group::UndefinedBehavior,
            Cwe::Cwe190 | Cwe::Cwe191 | Cwe::Cwe680 => Group::IntegerError,
            Cwe::Cwe369 => Group::DivideByZero,
            Cwe::Cwe476 => Group::NullDeref,
            Cwe::Cwe457 | Cwe::Cwe665 => Group::UninitializedMemory,
            Cwe::Cwe469 => Group::PointerSubtraction,
        }
    }
}

impl fmt::Display for Cwe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CWE-{}", self.number())
    }
}

/// The rows of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Group {
    /// CWE-121..127, 415, 416, 590.
    MemoryError,
    /// CWE-475.
    BadApiInput,
    /// CWE-588.
    BadStructPointer,
    /// CWE-685.
    BadFunctionCall,
    /// CWE-758.
    UndefinedBehavior,
    /// CWE-190, 191, 680.
    IntegerError,
    /// CWE-369.
    DivideByZero,
    /// CWE-476.
    NullDeref,
    /// CWE-457, 665.
    UninitializedMemory,
    /// CWE-469.
    PointerSubtraction,
}

impl Group {
    /// All rows in Table 3 order.
    pub const ALL: [Group; 10] = [
        Group::MemoryError,
        Group::BadApiInput,
        Group::BadStructPointer,
        Group::BadFunctionCall,
        Group::UndefinedBehavior,
        Group::IntegerError,
        Group::DivideByZero,
        Group::NullDeref,
        Group::UninitializedMemory,
        Group::PointerSubtraction,
    ];

    /// Table 3 row label.
    pub fn label(self) -> &'static str {
        match self {
            Group::MemoryError => "Memory error",
            Group::BadApiInput => "UB for input to API",
            Group::BadStructPointer => "Bad struct. pointer",
            Group::BadFunctionCall => "Bad function call",
            Group::UndefinedBehavior => "UB",
            Group::IntegerError => "Integer error",
            Group::DivideByZero => "Divide by zero",
            Group::NullDeref => "Null pointer deref.",
            Group::UninitializedMemory => "Uninitialized memory",
            Group::PointerSubtraction => "UB of pointer Sub.",
        }
    }

    /// Table 3 row CWE-id column text.
    pub fn cwe_ids(self) -> &'static str {
        match self {
            Group::MemoryError => "121~127, 415, 416, 590",
            Group::BadApiInput => "475",
            Group::BadStructPointer => "588",
            Group::BadFunctionCall => "685",
            Group::UndefinedBehavior => "758",
            Group::IntegerError => "190, 191, 680",
            Group::DivideByZero => "369",
            Group::NullDeref => "476",
            Group::UninitializedMemory => "457, 665",
            Group::PointerSubtraction => "469",
        }
    }
}

/// One benchmark test case: a `bad` variant containing exactly one flaw and
/// a `good` variant without it (Juliet's structure).
#[derive(Debug, Clone)]
pub struct JulietTest {
    /// Stable id, e.g. `CWE121_00017`.
    pub id: String,
    /// The CWE.
    pub cwe: Cwe,
    /// Flawed source.
    pub bad: String,
    /// Fixed source.
    pub good: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_sum_to_total() {
        let total: usize = Cwe::ALL.iter().map(|c| c.paper_count()).sum();
        assert_eq!(total, 18_142);
    }

    #[test]
    fn group_mapping_covers_all() {
        for c in Cwe::ALL {
            let _ = c.group(); // must not panic
        }
        assert_eq!(Cwe::Cwe590.group(), Group::MemoryError);
        assert_eq!(Cwe::Cwe680.group(), Group::IntegerError);
    }

    #[test]
    fn display_format() {
        assert_eq!(Cwe::Cwe121.to_string(), "CWE-121");
    }
}
