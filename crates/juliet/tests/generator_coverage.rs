//! Generator calibration guards: the per-variant tool behaviour the Table 3
//! shapes depend on, pinned as tests so refactoring the generators or the
//! substrate cannot silently drift the evaluation.

use compdiff::{CompDiff, DiffConfig};
use juliet::{generate, Cwe};
use minc_vm::{ExitStatus, SanitizerKind, VmConfig};

fn compdiff_detects(cwe: Cwe, i: usize) -> bool {
    let t = generate(cwe, i);
    CompDiff::from_source_default(&t.bad, DiffConfig::default())
        .unwrap_or_else(|e| panic!("{}: {e}", t.id))
        .is_divergent(b"")
}

fn good_is_stable(cwe: Cwe, i: usize) -> bool {
    let t = generate(cwe, i);
    !CompDiff::from_source_default(&t.good, DiffConfig::default())
        .unwrap_or_else(|e| panic!("{}: {e}", t.id))
        .is_divergent(b"")
}

fn sanitizer_detects(cwe: Cwe, i: usize, kind: SanitizerKind) -> bool {
    let t = generate(cwe, i);
    let bin = sanitizers::compile_sanitized(&t.bad).unwrap();
    matches!(
        sanitizers::run_sanitized(&bin, b"", &VmConfig::default(), kind).status,
        ExitStatus::Sanitizer(_)
    )
}

/// Categories where CompDiff must detect every variant (Table 3's 100% rows).
#[test]
fn always_detected_categories() {
    for cwe in [Cwe::Cwe469, Cwe::Cwe475, Cwe::Cwe685, Cwe::Cwe588] {
        for i in 0..8 {
            assert!(compdiff_detects(cwe, i), "{cwe} variant {i}");
        }
    }
}

/// Every good variant of every CWE is stable (Finding 5 at generator level).
#[test]
fn all_good_variants_stable() {
    for cwe in Cwe::ALL {
        for i in 0..16 {
            assert!(good_is_stable(cwe, i), "{cwe} good variant {i} diverges");
        }
    }
}

/// The ASan near/far split that produces Table 3's unique column.
#[test]
fn asan_near_far_split() {
    for cwe in [Cwe::Cwe121, Cwe::Cwe122, Cwe::Cwe126] {
        // Variants 0..=3 are near (redzone-visible).
        assert!(sanitizer_detects(cwe, 0, SanitizerKind::Asan), "{cwe} near");
        // Variant 7 is far (beyond the redzone).
        assert!(!sanitizer_detects(cwe, 7, SanitizerKind::Asan), "{cwe} far");
        assert!(
            compdiff_detects(cwe, 7),
            "{cwe} far must be CompDiff-unique"
        );
    }
}

/// UBSan catches exactly the UB-arithmetic variants of the integer rows.
#[test]
fn ubsan_integer_split() {
    // CWE-190 v0/v1: signed add overflow -> UBSan yes.
    assert!(sanitizer_detects(Cwe::Cwe190, 0, SanitizerKind::Ubsan));
    // v3..=5: lossy truncation, not UB -> UBSan no.
    assert!(!sanitizer_detects(Cwe::Cwe190, 3, SanitizerKind::Ubsan));
    // v6/v7: unsigned wrap, defined -> UBSan no.
    assert!(!sanitizer_detects(Cwe::Cwe190, 6, SanitizerKind::Ubsan));
}

/// Divide-by-zero: trap-everywhere variants are invisible to CompDiff;
/// dead-division variants are its catch.
#[test]
fn divzero_split() {
    assert!(
        !compdiff_detects(Cwe::Cwe369, 0),
        "observed div: same trap everywhere"
    );
    assert!(
        compdiff_detects(Cwe::Cwe369, 1),
        "dead div: -O0 traps, -O2 does not"
    );
    assert!(sanitizer_detects(Cwe::Cwe369, 0, SanitizerKind::Ubsan));
    assert!(sanitizer_detects(Cwe::Cwe369, 1, SanitizerKind::Ubsan));
    assert!(
        !sanitizer_detects(Cwe::Cwe369, 2, SanitizerKind::Ubsan),
        "float div"
    );
}

/// MSan policy: branch-use variants only.
#[test]
fn msan_use_point_policy() {
    assert!(
        !sanitizer_detects(Cwe::Cwe457, 0, SanitizerKind::Msan),
        "print-only"
    );
    assert!(
        sanitizer_detects(Cwe::Cwe457, 6, SanitizerKind::Msan),
        "branch-on-uninit"
    );
    // CompDiff catches the printed-junk variants...
    for i in [0, 1, 7] {
        assert!(
            compdiff_detects(Cwe::Cwe457, i),
            "CompDiff catches uninit variant {i}"
        );
    }
    // ...but misses the branch-only variant: `junk == 77` is false under
    // every implementation, so outputs agree — the paper's explanation for
    // CompDiff's 92% (not 100%) on this row, and MSan's niche.
    assert!(!compdiff_detects(Cwe::Cwe457, 6));
}

/// Double free: ASan catches all variants; CompDiff only the observable one.
#[test]
fn double_free_split() {
    assert!(sanitizer_detects(Cwe::Cwe415, 0, SanitizerKind::Asan));
    assert!(sanitizer_detects(Cwe::Cwe415, 4, SanitizerKind::Asan));
    assert!(compdiff_detects(Cwe::Cwe415, 0), "observable corruption");
    assert!(!compdiff_detects(Cwe::Cwe415, 4), "silent double free");
}
