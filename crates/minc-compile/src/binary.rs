//! The final compiled artifact: IR plus all resolved layout decisions.

use crate::ir::{FuncId, GlobalId, IrProgram, StrId};
use crate::layout::{place_frame, place_globals, place_strings, FrameLayout};
use crate::personality::{CompilerImpl, Personality};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic source of [`Binary::uid`] values, process-wide.
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// A "binary": everything the VM needs to execute the program exactly as
/// this compiler implementation built it. Two binaries of the same source
/// under different implementations agree on all defined behaviour and may
/// legally disagree wherever the source invokes UB.
#[derive(Debug, Clone)]
pub struct Binary {
    /// Which compiler implementation produced this binary.
    pub impl_id: CompilerImpl,
    /// The expanded personality (layout bases, junk seeds, runtime choices).
    pub personality: Personality,
    /// Optimized IR.
    pub program: IrProgram,
    /// Per-function frame layouts (indexed like `program.functions`).
    pub frames: Vec<FrameLayout>,
    /// Absolute address of each global.
    pub global_addrs: Vec<u64>,
    /// Absolute address of each rodata string.
    pub string_addrs: Vec<u64>,
    /// Process-unique identity token, assigned at [`Binary::link`] time.
    /// Clones share it (their contents are identical by construction), so
    /// downstream caches — e.g. the VM's block-translation cache — can use
    /// `uid` as an O(1) content-identity key. Never observable in program
    /// output.
    pub uid: u64,
}

impl Binary {
    /// Finalizes an optimized IR program into a binary.
    pub fn link(program: IrProgram, personality: Personality) -> Binary {
        let frames = program
            .functions
            .iter()
            .map(|f| place_frame(f, &personality))
            .collect();
        let global_addrs = place_globals(&program.globals, &personality);
        let string_addrs = place_strings(&program.strings, &personality);
        Binary {
            impl_id: personality.id,
            personality,
            program,
            frames,
            global_addrs,
            string_addrs,
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Address of a global.
    pub fn global_addr(&self, g: GlobalId) -> u64 {
        self.global_addrs[g.0 as usize]
    }

    /// Address of a rodata string.
    pub fn string_addr(&self, s: StrId) -> u64 {
        self.string_addrs[s.0 as usize]
    }

    /// `[start, end)` of the rodata segment.
    pub fn rodata_range(&self) -> (u64, u64) {
        let start = self.personality.rodata_base;
        let end = self
            .string_addrs
            .iter()
            .zip(&self.program.strings)
            .map(|(a, s)| a + s.len() as u64)
            .max()
            .unwrap_or(start);
        (start, crate::layout::round_up(end.max(start + 1), 4096))
    }

    /// `[start, end)` of the globals segment.
    pub fn globals_range(&self) -> (u64, u64) {
        let start = self.personality.globals_base;
        let end = self
            .global_addrs
            .iter()
            .zip(&self.program.globals)
            .map(|(a, g)| a + g.size.max(1))
            .max()
            .unwrap_or(start);
        (start, crate::layout::round_up(end.max(start + 1), 4096))
    }

    /// The entry function.
    pub fn entry(&self) -> FuncId {
        self.program.main
    }

    /// Total instruction count (a "binary size" proxy for `-Os` stats).
    pub fn size(&self) -> usize {
        self.program.inst_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;
    use crate::personality::{Family, OptLevel};

    #[test]
    fn link_assigns_disjoint_global_addresses() {
        let src = "int a; long b; char c[100];\nint main() { return 0; }";
        let bin = compile_source(src, CompilerImpl::new(Family::Gcc, OptLevel::O0)).unwrap();
        let mut spans: Vec<(u64, u64)> = bin
            .global_addrs
            .iter()
            .zip(&bin.program.globals)
            .map(|(&a, g)| (a, a + g.size.max(1)))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "globals overlap: {spans:?}");
        }
    }

    #[test]
    fn segments_do_not_overlap() {
        let src = "int g = 1;\nint main() { puts(\"hello\"); return g; }";
        for ci in CompilerImpl::default_set() {
            let bin = compile_source(src, ci).unwrap();
            let (rs, re) = bin.rodata_range();
            let (gs, ge) = bin.globals_range();
            assert!(re <= gs || ge <= rs, "{ci}: rodata and globals overlap");
        }
    }

    #[test]
    fn os_produces_smaller_or_equal_code_than_o3() {
        let src = r#"
            int helper(int x) { return x * 3 + 1; }
            int main() {
                int acc = 0;
                int i;
                for (i = 0; i < 9; i++) { acc += helper(i); }
                printf("%d", acc);
                return 0;
            }
        "#;
        let o3 = compile_source(src, CompilerImpl::new(Family::Gcc, OptLevel::O3)).unwrap();
        let os = compile_source(src, CompilerImpl::new(Family::Gcc, OptLevel::Os)).unwrap();
        assert!(
            os.size() <= o3.size(),
            "Os {} vs O3 {}",
            os.size(),
            o3.size()
        );
    }
}
