//! Human-readable IR listing — the `objdump -d` of this toolchain.
//!
//! Used for debugging optimization pipelines and for the golden tests that
//! pin down what each personality actually emits.

use crate::binary::Binary;
use crate::ir::*;
use std::fmt::Write;

/// Renders one instruction.
pub fn inst(i: &Inst) -> String {
    match i {
        Inst::Const { dst, ty, val } => format!("{dst} = const.{ty} {}", const_val(val)),
        Inst::Copy { dst, ty, src } => format!("{dst} = copy.{ty} {src}"),
        Inst::Bin {
            dst,
            ty,
            op,
            a,
            b,
            ub_signed,
        } => {
            let marker = if *ub_signed { " !ub" } else { "" };
            format!("{dst} = {op:?}.{ty} {a}, {b}{marker}")
        }
        Inst::Un {
            dst,
            ty,
            op,
            a,
            ub_signed,
        } => {
            let marker = if *ub_signed { " !ub" } else { "" };
            format!("{dst} = {op:?}.{ty} {a}{marker}")
        }
        Inst::Cast { dst, kind, a } => format!("{dst} = cast.{kind:?} {a}"),
        Inst::FrameAddr { dst, slot } => format!("{dst} = frame_addr {slot}"),
        Inst::Load {
            dst,
            ty,
            addr,
            width,
            sext,
        } => {
            let ext = if *sext { "s" } else { "z" };
            format!("{dst} = load.{ty}.w{}{ext} [{addr}]", width.bytes())
        }
        Inst::Store { addr, src, width } => {
            format!("store.w{} [{addr}] = {src}", width.bytes())
        }
        Inst::Call {
            dst, callee, args, ..
        } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            let callee = match callee {
                Callee::Func(f) => format!("fn#{}", f.0),
                Callee::Builtin(b) => format!("{b:?}").to_lowercase(),
                Callee::PowFast => "pow.fast".to_string(),
            };
            match dst {
                Some(d) => format!("{d} = call {callee}({})", args.join(", ")),
                None => format!("call {callee}({})", args.join(", ")),
            }
        }
    }
}

fn const_val(v: &ConstVal) -> String {
    match v {
        ConstVal::I32(x) => format!("{x}"),
        ConstVal::I64(x) => format!("{x}L"),
        ConstVal::F64(x) => format!("{x}f"),
        ConstVal::GlobalAddr(g, off) => format!("&global#{}+{off}", g.0),
        ConstVal::StrAddr(s, off) => format!("&str#{}+{off}", s.0),
        ConstVal::Junk(id) => format!("junk#{id}"),
    }
}

/// Renders one terminator.
pub fn terminator(t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jump {b}"),
        Terminator::Br { cond, then, els } => format!("br {cond} ? {then} : {els}"),
        Terminator::Ret(Some(v)) => format!("ret {v}"),
        Terminator::Ret(None) => "ret".to_string(),
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

/// Renders one function with its slots, blocks, and instructions.
pub fn function(f: &IrFunction) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fn {}({} params, {} regs):",
        f.name, f.param_count, f.reg_count
    );
    for (i, s) in f.slots.iter().enumerate() {
        let flags = match (s.addressed, s.promoted) {
            (_, true) => " [promoted]",
            (true, _) => " [addressed]",
            _ => "",
        };
        let _ = writeln!(
            out,
            "  slot s{i}: {} bytes, align {}, `{}`{flags}",
            s.size, s.align, s.name
        );
    }
    for b in f.reachable_blocks() {
        let block = &f.blocks[b.0 as usize];
        let _ = writeln!(out, "{b}:");
        for i in &block.insts {
            let _ = writeln!(out, "    {}", inst(i));
        }
        let _ = writeln!(out, "    {}", terminator(&block.term));
    }
    out
}

/// Renders a whole binary: data layout plus every function.
pub fn binary(bin: &Binary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; binary compiled by {}", bin.impl_id);
    let _ = writeln!(
        out,
        "; rodata {:?}  globals {:?}",
        bin.rodata_range(),
        bin.globals_range()
    );
    for (i, g) in bin.program.globals.iter().enumerate() {
        let _ = writeln!(
            out,
            "global#{i} `{}` @ 0x{:x} ({} bytes)",
            g.name, bin.global_addrs[i], g.size
        );
    }
    for (i, s) in bin.program.strings.iter().enumerate() {
        let _ = writeln!(
            out,
            "str#{i} @ 0x{:x} = {:?}",
            bin.string_addrs[i],
            String::from_utf8_lossy(&s[..s.len().saturating_sub(1)])
        );
    }
    for f in &bin.program.functions {
        out.push('\n');
        out.push_str(&function(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_source, CompilerImpl};

    fn listing(src: &str, impl_name: &str) -> String {
        let bin = compile_source(src, CompilerImpl::parse(impl_name).unwrap()).unwrap();
        binary(&bin)
    }

    #[test]
    fn listing_contains_all_sections() {
        let src = r#"
            int g = 7;
            int add(int a, int b) { return a + b; }
            int main() { printf("%d\n", add(g, 35)); return 0; }
        "#;
        let text = listing(src, "gcc-O0");
        assert!(text.contains("; binary compiled by gcc-O0"));
        assert!(text.contains("global#0 `g`"));
        assert!(text.contains("fn add"));
        assert!(text.contains("fn main"));
        assert!(text.contains("call printf") || text.contains("= call printf"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn ub_flag_is_visible() {
        let text = listing(
            "int main() { int a = (int)input_size(); return a + a; }",
            "gcc-O0",
        );
        assert!(
            text.contains("!ub"),
            "signed add must carry the UB marker:\n{text}"
        );
    }

    #[test]
    fn promoted_slots_are_marked_at_o2() {
        let src = "int main() { int x = 1; int y = 2; return x + y; }";
        let o0 = listing(src, "gcc-O0");
        let o2 = listing(src, "gcc-O2");
        assert!(!o0.contains("[promoted]"));
        assert!(o2.contains("[promoted]"));
    }

    #[test]
    fn optimization_shrinks_the_listing() {
        let src = r#"
            int main() {
                int a = 2 + 3;
                int b = a * 4;
                printf("%d\n", b);
                return 0;
            }
        "#;
        let o0 = listing(src, "clang-O0");
        let o2 = listing(src, "clang-O2");
        assert!(o2.lines().count() < o0.lines().count());
        // The fully folded constant must appear at -O2.
        assert!(o2.contains("const.i32 20"), "{o2}");
    }

    #[test]
    fn junk_constants_render_with_ids() {
        let text = listing("int main() { int u; return u; }", "gcc-O1");
        assert!(text.contains("junk#"), "{text}");
    }
}
