//! The intermediate representation.
//!
//! A function is a control-flow graph of basic blocks over *mutable* virtual
//! registers (not SSA): a register may be assigned more than once, which
//! keeps lowering of ternaries/logical operators simple and keeps every
//! pass local and easy to audit. Memory is explicit: locals that need
//! storage live in frame *slots* addressed via [`Inst::FrameAddr`]; the
//! `mem2reg` pass promotes unaddressed scalar slots to registers — exactly
//! the optimization-level difference that makes uninitialized variables
//! *unstable* across compiler implementations.

use minc::Builtin;
use std::fmt;

/// Scalar value types in the IR. Pointers are `I64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrType {
    /// 32-bit integer (signedness is a property of the operation).
    I32,
    /// 64-bit integer / pointer.
    I64,
    /// IEEE 754 double.
    F64,
}

impl fmt::Display for IrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrType::I32 => write!(f, "i32"),
            IrType::I64 => write!(f, "i64"),
            IrType::F64 => write!(f, "f64"),
        }
    }
}

/// A virtual register within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic block within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A frame slot (stack storage for one local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u32);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A function in the compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// A global variable (program lifetime), including promoted static locals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// A string literal in rodata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrId(pub u32);

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    W1,
    /// 4 bytes.
    W4,
    /// 8 bytes.
    W8,
}

impl MemWidth {
    /// The width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::W1 => 1,
            MemWidth::W4 => 4,
            MemWidth::W8 => 8,
        }
    }
}

/// Constant values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstVal {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// Double.
    F64(f64),
    /// Address of a global plus a byte offset (resolved by the loader).
    GlobalAddr(GlobalId, i64),
    /// Address of a rodata string plus a byte offset.
    StrAddr(StrId, i64),
    /// An *indeterminate* value: reading an uninitialized register-promoted
    /// local. The VM resolves it to a deterministic, implementation-specific
    /// junk value; the MSan analog treats it as poison.
    Junk(u32),
}

/// Binary operation kinds. Comparisons yield `i32` 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division (UB on divisor 0 and on `MIN / -1`).
    DivS,
    /// Unsigned division (UB on divisor 0).
    DivU,
    /// Signed remainder.
    RemS,
    /// Unsigned remainder.
    RemU,
    /// `<<`
    Shl,
    /// Arithmetic (sign-propagating) right shift.
    ShrS,
    /// Logical right shift.
    ShrU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
    /// Equality (`==`).
    Eq,
    /// Inequality (`!=`).
    Ne,
    /// Signed `<`.
    LtS,
    /// Signed `<=`.
    LeS,
    /// Signed `>`.
    GtS,
    /// Signed `>=`.
    GeS,
    /// Unsigned `<`.
    LtU,
    /// Unsigned `<=`.
    LeU,
    /// Unsigned `>`.
    GtU,
    /// Unsigned `>=`.
    GeU,
    /// Float `==`.
    FEq,
    /// Float `!=`.
    FNe,
    /// Float `<`.
    FLt,
    /// Float `<=`.
    FLe,
    /// Float `>`.
    FGt,
    /// Float `>=`.
    FGe,
}

impl BinKind {
    /// True for comparison operators (result is `i32` 0/1).
    pub fn is_comparison(self) -> bool {
        use BinKind::*;
        matches!(
            self,
            Eq | Ne
                | LtS
                | LeS
                | GtS
                | GeS
                | LtU
                | LeU
                | GtU
                | GeU
                | FEq
                | FNe
                | FLt
                | FLe
                | FGt
                | FGe
        )
    }

    /// True for float arithmetic/comparison.
    pub fn is_float(self) -> bool {
        use BinKind::*;
        matches!(
            self,
            FAdd | FSub | FMul | FDiv | FEq | FNe | FLt | FLe | FGt | FGe
        )
    }

    /// True for operators that can trap at runtime (division by zero).
    pub fn can_trap(self) -> bool {
        use BinKind::*;
        matches!(self, DivS | DivU | RemS | RemU)
    }
}

/// Unary operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnKind {
    /// Integer negation (UB on `MIN` when `ub_signed`).
    Neg,
    /// Bitwise not.
    BitNot,
    /// Float negation.
    FNeg,
}

/// Cast kinds between IR types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// i32 -> i64, sign extending.
    SextI32I64,
    /// i32 -> i64, zero extending (from unsigned).
    ZextI32I64,
    /// i64 -> i32, truncating.
    TruncI64I32,
    /// i32 (signed) -> f64.
    SI32F64,
    /// i32 (unsigned) -> f64.
    UI32F64,
    /// i64 (signed) -> f64.
    SI64F64,
    /// f64 -> i32 (toward zero; out-of-range is UB in C, we saturate-wrap).
    F64I32,
    /// f64 -> i64.
    F64I64,
}

/// What a call targets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A user function.
    Func(FuncId),
    /// A runtime builtin.
    Builtin(Builtin),
    /// `pow` lowered to the fast-but-imprecise form (clang-sim `-O3`).
    PowFast,
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // inline variant fields are described by the variant docs
pub enum Inst {
    /// `dst = const`.
    Const {
        dst: ValueId,
        ty: IrType,
        val: ConstVal,
    },
    /// `dst = src` (register copy).
    Copy {
        dst: ValueId,
        ty: IrType,
        src: ValueId,
    },
    /// `dst = a op b`. `ub_signed` marks operations whose signed overflow
    /// is UB (the optimizer may assume it never happens).
    Bin {
        dst: ValueId,
        ty: IrType,
        op: BinKind,
        a: ValueId,
        b: ValueId,
        ub_signed: bool,
    },
    /// `dst = op a`.
    Un {
        dst: ValueId,
        ty: IrType,
        op: UnKind,
        a: ValueId,
        ub_signed: bool,
    },
    /// `dst = cast(a)`.
    Cast {
        dst: ValueId,
        kind: CastKind,
        a: ValueId,
    },
    /// `dst = &slot` (address of a frame slot in the current activation).
    FrameAddr { dst: ValueId, slot: SlotId },
    /// `dst = *(addr)` with the given width; `sext` selects sign extension
    /// for sub-word loads.
    Load {
        dst: ValueId,
        ty: IrType,
        addr: ValueId,
        width: MemWidth,
        sext: bool,
    },
    /// `*(addr) = src`.
    Store {
        addr: ValueId,
        src: ValueId,
        width: MemWidth,
    },
    /// Function or builtin call. `arg_tys` lets variadic builtins interpret
    /// register values correctly.
    Call {
        /// The dst.
        dst: Option<ValueId>,
        /// The ret ty.
        ret_ty: IrType,
        /// The callee.
        callee: Callee,
        /// The args.
        args: Vec<ValueId>,
        /// The arg tys.
        arg_tys: Vec<IrType>,
    },
}

impl Inst {
    /// The destination register, if the instruction produces a value.
    pub fn dst(&self) -> Option<ValueId> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::FrameAddr { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } => None,
        }
    }

    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<ValueId> {
        match self {
            Inst::Const { .. } | Inst::FrameAddr { .. } => vec![],
            Inst::Copy { src, .. } => vec![*src],
            Inst::Bin { a, b, .. } => vec![*a, *b],
            Inst::Un { a, .. } => vec![*a],
            Inst::Cast { a, .. } => vec![*a],
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { addr, src, .. } => vec![*addr, *src],
            Inst::Call { args, .. } => args.clone(),
        }
    }

    /// True if removing the instruction (when its result is unused) changes
    /// observable behaviour *under the "UB never happens" assumption*.
    ///
    /// Loads and trapping arithmetic are removable under that assumption —
    /// which is precisely why `-O2` can "lose" a division-by-zero crash
    /// that `-O0` exhibits.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Call { .. })
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // inline variant fields are described by the variant docs
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on an `i32` register (non-zero = then).
    Br {
        cond: ValueId,
        then: BlockId,
        els: BlockId,
    },
    /// Return, with an optional value register.
    Ret(Option<ValueId>),
    /// Unreachable (e.g., after `abort()`); executing it traps.
    Unreachable,
}

impl Terminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Br { then, els, .. } => vec![*then, *els],
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in `Unreachable` (placeholder during lowering).
    pub fn new() -> Self {
        Block {
            insts: Vec::new(),
            term: Terminator::Unreachable,
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

/// Metadata about one frame slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotInfo {
    /// Source-level name (for diagnostics).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Required alignment.
    pub align: u64,
    /// True if the slot's address escapes (&x, arrays, structs) — such
    /// slots can never be promoted to registers.
    pub addressed: bool,
    /// For scalar slots: the IR type a promoted register would have.
    /// `None` for aggregates.
    pub scalar: Option<IrType>,
    /// Set by `mem2reg` when the slot was promoted to a register; promoted
    /// slots get no stack space (frames shrink at `-O1+`, as in real
    /// compilers — itself a source of layout divergence).
    pub promoted: bool,
}

/// A function body in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunction {
    /// Source name.
    pub name: String,
    /// Number of parameters; parameters arrive in registers `v0..vN`.
    pub param_count: u32,
    /// Types of the parameter registers.
    pub param_tys: Vec<IrType>,
    /// Return type, if non-void.
    pub ret_ty: Option<IrType>,
    /// Basic blocks; `BlockId(0)` is the entry.
    pub blocks: Vec<Block>,
    /// Frame slots.
    pub slots: Vec<SlotInfo>,
    /// Total number of virtual registers.
    pub reg_count: u32,
    /// Register types (index = `ValueId.0`).
    pub reg_tys: Vec<IrType>,
    /// 1-based source line each register was allocated for (index =
    /// `ValueId.0`; 0 = no source attribution). Stamped by the lowerer,
    /// carried through passes untouched — registers are never renumbered —
    /// so optimized IR stays mappable back to source lines. This is the
    /// span channel the rewrite-provenance log and the IR lint rely on.
    pub reg_lines: Vec<u32>,
}

impl IrFunction {
    /// Allocates a fresh register of type `ty` with no source attribution.
    pub fn new_reg(&mut self, ty: IrType) -> ValueId {
        self.new_reg_at(ty, 0)
    }

    /// Allocates a fresh register of type `ty` attributed to source `line`.
    pub fn new_reg_at(&mut self, ty: IrType, line: u32) -> ValueId {
        let id = ValueId(self.reg_count);
        self.reg_count += 1;
        self.reg_tys.push(ty);
        self.reg_lines.push(line);
        id
    }

    /// Source line for register `v` (0 if unattributed).
    pub fn line_of(&self, v: ValueId) -> u32 {
        self.reg_lines.get(v.0 as usize).copied().unwrap_or(0)
    }

    /// Allocates a fresh block, returning its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        id
    }

    /// Total instruction count (for inlining heuristics and stats).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Blocks reachable from entry, in DFS preorder.
    pub fn reachable_blocks(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.blocks.len()];
        let mut order = Vec::new();
        let mut stack = vec![BlockId(0)];
        while let Some(b) = stack.pop() {
            if seen[b.0 as usize] {
                continue;
            }
            seen[b.0 as usize] = true;
            order.push(b);
            for s in self.blocks[b.0 as usize].term.successors() {
                stack.push(s);
            }
        }
        order
    }
}

/// Initializer of a global.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-filled (BSS).
    Zero,
    /// A scalar constant written at offset 0 (loader resolves addresses).
    Scalar(ConstVal, MemWidth),
}

/// A global variable specification.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalSpec {
    /// Name (static locals are mangled `function.variable`).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Alignment.
    pub align: u64,
    /// Initializer.
    pub init: GlobalInit,
}

/// A whole program in IR form, before address layout.
#[derive(Debug, Clone, PartialEq)]
pub struct IrProgram {
    /// Functions; `FuncId` indexes this.
    pub functions: Vec<IrFunction>,
    /// Globals; `GlobalId` indexes this.
    pub globals: Vec<GlobalSpec>,
    /// String literals; `StrId` indexes this. Each is NUL-terminated.
    pub strings: Vec<Vec<u8>>,
    /// Index of `main`.
    pub main: FuncId,
}

impl IrProgram {
    /// Looks up a function id by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.inst_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_dst_and_uses() {
        let i = Inst::Bin {
            dst: ValueId(3),
            ty: IrType::I32,
            op: BinKind::Add,
            a: ValueId(1),
            b: ValueId(2),
            ub_signed: true,
        };
        assert_eq!(i.dst(), Some(ValueId(3)));
        assert_eq!(i.uses(), vec![ValueId(1), ValueId(2)]);
        assert!(!i.has_side_effects());

        let s = Inst::Store {
            addr: ValueId(0),
            src: ValueId(1),
            width: MemWidth::W4,
        };
        assert_eq!(s.dst(), None);
        assert!(s.has_side_effects());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(2)).successors(), vec![BlockId(2)]);
        assert_eq!(
            Terminator::Br {
                cond: ValueId(0),
                then: BlockId(1),
                els: BlockId(2)
            }
            .successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn reachable_blocks_skips_dead() {
        let mut f = IrFunction {
            name: "t".into(),
            param_count: 0,
            param_tys: vec![],
            ret_ty: None,
            blocks: vec![],
            slots: vec![],
            reg_count: 0,
            reg_tys: vec![],
            reg_lines: vec![],
        };
        let b0 = f.new_block();
        let b1 = f.new_block();
        let _dead = f.new_block();
        f.blocks[b0.0 as usize].term = Terminator::Jump(b1);
        f.blocks[b1.0 as usize].term = Terminator::Ret(None);
        let r = f.reachable_blocks();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&b0) && r.contains(&b1));
    }

    #[test]
    fn comparison_classification() {
        assert!(BinKind::LtS.is_comparison());
        assert!(!BinKind::Add.is_comparison());
        assert!(BinKind::FAdd.is_float());
        assert!(BinKind::DivS.can_trap());
        assert!(!BinKind::Mul.can_trap());
    }
}
