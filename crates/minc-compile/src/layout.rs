//! Data layout: struct field offsets (shared by all implementations) and
//! per-personality placement of globals, rodata, and frame slots.

use crate::ir::{GlobalSpec, IrFunction, SlotInfo};
use crate::personality::{Personality, SlotOrder};
use minc::types::{StructSizer, Type};
use minc::CheckedProgram;
use std::collections::HashMap;

/// Computed layout of one struct.
#[derive(Debug, Clone, PartialEq)]
pub struct StructLayout {
    /// Field byte offsets, parallel to the `StructDef`'s field list.
    pub offsets: Vec<u64>,
    /// Total padded size.
    pub size: u64,
    /// Alignment.
    pub align: u64,
}

/// Struct layouts for a checked program. MinC uses the conventional
/// natural-alignment algorithm, identical across implementations (like real
/// x86-64 gcc/clang, which share the SysV ABI); instability comes from
/// *where objects live*, not from field offsets.
#[derive(Debug, Clone, Default)]
pub struct StructLayouts {
    map: HashMap<String, StructLayout>,
}

impl StructLayouts {
    /// Computes layouts for every struct in `checked`.
    pub fn compute(checked: &CheckedProgram) -> StructLayouts {
        let mut layouts = StructLayouts {
            map: HashMap::new(),
        };
        // Structs may reference earlier structs; iterate until settled
        // (sema guarantees acyclicity, so one pass in definition order with
        // recursion would do — we just recurse on demand).
        for def in &checked.program.structs {
            layouts.layout_of(&def.name, checked);
        }
        layouts
    }

    fn layout_of(&mut self, name: &str, checked: &CheckedProgram) -> StructLayout {
        if let Some(l) = self.map.get(name) {
            return l.clone();
        }
        let def = checked.program.struct_def(name).expect("unknown struct");
        let mut offset = 0u64;
        let mut align = 1u64;
        let mut offsets = Vec::with_capacity(def.fields.len());
        for f in &def.fields {
            let (fsize, falign) = self.size_align(&f.ty, checked);
            offset = round_up(offset, falign);
            offsets.push(offset);
            offset += fsize;
            align = align.max(falign);
        }
        let size = round_up(offset.max(1), align);
        let l = StructLayout {
            offsets,
            size,
            align,
        };
        self.map.insert(name.to_string(), l.clone());
        l
    }

    /// `(size, align)` of any complete type under this layout.
    pub fn size_align(&mut self, ty: &Type, checked: &CheckedProgram) -> (u64, u64) {
        match ty {
            Type::Struct(name) => {
                let l = self.layout_of(name, checked);
                (l.size, l.align)
            }
            Type::Array(inner, n) => {
                let (s, a) = self.size_align(inner, checked);
                (s * n, a)
            }
            other => (
                other.size_packed(&NoStructsHere),
                other.align(&NoStructsHere),
            ),
        }
    }

    /// Size of a type (padded for structs).
    pub fn size_of(&mut self, ty: &Type, checked: &CheckedProgram) -> u64 {
        self.size_align(ty, checked).0
    }

    /// Byte offset of `field` within `struct name`.
    ///
    /// # Panics
    ///
    /// Panics if the struct or field does not exist (sema prevents this).
    pub fn field_offset(&mut self, name: &str, field: &str, checked: &CheckedProgram) -> u64 {
        let def = checked.program.struct_def(name).expect("unknown struct");
        let idx = def
            .fields
            .iter()
            .position(|f| f.name == field)
            .expect("unknown field");
        let l = self.layout_of(name, checked);
        l.offsets[idx]
    }
}

/// Scalar-only sizer (structs handled above).
struct NoStructsHere;
impl StructSizer for NoStructsHere {
    fn packed_size(&self, name: &str) -> u64 {
        panic!("struct `{name}` must go through StructLayouts");
    }
    fn align(&self, name: &str) -> u64 {
        panic!("struct `{name}` must go through StructLayouts");
    }
}

/// Rounds `v` up to a multiple of `align` (a power of two or any positive).
pub fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    v.div_ceil(align) * align
}

/// Address assignment for the globals segment under a personality.
///
/// Returns per-global absolute addresses. gcc-sim places globals in
/// declaration order; clang-sim sorts by descending alignment then name —
/// both are legal, and the difference is what makes cross-object
/// out-of-bounds reads and pointer comparisons *unstable*.
pub fn place_globals(globals: &[GlobalSpec], personality: &Personality) -> Vec<u64> {
    let mut order: Vec<usize> = (0..globals.len()).collect();
    if !personality.globals_declared_order {
        order.sort_by(|&a, &b| {
            globals[b]
                .align
                .cmp(&globals[a].align)
                .then_with(|| globals[a].name.cmp(&globals[b].name))
        });
    }
    let mut addrs = vec![0u64; globals.len()];
    let mut cursor = personality.globals_base;
    for idx in order {
        let g = &globals[idx];
        cursor = round_up(cursor, g.align.max(1));
        addrs[idx] = cursor;
        cursor += g.size.max(1);
    }
    addrs
}

/// Address assignment for rodata strings (NUL-terminated, 8-byte aligned to
/// keep addresses readable in diagnostics).
pub fn place_strings(strings: &[Vec<u8>], personality: &Personality) -> Vec<u64> {
    let mut addrs = Vec::with_capacity(strings.len());
    let mut cursor = personality.rodata_base;
    for s in strings {
        addrs.push(cursor);
        cursor = round_up(cursor + s.len() as u64, 8);
    }
    addrs
}

/// Frame layout of one function: per-slot offsets from the frame base
/// (frame base = old stack pointer; the frame occupies
/// `[base - frame_size, base)`, offsets are *downward* distances).
#[derive(Debug, Clone, PartialEq)]
pub struct FrameLayout {
    /// For each slot: distance of the slot's *first byte* below the frame
    /// base, i.e. the slot lives at `base - offset_down[i] .. + size`.
    pub offset_down: Vec<u64>,
    /// Total frame size in bytes (16-aligned).
    pub frame_size: u64,
}

/// Lays out a function's frame slots under a personality.
pub fn place_frame(func: &IrFunction, personality: &Personality) -> FrameLayout {
    let slots: &[SlotInfo] = &func.slots;
    let mut order: Vec<usize> = (0..slots.len()).collect();
    match personality.slot_order {
        SlotOrder::Declared => {}
        SlotOrder::Reversed => order.reverse(),
        SlotOrder::AlignDescending => {
            order.sort_by(|&a, &b| {
                slots[b]
                    .align
                    .cmp(&slots[a].align)
                    .then_with(|| slots[b].size.cmp(&slots[a].size))
                    .then_with(|| a.cmp(&b))
            });
        }
    }
    let mut offset_down = vec![0u64; slots.len()];
    // Start below the frame base by the padding amount so the topmost slot
    // also has a gap above it (ASan-style builds poison these gaps).
    let mut cursor = personality.slot_padding;
    for idx in order {
        let s = &slots[idx];
        if s.promoted {
            continue;
        }
        let size = s.size.max(1);
        cursor += size;
        cursor = round_up(cursor, s.align.max(1));
        offset_down[idx] = cursor;
        cursor += personality.slot_padding;
    }
    let frame_size = round_up(cursor.max(16), 16);
    FrameLayout {
        offset_down,
        frame_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GlobalInit;
    use crate::personality::{CompilerImpl, Family, OptLevel};

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(0, 8), 0);
        assert_eq!(round_up(1, 8), 8);
        assert_eq!(round_up(8, 8), 8);
        assert_eq!(round_up(9, 4), 12);
    }

    #[test]
    fn struct_layout_natural_alignment() {
        let checked = minc::check(
            "struct s { char c; int i; char d; long l; };\nint main() { struct s v; v.i = 1; return v.i; }",
        )
        .unwrap();
        let mut layouts = StructLayouts::compute(&checked);
        assert_eq!(layouts.field_offset("s", "c", &checked), 0);
        assert_eq!(layouts.field_offset("s", "i", &checked), 4);
        assert_eq!(layouts.field_offset("s", "d", &checked), 8);
        assert_eq!(layouts.field_offset("s", "l", &checked), 16);
        assert_eq!(layouts.size_of(&Type::Struct("s".into()), &checked), 24);
    }

    #[test]
    fn global_placement_differs_across_families() {
        let globals = vec![
            GlobalSpec {
                name: "a".into(),
                size: 1,
                align: 1,
                init: GlobalInit::Zero,
            },
            GlobalSpec {
                name: "b".into(),
                size: 8,
                align: 8,
                init: GlobalInit::Zero,
            },
        ];
        let g = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        let c = CompilerImpl::new(Family::Clang, OptLevel::O0).personality();
        let ga = place_globals(&globals, &g);
        let ca = place_globals(&globals, &c);
        // gcc: declaration order => a before b; clang: align-desc => b first.
        assert!(ga[0] < ga[1]);
        assert!(ca[1] < ca[0]);
    }

    #[test]
    fn string_placement_is_disjoint() {
        let strings = vec![b"hello\0".to_vec(), b"x\0".to_vec()];
        let p = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        let addrs = place_strings(&strings, &p);
        assert!(addrs[1] >= addrs[0] + 6);
    }

    #[test]
    fn frame_layout_covers_all_slots_disjointly() {
        let mut f = crate::ir::IrFunction {
            name: "t".into(),
            param_count: 0,
            param_tys: vec![],
            ret_ty: None,
            blocks: vec![],
            slots: vec![
                SlotInfo {
                    name: "a".into(),
                    size: 4,
                    align: 4,
                    addressed: true,
                    scalar: None,
                    promoted: false,
                },
                SlotInfo {
                    name: "b".into(),
                    size: 16,
                    align: 8,
                    addressed: true,
                    scalar: None,
                    promoted: false,
                },
                SlotInfo {
                    name: "c".into(),
                    size: 1,
                    align: 1,
                    addressed: true,
                    scalar: None,
                    promoted: false,
                },
            ],
            reg_count: 0,
            reg_tys: vec![],
            reg_lines: vec![],
        };
        f.new_block();
        for impl_ in CompilerImpl::default_set() {
            let p = impl_.personality();
            let l = place_frame(&f, &p);
            assert_eq!(l.frame_size % 16, 0);
            // Slot ranges [base-off, base-off+size) must not overlap.
            let mut ranges: Vec<(u64, u64)> = f
                .slots
                .iter()
                .zip(&l.offset_down)
                .map(|(s, &off)| (off, off - s.size.max(1) + s.size.max(1)))
                .map(|(off, _)| (off, off))
                .collect();
            // Simpler overlap check via sorted starts: slot i occupies
            // [frame_size - off .. frame_size - off + size) in a 0-based frame.
            let mut occ: Vec<(u64, u64)> = f
                .slots
                .iter()
                .zip(&l.offset_down)
                .map(|(s, &off)| {
                    let start = l.frame_size - off;
                    (start, start + s.size.max(1))
                })
                .collect();
            occ.sort_unstable();
            for w in occ.windows(2) {
                assert!(w[0].1 <= w[1].0, "slots overlap under {impl_}: {occ:?}");
            }
            ranges.clear();
        }
    }

    #[test]
    fn o0_padding_separates_slots() {
        let mut f = crate::ir::IrFunction {
            name: "t".into(),
            param_count: 0,
            param_tys: vec![],
            ret_ty: None,
            blocks: vec![],
            slots: vec![
                SlotInfo {
                    name: "a".into(),
                    size: 4,
                    align: 4,
                    addressed: true,
                    scalar: None,
                    promoted: false,
                },
                SlotInfo {
                    name: "b".into(),
                    size: 4,
                    align: 4,
                    addressed: true,
                    scalar: None,
                    promoted: false,
                },
            ],
            reg_count: 0,
            reg_tys: vec![],
            reg_lines: vec![],
        };
        f.new_block();
        let o0 = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        let o2 = CompilerImpl::new(Family::Gcc, OptLevel::O2).personality();
        let l0 = place_frame(&f, &o0);
        let l2 = place_frame(&f, &o2);
        let gap0 = l0.offset_down[1].abs_diff(l0.offset_down[0]);
        let gap2 = l2.offset_down[1].abs_diff(l2.offset_down[0]);
        assert!(gap0 > gap2, "O0 should pad more: {gap0} vs {gap2}");
    }
}
