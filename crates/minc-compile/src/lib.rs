//! # minc-compile — ten simulated compiler implementations for MinC
//!
//! The CompDiff paper (ASPLOS 2023) uses gcc 11.1.0 and clang 13.0.1 at
//! `-O0 -O1 -O2 -O3 -Os` as its ten "compiler implementations". This crate
//! reproduces that setup in simulation: one frontend ([`minc`]), one IR,
//! and ten [`CompilerImpl`]s whose *legal* differences — argument
//! evaluation order, stack/global/heap layout, junk in uninitialized
//! storage, UB-assuming optimizations, `__LINE__` attribution, `pow`
//! lowering — make binaries of UB-containing programs observably diverge.
//!
//! ## Quick start
//!
//! ```
//! use minc_compile::{compile_source, CompilerImpl};
//!
//! # fn main() -> Result<(), minc::FrontendError> {
//! let src = "int main() { printf(\"%d\\n\", 6 * 7); return 0; }";
//! let gcc_o0 = compile_source(src, CompilerImpl::parse("gcc-O0").unwrap())?;
//! let clang_o2 = compile_source(src, CompilerImpl::parse("clang-O2").unwrap())?;
//! assert_ne!(gcc_o0.personality.stack_base, clang_o2.personality.stack_base);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
pub mod binary;
pub mod display;
pub mod ir;
pub mod layout;
pub mod lower;
pub mod passes;
pub mod personality;
pub mod rewrite_log;

pub use binary::Binary;
pub use ir::IrProgram;
pub use personality::{CompilerImpl, Family, OptLevel, PassKind, Personality};
pub use rewrite_log::{RewriteEntry, RewriteLog, UbReason};

use minc::{CheckedProgram, FrontendError};

/// Compiles a checked program with one compiler implementation.
pub fn compile(checked: &CheckedProgram, impl_id: CompilerImpl) -> Binary {
    compile_with_personality(checked, impl_id.personality())
}

/// Compiles with an explicit (possibly customized) personality — used by
/// sanitizer builds, which force extra frame padding for stack redzones.
pub fn compile_with_personality(checked: &CheckedProgram, personality: Personality) -> Binary {
    let mut ir = lower::lower(checked, &personality);
    passes::run_pipeline(&mut ir, &personality);
    Binary::link(ir, personality)
}

/// Runs one implementation's optimization pipeline over `checked` and
/// returns the optimized IR together with the rewrite-provenance log —
/// every UB-justified rewrite the pipeline performed, mapped back to
/// source lines. This is the static-oracle entry point used by the
/// `staticheck-ir` lint; no binary is linked.
pub fn optimize_logged(checked: &CheckedProgram, impl_id: CompilerImpl) -> (IrProgram, RewriteLog) {
    let personality = impl_id.personality();
    let mut ir = lower::lower(checked, &personality);
    let mut log = RewriteLog::new();
    passes::run_pipeline_logged(&mut ir, &personality, Some(&mut log));
    (ir, log)
}

/// Parses, checks, and compiles source with one compiler implementation.
///
/// # Errors
///
/// Returns the frontend error if the source does not parse or check.
pub fn compile_source(src: &str, impl_id: CompilerImpl) -> Result<Binary, FrontendError> {
    let checked = minc::check(src)?;
    Ok(compile(&checked, impl_id))
}

/// Compiles source with every implementation in `impls`.
///
/// # Errors
///
/// Returns the frontend error if the source does not parse or check
/// (checking happens once; compilation itself is infallible).
pub fn compile_many(src: &str, impls: &[CompilerImpl]) -> Result<Vec<Binary>, FrontendError> {
    let checked = minc::check(src)?;
    Ok(impls.iter().map(|&i| compile(&checked, i)).collect())
}

/// Compiles source with the paper's default ten implementations.
///
/// # Errors
///
/// Returns the frontend error if the source does not parse or check.
pub fn compile_default_set(src: &str) -> Result<Vec<Binary>, FrontendError> {
    compile_many(src, &CompilerImpl::default_set())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_with_all_ten_impls() {
        let src = r#"
            int add(int a, int b) { return a + b; }
            int main() {
                int x = add(20, 22);
                printf("%d\n", x);
                return 0;
            }
        "#;
        let bins = compile_default_set(src).unwrap();
        assert_eq!(bins.len(), 10);
        // O0 binaries are bigger (no DCE) than O2 of the same family.
        let by_name = |n: &str| bins.iter().find(|b| b.impl_id.to_string() == n).unwrap();
        assert!(by_name("gcc-O0").size() >= by_name("gcc-O2").size());
    }

    #[test]
    fn frontend_errors_propagate() {
        assert!(compile_source("int main( { }", CompilerImpl::parse("gcc-O0").unwrap()).is_err());
        assert!(compile_default_set("int f() { return 0; }").is_err()); // no main
    }
}
