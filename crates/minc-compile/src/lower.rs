//! AST → IR lowering, parameterized by a compiler [`Personality`].
//!
//! Lowering is where several implementation-defined choices are *baked into
//! the binary*: call-argument evaluation order, `__LINE__` attribution, and
//! (indirectly, through slot creation order consumed by the layout engine)
//! stack object placement. At `-O0` every local lives in a frame slot; the
//! `mem2reg` pass later promotes unaddressed scalars to registers.

use crate::ir::*;
use crate::layout::StructLayouts;
use crate::personality::{EvalOrder, LinePolicy, Personality};
use minc::ast::{self, BinOp, Expr, ExprKind, Stmt, StmtKind, Storage, UnOp};
use minc::sema::{is_lvalue, CallTarget, LocalId, VarRef};
use minc::span::Span;
use minc::types::Type;
use minc::CheckedProgram;
use std::collections::{HashMap, HashSet};

/// Lowers a checked program to IR under the given personality.
///
/// # Panics
///
/// Panics on trees that violate invariants `minc::check` guarantees
/// (unknown nodes in side tables, aggregate rvalues, etc.).
pub fn lower(checked: &CheckedProgram, personality: &Personality) -> IrProgram {
    let mut layouts = StructLayouts::compute(checked);

    // Intern strings on the fly; globals first: AST globals, then each
    // function's static locals, in order.
    let mut strings: Vec<Vec<u8>> = Vec::new();
    let mut string_map: HashMap<Vec<u8>, StrId> = HashMap::new();
    let mut globals: Vec<GlobalSpec> = Vec::new();

    for g in &checked.program.globals {
        let (size, align) = layouts.size_align(&g.ty, checked);
        let init = match &g.init {
            None => GlobalInit::Zero,
            Some(e) => {
                let cv = const_eval(e, checked, &mut layouts, &mut strings, &mut string_map);
                let cv = convert_const(cv, &g.ty);
                GlobalInit::Scalar(cv, width_of(&g.ty))
            }
        };
        globals.push(GlobalSpec {
            name: g.name.clone(),
            size,
            align,
            init,
        });
    }

    // Static locals become globals; remember their ids per function.
    let mut static_globals: Vec<Vec<GlobalId>> = Vec::new();
    for (fi, _f) in checked.program.functions.iter().enumerate() {
        let mut ids = Vec::new();
        for st in &checked.function_info[fi].statics {
            let (size, align) = layouts.size_align(&st.ty, checked);
            let init = match &st.init {
                None => GlobalInit::Zero,
                Some(e) => {
                    let cv = const_eval(e, checked, &mut layouts, &mut strings, &mut string_map);
                    let cv = convert_const(cv, &st.ty);
                    GlobalInit::Scalar(cv, width_of(&st.ty))
                }
            };
            ids.push(GlobalId(globals.len() as u32));
            globals.push(GlobalSpec {
                name: st.name.clone(),
                size,
                align,
                init,
            });
        }
        static_globals.push(ids);
    }

    let mut functions = Vec::new();
    for (fi, f) in checked.program.functions.iter().enumerate() {
        let mut fl = FnLowerer {
            checked,
            personality,
            layouts: &mut layouts,
            strings: &mut strings,
            string_map: &mut string_map,
            static_globals: &static_globals[fi],
            fn_index: fi,
            f: IrFunction {
                name: f.name.clone(),
                param_count: f.params.len() as u32,
                param_tys: f.params.iter().map(|p| ir_ty(&p.ty)).collect(),
                ret_ty: if f.ret == Type::Void {
                    None
                } else {
                    Some(ir_ty(&f.ret))
                },
                blocks: Vec::new(),
                slots: Vec::new(),
                reg_count: 0,
                reg_tys: Vec::new(),
                reg_lines: Vec::new(),
            },
            cur: BlockId(0),
            slot_of_local: Vec::new(),
            loops: Vec::new(),
            stmt_span: f.span,
            addressed: HashSet::new(),
            junk_counter: (fi as u32) << 16,
        };
        fl.lower_fn(f);
        functions.push(fl.f);
    }

    let main = checked
        .program
        .functions
        .iter()
        .position(|f| f.name == "main")
        .map(|i| FuncId(i as u32))
        .expect("sema guarantees main exists");

    IrProgram {
        functions,
        globals,
        strings,
        main,
    }
}

/// IR type of a MinC type (after decay for values).
pub fn ir_ty(t: &Type) -> IrType {
    match t {
        Type::Char | Type::Int | Type::UInt => IrType::I32,
        Type::Long | Type::Ptr(_) | Type::Array(..) => IrType::I64,
        Type::Double => IrType::F64,
        Type::Void => IrType::I32, // placeholder; void values are never read
        Type::Struct(_) => panic!("aggregate has no IR value type"),
    }
}

/// Memory access width for a scalar type.
pub fn width_of(t: &Type) -> MemWidth {
    match t {
        Type::Char => MemWidth::W1,
        Type::Int | Type::UInt => MemWidth::W4,
        Type::Long | Type::Ptr(_) | Type::Double => MemWidth::W8,
        other => panic!("no scalar width for {other}"),
    }
}

struct FnLowerer<'a> {
    checked: &'a CheckedProgram,
    personality: &'a Personality,
    layouts: &'a mut StructLayouts,
    strings: &'a mut Vec<Vec<u8>>,
    string_map: &'a mut HashMap<Vec<u8>, StrId>,
    static_globals: &'a [GlobalId],
    #[allow(dead_code)]
    fn_index: usize,
    f: IrFunction,
    cur: BlockId,
    slot_of_local: Vec<SlotId>,
    loops: Vec<(BlockId, BlockId)>, // (continue target, break target)
    stmt_span: Span,
    addressed: HashSet<LocalId>,
    junk_counter: u32,
}

impl<'a> FnLowerer<'a> {
    fn lower_fn(&mut self, f: &ast::Function) {
        collect_addressed(&f.body, self.checked, &mut self.addressed);
        let entry = self.f.new_block();
        self.cur = entry;

        // Reserve the parameter registers v0..vN-1 before any temporary.
        for p in &f.params {
            self.new_reg(ir_ty(&p.ty));
        }

        // One slot per local, in declaration order (params first).
        let infos = self.checked.function_info[self
            .checked
            .program
            .functions
            .iter()
            .position(|g| g.name == f.name)
            .unwrap()]
        .locals
        .clone();
        for (i, l) in infos.iter().enumerate() {
            let (size, align) = self.layouts.size_align(&l.ty, self.checked);
            let addressed = self.addressed.contains(&LocalId(i as u32))
                || matches!(l.ty, Type::Array(..) | Type::Struct(_));
            let scalar = match l.ty {
                Type::Array(..) | Type::Struct(_) => None,
                ref t => Some(ir_ty(t)),
            };
            let slot = SlotId(self.f.slots.len() as u32);
            self.f.slots.push(SlotInfo {
                name: l.name.clone(),
                size,
                align,
                addressed,
                scalar,
                promoted: false,
            });
            self.slot_of_local.push(slot);
        }
        // Spill parameters (registers v0..vN-1) into their slots.
        for (i, p) in f.params.iter().enumerate() {
            let addr = self.new_reg(IrType::I64);
            self.push(Inst::FrameAddr {
                dst: addr,
                slot: self.slot_of_local[i],
            });
            self.push(Inst::Store {
                addr,
                src: ValueId(i as u32),
                width: width_of(&p.ty),
            });
        }
        // Parameter registers come first; reserve them.
        // (new_reg above already accounted; ensure reg_count >= params.)
        self.lower_stmt(&f.body);
        // Implicit return if control falls off the end.
        if matches!(
            self.f.blocks[self.cur.0 as usize].term,
            Terminator::Unreachable
        ) {
            match (&f.ret, f.name.as_str()) {
                (Type::Void, _) => self.seal_ret(None),
                (_, "main") => {
                    let z = self.const_val(IrType::I32, ConstVal::I32(0));
                    self.seal_ret(Some(z));
                }
                (ret, _) => {
                    // Falling off a value-returning function: the returned
                    // value is indeterminate (UB in C if used).
                    let j = self.junk(ir_ty(ret));
                    self.seal_ret(Some(j));
                }
            }
        }
    }

    // ---- low-level emit helpers ----

    /// Allocates a register stamped with the current statement's source
    /// line, so optimized IR (and the rewrite-provenance log) can point
    /// back at the source.
    fn new_reg(&mut self, ty: IrType) -> ValueId {
        self.f.new_reg_at(ty, self.stmt_span.line)
    }

    fn push(&mut self, inst: Inst) {
        self.f.blocks[self.cur.0 as usize].insts.push(inst);
    }

    fn seal(&mut self, term: Terminator, next: BlockId) {
        self.f.blocks[self.cur.0 as usize].term = term;
        self.cur = next;
    }

    fn seal_ret(&mut self, v: Option<ValueId>) {
        self.f.blocks[self.cur.0 as usize].term = Terminator::Ret(v);
        let dead = self.f.new_block();
        self.cur = dead;
    }

    fn const_val(&mut self, ty: IrType, val: ConstVal) -> ValueId {
        let dst = self.new_reg(ty);
        self.push(Inst::Const { dst, ty, val });
        dst
    }

    fn const_i32(&mut self, v: i32) -> ValueId {
        self.const_val(IrType::I32, ConstVal::I32(v))
    }

    fn const_i64(&mut self, v: i64) -> ValueId {
        self.const_val(IrType::I64, ConstVal::I64(v))
    }

    fn junk(&mut self, ty: IrType) -> ValueId {
        let id = self.junk_counter;
        self.junk_counter += 1;
        self.const_val(ty, ConstVal::Junk(id))
    }

    fn bin(&mut self, ty: IrType, op: BinKind, a: ValueId, b: ValueId, ub_signed: bool) -> ValueId {
        let dst_ty = if op.is_comparison() { IrType::I32 } else { ty };
        let dst = self.new_reg(dst_ty);
        self.push(Inst::Bin {
            dst,
            ty,
            op,
            a,
            b,
            ub_signed,
        });
        dst
    }

    fn cast(&mut self, kind: CastKind, a: ValueId) -> ValueId {
        let to = match kind {
            CastKind::SextI32I64 | CastKind::ZextI32I64 | CastKind::F64I64 => IrType::I64,
            CastKind::TruncI64I32 | CastKind::F64I32 => IrType::I32,
            CastKind::SI32F64 | CastKind::UI32F64 | CastKind::SI64F64 => IrType::F64,
        };
        let dst = self.new_reg(to);
        self.push(Inst::Cast { dst, kind, a });
        dst
    }

    fn ty_of(&self, e: &Expr) -> Type {
        self.checked.types[&e.id].clone()
    }

    /// Converts a value of MinC type `from` to MinC type `to` (both scalar).
    fn convert(&mut self, v: ValueId, from: &Type, to: &Type) -> ValueId {
        let from = from.decay();
        let to = to.decay();
        if from == to {
            return v;
        }
        match (ir_ty(&from), ir_ty(&to)) {
            (a, b) if a == b => {
                // Same register class; handle char narrowing explicitly so
                // `char c = 300;` behaves identically whether `c` lives in
                // memory (store truncates) or in a register (mem2reg).
                if to == Type::Char && from != Type::Char {
                    let sh = self.const_i32(24);
                    let t = self.bin(IrType::I32, BinKind::Shl, v, sh, false);
                    return self.bin(IrType::I32, BinKind::ShrS, t, sh, false);
                }
                v
            }
            (IrType::I32, IrType::I64) => {
                let kind = if from == Type::UInt {
                    CastKind::ZextI32I64
                } else {
                    CastKind::SextI32I64
                };
                self.cast(kind, v)
            }
            (IrType::I64, IrType::I32) => {
                let t = self.cast(CastKind::TruncI64I32, v);
                if to == Type::Char {
                    let sh = self.const_i32(24);
                    let t2 = self.bin(IrType::I32, BinKind::Shl, t, sh, false);
                    return self.bin(IrType::I32, BinKind::ShrS, t2, sh, false);
                }
                t
            }
            (IrType::I32, IrType::F64) => {
                let kind = if from == Type::UInt {
                    CastKind::UI32F64
                } else {
                    CastKind::SI32F64
                };
                self.cast(kind, v)
            }
            (IrType::I64, IrType::F64) => self.cast(CastKind::SI64F64, v),
            (IrType::F64, IrType::I32) => {
                let t = self.cast(CastKind::F64I32, v);
                if to == Type::Char {
                    let sh = self.const_i32(24);
                    let t2 = self.bin(IrType::I32, BinKind::Shl, t, sh, false);
                    return self.bin(IrType::I32, BinKind::ShrS, t2, sh, false);
                }
                t
            }
            (IrType::F64, IrType::I64) => self.cast(CastKind::F64I64, v),
            _ => v,
        }
    }

    /// Lowers `e` as a branch condition, producing an i32 0/1 register.
    /// Comparisons, logical operators, and `!` already produce 0/1, so no
    /// extra `!= 0` is materialized for them.
    fn cond_reg(&mut self, e: &Expr) -> ValueId {
        let already_bool = matches!(
            &e.kind,
            ExprKind::Binary { op, .. } if op.is_comparison()
        ) || matches!(&e.kind, ExprKind::Logical { .. })
            || matches!(&e.kind, ExprKind::Unary { op: UnOp::Not, .. });
        let (v, ty) = self.rvalue(e);
        if already_bool {
            v
        } else {
            self.lower_bool(v, &ty)
        }
    }

    /// `v != 0` as an i32 0/1, for any scalar `v`.
    fn lower_bool(&mut self, v: ValueId, ty: &Type) -> ValueId {
        let ty = ty.decay();
        match ir_ty(&ty) {
            IrType::I32 => {
                let z = self.const_i32(0);
                self.bin(IrType::I32, BinKind::Ne, v, z, false)
            }
            IrType::I64 => {
                let z = self.const_i64(0);
                self.bin(IrType::I64, BinKind::Ne, v, z, false)
            }
            IrType::F64 => {
                let z = self.const_val(IrType::F64, ConstVal::F64(0.0));
                self.bin(IrType::F64, BinKind::FNe, v, z, false)
            }
        }
    }

    fn intern_string(&mut self, bytes: &[u8]) -> StrId {
        intern_string(self.strings, self.string_map, bytes)
    }

    // ---- lvalues ----

    /// Lowers an lvalue to `(address, object type)`.
    fn addr(&mut self, e: &Expr) -> (ValueId, Type) {
        match &e.kind {
            ExprKind::Var(_) => {
                let ty = self.ty_of(e);
                let r = self.checked.vars[&e.id];
                let a = match r {
                    VarRef::Local(LocalId(i)) => {
                        let dst = self.new_reg(IrType::I64);
                        self.push(Inst::FrameAddr {
                            dst,
                            slot: self.slot_of_local[i as usize],
                        });
                        dst
                    }
                    VarRef::Global(i) => {
                        self.const_val(IrType::I64, ConstVal::GlobalAddr(GlobalId(i), 0))
                    }
                    VarRef::StaticLocal(s) => {
                        let gid = self.static_globals[s.0 as usize];
                        self.const_val(IrType::I64, ConstVal::GlobalAddr(gid, 0))
                    }
                };
                (a, ty)
            }
            ExprKind::Unary {
                op: UnOp::Deref,
                operand,
            } => {
                let (p, pty) = self.rvalue(operand);
                let pointee = pty
                    .decay()
                    .pointee()
                    .cloned()
                    .expect("sema: deref of non-pointer");
                (p, pointee)
            }
            ExprKind::Index { base, index } => {
                let (b, bty) = self.rvalue(base);
                let elem = bty
                    .decay()
                    .pointee()
                    .cloned()
                    .expect("sema: index of non-pointer");
                let (i, ity) = self.rvalue(index);
                let i64v = self.convert(i, &ity, &Type::Long);
                let elem_size = self.layouts.size_of(&elem, self.checked) as i64;
                let sz = self.const_i64(elem_size);
                let off = self.bin(IrType::I64, BinKind::Mul, i64v, sz, false);
                let a = self.bin(IrType::I64, BinKind::Add, b, off, false);
                (a, elem)
            }
            ExprKind::Member { base, field } => {
                let (a, bty) = self.addr(base);
                let Type::Struct(name) = bty else {
                    panic!("sema: member of non-struct")
                };
                let off = self.layouts.field_offset(&name, field, self.checked) as i64;
                let fty = self.checked.types[&e.id].clone();
                if off == 0 {
                    return (a, fty);
                }
                let o = self.const_i64(off);
                let fa = self.bin(IrType::I64, BinKind::Add, a, o, false);
                (fa, fty)
            }
            ExprKind::Arrow { base, field } => {
                let (p, pty) = self.rvalue(base);
                let Some(Type::Struct(name)) = pty.decay().pointee().cloned() else {
                    panic!("sema: arrow through non-struct pointer")
                };
                let off = self.layouts.field_offset(&name, field, self.checked) as i64;
                let fty = self.checked.types[&e.id].clone();
                if off == 0 {
                    return (p, fty);
                }
                let o = self.const_i64(off);
                let fa = self.bin(IrType::I64, BinKind::Add, p, o, false);
                (fa, fty)
            }
            other => panic!("not an lvalue: {other:?}"),
        }
    }

    /// Loads a scalar of MinC type `ty` from `addr`.
    fn load(&mut self, addr: ValueId, ty: &Type) -> ValueId {
        let dst = self.new_reg(ir_ty(ty));
        self.push(Inst::Load {
            dst,
            ty: ir_ty(ty),
            addr,
            width: width_of(ty),
            sext: *ty == Type::Char,
        });
        dst
    }

    // ---- rvalues ----

    /// Lowers an expression to `(value register, decayed-but-precise type)`.
    fn rvalue(&mut self, e: &Expr) -> (ValueId, Type) {
        if is_lvalue(e) {
            let (a, oty) = self.addr(e);
            return match oty {
                Type::Array(ref elem, _) => (a, Type::Ptr(elem.clone())),
                Type::Struct(_) => panic!("aggregate rvalue (sema forbids)"),
                ref scalar => (self.load(a, scalar), scalar.clone()),
            };
        }
        match &e.kind {
            ExprKind::IntLit { value, long } => {
                if *long {
                    (self.const_i64(*value), Type::Long)
                } else {
                    (self.const_i32(*value as i32), Type::Int)
                }
            }
            ExprKind::FloatLit(v) => (self.const_val(IrType::F64, ConstVal::F64(*v)), Type::Double),
            ExprKind::CharLit(c) => (self.const_i32(*c as i32), Type::Int),
            ExprKind::StrLit(bytes) => {
                let id = self.intern_string(bytes);
                (
                    self.const_val(IrType::I64, ConstVal::StrAddr(id, 0)),
                    Type::Char.ptr_to(),
                )
            }
            ExprKind::Line => {
                let line = match self.personality.line_policy {
                    LinePolicy::StartLine => self.stmt_span.line,
                    LinePolicy::EndLine => self.stmt_span.end_line.max(self.stmt_span.line),
                };
                (self.const_i32(line as i32), Type::Int)
            }
            ExprKind::Unary { op, operand } => self.lower_unary(*op, operand),
            ExprKind::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs),
            ExprKind::Logical { and, lhs, rhs } => self.lower_logical(*and, lhs, rhs),
            ExprKind::Assign { op, target, value } => self.lower_assign(*op, target, value),
            ExprKind::IncDec { inc, pre, target } => self.lower_incdec(*inc, *pre, target),
            ExprKind::Cond { cond, then, els } => self.lower_ternary(e, cond, then, els),
            ExprKind::Call { args, .. } => self.lower_call(e, args),
            ExprKind::Cast { to, value } => {
                let (v, vty) = self.rvalue(value);
                if *to == Type::Void {
                    return (v, Type::Void);
                }
                (self.convert(v, &vty, to), to.clone())
            }
            ExprKind::SizeofType(t) => {
                let sz = self.layouts.size_of(t, self.checked) as i64;
                (self.const_i64(sz), Type::Long)
            }
            ExprKind::SizeofExpr(inner) => {
                let t = self.ty_of(inner);
                let sz = self.layouts.size_of(&t, self.checked) as i64;
                (self.const_i64(sz), Type::Long)
            }
            // lvalue kinds handled above
            _ => unreachable!("lvalue kinds handled earlier"),
        }
    }

    fn lower_unary(&mut self, op: UnOp, operand: &Expr) -> (ValueId, Type) {
        match op {
            UnOp::Addr => {
                let (a, oty) = self.addr(operand);
                (a, oty.ptr_to())
            }
            UnOp::Deref => unreachable!("deref is an lvalue"),
            UnOp::Not => {
                let (v, vty) = self.rvalue(operand);
                let b = self.lower_bool(v, &vty);
                let one = self.const_i32(1);
                (
                    self.bin(IrType::I32, BinKind::Xor, b, one, false),
                    Type::Int,
                )
            }
            UnOp::Neg => {
                let (v, vty) = self.rvalue(operand);
                let vty = vty.decay();
                if vty == Type::Double {
                    let dst = self.new_reg(IrType::F64);
                    self.push(Inst::Un {
                        dst,
                        ty: IrType::F64,
                        op: UnKind::FNeg,
                        a: v,
                        ub_signed: false,
                    });
                    return (dst, Type::Double);
                }
                let rt = vty.promote();
                let v = self.convert(v, &vty, &rt);
                let dst = self.new_reg(ir_ty(&rt));
                self.push(Inst::Un {
                    dst,
                    ty: ir_ty(&rt),
                    op: UnKind::Neg,
                    a: v,
                    ub_signed: rt.is_signed_integer(),
                });
                (dst, rt)
            }
            UnOp::BitNot => {
                let (v, vty) = self.rvalue(operand);
                let rt = vty.decay().promote();
                let v = self.convert(v, &vty, &rt);
                let dst = self.new_reg(ir_ty(&rt));
                self.push(Inst::Un {
                    dst,
                    ty: ir_ty(&rt),
                    op: UnKind::BitNot,
                    a: v,
                    ub_signed: false,
                });
                (dst, rt)
            }
        }
    }

    fn lower_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> (ValueId, Type) {
        let (lv, lty) = self.rvalue(lhs);
        let (rv, rty) = self.rvalue(rhs);
        self.lower_binop_values(op, lv, &lty, rv, &rty)
    }

    /// The heart of expression lowering; also reused by compound assignment.
    fn lower_binop_values(
        &mut self,
        op: BinOp,
        lv: ValueId,
        lty: &Type,
        rv: ValueId,
        rty: &Type,
    ) -> (ValueId, Type) {
        let lty = lty.decay();
        let rty = rty.decay();
        use BinOp::*;

        // Pointer arithmetic.
        if lty.is_pointer() || rty.is_pointer() {
            match op {
                Add | Sub if lty.is_pointer() && rty.is_integer() => {
                    let elem = lty.pointee().cloned().unwrap();
                    let esz = self.layouts.size_of(&elem, self.checked).max(1) as i64;
                    let idx = self.convert(rv, &rty, &Type::Long);
                    let sz = self.const_i64(esz);
                    let off = self.bin(IrType::I64, BinKind::Mul, idx, sz, false);
                    let k = if op == Add {
                        BinKind::Add
                    } else {
                        BinKind::Sub
                    };
                    return (self.bin(IrType::I64, k, lv, off, false), lty.clone());
                }
                Add if lty.is_integer() && rty.is_pointer() => {
                    let elem = rty.pointee().cloned().unwrap();
                    let esz = self.layouts.size_of(&elem, self.checked).max(1) as i64;
                    let idx = self.convert(lv, &lty, &Type::Long);
                    let sz = self.const_i64(esz);
                    let off = self.bin(IrType::I64, BinKind::Mul, idx, sz, false);
                    return (
                        self.bin(IrType::I64, BinKind::Add, rv, off, false),
                        rty.clone(),
                    );
                }
                Sub if lty.is_pointer() && rty.is_pointer() => {
                    // Pointer difference: UB across objects (CWE-469); the
                    // value is layout-dependent either way.
                    let elem = lty.pointee().cloned().unwrap();
                    let esz = self.layouts.size_of(&elem, self.checked).max(1) as i64;
                    let diff = self.bin(IrType::I64, BinKind::Sub, lv, rv, false);
                    let sz = self.const_i64(esz);
                    return (
                        self.bin(IrType::I64, BinKind::DivS, diff, sz, false),
                        Type::Long,
                    );
                }
                Lt | Le | Gt | Ge | Eq | Ne => {
                    // Pointer comparison: addresses compared unsigned.
                    // Relational comparison of pointers to different objects
                    // is UB — and genuinely unstable, because each
                    // implementation places objects differently.
                    let l64 = if ir_ty(&lty) == IrType::I64 {
                        lv
                    } else {
                        self.convert(lv, &lty, &Type::Long)
                    };
                    let r64 = if ir_ty(&rty) == IrType::I64 {
                        rv
                    } else {
                        self.convert(rv, &rty, &Type::Long)
                    };
                    let k = match op {
                        Lt => BinKind::LtU,
                        Le => BinKind::LeU,
                        Gt => BinKind::GtU,
                        Ge => BinKind::GeU,
                        Eq => BinKind::Eq,
                        Ne => BinKind::Ne,
                        _ => unreachable!(),
                    };
                    return (self.bin(IrType::I64, k, l64, r64, false), Type::Int);
                }
                _ => panic!("sema: invalid pointer operation"),
            }
        }

        // Usual arithmetic conversions.
        let common = Type::usual_arithmetic(&lty.promote(), &rty.promote());
        match op {
            Shl | Shr => {
                // Shifts: result type is the promoted left operand.
                let rt = lty.promote();
                let l = self.convert(lv, &lty, &rt);
                let r = self.convert(rv, &rty, &rt);
                let k = match (op, rt.is_signed_integer()) {
                    (Shl, _) => BinKind::Shl,
                    (Shr, true) => BinKind::ShrS,
                    (Shr, false) => BinKind::ShrU,
                    _ => unreachable!(),
                };
                return (self.bin(ir_ty(&rt), k, l, r, rt.is_signed_integer()), rt);
            }
            _ => {}
        }
        let l = self.convert(lv, &lty, &common);
        let r = self.convert(rv, &rty, &common);
        let signed = common.is_signed_integer();
        let fl = common == Type::Double;
        let (kind, result_ty, ub) = match op {
            Add => (
                if fl { BinKind::FAdd } else { BinKind::Add },
                common.clone(),
                signed,
            ),
            Sub => (
                if fl { BinKind::FSub } else { BinKind::Sub },
                common.clone(),
                signed,
            ),
            Mul => (
                if fl { BinKind::FMul } else { BinKind::Mul },
                common.clone(),
                signed,
            ),
            Div => (
                if fl {
                    BinKind::FDiv
                } else if signed {
                    BinKind::DivS
                } else {
                    BinKind::DivU
                },
                common.clone(),
                signed,
            ),
            Rem => (
                if signed { BinKind::RemS } else { BinKind::RemU },
                common.clone(),
                signed,
            ),
            BitAnd => (BinKind::And, common.clone(), false),
            BitOr => (BinKind::Or, common.clone(), false),
            BitXor => (BinKind::Xor, common.clone(), false),
            Lt => (
                if fl {
                    BinKind::FLt
                } else if signed {
                    BinKind::LtS
                } else {
                    BinKind::LtU
                },
                Type::Int,
                false,
            ),
            Le => (
                if fl {
                    BinKind::FLe
                } else if signed {
                    BinKind::LeS
                } else {
                    BinKind::LeU
                },
                Type::Int,
                false,
            ),
            Gt => (
                if fl {
                    BinKind::FGt
                } else if signed {
                    BinKind::GtS
                } else {
                    BinKind::GtU
                },
                Type::Int,
                false,
            ),
            Ge => (
                if fl {
                    BinKind::FGe
                } else if signed {
                    BinKind::GeS
                } else {
                    BinKind::GeU
                },
                Type::Int,
                false,
            ),
            Eq => (
                if fl { BinKind::FEq } else { BinKind::Eq },
                Type::Int,
                false,
            ),
            Ne => (
                if fl { BinKind::FNe } else { BinKind::Ne },
                Type::Int,
                false,
            ),
            Shl | Shr => unreachable!(),
        };
        (self.bin(ir_ty(&common), kind, l, r, ub), result_ty)
    }

    fn lower_logical(&mut self, and: bool, lhs: &Expr, rhs: &Expr) -> (ValueId, Type) {
        let result = self.new_reg(IrType::I32);
        let rhs_block = self.f.new_block();
        let short_block = self.f.new_block();
        let join = self.f.new_block();

        let lb = self.cond_reg(lhs);
        let (t, e) = if and {
            (rhs_block, short_block)
        } else {
            (short_block, rhs_block)
        };
        self.seal(
            Terminator::Br {
                cond: lb,
                then: t,
                els: e,
            },
            rhs_block,
        );

        let rb = self.cond_reg(rhs);
        self.push(Inst::Copy {
            dst: result,
            ty: IrType::I32,
            src: rb,
        });
        self.seal(Terminator::Jump(join), short_block);

        let short_val = self.const_i32(if and { 0 } else { 1 });
        self.push(Inst::Copy {
            dst: result,
            ty: IrType::I32,
            src: short_val,
        });
        self.seal(Terminator::Jump(join), join);

        (result, Type::Int)
    }

    fn lower_assign(&mut self, op: Option<BinOp>, target: &Expr, value: &Expr) -> (ValueId, Type) {
        let (a, oty) = self.addr(target);
        let stored = match op {
            None => {
                let (v, vty) = self.rvalue(value);
                self.convert(v, &vty, &oty)
            }
            Some(op) => {
                let cur = self.load(a, &oty);
                let (v, vty) = self.rvalue(value);
                let (res, rty) = self.lower_binop_values(op, cur, &oty, v, &vty);
                self.convert(res, &rty, &oty)
            }
        };
        self.push(Inst::Store {
            addr: a,
            src: stored,
            width: width_of(&oty),
        });
        (stored, oty)
    }

    fn lower_incdec(&mut self, inc: bool, pre: bool, target: &Expr) -> (ValueId, Type) {
        let (a, oty) = self.addr(target);
        let cur = self.load(a, &oty);
        let one_op = if inc { BinOp::Add } else { BinOp::Sub };
        let one = self.const_i32(1);
        let (next, nty) = self.lower_binop_values(one_op, cur, &oty, one, &Type::Int);
        let stored = self.convert(next, &nty, &oty);
        self.push(Inst::Store {
            addr: a,
            src: stored,
            width: width_of(&oty),
        });
        (if pre { stored } else { cur }, oty)
    }

    fn lower_ternary(&mut self, e: &Expr, cond: &Expr, then: &Expr, els: &Expr) -> (ValueId, Type) {
        let result_ty = self.ty_of(e);
        let result = self.new_reg(ir_ty(&result_ty));
        let tb = self.f.new_block();
        let eb = self.f.new_block();
        let join = self.f.new_block();

        let cb = self.cond_reg(cond);
        self.seal(
            Terminator::Br {
                cond: cb,
                then: tb,
                els: eb,
            },
            tb,
        );

        let (tv, tty) = self.rvalue(then);
        let tv = self.convert(tv, &tty, &result_ty);
        self.push(Inst::Copy {
            dst: result,
            ty: ir_ty(&result_ty),
            src: tv,
        });
        self.seal(Terminator::Jump(join), eb);

        let (ev, ety) = self.rvalue(els);
        let ev = self.convert(ev, &ety, &result_ty);
        self.push(Inst::Copy {
            dst: result,
            ty: ir_ty(&result_ty),
            src: ev,
        });
        self.seal(Terminator::Jump(join), join);

        (result, result_ty)
    }

    fn lower_call(&mut self, e: &Expr, args: &[Expr]) -> (ValueId, Type) {
        let target = self.checked.calls[&e.id].clone();
        let (param_tys, ret): (Vec<Option<Type>>, Type) = match &target {
            CallTarget::Function(i) => {
                let f = &self.checked.program.functions[*i as usize];
                (
                    f.params.iter().map(|p| Some(p.ty.clone())).collect(),
                    f.ret.clone(),
                )
            }
            CallTarget::Builtin(b) => {
                let (p, _, r) = b.signature();
                (p, r)
            }
        };

        // Evaluate arguments in the *implementation's* order. The standard
        // allows any order; when two arguments have conflicting side effects
        // (e.g. both call a function returning a static buffer) the result
        // is unstable — the paper's tcpdump EvalOrder bug.
        let order: Vec<usize> = match self.personality.eval_order {
            EvalOrder::LeftToRight => (0..args.len()).collect(),
            EvalOrder::RightToLeft => (0..args.len()).rev().collect(),
        };
        let mut values: Vec<Option<(ValueId, Type)>> = vec![None; args.len()];
        for i in order {
            let (v, vty) = self.rvalue(&args[i]);
            values[i] = Some((v, vty));
        }

        let mut arg_regs = Vec::with_capacity(args.len());
        let mut arg_tys = Vec::with_capacity(args.len());
        for (i, v) in values.into_iter().enumerate() {
            let (v, vty) = v.unwrap();
            let (cv, cty) = match param_tys.get(i) {
                Some(Some(pt)) => (self.convert(v, &vty, pt), pt.clone()),
                Some(None) => {
                    // "any pointer" builtin slot.
                    (self.convert(v, &vty, &Type::Long), Type::Long)
                }
                None => {
                    // Variadic extras: default promotions (char -> int).
                    let promoted = vty.decay().promote();
                    (self.convert(v, &vty, &promoted), promoted)
                }
            };
            arg_regs.push(cv);
            arg_tys.push(ir_ty(&cty));
        }

        let callee = match target {
            CallTarget::Function(i) => Callee::Func(FuncId(i)),
            CallTarget::Builtin(b) => Callee::Builtin(b),
        };
        let (dst, ret_ir) = if ret == Type::Void {
            (None, IrType::I32)
        } else {
            (Some(self.new_reg(ir_ty(&ret))), ir_ty(&ret))
        };
        self.push(Inst::Call {
            dst,
            ret_ty: ret_ir,
            callee,
            args: arg_regs,
            arg_tys,
        });
        (dst.unwrap_or(ValueId(0)), ret)
    }

    // ---- statements ----

    fn lower_stmt(&mut self, s: &Stmt) {
        self.stmt_span = s.span;
        match &s.kind {
            StmtKind::Decl {
                ty, storage, init, ..
            } => match storage {
                Storage::Auto => {
                    if let Some(init) = init {
                        let slot = self.slot_of_local[self.checked.decl_slots[&s.id].0 as usize];
                        let (v, vty) = self.rvalue(init);
                        let cv = self.convert(v, &vty, ty);
                        let a = self.new_reg(IrType::I64);
                        self.push(Inst::FrameAddr { dst: a, slot });
                        self.push(Inst::Store {
                            addr: a,
                            src: cv,
                            width: width_of(ty),
                        });
                    }
                }
                Storage::Static => {
                    // Initialization happened at (simulated) load time.
                }
            },
            StmtKind::Expr(e) => {
                self.rvalue(e);
            }
            StmtKind::If { cond, then, els } => {
                let tb = self.f.new_block();
                let eb = self.f.new_block();
                let join = self.f.new_block();
                let cb = self.cond_reg(cond);
                self.seal(
                    Terminator::Br {
                        cond: cb,
                        then: tb,
                        els: eb,
                    },
                    tb,
                );
                self.lower_stmt(then);
                self.seal(Terminator::Jump(join), eb);
                if let Some(els) = els {
                    self.lower_stmt(els);
                }
                self.seal(Terminator::Jump(join), join);
            }
            StmtKind::While { cond, body } => {
                let head = self.f.new_block();
                let body_b = self.f.new_block();
                let exit = self.f.new_block();
                self.seal(Terminator::Jump(head), head);
                let cb = self.cond_reg(cond);
                self.seal(
                    Terminator::Br {
                        cond: cb,
                        then: body_b,
                        els: exit,
                    },
                    body_b,
                );
                self.loops.push((head, exit));
                self.lower_stmt(body);
                self.loops.pop();
                self.seal(Terminator::Jump(head), exit);
            }
            StmtKind::DoWhile { body, cond } => {
                let body_b = self.f.new_block();
                let check = self.f.new_block();
                let exit = self.f.new_block();
                self.seal(Terminator::Jump(body_b), body_b);
                self.loops.push((check, exit));
                self.lower_stmt(body);
                self.loops.pop();
                self.seal(Terminator::Jump(check), check);
                let cb = self.cond_reg(cond);
                self.seal(
                    Terminator::Br {
                        cond: cb,
                        then: body_b,
                        els: exit,
                    },
                    exit,
                );
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.lower_stmt(i);
                }
                let head = self.f.new_block();
                let body_b = self.f.new_block();
                let step_b = self.f.new_block();
                let exit = self.f.new_block();
                self.seal(Terminator::Jump(head), head);
                match cond {
                    Some(c) => {
                        let cb = self.cond_reg(c);
                        self.seal(
                            Terminator::Br {
                                cond: cb,
                                then: body_b,
                                els: exit,
                            },
                            body_b,
                        );
                    }
                    None => self.seal(Terminator::Jump(body_b), body_b),
                }
                self.loops.push((step_b, exit));
                self.lower_stmt(body);
                self.loops.pop();
                self.seal(Terminator::Jump(step_b), step_b);
                if let Some(st) = step {
                    self.rvalue(st);
                }
                self.seal(Terminator::Jump(head), exit);
            }
            StmtKind::Return(v) => {
                let ret = match v {
                    None => None,
                    Some(e) => {
                        let (v, vty) = self.rvalue(e);
                        let want = self
                            .f
                            .ret_ty
                            .expect("sema: value return from void function");
                        // Convert to the declared return type.
                        let target = match want {
                            IrType::I32 => Type::Int,
                            IrType::I64 => Type::Long,
                            IrType::F64 => Type::Double,
                        };
                        Some(self.convert(v, &vty, &target))
                    }
                };
                self.seal_ret(ret);
            }
            StmtKind::Break => {
                let (_, exit) = *self.loops.last().expect("sema: break outside loop");
                let dead = self.f.new_block();
                self.seal(Terminator::Jump(exit), dead);
            }
            StmtKind::Continue => {
                let (cont, _) = *self.loops.last().expect("sema: continue outside loop");
                let dead = self.f.new_block();
                self.seal(Terminator::Jump(cont), dead);
            }
            StmtKind::Block(stmts) => {
                for st in stmts {
                    self.lower_stmt(st);
                }
            }
            StmtKind::Empty => {}
        }
    }
}

/// Interns a string literal (NUL-terminated) and returns its id.
fn intern_string(
    strings: &mut Vec<Vec<u8>>,
    map: &mut HashMap<Vec<u8>, StrId>,
    bytes: &[u8],
) -> StrId {
    let mut s = bytes.to_vec();
    s.push(0);
    if let Some(&id) = map.get(&s) {
        return id;
    }
    let id = StrId(strings.len() as u32);
    strings.push(s.clone());
    map.insert(s, id);
    id
}

/// Finds scalar locals whose address is taken with `&`.
fn collect_addressed(s: &Stmt, checked: &CheckedProgram, out: &mut HashSet<LocalId>) {
    fn walk_expr(e: &Expr, checked: &CheckedProgram, out: &mut HashSet<LocalId>) {
        if let ExprKind::Unary {
            op: UnOp::Addr,
            operand,
        } = &e.kind
        {
            if let ExprKind::Var(_) = operand.kind {
                if let Some(VarRef::Local(l)) = checked.vars.get(&operand.id) {
                    out.insert(*l);
                }
            }
        }
        match &e.kind {
            ExprKind::Unary { operand, .. } => walk_expr(operand, checked, out),
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Logical { lhs, rhs, .. } => {
                walk_expr(lhs, checked, out);
                walk_expr(rhs, checked, out);
            }
            ExprKind::Assign { target, value, .. } => {
                walk_expr(target, checked, out);
                walk_expr(value, checked, out);
            }
            ExprKind::IncDec { target, .. } => walk_expr(target, checked, out),
            ExprKind::Cond { cond, then, els } => {
                walk_expr(cond, checked, out);
                walk_expr(then, checked, out);
                walk_expr(els, checked, out);
            }
            ExprKind::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, checked, out)),
            ExprKind::Index { base, index } => {
                walk_expr(base, checked, out);
                walk_expr(index, checked, out);
            }
            ExprKind::Member { base, .. } | ExprKind::Arrow { base, .. } => {
                walk_expr(base, checked, out)
            }
            ExprKind::Cast { value, .. } => walk_expr(value, checked, out),
            ExprKind::SizeofExpr(inner) => walk_expr(inner, checked, out),
            _ => {}
        }
    }
    match &s.kind {
        StmtKind::Decl { init: Some(e), .. } => walk_expr(e, checked, out),
        StmtKind::Expr(e) => walk_expr(e, checked, out),
        StmtKind::If { cond, then, els } => {
            walk_expr(cond, checked, out);
            collect_addressed(then, checked, out);
            if let Some(e) = els {
                collect_addressed(e, checked, out);
            }
        }
        StmtKind::While { cond, body } => {
            walk_expr(cond, checked, out);
            collect_addressed(body, checked, out);
        }
        StmtKind::DoWhile { body, cond } => {
            collect_addressed(body, checked, out);
            walk_expr(cond, checked, out);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                collect_addressed(i, checked, out);
            }
            if let Some(c) = cond {
                walk_expr(c, checked, out);
            }
            if let Some(st) = step {
                walk_expr(st, checked, out);
            }
            collect_addressed(body, checked, out);
        }
        StmtKind::Return(Some(e)) => walk_expr(e, checked, out),
        StmtKind::Block(stmts) => stmts
            .iter()
            .for_each(|s| collect_addressed(s, checked, out)),
        _ => {}
    }
}

/// Evaluates a constant expression for a global/static initializer.
fn const_eval(
    e: &Expr,
    checked: &CheckedProgram,
    layouts: &mut StructLayouts,
    strings: &mut Vec<Vec<u8>>,
    string_map: &mut HashMap<Vec<u8>, StrId>,
) -> ConstVal {
    match &e.kind {
        ExprKind::IntLit { value, long } => {
            if *long {
                ConstVal::I64(*value)
            } else {
                ConstVal::I32(*value as i32)
            }
        }
        ExprKind::FloatLit(v) => ConstVal::F64(*v),
        ExprKind::CharLit(c) => ConstVal::I32(*c as i32),
        ExprKind::StrLit(bytes) => {
            let id = intern_string(strings, string_map, bytes);
            ConstVal::StrAddr(id, 0)
        }
        ExprKind::Unary { op, operand } => {
            let v = const_eval(operand, checked, layouts, strings, string_map);
            match (op, v) {
                (UnOp::Neg, ConstVal::I32(x)) => ConstVal::I32(x.wrapping_neg()),
                (UnOp::Neg, ConstVal::I64(x)) => ConstVal::I64(x.wrapping_neg()),
                (UnOp::Neg, ConstVal::F64(x)) => ConstVal::F64(-x),
                (UnOp::BitNot, ConstVal::I32(x)) => ConstVal::I32(!x),
                (UnOp::BitNot, ConstVal::I64(x)) => ConstVal::I64(!x),
                (UnOp::Not, ConstVal::I32(x)) => ConstVal::I32((x == 0) as i32),
                (UnOp::Not, ConstVal::I64(x)) => ConstVal::I32((x == 0) as i32),
                _ => panic!("sema: bad constant unary"),
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let a = const_eval(lhs, checked, layouts, strings, string_map);
            let b = const_eval(rhs, checked, layouts, strings, string_map);
            const_binop(*op, a, b)
        }
        ExprKind::Cast { to, value } => {
            let v = const_eval(value, checked, layouts, strings, string_map);
            convert_const(v, to)
        }
        ExprKind::SizeofType(t) => ConstVal::I64(layouts.size_of(t, checked) as i64),
        _ => panic!("sema: non-constant initializer"),
    }
}

fn const_as_i64(v: ConstVal) -> i64 {
    match v {
        ConstVal::I32(x) => x as i64,
        ConstVal::I64(x) => x,
        ConstVal::F64(x) => x as i64,
        _ => panic!("address constant in arithmetic"),
    }
}

fn const_binop(op: BinOp, a: ConstVal, b: ConstVal) -> ConstVal {
    use BinOp::*;
    if let (ConstVal::F64(x), _) | (_, ConstVal::F64(x)) = (a, b) {
        let _ = x;
        let xa = match a {
            ConstVal::F64(v) => v,
            other => const_as_i64(other) as f64,
        };
        let xb = match b {
            ConstVal::F64(v) => v,
            other => const_as_i64(other) as f64,
        };
        return match op {
            Add => ConstVal::F64(xa + xb),
            Sub => ConstVal::F64(xa - xb),
            Mul => ConstVal::F64(xa * xb),
            Div => ConstVal::F64(xa / xb),
            Lt => ConstVal::I32((xa < xb) as i32),
            Le => ConstVal::I32((xa <= xb) as i32),
            Gt => ConstVal::I32((xa > xb) as i32),
            Ge => ConstVal::I32((xa >= xb) as i32),
            Eq => ConstVal::I32((xa == xb) as i32),
            Ne => ConstVal::I32((xa != xb) as i32),
            _ => panic!("sema: bad constant float op"),
        };
    }
    let wide = matches!(a, ConstVal::I64(_)) || matches!(b, ConstVal::I64(_));
    let xa = const_as_i64(a);
    let xb = const_as_i64(b);
    let r: i64 = match op {
        Add => xa.wrapping_add(xb),
        Sub => xa.wrapping_sub(xb),
        Mul => xa.wrapping_mul(xb),
        Div => {
            if xb == 0 {
                0
            } else {
                xa.wrapping_div(xb)
            }
        }
        Rem => {
            if xb == 0 {
                0
            } else {
                xa.wrapping_rem(xb)
            }
        }
        Shl => xa.wrapping_shl(xb as u32 & 63),
        Shr => xa.wrapping_shr(xb as u32 & 63),
        BitAnd => xa & xb,
        BitOr => xa | xb,
        BitXor => xa ^ xb,
        Lt => (xa < xb) as i64,
        Le => (xa <= xb) as i64,
        Gt => (xa > xb) as i64,
        Ge => (xa >= xb) as i64,
        Eq => (xa == xb) as i64,
        Ne => (xa != xb) as i64,
    };
    if op.is_comparison() {
        ConstVal::I32(r as i32)
    } else if wide {
        ConstVal::I64(r)
    } else {
        ConstVal::I32(r as i32)
    }
}

/// Converts a constant to the representation of a MinC type.
fn convert_const(v: ConstVal, to: &Type) -> ConstVal {
    match to {
        Type::Char => ConstVal::I32(const_as_i64(v) as i8 as i32),
        Type::Int => ConstVal::I32(const_as_i64(v) as i32),
        Type::UInt => ConstVal::I32(const_as_i64(v) as u32 as i32),
        Type::Long => match v {
            ConstVal::StrAddr(..) | ConstVal::GlobalAddr(..) => v,
            other => ConstVal::I64(const_as_i64(other)),
        },
        Type::Double => match v {
            ConstVal::F64(x) => ConstVal::F64(x),
            other => ConstVal::F64(const_as_i64(other) as f64),
        },
        Type::Ptr(_) => match v {
            ConstVal::StrAddr(..) | ConstVal::GlobalAddr(..) => v,
            other => ConstVal::I64(const_as_i64(other)),
        },
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::personality::{CompilerImpl, Family, OptLevel};

    fn lower_src(src: &str, family: Family, level: OptLevel) -> IrProgram {
        let checked = minc::check(src).unwrap();
        let p = CompilerImpl::new(family, level).personality();
        lower(&checked, &p)
    }

    #[test]
    fn lowers_minimal_main() {
        let ir = lower_src("int main() { return 0; }", Family::Gcc, OptLevel::O0);
        assert_eq!(ir.functions.len(), 1);
        assert_eq!(ir.main, FuncId(0));
        let f = &ir.functions[0];
        assert!(matches!(f.blocks[0].term, Terminator::Ret(Some(_))));
    }

    #[test]
    fn params_are_spilled_to_slots() {
        let ir = lower_src(
            "int f(int a, int b) { return a + b; }\nint main() { return f(1,2); }",
            Family::Gcc,
            OptLevel::O0,
        );
        let f = &ir.functions[0];
        assert_eq!(f.param_count, 2);
        assert_eq!(f.slots.len(), 2);
        let stores = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        assert!(stores >= 2);
    }

    #[test]
    fn arg_eval_order_differs_by_family() {
        // g() and h() write to a global; the order of Call instructions to
        // them inside main's lowering differs between families.
        let src = r#"
            int t = 0;
            int g() { t = 1; return 1; }
            int h() { t = 2; return 2; }
            int use2(int a, int b) { return a + b; }
            int main() { return use2(g(), h()); }
        "#;
        let order_of = |fam| {
            let ir = lower_src(src, fam, OptLevel::O0);
            let main = &ir.functions[3];
            let mut calls = Vec::new();
            for b in &main.blocks {
                for i in &b.insts {
                    if let Inst::Call {
                        callee: Callee::Func(f),
                        ..
                    } = i
                    {
                        calls.push(f.0);
                    }
                }
            }
            calls
        };
        let gcc = order_of(Family::Gcc);
        let clang = order_of(Family::Clang);
        // Last call is use2 in both; the first two are swapped.
        assert_eq!(gcc.len(), 3);
        assert_eq!(clang.len(), 3);
        assert_eq!(gcc[2], clang[2]);
        assert_eq!(gcc[0], clang[1]);
        assert_eq!(gcc[1], clang[0]);
        assert_ne!(gcc[0], gcc[1]);
    }

    #[test]
    fn static_local_becomes_global() {
        let src = "char* f() { static char buf[4]; return buf; }\nint main() { return (int)strlen(f()); }";
        let ir = lower_src(src, Family::Gcc, OptLevel::O0);
        assert!(ir.globals.iter().any(|g| g.name == "f.buf" && g.size == 4));
    }

    #[test]
    fn string_literals_are_interned() {
        let src = r#"int main() { puts("dup"); puts("dup"); puts("other"); return 0; }"#;
        let ir = lower_src(src, Family::Gcc, OptLevel::O0);
        assert_eq!(ir.strings.len(), 2);
        assert_eq!(ir.strings[0], b"dup\0".to_vec());
    }

    #[test]
    fn global_initializer_is_scalar_const() {
        let src = "int g = 40 + 2;\nlong h = 1L << 33;\nint main() { return g; }";
        let ir = lower_src(src, Family::Gcc, OptLevel::O0);
        assert_eq!(
            ir.globals[0].init,
            GlobalInit::Scalar(ConstVal::I32(42), MemWidth::W4)
        );
        assert_eq!(
            ir.globals[1].init,
            GlobalInit::Scalar(ConstVal::I64(1 << 33), MemWidth::W8)
        );
    }

    #[test]
    fn signed_ops_carry_ub_flag_unsigned_do_not() {
        let src = "int main() { int a = 1; unsigned b = 2; int c = a + a; unsigned d = b + b; return c + (int)d; }";
        let ir = lower_src(src, Family::Gcc, OptLevel::O0);
        let f = &ir.functions[0];
        let mut saw_signed = false;
        let mut saw_unsigned = false;
        for b in &f.blocks {
            for i in &b.insts {
                if let Inst::Bin {
                    op: BinKind::Add,
                    ub_signed,
                    ..
                } = i
                {
                    if *ub_signed {
                        saw_signed = true;
                    } else {
                        saw_unsigned = true;
                    }
                }
            }
        }
        assert!(saw_signed && saw_unsigned);
    }

    #[test]
    fn pointer_compare_lowers_unsigned() {
        let src = "int main() { int a; int b; if (&a < &b) return 1; return 0; }";
        let ir = lower_src(src, Family::Gcc, OptLevel::O0);
        let f = &ir.functions[0];
        let has_ltu = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: BinKind::LtU,
                    ty: IrType::I64,
                    ..
                }
            )
        });
        assert!(has_ltu);
    }

    #[test]
    fn line_policy_changes_line_constant() {
        // A return statement spanning two lines.
        let src = "int main() { return __LINE__\n+ 0; }";
        let g = lower_src(src, Family::Gcc, OptLevel::O0); // EndLine
        let c = lower_src(src, Family::Clang, OptLevel::O0); // StartLine
        let find_line_const = |ir: &IrProgram| {
            ir.functions[0]
                .blocks
                .iter()
                .flat_map(|b| &b.insts)
                .find_map(|i| match i {
                    Inst::Const {
                        val: ConstVal::I32(v),
                        ..
                    } if *v <= 4 && *v >= 1 => Some(*v),
                    _ => None,
                })
        };
        let gl = find_line_const(&g).unwrap();
        let cl = find_line_const(&c).unwrap();
        assert_eq!(cl, 1);
        assert_eq!(gl, 2);
    }

    #[test]
    fn addressed_analysis_marks_only_ampersanded_scalars() {
        let src = "int main() { int a; int b; int* p = &a; *p = 1; b = 2; return a + b; }";
        let ir = lower_src(src, Family::Gcc, OptLevel::O0);
        let f = &ir.functions[0];
        let slot_a = f.slots.iter().find(|s| s.name == "a").unwrap();
        let slot_b = f.slots.iter().find(|s| s.name == "b").unwrap();
        assert!(slot_a.addressed);
        assert!(!slot_b.addressed);
    }

    #[test]
    fn ternary_and_logical_lower_with_blocks() {
        let src = "int main() { int a = 1; int b = a ? 2 : 3; int c = a && b; return b + c; }";
        let ir = lower_src(src, Family::Gcc, OptLevel::O0);
        assert!(ir.functions[0].blocks.len() >= 6);
    }

    #[test]
    fn break_continue_target_correct_blocks() {
        let src = r#"
            int main() {
                int i;
                int n = 0;
                for (i = 0; i < 10; i++) {
                    if (i == 2) continue;
                    if (i == 5) break;
                    n++;
                }
                return n;
            }
        "#;
        let ir = lower_src(src, Family::Gcc, OptLevel::O0);
        // Just ensure lowering completed with a plausible CFG.
        assert!(ir.functions[0].blocks.len() > 8);
    }

    #[test]
    fn struct_field_access_uses_offsets() {
        let src = r#"
            struct s { char c; long l; };
            int main() { struct s v; v.l = 7; return (int)v.l; }
        "#;
        let ir = lower_src(src, Family::Gcc, OptLevel::O0);
        let f = &ir.functions[0];
        // Offset 8 constant must appear (field `l` at offset 8).
        let has_off8 = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Const {
                    val: ConstVal::I64(8),
                    ..
                }
            )
        });
        assert!(has_off8);
    }
}
