//! Function inlining (`-O2`+; smaller threshold at `-Os`).
//!
//! Inlining matters for CompDiff realism twice over: it merges callee
//! locals into the caller's frame (changing stack layout and thus
//! uninitialized/OOB behaviour), and it exposes cross-function UB patterns
//! to `ub_exploit`.

use crate::ir::*;
use crate::personality::{OptLevel, Personality};

/// Maximum number of inlining operations per function (expansion guard).
const MAX_INLINES_PER_FUNCTION: usize = 24;

/// Runs the inliner over the whole program.
pub fn run(prog: &mut IrProgram, personality: &Personality) {
    let threshold = match personality.id.level {
        OptLevel::Os => 12,
        _ => 40,
    };
    let n = prog.functions.len();
    for caller in 0..n {
        let mut budget = MAX_INLINES_PER_FUNCTION;
        loop {
            if budget == 0 {
                break;
            }
            let Some((block, idx, callee)) = find_inlinable(prog, caller, threshold) else {
                break;
            };
            let callee_fn = prog.functions[callee.0 as usize].clone();
            inline_one(&mut prog.functions[caller], block, idx, &callee_fn);
            budget -= 1;
        }
    }
}

/// Finds the first inlinable call site in `caller`.
fn find_inlinable(
    prog: &IrProgram,
    caller: usize,
    threshold: usize,
) -> Option<(BlockId, usize, FuncId)> {
    let f = &prog.functions[caller];
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if let Inst::Call {
                callee: Callee::Func(fid),
                ..
            } = inst
            {
                if fid.0 as usize == caller {
                    continue; // recursion
                }
                let callee = &prog.functions[fid.0 as usize];
                if callee.inst_count() > threshold {
                    continue;
                }
                if callee.name == "main" {
                    continue;
                }
                // Callee must not call itself or the caller (mutual recursion).
                let recursive = callee.blocks.iter().flat_map(|b| &b.insts).any(|i| {
                    matches!(i, Inst::Call { callee: Callee::Func(g), .. }
                             if g.0 as usize == caller || g == fid)
                });
                if recursive {
                    continue;
                }
                return Some((BlockId(bi as u32), ii, *fid));
            }
        }
    }
    None
}

/// Splices `callee` into `caller` at the given call site.
fn inline_one(caller: &mut IrFunction, block: BlockId, idx: usize, callee: &IrFunction) {
    let reg_off = caller.reg_count;
    let slot_off = caller.slots.len() as u32;
    let block_off = caller.blocks.len() as u32;

    // Extract the call.
    let call = caller.blocks[block.0 as usize].insts[idx].clone();
    let Inst::Call {
        dst: call_dst,
        args,
        ..
    } = call
    else {
        panic!("inline target is not a call")
    };

    // Split the caller block: everything after the call moves to `cont`.
    let tail: Vec<Inst> = caller.blocks[block.0 as usize].insts.split_off(idx + 1);
    caller.blocks[block.0 as usize].insts.pop(); // the call itself
    let old_term = caller.blocks[block.0 as usize].term.clone();

    // Import callee registers and slots. Source lines travel with the
    // registers so inlined code stays attributable.
    for (i, ty) in callee.reg_tys.iter().enumerate() {
        caller.reg_tys.push(*ty);
        caller
            .reg_lines
            .push(callee.reg_lines.get(i).copied().unwrap_or(0));
    }
    caller.reg_count += callee.reg_count;
    for s in &callee.slots {
        caller.slots.push(s.clone());
    }

    let map_reg = |v: ValueId| ValueId(v.0 + reg_off);
    let map_slot = |s: SlotId| SlotId(s.0 + slot_off);
    let map_block = |b: BlockId| BlockId(b.0 + block_off);

    // The continuation block.
    let cont = BlockId((caller.blocks.len() + callee.blocks.len()) as u32);

    // Import callee blocks with remapping; returns become jumps to cont.
    for cb in &callee.blocks {
        let mut insts = Vec::with_capacity(cb.insts.len());
        for inst in &cb.insts {
            insts.push(remap_inst(inst, &map_reg, &map_slot));
        }
        let term = match &cb.term {
            Terminator::Jump(t) => Terminator::Jump(map_block(*t)),
            Terminator::Br { cond, then, els } => Terminator::Br {
                cond: map_reg(*cond),
                then: map_block(*then),
                els: map_block(*els),
            },
            Terminator::Ret(v) => {
                if let (Some(dst), Some(v)) = (call_dst, v) {
                    let ty = caller.reg_tys[dst.0 as usize];
                    insts.push(Inst::Copy {
                        dst,
                        ty,
                        src: map_reg(*v),
                    });
                }
                Terminator::Jump(cont)
            }
            Terminator::Unreachable => Terminator::Unreachable,
        };
        caller.blocks.push(Block { insts, term });
    }

    // Continuation block gets the tail and the original terminator.
    caller.blocks.push(Block {
        insts: tail,
        term: old_term,
    });
    debug_assert_eq!(caller.blocks.len() as u32 - 1, cont.0);

    // Pass arguments: copy into the callee's parameter registers, then jump
    // to the callee entry.
    let entry = map_block(BlockId(0));
    let site = &mut caller.blocks[block.0 as usize];
    for (i, a) in args.iter().enumerate() {
        let param = ValueId(i as u32 + reg_off);
        let ty = callee.param_tys.get(i).copied().unwrap_or(IrType::I64);
        site.insts.push(Inst::Copy {
            dst: param,
            ty,
            src: *a,
        });
    }
    site.term = Terminator::Jump(entry);
}

fn remap_inst(
    inst: &Inst,
    map_reg: &impl Fn(ValueId) -> ValueId,
    map_slot: &impl Fn(SlotId) -> SlotId,
) -> Inst {
    match inst {
        Inst::Const { dst, ty, val } => Inst::Const {
            dst: map_reg(*dst),
            ty: *ty,
            val: *val,
        },
        Inst::Copy { dst, ty, src } => Inst::Copy {
            dst: map_reg(*dst),
            ty: *ty,
            src: map_reg(*src),
        },
        Inst::Bin {
            dst,
            ty,
            op,
            a,
            b,
            ub_signed,
        } => Inst::Bin {
            dst: map_reg(*dst),
            ty: *ty,
            op: *op,
            a: map_reg(*a),
            b: map_reg(*b),
            ub_signed: *ub_signed,
        },
        Inst::Un {
            dst,
            ty,
            op,
            a,
            ub_signed,
        } => Inst::Un {
            dst: map_reg(*dst),
            ty: *ty,
            op: *op,
            a: map_reg(*a),
            ub_signed: *ub_signed,
        },
        Inst::Cast { dst, kind, a } => Inst::Cast {
            dst: map_reg(*dst),
            kind: *kind,
            a: map_reg(*a),
        },
        Inst::FrameAddr { dst, slot } => Inst::FrameAddr {
            dst: map_reg(*dst),
            slot: map_slot(*slot),
        },
        Inst::Load {
            dst,
            ty,
            addr,
            width,
            sext,
        } => Inst::Load {
            dst: map_reg(*dst),
            ty: *ty,
            addr: map_reg(*addr),
            width: *width,
            sext: *sext,
        },
        Inst::Store { addr, src, width } => Inst::Store {
            addr: map_reg(*addr),
            src: map_reg(*src),
            width: *width,
        },
        Inst::Call {
            dst,
            ret_ty,
            callee,
            args,
            arg_tys,
        } => Inst::Call {
            dst: dst.map(map_reg),
            ret_ty: *ret_ty,
            callee: callee.clone(),
            args: args.iter().map(|a| map_reg(*a)).collect(),
            arg_tys: arg_tys.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::personality::{CompilerImpl, Family, OptLevel};

    fn lower_with(src: &str, level: OptLevel) -> (IrProgram, Personality) {
        let checked = minc::check(src).unwrap();
        let p = CompilerImpl::new(Family::Gcc, level).personality();
        let mut ir = lower(&checked, &p);
        // The pipeline runs the scalar core before inlining; mirror that so
        // callee sizes match what the inliner sees in production.
        for (i, f) in ir.functions.iter_mut().enumerate() {
            crate::passes::mem2reg::run(f, i as u32);
            crate::passes::const_fold(f);
            crate::passes::copy_prop(f);
            crate::passes::dce(f);
            crate::passes::simplify_cfg(f);
        }
        (ir, p)
    }

    #[test]
    fn inlines_small_callee() {
        let src = "int two(int x) { return x + x; }\nint main() { return two(21); }";
        let (mut ir, p) = lower_with(src, OptLevel::O2);
        run(&mut ir, &p);
        let main = ir.functions.iter().find(|f| f.name == "main").unwrap();
        let calls = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Call {
                        callee: Callee::Func(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(calls, 0, "small callee should be fully inlined");
    }

    #[test]
    fn does_not_inline_recursive() {
        let src = "int fac(int n) { if (n <= 1) return 1; return n * fac(n - 1); }\nint main() { return fac(5); }";
        let (mut ir, p) = lower_with(src, OptLevel::O2);
        run(&mut ir, &p);
        let main = ir.functions.iter().find(|f| f.name == "main").unwrap();
        let calls = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Call {
                        callee: Callee::Func(_),
                        ..
                    }
                )
            })
            .count();
        assert!(calls >= 1, "recursive callee must not be inlined away");
    }

    #[test]
    fn callee_slots_merge_into_caller_frame() {
        let src = r#"
            int f(int x) { int tmp[2]; tmp[0] = x; tmp[1] = x + 1; return tmp[0] + tmp[1]; }
            int main() { return f(3); }
        "#;
        let (mut ir, p) = lower_with(src, OptLevel::O2);
        let before = ir
            .functions
            .iter()
            .find(|f| f.name == "main")
            .unwrap()
            .slots
            .len();
        run(&mut ir, &p);
        let after = ir
            .functions
            .iter()
            .find(|f| f.name == "main")
            .unwrap()
            .slots
            .len();
        assert!(after > before, "caller frame should absorb callee slots");
    }

    #[test]
    fn os_threshold_is_smaller() {
        // A mid-size function: inlined at O2, kept at Os.
        let body: String = (0..10).map(|i| format!("acc = acc + {i}; ")).collect();
        let src =
            format!("int mid(int acc) {{ {body} return acc; }}\nint main() {{ return mid(1); }}");
        let (mut ir2, p2) = lower_with(&src, OptLevel::O2);
        run(&mut ir2, &p2);
        let (mut irs, ps) = lower_with(&src, OptLevel::Os);
        run(&mut irs, &ps);
        let count_calls = |ir: &IrProgram| {
            ir.functions
                .iter()
                .find(|f| f.name == "main")
                .unwrap()
                .blocks
                .iter()
                .flat_map(|b| &b.insts)
                .filter(|i| {
                    matches!(
                        i,
                        Inst::Call {
                            callee: Callee::Func(_),
                            ..
                        }
                    )
                })
                .count()
        };
        assert_eq!(count_calls(&ir2), 0);
        assert!(count_calls(&irs) >= 1);
    }
}
