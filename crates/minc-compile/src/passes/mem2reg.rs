//! Slot-to-register promotion.
//!
//! At `-O0` every local lives in a frame slot; reading an uninitialized
//! local reads whatever bytes the stack happens to contain. At `-O1`+ this
//! pass promotes unaddressed scalar slots to virtual registers; an
//! uninitialized promoted local reads *register* junk instead. Both values
//! are indeterminate — and different per compiler implementation — which is
//! exactly why uninitialized-variable bugs are the paper's most common
//! unstable-code class (UninitMem, 27 of 78 real-world bugs).

use crate::ir::*;
use crate::personality::CompilerImpl;
use crate::rewrite_log::{RewriteLog, UbReason};
use std::collections::{HashMap, HashSet};

/// Promotes every promotable slot of `f`. `func_index` seeds junk ids so
/// different functions get different indeterminate values.
pub fn run(f: &mut IrFunction, func_index: u32) {
    run_inner(f, func_index);
}

/// Like [`run`], but records each promotion into `log` (when provided) as
/// an [`UbReason::UninitPromotion`] entry attributed to `impl_id`. The
/// entry's `key` is the junk id seeded into the promoted register, so a
/// consumer that sees that junk value flow into an observable use can
/// attribute the read back to this promotion.
pub fn run_logged(
    f: &mut IrFunction,
    func_index: u32,
    impl_id: CompilerImpl,
    log: Option<&mut RewriteLog>,
) {
    let promos = run_inner(f, func_index);
    if let Some(log) = log {
        for p in promos {
            log.record(
                impl_id,
                &f.name,
                UbReason::UninitPromotion,
                p.first_load_line,
                p.junk_id,
                format!(
                    "promoted slot `{}` to a register seeded with implementation-specific \
                     junk; any read before a store observes an indeterminate value",
                    p.slot_name
                ),
            );
        }
    }
}

/// One slot promotion, for provenance logging.
struct Promotion {
    junk_id: u32,
    slot_name: String,
    /// Source line of the first load rewritten for this slot (0 if the
    /// slot is never loaded).
    first_load_line: u32,
}

fn run_inner(f: &mut IrFunction, func_index: u32) -> Vec<Promotion> {
    let candidates: Vec<SlotId> = f
        .slots
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.addressed && !s.promoted && s.scalar.is_some())
        .map(|(i, _)| SlotId(i as u32))
        .collect();
    if candidates.is_empty() {
        return Vec::new();
    }

    // Map: FrameAddr destination register -> slot, across the whole function
    // (each FrameAddr has a fresh, never-redefined destination by
    // construction; verify anyway).
    let mut addr_reg: HashMap<ValueId, SlotId> = HashMap::new();
    let mut multiply_defined: HashSet<ValueId> = HashSet::new();
    let mut defined: HashSet<ValueId> = HashSet::new();
    for b in &f.blocks {
        for inst in &b.insts {
            if let Some(d) = inst.dst() {
                if !defined.insert(d) {
                    multiply_defined.insert(d);
                }
            }
            if let Inst::FrameAddr { dst, slot } = inst {
                addr_reg.insert(*dst, *slot);
            }
        }
    }

    // A slot is promotable iff every use of each of its address registers is
    // a Load/Store *address* of the slot's full scalar width.
    let mut bad: HashSet<SlotId> = HashSet::new();
    let cand_set: HashSet<SlotId> = candidates.iter().copied().collect();
    for (r, s) in &addr_reg {
        if multiply_defined.contains(r) {
            bad.insert(*s);
        }
    }
    for b in &f.blocks {
        for inst in &b.insts {
            let check = |v: ValueId, bad: &mut HashSet<SlotId>| {
                if let Some(s) = addr_reg.get(&v) {
                    if cand_set.contains(s) {
                        bad.insert(*s);
                    }
                }
            };
            match inst {
                Inst::Load { addr, width, .. } => {
                    if let Some(s) = addr_reg.get(addr) {
                        if cand_set.contains(s) && f.slots[s.0 as usize].size != width.bytes() {
                            bad.insert(*s);
                        }
                    }
                }
                Inst::Store { addr, src, width } => {
                    if let Some(s) = addr_reg.get(addr) {
                        if cand_set.contains(s) && f.slots[s.0 as usize].size != width.bytes() {
                            bad.insert(*s);
                        }
                    }
                    check(*src, &mut bad);
                }
                other => {
                    for u in other.uses() {
                        check(u, &mut bad);
                    }
                }
            }
        }
        match &b.term {
            Terminator::Br { cond, .. } => {
                if let Some(s) = addr_reg.get(cond) {
                    bad.insert(*s);
                }
            }
            Terminator::Ret(Some(v)) => {
                if let Some(s) = addr_reg.get(v) {
                    bad.insert(*s);
                }
            }
            _ => {}
        }
    }

    let promote: Vec<SlotId> = candidates
        .into_iter()
        .filter(|s| !bad.contains(s))
        .collect();
    if promote.is_empty() {
        return Vec::new();
    }

    // One register per promoted slot, junk-initialized in the entry block.
    let mut slot_reg: HashMap<SlotId, ValueId> = HashMap::new();
    let mut inits = Vec::new();
    let mut promos: Vec<Promotion> = Vec::new();
    let mut promo_index: HashMap<SlotId, usize> = HashMap::new();
    for s in &promote {
        let ty = f.slots[s.0 as usize].scalar.expect("candidate is scalar");
        let r = f.new_reg(ty);
        slot_reg.insert(*s, r);
        let junk_id = 0x4000_0000 | (func_index << 12) | s.0;
        inits.push(Inst::Const {
            dst: r,
            ty,
            val: ConstVal::Junk(junk_id),
        });
        promo_index.insert(*s, promos.len());
        promos.push(Promotion {
            junk_id,
            slot_name: f.slots[s.0 as usize].name.clone(),
            first_load_line: 0,
        });
        f.slots[s.0 as usize].promoted = true;
    }

    // Rewrite all blocks.
    for b in &mut f.blocks {
        let mut out = Vec::with_capacity(b.insts.len());
        for inst in b.insts.drain(..) {
            match &inst {
                Inst::FrameAddr { dst, slot } if slot_reg.contains_key(slot) => {
                    // Deleted; remember nothing (map already built).
                    let _ = dst;
                }
                Inst::Load { dst, ty, addr, .. } => {
                    if let Some(s) = addr_reg.get(addr).filter(|s| slot_reg.contains_key(s)) {
                        let p = &mut promos[promo_index[s]];
                        if p.first_load_line == 0 {
                            p.first_load_line =
                                f.reg_lines.get(dst.0 as usize).copied().unwrap_or(0);
                        }
                        out.push(Inst::Copy {
                            dst: *dst,
                            ty: *ty,
                            src: slot_reg[s],
                        });
                    } else {
                        out.push(inst);
                    }
                }
                Inst::Store { addr, src, .. } => {
                    if let Some(s) = addr_reg.get(addr).filter(|s| slot_reg.contains_key(s)) {
                        let r = slot_reg[s];
                        let ty = f.reg_tys[r.0 as usize];
                        out.push(Inst::Copy {
                            dst: r,
                            ty,
                            src: *src,
                        });
                    } else {
                        out.push(inst);
                    }
                }
                _ => out.push(inst),
            }
        }
        b.insts = out;
    }
    // Prepend junk initializers to the entry block.
    let entry = &mut f.blocks[0];
    inits.append(&mut entry.insts);
    entry.insts = inits;
    promos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::personality::{CompilerImpl, Family, OptLevel};

    fn lower_o0(src: &str) -> IrProgram {
        let checked = minc::check(src).unwrap();
        let p = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        lower(&checked, &p)
    }

    #[test]
    fn promotes_simple_scalars() {
        let mut ir = lower_o0("int main() { int a = 1; int b = 2; return a + b; }");
        let f = &mut ir.functions[0];
        run(f, 0);
        assert!(f.slots.iter().all(|s| s.promoted));
        let frame_loads = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Load { .. } | Inst::Store { .. } | Inst::FrameAddr { .. }
                )
            })
            .count();
        assert_eq!(frame_loads, 0);
    }

    #[test]
    fn skips_addressed_slots() {
        let mut ir = lower_o0("int main() { int a = 1; int* p = &a; *p = 2; return a; }");
        let f = &mut ir.functions[0];
        run(f, 0);
        let a = f.slots.iter().find(|s| s.name == "a").unwrap();
        let p = f.slots.iter().find(|s| s.name == "p").unwrap();
        assert!(!a.promoted);
        assert!(p.promoted);
    }

    #[test]
    fn skips_arrays() {
        let mut ir = lower_o0("int main() { int a[4]; a[0] = 1; return a[0]; }");
        let f = &mut ir.functions[0];
        run(f, 0);
        assert!(!f.slots.iter().find(|s| s.name == "a").unwrap().promoted);
    }

    #[test]
    fn uninitialized_promoted_local_reads_junk() {
        let mut ir = lower_o0("int main() { int u; return u; }");
        let f = &mut ir.functions[0];
        run(f, 0);
        let junk = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Const {
                    val: ConstVal::Junk(_),
                    ..
                }
            )
        });
        assert!(junk);
    }

    #[test]
    fn params_still_initialized_after_promotion() {
        let mut ir = lower_o0("int f(int x) { return x + 1; }\nint main() { return f(4); }");
        let f = &mut ir.functions[0];
        run(f, 0);
        // The parameter spill became a Copy from v0 into the slot register.
        let has_param_copy = f.blocks[0].insts.iter().any(|i| {
            matches!(
                i,
                Inst::Copy {
                    src: ValueId(0),
                    ..
                }
            )
        });
        assert!(has_param_copy);
    }

    #[test]
    fn promotion_shrinks_the_frame() {
        let src = "int main() { int a = 1; int b = 2; int c[4]; c[0] = a; return b + c[0]; }";
        let checked = minc::check(src).unwrap();
        let p0 = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        let mut ir = lower(&checked, &p0);
        let f = &mut ir.functions[0];
        let full = crate::layout::place_frame(f, &p0).frame_size;
        run(f, 0);
        let shrunk = crate::layout::place_frame(f, &p0).frame_size;
        assert!(shrunk < full, "frame should shrink: {full} -> {shrunk}");
    }
}
