//! Optimization passes.
//!
//! All scalar passes are deliberately *block-local* (the IR uses mutable
//! virtual registers, not SSA), which keeps each pass small, auditable, and
//! obviously terminating. The UB-related passes ([`ub_exploit`],
//! [`mem2reg`], widen-mul, unroll, pow-fast) are where legal compiler
//! behaviour *diverges* — they are the mechanism by which unstable code
//! becomes observable.

pub mod inline;
pub mod mem2reg;
pub mod ub_exploit;
pub mod unroll;

use crate::ir::*;
use crate::personality::{PassKind, Personality};
use crate::rewrite_log::RewriteLog;
use std::collections::HashMap;

/// Runs the personality's pipeline over the whole program.
pub fn run_pipeline(prog: &mut IrProgram, personality: &Personality) {
    run_pipeline_logged(prog, personality, None);
}

/// Runs the personality's pipeline, recording UB-justified rewrites into
/// `log` (when provided). Passing `None` is exactly [`run_pipeline`].
pub fn run_pipeline_logged(
    prog: &mut IrProgram,
    personality: &Personality,
    mut log: Option<&mut RewriteLog>,
) {
    for pass in personality.pipeline.clone() {
        run_pass_logged(prog, pass, personality, log.as_deref_mut());
    }
}

/// Runs one pass over the whole program.
pub fn run_pass(prog: &mut IrProgram, pass: PassKind, personality: &Personality) {
    run_pass_logged(prog, pass, personality, None);
}

/// Runs one pass, recording UB-justified rewrites into `log` (when
/// provided). Only the UB-exploiting passes (`UbExploit`, `Mem2Reg`,
/// `Unroll`) produce entries.
pub fn run_pass_logged(
    prog: &mut IrProgram,
    pass: PassKind,
    personality: &Personality,
    mut log: Option<&mut RewriteLog>,
) {
    match pass {
        PassKind::Inline => inline::run(prog, personality),
        PassKind::Unroll => {
            for f in &mut prog.functions {
                unroll::run_logged(f, personality, log.as_deref_mut());
            }
        }
        PassKind::Mem2Reg => {
            for (i, f) in prog.functions.iter_mut().enumerate() {
                mem2reg::run_logged(f, i as u32, personality.id, log.as_deref_mut());
            }
        }
        PassKind::UbExploit => {
            for f in &mut prog.functions {
                ub_exploit::run_with_patch_logged(f, personality.id, log.as_deref_mut());
            }
        }
        PassKind::WidenMul => {
            for f in &mut prog.functions {
                widen_mul(f);
            }
        }
        PassKind::ConstFold => {
            for f in &mut prog.functions {
                const_fold_with(f, personality.shift_fold_zero);
            }
        }
        PassKind::CopyProp => {
            for f in &mut prog.functions {
                copy_prop(f);
            }
        }
        PassKind::Cse => {
            for f in &mut prog.functions {
                cse(f);
            }
        }
        PassKind::Dce => {
            for f in &mut prog.functions {
                dce(f);
            }
        }
        PassKind::Dse => {
            for f in &mut prog.functions {
                dse(f);
            }
        }
        PassKind::SimplifyCfg => {
            for f in &mut prog.functions {
                simplify_cfg(f);
            }
        }
        PassKind::PowFast => {
            for f in &mut prog.functions {
                pow_fast(f);
            }
        }
    }
}

// ---------------------------------------------------------------- constant
// folding + algebraic simplification

/// Folds constants and simple identities, block-locally. Constant branches
/// become unconditional jumps. Trapping operations (division) are *not*
/// folded when the divisor is a constant zero — the trap must stay.
pub fn const_fold(f: &mut IrFunction) {
    const_fold_with(f, false);
}

/// [`const_fold`] with an explicit out-of-range-constant-shift policy
/// (`true` folds to 0 like clang-sim, `false` masks like gcc-sim/x86).
pub fn const_fold_with(f: &mut IrFunction, shift_fold_zero: bool) {
    for b in 0..f.blocks.len() {
        let mut known: HashMap<ValueId, ConstVal> = HashMap::new();
        let insts = std::mem::take(&mut f.blocks[b].insts);
        let mut out = Vec::with_capacity(insts.len());
        for inst in insts {
            match &inst {
                Inst::Const { dst, val, .. } => {
                    known.insert(*dst, *val);
                    out.push(inst);
                    continue;
                }
                Inst::Copy { dst, ty, src } => {
                    if let Some(v) = pure_const(&known, *src) {
                        let (dst, ty) = (*dst, *ty);
                        known.insert(dst, v);
                        out.push(Inst::Const { dst, ty, val: v });
                        continue;
                    }
                    known.remove(dst);
                    out.push(inst);
                    continue;
                }
                Inst::Bin {
                    dst,
                    ty,
                    op,
                    a,
                    b: rb,
                    ub_signed,
                } => {
                    let (dst, ty, op, a, rb, ub_signed) = (*dst, *ty, *op, *a, *rb, *ub_signed);
                    if let (Some(ca), Some(cb)) = (pure_const(&known, a), pure_const(&known, rb)) {
                        if let Some(v) = eval_bin_policy(op, ty, ca, cb, shift_fold_zero) {
                            known.insert(dst, v);
                            let cty = if op.is_comparison() { IrType::I32 } else { ty };
                            out.push(Inst::Const {
                                dst,
                                ty: cty,
                                val: v,
                            });
                            continue;
                        }
                    }
                    // Algebraic identities with one constant side.
                    if let Some(repl) = algebraic(&known, dst, ty, op, a, rb, ub_signed) {
                        known.remove(&dst);
                        if let Inst::Const { val, .. } = repl {
                            known.insert(dst, val);
                        }
                        out.push(repl);
                        continue;
                    }
                    known.remove(&dst);
                    out.push(inst);
                    continue;
                }
                Inst::Un { dst, ty, op, a, .. } => {
                    if let Some(ca) = pure_const(&known, *a) {
                        if let Some(v) = eval_un(*op, *ty, ca) {
                            let (dst, ty) = (*dst, *ty);
                            known.insert(dst, v);
                            out.push(Inst::Const { dst, ty, val: v });
                            continue;
                        }
                    }
                    known.remove(&inst.dst().unwrap());
                    out.push(inst);
                    continue;
                }
                Inst::Cast { dst, kind, a } => {
                    if let Some(ca) = pure_const(&known, *a) {
                        if let Some(v) = eval_cast(*kind, ca) {
                            let dst = *dst;
                            let ty = cast_result_ty(*kind);
                            known.insert(dst, v);
                            out.push(Inst::Const { dst, ty, val: v });
                            continue;
                        }
                    }
                    known.remove(dst);
                    out.push(inst);
                    continue;
                }
                _ => {}
            }
            if let Some(d) = inst.dst() {
                known.remove(&d);
            }
            // Keep addresses const-known through address-producing consts.
            if let Inst::Const { dst, val, .. } = &inst {
                known.insert(*dst, *val);
            }
            out.push(inst);
        }
        f.blocks[b].insts = out;
        // Branch folding.
        if let Terminator::Br { cond, then, els } = f.blocks[b].term.clone() {
            if let Some(v) = known.get(&cond) {
                let taken = match v {
                    ConstVal::I32(x) => *x != 0,
                    ConstVal::I64(x) => *x != 0,
                    _ => continue,
                };
                f.blocks[b].term = Terminator::Jump(if taken { then } else { els });
            }
        }
    }
}

/// A constant usable in arithmetic (addresses and junk are opaque).
fn pure_const(known: &HashMap<ValueId, ConstVal>, v: ValueId) -> Option<ConstVal> {
    match known.get(&v) {
        Some(c @ (ConstVal::I32(_) | ConstVal::I64(_) | ConstVal::F64(_))) => Some(*c),
        _ => None,
    }
}

fn cast_result_ty(kind: CastKind) -> IrType {
    match kind {
        CastKind::SextI32I64 | CastKind::ZextI32I64 | CastKind::F64I64 => IrType::I64,
        CastKind::TruncI64I32 | CastKind::F64I32 => IrType::I32,
        CastKind::SI32F64 | CastKind::UI32F64 | CastKind::SI64F64 => IrType::F64,
    }
}

fn cv_i64(v: ConstVal) -> Option<i64> {
    match v {
        ConstVal::I32(x) => Some(x as i64),
        ConstVal::I64(x) => Some(x),
        _ => None,
    }
}

fn cv_f64(v: ConstVal) -> Option<f64> {
    match v {
        ConstVal::F64(x) => Some(x),
        _ => None,
    }
}

/// Evaluates a binary op on constants with the default (masking) shift
/// policy. Returns `None` for operations that must not be folded
/// (runtime traps).
pub fn eval_bin(op: BinKind, ty: IrType, a: ConstVal, b: ConstVal) -> Option<ConstVal> {
    eval_bin_policy(op, ty, a, b, false)
}

/// [`eval_bin`] with an explicit oversized-constant-shift policy.
pub fn eval_bin_policy(
    op: BinKind,
    ty: IrType,
    a: ConstVal,
    b: ConstVal,
    shift_fold_zero: bool,
) -> Option<ConstVal> {
    use BinKind::*;
    if op.is_float() {
        let (x, y) = (cv_f64(a)?, cv_f64(b)?);
        return Some(match op {
            FAdd => ConstVal::F64(x + y),
            FSub => ConstVal::F64(x - y),
            FMul => ConstVal::F64(x * y),
            FDiv => ConstVal::F64(x / y),
            FEq => ConstVal::I32((x == y) as i32),
            FNe => ConstVal::I32((x != y) as i32),
            FLt => ConstVal::I32((x < y) as i32),
            FLe => ConstVal::I32((x <= y) as i32),
            FGt => ConstVal::I32((x > y) as i32),
            FGe => ConstVal::I32((x >= y) as i32),
            _ => unreachable!(),
        });
    }
    let (x, y) = (cv_i64(a)?, cv_i64(b)?);
    // Never fold a trap away *or into existence* here; DCE may still remove
    // an unused trapping op (that asymmetry is the UB story for CWE-369).
    if op.can_trap() && y == 0 {
        return None;
    }
    let narrow = ty == IrType::I32;
    let wrap = |v: i64| -> ConstVal {
        if narrow {
            ConstVal::I32(v as i32)
        } else {
            ConstVal::I64(v)
        }
    };
    let (ux, uy) = if narrow {
        ((x as u32) as u64, (y as u32) as u64)
    } else {
        (x as u64, y as u64)
    };
    let (sx, sy) = if narrow {
        (x as i32 as i64, y as i32 as i64)
    } else {
        (x, y)
    };
    Some(match op {
        Add => wrap(sx.wrapping_add(sy)),
        Sub => wrap(sx.wrapping_sub(sy)),
        Mul => wrap(sx.wrapping_mul(sy)),
        DivS => {
            if sx == i64::MIN && sy == -1 {
                return None;
            }
            if narrow && sx as i32 == i32::MIN && sy as i32 == -1 {
                return None;
            }
            wrap(sx.wrapping_div(sy))
        }
        DivU => wrap((ux / uy) as i64),
        RemS => {
            if (narrow && sx as i32 == i32::MIN && sy as i32 == -1) || (sx == i64::MIN && sy == -1)
            {
                return None;
            }
            wrap(sx.wrapping_rem(sy))
        }
        RemU => wrap((ux % uy) as i64),
        // Constant shifts use the x86 masking convention; `ub_exploit`
        // may *also* rewrite oversized shifts differently — that pair of
        // legal choices is a divergence axis.
        Shl => {
            let m = if narrow { 31 } else { 63 };
            if shift_fold_zero && (sy < 0 || sy > m as i64) {
                return Some(wrap(0));
            }
            wrap(sx.wrapping_shl((sy as u32) & m))
        }
        ShrS => {
            let m = if narrow { 31 } else { 63 };
            if shift_fold_zero && (sy < 0 || sy > m as i64) {
                return Some(wrap(0));
            }
            wrap(sx.wrapping_shr((sy as u32) & m))
        }
        ShrU => {
            let m = if narrow { 31 } else { 63 };
            if shift_fold_zero && (sy < 0 || sy > m as i64) {
                return Some(wrap(0));
            }
            wrap((ux.wrapping_shr((sy as u32) & m)) as i64)
        }
        And => wrap(sx & sy),
        Or => wrap(sx | sy),
        Xor => wrap(sx ^ sy),
        Eq => ConstVal::I32((sx == sy) as i32),
        Ne => ConstVal::I32((sx != sy) as i32),
        LtS => ConstVal::I32((sx < sy) as i32),
        LeS => ConstVal::I32((sx <= sy) as i32),
        GtS => ConstVal::I32((sx > sy) as i32),
        GeS => ConstVal::I32((sx >= sy) as i32),
        LtU => ConstVal::I32((ux < uy) as i32),
        LeU => ConstVal::I32((ux <= uy) as i32),
        GtU => ConstVal::I32((ux > uy) as i32),
        GeU => ConstVal::I32((ux >= uy) as i32),
        _ => unreachable!(),
    })
}

fn eval_un(op: UnKind, ty: IrType, a: ConstVal) -> Option<ConstVal> {
    let narrow = ty == IrType::I32;
    match op {
        UnKind::Neg => {
            let x = cv_i64(a)?;
            Some(if narrow {
                ConstVal::I32((x as i32).wrapping_neg())
            } else {
                ConstVal::I64(x.wrapping_neg())
            })
        }
        UnKind::BitNot => {
            let x = cv_i64(a)?;
            Some(if narrow {
                ConstVal::I32(!(x as i32))
            } else {
                ConstVal::I64(!x)
            })
        }
        UnKind::FNeg => Some(ConstVal::F64(-cv_f64(a)?)),
    }
}

fn eval_cast(kind: CastKind, a: ConstVal) -> Option<ConstVal> {
    Some(match kind {
        CastKind::SextI32I64 => ConstVal::I64(cv_i64(a)? as i32 as i64),
        CastKind::ZextI32I64 => ConstVal::I64((cv_i64(a)? as u32) as i64),
        CastKind::TruncI64I32 => ConstVal::I32(cv_i64(a)? as i32),
        CastKind::SI32F64 => ConstVal::F64(cv_i64(a)? as i32 as f64),
        CastKind::UI32F64 => ConstVal::F64((cv_i64(a)? as u32) as f64),
        CastKind::SI64F64 => ConstVal::F64(cv_i64(a)? as f64),
        CastKind::F64I32 => ConstVal::I32(cv_f64(a)? as i32),
        CastKind::F64I64 => ConstVal::I64(cv_f64(a)? as i64),
    })
}

/// `x+0`, `x*1`, `x*0`, `x&0`, `x|0`, `x^0`, `x-0`, `x/1` and commuted
/// variants. Returns the replacement instruction, if any.
fn algebraic(
    known: &HashMap<ValueId, ConstVal>,
    dst: ValueId,
    ty: IrType,
    op: BinKind,
    a: ValueId,
    b: ValueId,
    _ub_signed: bool,
) -> Option<Inst> {
    use BinKind::*;
    let ca = pure_const(known, a).and_then(cv_i64);
    let cb = pure_const(known, b).and_then(cv_i64);
    let zero = |d| Inst::Const {
        dst: d,
        ty,
        val: if ty == IrType::I32 {
            ConstVal::I32(0)
        } else {
            ConstVal::I64(0)
        },
    };
    match op {
        Add => {
            if cb == Some(0) {
                return Some(Inst::Copy { dst, ty, src: a });
            }
            if ca == Some(0) {
                return Some(Inst::Copy { dst, ty, src: b });
            }
        }
        Sub if cb == Some(0) => return Some(Inst::Copy { dst, ty, src: a }),
        Mul => {
            if cb == Some(1) {
                return Some(Inst::Copy { dst, ty, src: a });
            }
            if ca == Some(1) {
                return Some(Inst::Copy { dst, ty, src: b });
            }
            if cb == Some(0) || ca == Some(0) {
                return Some(zero(dst));
            }
        }
        DivS | DivU if cb == Some(1) => return Some(Inst::Copy { dst, ty, src: a }),
        And if cb == Some(0) || ca == Some(0) => return Some(zero(dst)),
        Or | Xor => {
            if cb == Some(0) {
                return Some(Inst::Copy { dst, ty, src: a });
            }
            if ca == Some(0) {
                return Some(Inst::Copy { dst, ty, src: b });
            }
        }
        Shl | ShrS | ShrU if cb == Some(0) => return Some(Inst::Copy { dst, ty, src: a }),
        _ => {}
    }
    None
}

// ---------------------------------------------------------------- copy prop

/// Replaces uses of registers that are block-locally known to be copies.
pub fn copy_prop(f: &mut IrFunction) {
    for b in &mut f.blocks {
        let mut alias: HashMap<ValueId, ValueId> = HashMap::new();
        let invalidate = |alias: &mut HashMap<ValueId, ValueId>, r: ValueId| {
            alias.remove(&r);
            alias.retain(|_, v| *v != r);
        };
        for inst in &mut b.insts {
            // Rewrite uses first.
            rewrite_uses(inst, &alias);
            match inst {
                Inst::Copy { dst, src, .. } => {
                    let (d, s) = (*dst, *src);
                    invalidate(&mut alias, d);
                    if d != s {
                        alias.insert(d, s);
                    }
                }
                other => {
                    if let Some(d) = other.dst() {
                        invalidate(&mut alias, d);
                    }
                }
            }
        }
        if let Terminator::Br { cond, .. } = &mut b.term {
            if let Some(s) = alias.get(cond) {
                *cond = *s;
            }
        }
        if let Terminator::Ret(Some(v)) = &mut b.term {
            if let Some(s) = alias.get(v) {
                *v = *s;
            }
        }
    }
}

fn rewrite_uses(inst: &mut Inst, alias: &HashMap<ValueId, ValueId>) {
    let get = |v: &mut ValueId| {
        if let Some(s) = alias.get(v) {
            *v = *s;
        }
    };
    match inst {
        Inst::Copy { src, .. } => get(src),
        Inst::Bin { a, b, .. } => {
            get(a);
            get(b);
        }
        Inst::Un { a, .. } => get(a),
        Inst::Cast { a, .. } => get(a),
        Inst::Load { addr, .. } => get(addr),
        Inst::Store { addr, src, .. } => {
            get(addr);
            get(src);
        }
        Inst::Call { args, .. } => args.iter_mut().for_each(get),
        Inst::Const { .. } | Inst::FrameAddr { .. } => {}
    }
}

// ---------------------------------------------------------------- CSE

/// Block-local common subexpression elimination over pure instructions.
/// Loads are also deduplicated until the next store/call.
pub fn cse(f: &mut IrFunction) {
    #[derive(PartialEq, Eq, Hash)]
    enum Key {
        Bin(BinKind, IrType, ValueId, ValueId),
        Un(UnKind, IrType, ValueId),
        Cast(CastKind, ValueId),
        Frame(SlotId),
        Load(ValueId, MemWidth, bool),
        /// Constants, encoded (float via bit pattern; junk by id).
        Const(IrType, u8, u64, i64),
    }
    fn const_key(ty: IrType, v: &ConstVal) -> Key {
        match v {
            ConstVal::I32(x) => Key::Const(ty, 0, 0, *x as i64),
            ConstVal::I64(x) => Key::Const(ty, 1, 0, *x),
            ConstVal::F64(x) => Key::Const(ty, 2, x.to_bits(), 0),
            ConstVal::GlobalAddr(g, off) => Key::Const(ty, 3, g.0 as u64, *off),
            ConstVal::StrAddr(s, off) => Key::Const(ty, 4, s.0 as u64, *off),
            ConstVal::Junk(id) => Key::Const(ty, 5, *id as u64, 0),
        }
    }
    for b in &mut f.blocks {
        let mut avail: HashMap<Key, ValueId> = HashMap::new();
        // Copy-forwarding within the pass so chained CSE opportunities
        // (e.g. identical constants feeding identical multiplies) are seen.
        let mut alias: HashMap<ValueId, ValueId> = HashMap::new();
        let mut out = Vec::with_capacity(b.insts.len());
        for mut inst in b.insts.drain(..) {
            rewrite_uses(&mut inst, &alias);
            let key = match &inst {
                Inst::Bin { op, ty, a, b, .. } => Some(Key::Bin(*op, *ty, *a, *b)),
                Inst::Un { op, ty, a, .. } => Some(Key::Un(*op, *ty, *a)),
                Inst::Cast { kind, a, .. } => Some(Key::Cast(*kind, *a)),
                Inst::FrameAddr { slot, .. } => Some(Key::Frame(*slot)),
                Inst::Load {
                    addr, width, sext, ..
                } => Some(Key::Load(*addr, *width, *sext)),
                Inst::Const { ty, val, .. } => Some(const_key(*ty, val)),
                _ => None,
            };
            // Memory clobbers invalidate loads.
            if matches!(inst, Inst::Store { .. } | Inst::Call { .. }) {
                avail.retain(|k, _| !matches!(k, Key::Load(..)));
            }
            let unalias = |alias: &mut HashMap<ValueId, ValueId>, r: ValueId| {
                alias.remove(&r);
                alias.retain(|_, v| *v != r);
            };
            if let Some(key) = key {
                if let Some(&prev) = avail.get(&key) {
                    let dst = inst.dst().unwrap();
                    let ty = f.reg_tys[dst.0 as usize];
                    invalidate_redefined(&mut avail, dst);
                    unalias(&mut alias, dst);
                    if dst != prev {
                        alias.insert(dst, prev);
                    }
                    out.push(Inst::Copy { dst, ty, src: prev });
                    continue;
                }
                let dst = inst.dst().unwrap();
                invalidate_redefined(&mut avail, dst);
                unalias(&mut alias, dst);
                avail.insert(key, dst);
                out.push(inst);
                continue;
            }
            if let Some(d) = inst.dst() {
                invalidate_redefined(&mut avail, d);
                unalias(&mut alias, d);
                if let Inst::Copy { dst, src, .. } = &inst {
                    if dst != src {
                        alias.insert(*dst, *src);
                    }
                }
            }
            out.push(inst);
        }
        b.insts = out;

        fn invalidate_redefined(avail: &mut HashMap<Key, ValueId>, redefined: ValueId) {
            avail.retain(|k, v| {
                if *v == redefined {
                    return false;
                }
                let uses = match k {
                    Key::Bin(_, _, a, b) => *a == redefined || *b == redefined,
                    Key::Un(_, _, a) => *a == redefined,
                    Key::Cast(_, a) => *a == redefined,
                    Key::Frame(_) => false,
                    Key::Load(a, _, _) => *a == redefined,
                    Key::Const(..) => false,
                };
                !uses
            });
        }
    }
}

// ---------------------------------------------------------------- DCE

/// Removes pure instructions whose results are never used, and empties
/// unreachable blocks. Under the "UB never happens" licence this deletes
/// unused loads and unused (possibly-trapping) divisions — which is exactly
/// how `-O2` can "lose" a division-by-zero crash that `-O0` keeps.
pub fn dce(f: &mut IrFunction) {
    loop {
        let mut used = vec![false; f.reg_count as usize];
        let reachable: Vec<BlockId> = f.reachable_blocks();
        let reachable_set: std::collections::HashSet<u32> = reachable.iter().map(|b| b.0).collect();
        for bid in &reachable {
            let b = &f.blocks[bid.0 as usize];
            for inst in &b.insts {
                for u in inst.uses() {
                    used[u.0 as usize] = true;
                }
            }
            match &b.term {
                Terminator::Br { cond, .. } => used[cond.0 as usize] = true,
                Terminator::Ret(Some(v)) => used[v.0 as usize] = true,
                _ => {}
            }
        }
        let mut changed = false;
        for (i, b) in f.blocks.iter_mut().enumerate() {
            if !reachable_set.contains(&(i as u32)) {
                if !b.insts.is_empty() {
                    b.insts.clear();
                    b.term = Terminator::Unreachable;
                    changed = true;
                }
                continue;
            }
            let before = b.insts.len();
            b.insts.retain(|inst| {
                inst.has_side_effects() || inst.dst().map(|d| used[d.0 as usize]).unwrap_or(true)
            });
            if b.insts.len() != before {
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

// ---------------------------------------------------------------- DSE

/// Block-local dead store elimination: a store is dead if the *same address
/// register* is stored again before any load, call, or end of block.
pub fn dse(f: &mut IrFunction) {
    for b in &mut f.blocks {
        let mut pending: HashMap<(ValueId, MemWidth), usize> = HashMap::new();
        let mut dead: Vec<usize> = Vec::new();
        for (i, inst) in b.insts.iter().enumerate() {
            match inst {
                Inst::Store { addr, width, .. } => {
                    if let Some(prev) = pending.insert((*addr, *width), i) {
                        dead.push(prev);
                    }
                }
                Inst::Load { .. } | Inst::Call { .. } => pending.clear(),
                other => {
                    if let Some(d) = other.dst() {
                        // Address register redefined: forget it.
                        pending.retain(|(a, _), _| *a != d);
                    }
                }
            }
        }
        if dead.is_empty() {
            continue;
        }
        dead.sort_unstable();
        let mut di = 0;
        let mut idx = 0;
        b.insts.retain(|_| {
            let drop_it = di < dead.len() && dead[di] == idx;
            if drop_it {
                di += 1;
            }
            idx += 1;
            !drop_it
        });
    }
}

// ---------------------------------------------------------------- CFG

/// Collapses `Br` with equal targets, threads jumps through empty blocks.
pub fn simplify_cfg(f: &mut IrFunction) {
    // Br with identical arms -> Jump.
    for b in &mut f.blocks {
        if let Terminator::Br { then, els, .. } = &b.term {
            if then == els {
                let t = *then;
                b.term = Terminator::Jump(t);
            }
        }
    }
    // Resolve each block's "forwarding" target (empty block ending in Jump).
    let forward: Vec<Option<BlockId>> = f
        .blocks
        .iter()
        .map(|b| match (&b.insts.is_empty(), &b.term) {
            (true, Terminator::Jump(t)) => Some(*t),
            _ => None,
        })
        .collect();
    let resolve = |mut b: BlockId| -> BlockId {
        let mut hops = 0;
        while let Some(t) = forward[b.0 as usize] {
            if t == b || hops > forward.len() {
                break;
            }
            b = t;
            hops += 1;
        }
        b
    };
    for b in &mut f.blocks {
        match &mut b.term {
            Terminator::Jump(t) => *t = resolve(*t),
            Terminator::Br { then, els, .. } => {
                *then = resolve(*then);
                *els = resolve(*els);
                if then == els {
                    let t = *then;
                    b.term = Terminator::Jump(t);
                }
            }
            _ => {}
        }
    }
}

// ------------------------------------------------------------- widen mul

/// clang-sim `-O1`+: rewrites `(long)(a * b)` (32-bit signed multiply whose
/// result is immediately sign-extended) into a 64-bit multiply of the
/// extended operands. Legal *only* because signed overflow is UB; when the
/// 32-bit product would overflow, the two forms store different values —
/// the paper's IntError example.
pub fn widen_mul(f: &mut IrFunction) {
    for b in 0..f.blocks.len() {
        let mut defs: HashMap<ValueId, (BinKind, ValueId, ValueId, bool)> = HashMap::new();
        let mut rewrites: Vec<(usize, ValueId, ValueId, ValueId)> = Vec::new();
        for (i, inst) in f.blocks[b].insts.iter().enumerate() {
            match inst {
                Inst::Bin {
                    dst,
                    ty: IrType::I32,
                    op: BinKind::Mul,
                    a,
                    b: rb,
                    ub_signed,
                } => {
                    defs.insert(*dst, (BinKind::Mul, *a, *rb, *ub_signed));
                }
                Inst::Cast {
                    dst,
                    kind: CastKind::SextI32I64,
                    a,
                } => {
                    if let Some((BinKind::Mul, ma, mb, true)) = defs.get(a).copied() {
                        rewrites.push((i, *dst, ma, mb));
                    }
                }
                other => {
                    if let Some(d) = other.dst() {
                        defs.remove(&d);
                    }
                }
            }
            if let Some(d) = inst.dst() {
                // A redefinition of a multiply operand invalidates it.
                defs.retain(|_, (_, a, rb, _)| *a != d && *rb != d);
            }
        }
        // Apply in reverse so indices stay valid.
        for (i, dst, ma, mb) in rewrites.into_iter().rev() {
            let wa = f.new_reg(IrType::I64);
            let wb = f.new_reg(IrType::I64);
            let block = &mut f.blocks[b];
            block.insts.splice(
                i..=i,
                vec![
                    Inst::Cast {
                        dst: wa,
                        kind: CastKind::SextI32I64,
                        a: ma,
                    },
                    Inst::Cast {
                        dst: wb,
                        kind: CastKind::SextI32I64,
                        a: mb,
                    },
                    Inst::Bin {
                        dst,
                        ty: IrType::I64,
                        op: BinKind::Mul,
                        a: wa,
                        b: wb,
                        ub_signed: true,
                    },
                ],
            );
        }
    }
}

// ------------------------------------------------------------- pow fast

/// clang-sim `-O3`: replaces `pow` calls with a faster, less precise form
/// (the VM computes it via `exp2(y * log2(x))` in `f32` precision). The
/// result may differ in low decimal digits — the paper's floating-point
/// imprecision findings (RQ2).
pub fn pow_fast(f: &mut IrFunction) {
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            if let Inst::Call { callee, .. } = inst {
                if *callee == Callee::Builtin(minc::Builtin::Pow) {
                    *callee = Callee::PowFast;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::personality::{CompilerImpl, Family, OptLevel};

    fn lower_o0(src: &str) -> IrProgram {
        let checked = minc::check(src).unwrap();
        let p = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        lower(&checked, &p)
    }

    fn count_insts(f: &IrFunction) -> usize {
        f.inst_count()
    }

    #[test]
    fn const_fold_folds_arithmetic() {
        let mut ir = lower_o0("int main() { return 2 + 3 * 4; }");
        let before = count_insts(&ir.functions[0]);
        const_fold(&mut ir.functions[0]);
        dce(&mut ir.functions[0]);
        let after = count_insts(&ir.functions[0]);
        assert!(after < before);
        // The return value register must be a constant 14.
        let f = &ir.functions[0];
        let Terminator::Ret(Some(v)) = &f.blocks[0].term else {
            panic!()
        };
        let is14 = f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Const { dst, val: ConstVal::I32(14), .. } if dst == v));
        assert!(is14);
    }

    #[test]
    fn const_fold_never_folds_div_by_zero() {
        let mut ir = lower_o0("int main() { int z = 0; return 1 / z; }");
        mem2reg::run(&mut ir.functions[0], 0);
        const_fold(&mut ir.functions[0]);
        copy_prop(&mut ir.functions[0]);
        const_fold(&mut ir.functions[0]);
        let f = &ir.functions[0];
        let div_left = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: BinKind::DivS,
                    ..
                }
            )
        });
        assert!(div_left, "the trapping division must survive folding");
    }

    #[test]
    fn dce_removes_unused_div_enabling_trap_divergence() {
        // An unused division: DCE may remove it (UB licence).
        let mut ir = lower_o0("int main() { int z = 0; int unused = 1 / z; return 7; }");
        mem2reg::run(&mut ir.functions[0], 0);
        copy_prop(&mut ir.functions[0]);
        dce(&mut ir.functions[0]);
        let f = &ir.functions[0];
        let div_left = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: BinKind::DivS,
                    ..
                }
            )
        });
        assert!(!div_left, "unused trapping division should be DCE'd at -O2");
    }

    #[test]
    fn branch_folding_after_const_cond() {
        let mut ir = lower_o0("int main() { if (1) return 3; return 4; }");
        const_fold(&mut ir.functions[0]);
        let f = &ir.functions[0];
        let has_br = f
            .reachable_blocks()
            .iter()
            .any(|b| matches!(f.blocks[b.0 as usize].term, Terminator::Br { .. }));
        assert!(!has_br);
    }

    #[test]
    fn copy_prop_forwards_sources() {
        let mut f = IrFunction {
            name: "t".into(),
            param_count: 0,
            param_tys: vec![],
            ret_ty: Some(IrType::I32),
            blocks: vec![],
            slots: vec![],
            reg_count: 0,
            reg_tys: vec![],
            reg_lines: vec![],
        };
        let b = f.new_block();
        let a = f.new_reg(IrType::I32);
        let c = f.new_reg(IrType::I32);
        let d = f.new_reg(IrType::I32);
        f.blocks[b.0 as usize].insts = vec![
            Inst::Const {
                dst: a,
                ty: IrType::I32,
                val: ConstVal::I32(5),
            },
            Inst::Copy {
                dst: c,
                ty: IrType::I32,
                src: a,
            },
            Inst::Bin {
                dst: d,
                ty: IrType::I32,
                op: BinKind::Add,
                a: c,
                b: c,
                ub_signed: true,
            },
        ];
        f.blocks[b.0 as usize].term = Terminator::Ret(Some(d));
        copy_prop(&mut f);
        let Inst::Bin { a: ba, b: bb, .. } = &f.blocks[0].insts[2] else {
            panic!()
        };
        assert_eq!(*ba, a);
        assert_eq!(*bb, a);
    }

    #[test]
    fn cse_dedupes_pure_exprs() {
        let mut ir =
            lower_o0("int f(int a, int b) { return (a+b)*(a+b); }\nint main() { return f(1,2); }");
        let f = &mut ir.functions[0];
        mem2reg::run(f, 0);
        copy_prop(f);
        cse(f);
        copy_prop(f);
        dce(f);
        let adds = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Bin {
                        op: BinKind::Add,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(adds, 1, "a+b must be computed once");
    }

    #[test]
    fn dse_removes_overwritten_store() {
        let mut ir = lower_o0("int main() { int a[2]; a[0] = 1; a[0] = 2; return a[0]; }");
        let f = &mut ir.functions[0];
        // Make address registers coincide first.
        cse(f);
        copy_prop(f);
        let before = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        dse(f);
        let after = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        assert!(
            after < before,
            "dead store should be removed ({before} -> {after})"
        );
    }

    #[test]
    fn widen_mul_rewrites_sext_of_mul() {
        let src = "int main() { int a = 100000; int b = 100000; long x = (long)(a * b); return (int)(x >> 32); }";
        let mut ir = {
            let checked = minc::check(src).unwrap();
            let p = CompilerImpl::new(Family::Clang, OptLevel::O0).personality();
            lower(&checked, &p)
        };
        let f = &mut ir.functions[0];
        mem2reg::run(f, 0);
        copy_prop(f);
        widen_mul(f);
        let has_wide_mul = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: BinKind::Mul,
                    ty: IrType::I64,
                    ..
                }
            )
        });
        assert!(has_wide_mul);
    }

    #[test]
    fn pow_fast_rewrites_pow_calls() {
        let mut ir = lower_o0("int main() { double d = pow(2.0, 10.0); return (int)d; }");
        pow_fast(&mut ir.functions[0]);
        let has_fast = ir.functions[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| {
                matches!(
                    i,
                    Inst::Call {
                        callee: Callee::PowFast,
                        ..
                    }
                )
            });
        assert!(has_fast);
    }

    #[test]
    fn simplify_cfg_threads_empty_blocks() {
        let mut ir = lower_o0("int main() { if (input_size() > 0) { } return 1; }");
        let f = &mut ir.functions[0];
        simplify_cfg(f);
        dce(f);
        // After threading, the branch arms must not target empty jump-only blocks.
        for bid in f.reachable_blocks() {
            if let Terminator::Br { then, els, .. } = &f.blocks[bid.0 as usize].term {
                for t in [then, els] {
                    let tb = &f.blocks[t.0 as usize];
                    let empty_fwd = tb.insts.is_empty() && matches!(tb.term, Terminator::Jump(_));
                    assert!(!empty_fwd, "branch still targets a trivial forwarder");
                }
            }
        }
    }

    #[test]
    fn full_pipeline_runs_on_all_personalities() {
        let src = r#"
            int helper(int x) { return x * 2 + 1; }
            int main() {
                int acc = 0;
                int i;
                for (i = 0; i < 7; i++) { acc += helper(i); }
                printf("%d\n", acc);
                return 0;
            }
        "#;
        let checked = minc::check(src).unwrap();
        for ci in CompilerImpl::default_set() {
            let p = ci.personality();
            let mut ir = lower(&checked, &p);
            run_pipeline(&mut ir, &p);
            assert!(ir.functions.iter().all(|f| !f.blocks.is_empty()), "{ci}");
        }
    }
}
