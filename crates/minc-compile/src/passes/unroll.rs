//! Full loop unrolling (`-O3`) — including the deliberate, very narrow
//! gcc-sim `-O3` miscompilation used to reproduce the paper's RQ2 finding
//! that CompDiff occasionally catches *compiler* bugs (the paper found two
//! gcc and one clang miscompilation while fuzzing MuJS).
//!
//! Only the exact loop shape produced by lowering a counted `for` loop is
//! recognized, after `mem2reg` has promoted the induction variable:
//!
//! ```text
//! pre:  iv = Const INIT ... Jump(head)
//! head: c = LtS(iv, Const N) ; Br(c, body, exit)
//! body: ... Jump(step)            (single block, no other branches)
//! step: iv = Add(iv, Const STEP) ; Jump(head)
//! ```

use crate::ir::*;
use crate::personality::{Family, Personality};
use crate::rewrite_log::{RewriteLog, UbReason};
use std::collections::HashMap;

/// Maximum trip count that will be fully unrolled.
const MAX_TRIP: i64 = 16;
/// Maximum body size (instructions) for unrolling.
const MAX_BODY: usize = 40;

/// Runs the unroller over `f`.
pub fn run(f: &mut IrFunction, personality: &Personality) {
    run_logged(f, personality, None);
}

/// Like [`run`], but records into `log` (when provided) every unroll whose
/// applied trip count deviates from the computed one — the seeded
/// miscompilations — as [`UbReason::UnrollTripCount`] entries.
pub fn run_logged(f: &mut IrFunction, personality: &Personality, mut log: Option<&mut RewriteLog>) {
    // Find candidate headers; unroll at most a few loops per function to
    // bound code growth.
    let mut budget = 4;
    loop {
        if budget == 0 {
            return;
        }
        let Some(c) = find_candidate(f) else { return };
        apply(f, &c, personality, log.as_deref_mut());
        budget -= 1;
    }
}

struct Candidate {
    head: BlockId,
    body: BlockId,
    step: BlockId,
    exit: BlockId,
    trip: i64,
    body_has_mul: bool,
    body_has_div: bool,
}

fn find_candidate(f: &mut IrFunction) -> Option<Candidate> {
    // Count defs of each register across the function.
    let mut defs: HashMap<ValueId, Vec<(BlockId, usize)>> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if let Some(d) = inst.dst() {
                defs.entry(d).or_default().push((BlockId(bi as u32), ii));
            }
        }
    }
    let reachable = f.reachable_blocks();
    for &head in &reachable {
        let hb = &f.blocks[head.0 as usize];
        // Header: all insts pure, terminator Br on LtS(iv, const N).
        let Terminator::Br {
            cond,
            then: body,
            els: exit,
        } = hb.term.clone()
        else {
            continue;
        };
        let Some(Inst::Bin {
            op: BinKind::LtS,
            a: iv,
            b: bound_reg,
            ty,
            ..
        }) = hb.insts.iter().find(|i| i.dst() == Some(cond))
        else {
            continue;
        };
        let (iv, bound_reg, ty) = (*iv, *bound_reg, *ty);
        if ty != IrType::I32 {
            continue;
        }
        let Some(bound) = const_def_in(hb, bound_reg) else {
            continue;
        };
        // Body: single block ending Jump(step) (or Jump(head) with no step).
        let bb = &f.blocks[body.0 as usize];
        if bb.insts.len() > MAX_BODY {
            continue;
        }
        let Terminator::Jump(step) = bb.term.clone() else {
            continue;
        };
        if step == head {
            continue; // need a separate step block (our lowering makes one)
        }
        // Body must not branch back into head except via step; must not
        // contain calls that could diverge? Calls allowed.
        let sb = &f.blocks[step.0 as usize];
        if sb.term != Terminator::Jump(head) {
            continue;
        }
        // Step: iv advances by a constant. After mem2reg + copy-prop the
        // shape is either `iv = Add(iv, C)` directly or
        // `t = Add(iv_or_copy_of_iv, C); iv = Copy t`.
        let mut step_amt: Option<i64> = None;
        {
            // Block-local def map: reg -> (is_add_of_iv, amount) | copy-of-iv.
            let mut add_of_iv: HashMap<ValueId, i64> = HashMap::new();
            let mut alias_of_iv: std::collections::HashSet<ValueId> =
                std::collections::HashSet::new();
            alias_of_iv.insert(iv);
            for inst in &sb.insts {
                match inst {
                    Inst::Copy { dst, src, .. } => {
                        if alias_of_iv.contains(src) && *dst != iv {
                            alias_of_iv.insert(*dst);
                        } else if *dst == iv {
                            if let Some(c) = add_of_iv.get(src) {
                                step_amt = Some(*c);
                            } else if !alias_of_iv.contains(src) {
                                step_amt = None;
                            }
                            add_of_iv.clear();
                        } else {
                            alias_of_iv.remove(dst);
                            add_of_iv.remove(dst);
                        }
                    }
                    Inst::Bin {
                        dst,
                        op: BinKind::Add,
                        a,
                        b,
                        ..
                    } => {
                        let amt = if alias_of_iv.contains(a) {
                            const_def_in(sb, *b)
                        } else if alias_of_iv.contains(b) {
                            const_def_in(sb, *a)
                        } else {
                            None
                        };
                        if *dst == iv {
                            step_amt = amt;
                        } else if let Some(c) = amt {
                            add_of_iv.insert(*dst, c);
                        } else {
                            add_of_iv.remove(dst);
                            alias_of_iv.remove(dst);
                        }
                    }
                    other => {
                        if let Some(d) = other.dst() {
                            if d == iv {
                                step_amt = None;
                            }
                            alias_of_iv.remove(&d);
                            add_of_iv.remove(&d);
                        }
                    }
                }
            }
        }
        let Some(step_amt) = step_amt else { continue };
        if step_amt <= 0 {
            continue;
        }
        // iv defs: exactly one outside the loop (constant init) and the
        // ones inside step/body blocks. Require: one def with a constant,
        // and all other defs are in body/step.
        let Some(iv_defs) = defs.get(&iv) else {
            continue;
        };
        let mut init: Option<i64> = None;
        let mut ok = true;
        for (db, di) in iv_defs {
            if *db == body || *db == step {
                continue;
            }
            if *db == head {
                ok = false;
                break;
            }
            // Outside def: must be a constant. The junk initializer that
            // mem2reg prepends to the entry block is shadowed by any real
            // initialization and can be ignored.
            let inst = &f.blocks[db.0 as usize].insts[*di];
            if db.0 == 0
                && matches!(
                    inst,
                    Inst::Const {
                        val: ConstVal::Junk(_),
                        ..
                    }
                )
            {
                continue;
            }
            match inst {
                Inst::Const {
                    val: ConstVal::I32(v),
                    ..
                } => {
                    if init.is_some() {
                        ok = false;
                        break;
                    }
                    init = Some(*v as i64);
                }
                Inst::Copy { src, .. } => {
                    if let Some(v) = const_def_in(&f.blocks[db.0 as usize], *src) {
                        if init.is_some() {
                            ok = false;
                            break;
                        }
                        init = Some(v);
                    } else {
                        ok = false;
                        break;
                    }
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let Some(init) = init else { continue };
        // Body must not redefine iv.
        let body_defines_iv = f.blocks[body.0 as usize]
            .insts
            .iter()
            .any(|i| i.dst() == Some(iv));
        if body_defines_iv {
            continue;
        }
        if bound <= init {
            continue;
        }
        let trip = (bound - init + step_amt - 1) / step_amt;
        if trip <= 0 || trip > MAX_TRIP {
            continue;
        }
        // Header instructions must be pure and only feed the branch.
        if f.blocks[head.0 as usize]
            .insts
            .iter()
            .any(|i| i.has_side_effects())
        {
            continue;
        }
        let body_has_mul = f.blocks[body.0 as usize].insts.iter().any(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: BinKind::Mul,
                    ..
                }
            )
        });
        let body_has_div = f.blocks[body.0 as usize].insts.iter().any(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: BinKind::DivS | BinKind::DivU,
                    ..
                }
            )
        });
        return Some(Candidate {
            head,
            body,
            step,
            exit,
            trip,
            body_has_mul,
            body_has_div,
        });
    }
    None
}

/// Constant value of `r` as defined *within* block `b` (last def wins).
fn const_def_in(b: &Block, r: ValueId) -> Option<i64> {
    let mut v = None;
    for inst in &b.insts {
        if inst.dst() == Some(r) {
            v = match inst {
                Inst::Const {
                    val: ConstVal::I32(x),
                    ..
                } => Some(*x as i64),
                Inst::Const {
                    val: ConstVal::I64(x),
                    ..
                } => Some(*x),
                _ => None,
            };
        }
    }
    v
}

fn apply(
    f: &mut IrFunction,
    c: &Candidate,
    personality: &Personality,
    log: Option<&mut RewriteLog>,
) {
    // The deliberate gcc-sim -O3 bug: a 7-trip loop whose body multiplies
    // gets unrolled one iteration short. Narrow enough to be found only by
    // targeted fuzzing (RQ2), broad enough to be reachable.
    let mut trip = c.trip;
    if personality.id.family == Family::Gcc && trip == 7 && c.body_has_mul {
        trip = 6;
    }
    // The seeded clang-sim -O3 miscompilation (the paper's one clang bug):
    // a 5-trip loop whose body divides gets one *extra* iteration.
    if personality.id.family == Family::Clang && trip == 5 && c.body_has_div {
        trip = 6;
    }
    if trip != c.trip {
        if let Some(log) = log {
            // Attribute the rewrite to the loop condition's source line.
            let line = match f.blocks[c.head.0 as usize].term {
                Terminator::Br { cond, .. } => f.line_of(cond),
                _ => 0,
            };
            log.record(
                personality.id,
                &f.name,
                UbReason::UnrollTripCount,
                line,
                0,
                format!(
                    "fully unrolled a {}-trip counted loop with trip count {trip} \
                     (implementation-specific; the seeded RQ2 miscompilation)",
                    c.trip
                ),
            );
        }
    }

    let body_insts = f.blocks[c.body.0 as usize].insts.clone();
    let step_insts = f.blocks[c.step.0 as usize].insts.clone();

    // Straight-line unrolled block replaces the header.
    let mut insts = Vec::with_capacity((body_insts.len() + step_insts.len()) * trip as usize);
    for _ in 0..trip {
        insts.extend(body_insts.iter().cloned());
        insts.extend(step_insts.iter().cloned());
    }
    let head = &mut f.blocks[c.head.0 as usize];
    head.insts = insts;
    head.term = Terminator::Jump(c.exit);
    // Old body/step become unreachable; DCE cleans them up.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::passes::{const_fold, copy_prop, dce, mem2reg, simplify_cfg};
    use crate::personality::{CompilerImpl, Family, OptLevel};

    fn prep(src: &str, family: Family) -> (IrProgram, Personality) {
        let checked = minc::check(src).unwrap();
        let p = CompilerImpl::new(family, OptLevel::O3).personality();
        let mut ir = lower(&checked, &p);
        for (i, f) in ir.functions.iter_mut().enumerate() {
            mem2reg::run(f, i as u32);
            const_fold(f);
            copy_prop(f);
            const_fold(f);
            dce(f);
            simplify_cfg(f);
        }
        (ir, p)
    }

    fn loop_src(n: u32, with_mul: bool) -> String {
        let op = if with_mul {
            "acc = acc + i * 2;"
        } else {
            "acc = acc + i;"
        };
        format!(
            "int main() {{ int acc = 0; int i; for (i = 0; i < {n}; i++) {{ {op} }} printf(\"%d\", acc); return 0; }}"
        )
    }

    #[test]
    fn unrolls_small_counted_loop() {
        let (mut ir, p) = prep(&loop_src(5, false), Family::Clang);
        let f = &mut ir.functions[0];
        run(f, &p);
        dce(f);
        // No back-edge Br remains among reachable blocks.
        let has_loop = f
            .reachable_blocks()
            .iter()
            .any(|b| matches!(f.blocks[b.0 as usize].term, Terminator::Br { .. }));
        assert!(!has_loop, "loop should be fully unrolled");
    }

    #[test]
    fn keeps_large_loops() {
        let (mut ir, p) = prep(&loop_src(1000, false), Family::Clang);
        let f = &mut ir.functions[0];
        let before = f.blocks.clone();
        run(f, &p);
        assert_eq!(before, f.blocks, "trip 1000 must not unroll");
    }

    #[test]
    fn gcc_o3_miscompiles_trip7_mul_loops() {
        // Count Mul instructions after unrolling: gcc-sim emits 6 copies,
        // clang-sim emits 7 — the seeded miscompilation.
        let count_muls = |family: Family| {
            let (mut ir, p) = prep(&loop_src(7, true), family);
            let f = &mut ir.functions[0];
            run(f, &p);
            dce(f);
            f.reachable_blocks()
                .iter()
                .flat_map(|b| f.blocks[b.0 as usize].insts.clone())
                .filter(|i| {
                    matches!(
                        i,
                        Inst::Bin {
                            op: BinKind::Mul,
                            ..
                        }
                    )
                })
                .count()
        };
        assert_eq!(count_muls(Family::Clang), 7);
        assert_eq!(count_muls(Family::Gcc), 6);
    }

    #[test]
    fn trip8_is_not_miscompiled() {
        let count_muls = |family: Family| {
            let (mut ir, p) = prep(&loop_src(8, true), family);
            let f = &mut ir.functions[0];
            run(f, &p);
            dce(f);
            f.reachable_blocks()
                .iter()
                .flat_map(|b| f.blocks[b.0 as usize].insts.clone())
                .filter(|i| {
                    matches!(
                        i,
                        Inst::Bin {
                            op: BinKind::Mul,
                            ..
                        }
                    )
                })
                .count()
        };
        assert_eq!(count_muls(Family::Gcc), count_muls(Family::Clang));
    }
}
