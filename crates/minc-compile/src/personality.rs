//! Compiler *personalities*: the implementation-defined and UB-exploiting
//! choices that make ten legal compilers produce ten different binaries.
//!
//! The paper uses gcc 11.1.0 and clang 13.0.1 at `-O0 -O1 -O2 -O3 -Os`
//! (10 "compiler implementations"). This module models each as a
//! [`CompilerImpl`] = family × optimization level, expanded into a concrete
//! [`Personality`] describing every divergence axis:
//!
//! * **argument evaluation order** — clang-sim evaluates first-to-last,
//!   gcc-sim last-to-first (matching the paper's tcpdump EvalOrder bug);
//! * **address-space layout** — segment bases, frame slot ordering and
//!   padding, global ordering, heap chunk geometry;
//! * **junk** — deterministic per-implementation contents of uninitialized
//!   stack/heap memory and unpromoted registers;
//! * **`__LINE__` attribution** — start line vs end line of multi-line
//!   constructs (implementation-defined; the paper's php LINE bug);
//! * **optimization pipeline** — which passes run, including the
//!   UB-assuming rewrites that *create* observable instability;
//! * **`rand()` sequence** — implementation-defined PRNG (a "Misc" bug
//!   source in the paper).

use std::fmt;

/// Compiler family, mirroring the two real compilers in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Models gcc 11.1.0.
    Gcc,
    /// Models clang 13.0.1.
    Clang,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Family::Gcc => write!(f, "gcc"),
            Family::Clang => write!(f, "clang"),
        }
    }
}

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// `-O0` (no optimization).
    O0,
    /// `-O1`.
    O1,
    /// `-O2`.
    O2,
    /// `-O3`.
    O3,
    /// `-Os` (optimize for size).
    Os,
}

impl OptLevel {
    /// All levels in the paper's order.
    pub const ALL: [OptLevel; 5] = [
        OptLevel::O0,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::Os,
    ];

    /// True if the level runs the optimizer at all.
    pub fn optimizing(self) -> bool {
        self != OptLevel::O0
    }

    /// True for `-O2` and above (including `-Os`).
    pub fn aggressive(self) -> bool {
        matches!(self, OptLevel::O2 | OptLevel::O3 | OptLevel::Os)
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
            OptLevel::Os => "Os",
        };
        f.write_str(s)
    }
}

/// One of the paper's ten compiler implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompilerImpl {
    /// Compiler family.
    pub family: Family,
    /// Optimization level.
    pub level: OptLevel,
}

impl CompilerImpl {
    /// Creates an implementation.
    pub fn new(family: Family, level: OptLevel) -> Self {
        CompilerImpl { family, level }
    }

    /// The paper's default set: {gcc, clang} × {O0, O1, O2, O3, Os}.
    pub fn default_set() -> Vec<CompilerImpl> {
        let mut v = Vec::with_capacity(10);
        for family in [Family::Gcc, Family::Clang] {
            for level in OptLevel::ALL {
                v.push(CompilerImpl { family, level });
            }
        }
        v
    }

    /// A stable small integer id in `0..10` for the default set.
    pub fn index(&self) -> usize {
        let f = match self.family {
            Family::Gcc => 0,
            Family::Clang => 1,
        };
        let l = match self.level {
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
            OptLevel::O2 => 2,
            OptLevel::O3 => 3,
            OptLevel::Os => 4,
        };
        f * 5 + l
    }

    /// Parses `"gcc-O2"` style names.
    pub fn parse(s: &str) -> Option<CompilerImpl> {
        let (fam, lvl) = s.split_once('-')?;
        let family = match fam {
            "gcc" => Family::Gcc,
            "clang" => Family::Clang,
            _ => return None,
        };
        let level = match lvl {
            "O0" | "o0" | "0" => OptLevel::O0,
            "O1" | "o1" | "1" => OptLevel::O1,
            "O2" | "o2" | "2" => OptLevel::O2,
            "O3" | "o3" | "3" => OptLevel::O3,
            "Os" | "os" | "s" => OptLevel::Os,
            _ => return None,
        };
        Some(CompilerImpl { family, level })
    }

    /// Expands into the concrete divergence-axis choices.
    pub fn personality(&self) -> Personality {
        Personality::of(*self)
    }
}

impl fmt::Display for CompilerImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.family, self.level)
    }
}

/// Order in which call arguments are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalOrder {
    /// First argument first (clang's observed behaviour).
    LeftToRight,
    /// Last argument first (gcc's observed behaviour).
    RightToLeft,
}

/// Which source line a multi-line construct's `__LINE__` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinePolicy {
    /// The line where the construct starts.
    StartLine,
    /// The line where it ends.
    EndLine,
}

/// Order of frame slots within an activation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotOrder {
    /// Declaration order.
    Declared,
    /// Reverse declaration order.
    Reversed,
    /// Large-alignment slots first (what optimizing compilers tend to do).
    AlignDescending,
}

/// The full set of implementation-defined choices for one compiler
/// implementation. Everything here is *legal* per the C standard; the ten
/// personalities only disagree where the standard permits disagreement.
#[derive(Debug, Clone, PartialEq)]
pub struct Personality {
    /// Which implementation this is.
    pub id: CompilerImpl,
    /// Seed mixed into all junk/layout hashing; distinct per implementation.
    pub seed: u64,
    /// Call-argument evaluation order.
    pub eval_order: EvalOrder,
    /// `__LINE__` attribution for multi-line constructs.
    pub line_policy: LinePolicy,
    /// Frame slot ordering.
    pub slot_order: SlotOrder,
    /// Extra padding inserted between frame slots (bytes; `-O0` pads).
    pub slot_padding: u64,
    /// Base address of the rodata segment.
    pub rodata_base: u64,
    /// Base address of the globals segment.
    pub globals_base: u64,
    /// Whether globals are laid out in declaration order (`true`) or sorted
    /// by descending alignment then name (`false`).
    pub globals_declared_order: bool,
    /// Top of the stack (frames grow downward from here).
    pub stack_base: u64,
    /// Maximum stack size in bytes before a stack-overflow trap.
    pub stack_size: u64,
    /// Base address of the heap.
    pub heap_base: u64,
    /// Heap chunk alignment.
    pub heap_align: u64,
    /// Bytes of allocator metadata between chunks (affects OOB-read targets
    /// and use-after-free reuse distances).
    pub heap_header: u64,
    /// Seed of the implementation-defined `rand()` sequence.
    pub rand_seed: u64,
    /// How the constant folder treats out-of-range constant shifts: `true`
    /// folds them to 0, `false` folds with x86-style masking. Both are
    /// legal (the operation is UB) and real folders differ.
    pub shift_fold_zero: bool,
    /// Passes to run, in order.
    pub pipeline: Vec<PassKind>,
}

/// Identifiers for all optimization passes (see `crate::passes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Constant folding + algebraic simplification.
    ConstFold,
    /// Promote unaddressed scalar slots to registers (uninitialized ones
    /// become [`crate::ir::ConstVal::Junk`]).
    Mem2Reg,
    /// Block-local copy propagation.
    CopyProp,
    /// Block-local common subexpression elimination.
    Cse,
    /// Dead code elimination (unused pure instructions, unreachable blocks).
    /// Under the "UB never happens" licence this may delete unused loads
    /// and unused trapping divisions.
    Dce,
    /// Dead store elimination (block-local, to frame slots).
    Dse,
    /// UB-assuming rewrites: `a+b < a  =>  b < 0` (signed), `a+b > a => b > 0`,
    /// null-check elimination after a dominating dereference, oversized
    /// shift folding.
    UbExploit,
    /// Widen `(long)(a*b)` to 64-bit multiplication (legal only because
    /// signed overflow is UB) — clang-sim `-O1`+, the paper's IntError case.
    WidenMul,
    /// Inline small functions.
    Inline,
    /// Fully unroll small counted loops (`-O3`). The gcc-sim `-O3` unroller
    /// carries a deliberate, very narrow miscompilation bug (RQ2).
    Unroll,
    /// `pow()` -> fast imprecise form (clang-sim `-O3`; RQ2 float cases).
    PowFast,
    /// Straighten trivial jump chains and drop empty blocks.
    SimplifyCfg,
}

impl Personality {
    /// The personality of a given compiler implementation.
    pub fn of(id: CompilerImpl) -> Personality {
        use Family::*;
        use OptLevel::*;
        let seed = 0x9e37_79b9_7f4a_7c15u64
            .wrapping_mul(id.index() as u64 + 1)
            .rotate_left(17)
            ^ 0xc0ff_ee00_dead_beef;
        let (rodata_base, globals_base, stack_base, heap_base) = match id.family {
            Gcc => (0x0040_0000, 0x0060_0000, 0x7fff_ff00_0000, 0x0000_1000_0000),
            Clang => (0x0080_0000, 0x00a0_0000, 0x7ffe_fe00_0000, 0x0000_2000_0000),
        };
        let slot_order = match (id.family, id.level) {
            (_, O0) => SlotOrder::Declared,
            (Gcc, _) => SlotOrder::AlignDescending,
            (Clang, _) => SlotOrder::Reversed,
        };
        let slot_padding = match id.level {
            O0 => 8,
            _ => 0,
        };
        let (heap_align, heap_header) = match id.family {
            Gcc => (16, 16),
            Clang => (16, 32),
        };
        let pipeline = Self::pipeline_for(id);
        Personality {
            id,
            seed,
            eval_order: match id.family {
                Gcc => EvalOrder::RightToLeft,
                Clang => EvalOrder::LeftToRight,
            },
            line_policy: match id.family {
                Gcc => LinePolicy::EndLine,
                Clang => LinePolicy::StartLine,
            },
            slot_order,
            slot_padding,
            rodata_base,
            globals_base,
            globals_declared_order: id.family == Gcc,
            stack_base,
            stack_size: 1 << 22,
            heap_base,
            heap_align,
            heap_header,
            rand_seed: seed ^ 0x5eed_5eed_5eed_5eed,
            shift_fold_zero: id.family == Clang,
            pipeline,
        }
    }

    fn pipeline_for(id: CompilerImpl) -> Vec<PassKind> {
        use Family::*;
        use OptLevel::*;
        use PassKind::*;
        let mut p = Vec::new();
        if id.level == O0 {
            return p;
        }
        // -O1 common core.
        p.push(Mem2Reg);
        p.push(ConstFold);
        p.push(CopyProp);
        if id.family == Clang {
            // The paper's IntError example: clang-O1 widens a*b to long.
            p.push(WidenMul);
        }
        p.push(Dce);
        p.push(SimplifyCfg);
        if id.level.aggressive() {
            // Inline after the scalar core so callees are already compact,
            // then re-run the scalar pipeline over the merged bodies.
            p.push(Inline);
            p.push(Mem2Reg);
            p.push(UbExploit);
            p.push(ConstFold);
            p.push(Cse);
            p.push(CopyProp);
            p.push(Dse);
            p.push(Dce);
            p.push(SimplifyCfg);
        }
        if id.level == O3 {
            p.push(Unroll);
            p.push(ConstFold);
            p.push(Dce);
            p.push(SimplifyCfg);
            if id.family == Clang {
                p.push(PowFast);
            }
        }
        p
    }

    /// Deterministic junk byte for an uninitialized memory address: what a
    /// freshly mapped page "happens to contain" under this implementation.
    pub fn junk_byte(&self, addr: u64) -> u8 {
        let mut x = addr ^ self.seed;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        (x & 0xff) as u8
    }

    /// Deterministic junk word for an uninitialized register (promoted
    /// local); `id` is the `Junk` marker from mem2reg.
    pub fn junk_word(&self, id: u32) -> u64 {
        let mut x = (id as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ self.seed.rotate_left(29);
        x ^= x >> 31;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 27;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_has_ten_distinct_impls() {
        let set = CompilerImpl::default_set();
        assert_eq!(set.len(), 10);
        let mut idx: Vec<usize> = set.iter().map(|c| c.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parse_round_trips() {
        for c in CompilerImpl::default_set() {
            assert_eq!(CompilerImpl::parse(&c.to_string()), Some(c));
        }
        assert_eq!(CompilerImpl::parse("icc-O2"), None);
        assert_eq!(CompilerImpl::parse("gcc-O9"), None);
    }

    #[test]
    fn families_disagree_on_eval_order_and_line_policy() {
        let g = CompilerImpl::new(Family::Gcc, OptLevel::O2).personality();
        let c = CompilerImpl::new(Family::Clang, OptLevel::O2).personality();
        assert_ne!(g.eval_order, c.eval_order);
        assert_ne!(g.line_policy, c.line_policy);
        assert_ne!(g.stack_base, c.stack_base);
        assert_ne!(g.heap_header, c.heap_header);
    }

    #[test]
    fn o0_runs_no_passes() {
        let p = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        assert!(p.pipeline.is_empty());
        assert_eq!(p.slot_padding, 8);
    }

    #[test]
    fn clang_o1_widens_mul_gcc_does_not() {
        let c = CompilerImpl::new(Family::Clang, OptLevel::O1).personality();
        let g = CompilerImpl::new(Family::Gcc, OptLevel::O1).personality();
        assert!(c.pipeline.contains(&PassKind::WidenMul));
        assert!(!g.pipeline.contains(&PassKind::WidenMul));
    }

    #[test]
    fn o3_unrolls_and_clang_o3_fastpows() {
        let g3 = CompilerImpl::new(Family::Gcc, OptLevel::O3).personality();
        let c3 = CompilerImpl::new(Family::Clang, OptLevel::O3).personality();
        assert!(g3.pipeline.contains(&PassKind::Unroll));
        assert!(!g3.pipeline.contains(&PassKind::PowFast));
        assert!(c3.pipeline.contains(&PassKind::PowFast));
    }

    #[test]
    fn junk_is_deterministic_and_impl_specific() {
        let a = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        let b = CompilerImpl::new(Family::Clang, OptLevel::O0).personality();
        assert_eq!(a.junk_byte(0x1234), a.junk_byte(0x1234));
        assert_ne!(
            (0..64).map(|i| a.junk_byte(i)).collect::<Vec<_>>(),
            (0..64).map(|i| b.junk_byte(i)).collect::<Vec<_>>()
        );
        assert_eq!(a.junk_word(7), a.junk_word(7));
        assert_ne!(a.junk_word(7), b.junk_word(7));
    }

    #[test]
    fn seeds_are_distinct_across_all_ten() {
        let seeds: std::collections::HashSet<u64> = CompilerImpl::default_set()
            .iter()
            .map(|c| c.personality().seed)
            .collect();
        assert_eq!(seeds.len(), 10);
    }
}
