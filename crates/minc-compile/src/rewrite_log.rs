//! Rewrite-provenance log: a record of every optimizer rewrite that was
//! justified by an undefined-behaviour assumption.
//!
//! The paper's central observation is that unstable code is exactly the
//! code an optimizer may legally discard under UB assumptions. Our
//! UB-exploiting passes ([`crate::passes::ub_exploit`], and
//! [`crate::passes::mem2reg`]/[`crate::passes::unroll`] where they rely on
//! indeterminate values or implementation-specific trip counts) normally
//! perform those rewrites silently. When handed a [`RewriteLog`] sink they
//! additionally record *which instruction was rewritten, under which UB
//! justification, by which impl/opt-level*, mapped back to source lines via
//! the register line table ([`crate::ir::IrFunction::reg_lines`]). That
//! turns the compiler itself into a static unstable-code oracle (the
//! STACK-style idea), consumed by the `staticheck-ir` lint.

use crate::personality::CompilerImpl;
use std::fmt;

/// The UB assumption that justified a rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UbReason {
    /// A signed-overflow check of the `a + b < a` family was folded away
    /// because signed overflow "cannot happen".
    SignedOverflowCheck,
    /// A null check was deleted because the pointer was already
    /// dereferenced on every path to it.
    NullCheckAfterDeref,
    /// A shift by an out-of-range constant amount was folded to zero.
    OversizedShift,
    /// An uninitialized stack slot was promoted to a register seeded with
    /// an implementation-specific junk value.
    UninitPromotion,
    /// A counted loop was fully unrolled with an implementation-specific
    /// trip count (the seeded miscompilations of the paper's RQ2).
    UnrollTripCount,
}

impl fmt::Display for UbReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UbReason::SignedOverflowCheck => "signed-overflow-check",
            UbReason::NullCheckAfterDeref => "null-check-after-deref",
            UbReason::OversizedShift => "oversized-shift",
            UbReason::UninitPromotion => "uninit-promotion",
            UbReason::UnrollTripCount => "unroll-trip-count",
        })
    }
}

/// One logged rewrite.
#[derive(Debug, Clone)]
pub struct RewriteEntry {
    /// The implementation (family + opt level) that performed the rewrite.
    pub impl_id: CompilerImpl,
    /// Name of the function the rewrite happened in.
    pub function: String,
    /// The UB assumption that justified it.
    pub reason: UbReason,
    /// 1-based source line of the rewritten instruction (0 = unknown).
    pub line: u32,
    /// Stable cross-impl correlation key. For [`UbReason::UninitPromotion`]
    /// this is the mem2reg junk id of the promoted slot, so a dataflow
    /// finding caused by that junk value can be matched back to the
    /// promotion that fabricated it; 0 otherwise.
    pub key: u32,
    /// Human-readable description of what was rewritten.
    pub detail: String,
}

/// An append-only sink for rewrite provenance.
#[derive(Debug, Clone, Default)]
pub struct RewriteLog {
    /// The recorded rewrites, in pass-execution order.
    pub entries: Vec<RewriteEntry>,
}

impl RewriteLog {
    /// An empty log.
    pub fn new() -> RewriteLog {
        RewriteLog::default()
    }

    /// Appends one entry.
    pub fn record(
        &mut self,
        impl_id: CompilerImpl,
        function: &str,
        reason: UbReason,
        line: u32,
        key: u32,
        detail: impl Into<String>,
    ) {
        self.entries.push(RewriteEntry {
            impl_id,
            function: function.to_string(),
            reason,
            line,
            key,
            detail: detail.into(),
        });
    }
}

impl fmt::Display for RewriteEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} at line {}: {}",
            self.impl_id, self.reason, self.function, self.line, self.detail
        )
    }
}
