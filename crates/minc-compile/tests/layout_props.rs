//! Property tests for the layout engine: whatever slot/global shapes a
//! program produces, placements must be disjoint and aligned under every
//! personality — the bedrock under "divergence comes only from UB".
//!
//! Random shapes come from a small inline SplitMix64 generator so the
//! crate tests offline with no external dependencies.

use minc_compile::ir::{GlobalInit, GlobalSpec, IrFunction, SlotInfo};
use minc_compile::layout::{place_frame, place_globals, place_strings};
use minc_compile::CompilerImpl;

/// SplitMix64 (public domain algorithm).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn pick(&mut self, options: &[u64]) -> u64 {
        options[self.below(options.len() as u64) as usize]
    }
}

fn random_slot(rng: &mut Rng) -> SlotInfo {
    SlotInfo {
        name: "s".into(),
        size: 1 + rng.below(127),
        align: rng.pick(&[1, 4, 8, 16]),
        addressed: rng.below(2) == 0,
        scalar: None,
        promoted: false,
    }
}

fn empty_fn(slots: Vec<SlotInfo>) -> IrFunction {
    let mut f = IrFunction {
        name: "t".into(),
        param_count: 0,
        param_tys: vec![],
        ret_ty: None,
        blocks: vec![],
        slots,
        reg_count: 0,
        reg_tys: vec![],
        reg_lines: vec![],
    };
    f.new_block();
    f
}

/// Frame slots never overlap and honour alignment, for every
/// personality's ordering/padding policy.
#[test]
fn frame_slots_disjoint_and_aligned() {
    let mut rng = Rng(0xf7a3);
    for _case in 0..128 {
        let slots: Vec<SlotInfo> = (0..1 + rng.below(11))
            .map(|_| random_slot(&mut rng))
            .collect();
        for ci in CompilerImpl::default_set() {
            let p = ci.personality();
            let f = empty_fn(slots.clone());
            let layout = place_frame(&f, &p);
            assert_eq!(layout.frame_size % 16, 0);
            let mut spans: Vec<(u64, u64)> = f
                .slots
                .iter()
                .zip(&layout.offset_down)
                .map(|(s, &off)| {
                    // Place the frame base at a large aligned address.
                    let base = 1u64 << 40;
                    let lo = base - off;
                    assert!(off <= layout.frame_size, "slot outside frame");
                    assert_eq!(lo % s.align, 0, "misaligned slot");
                    (lo, lo + s.size)
                })
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "{ci}: overlapping slots {spans:?}");
            }
        }
    }
}

/// Globals never overlap and honour alignment under both ordering
/// policies.
#[test]
fn globals_disjoint_and_aligned() {
    let mut rng = Rng(0x61ab);
    for _case in 0..128 {
        let globals: Vec<GlobalSpec> = (0..1 + rng.below(15))
            .map(|i| GlobalSpec {
                name: format!("g{i}"),
                size: 1 + rng.below(63),
                align: rng.pick(&[1, 4, 8]),
                init: GlobalInit::Zero,
            })
            .collect();
        for ci in CompilerImpl::default_set() {
            let p = ci.personality();
            let addrs = place_globals(&globals, &p);
            let mut spans: Vec<(u64, u64)> = addrs
                .iter()
                .zip(&globals)
                .map(|(&a, g)| {
                    assert_eq!(a % g.align, 0);
                    assert!(a >= p.globals_base);
                    (a, a + g.size)
                })
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "{ci}: overlapping globals");
            }
        }
    }
}

/// Rodata strings never overlap.
#[test]
fn strings_disjoint() {
    let mut rng = Rng(0x57f1);
    for _case in 0..128 {
        let strings: Vec<Vec<u8>> = (0..1 + rng.below(15))
            .map(|_| vec![b'x'; 1 + rng.below(39) as usize])
            .collect();
        for ci in CompilerImpl::default_set() {
            let p = ci.personality();
            let addrs = place_strings(&strings, &p);
            let mut spans: Vec<(u64, u64)> = addrs
                .iter()
                .zip(&strings)
                .map(|(&a, s)| (a, a + s.len() as u64))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "{ci}: overlapping strings");
            }
        }
    }
}
