//! Property tests for the layout engine: whatever slot/global shapes a
//! program produces, placements must be disjoint and aligned under every
//! personality — the bedrock under "divergence comes only from UB".

use minc_compile::ir::{GlobalInit, GlobalSpec, IrFunction, SlotInfo};
use minc_compile::layout::{place_frame, place_globals, place_strings};
use minc_compile::CompilerImpl;
use proptest::prelude::*;

fn arb_slot() -> impl Strategy<Value = SlotInfo> {
    (1u64..128, prop_oneof![Just(1u64), Just(4), Just(8), Just(16)], any::<bool>()).prop_map(
        |(size, align, addressed)| SlotInfo {
            name: "s".into(),
            size,
            align,
            addressed,
            scalar: None,
            promoted: false,
        },
    )
}

fn empty_fn(slots: Vec<SlotInfo>) -> IrFunction {
    let mut f = IrFunction {
        name: "t".into(),
        param_count: 0,
        param_tys: vec![],
        ret_ty: None,
        blocks: vec![],
        slots,
        reg_count: 0,
        reg_tys: vec![],
    };
    f.new_block();
    f
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..Default::default() })]

    /// Frame slots never overlap and honour alignment, for every
    /// personality's ordering/padding policy.
    #[test]
    fn frame_slots_disjoint_and_aligned(slots in proptest::collection::vec(arb_slot(), 1..12)) {
        for ci in CompilerImpl::default_set() {
            let p = ci.personality();
            let f = empty_fn(slots.clone());
            let layout = place_frame(&f, &p);
            prop_assert_eq!(layout.frame_size % 16, 0);
            let mut spans: Vec<(u64, u64)> = f
                .slots
                .iter()
                .zip(&layout.offset_down)
                .map(|(s, &off)| {
                    // Place the frame base at a large aligned address.
                    let base = 1u64 << 40;
                    let lo = base - off;
                    prop_assert!(off <= layout.frame_size, "slot outside frame");
                    prop_assert_eq!(lo % s.align, 0, "misaligned slot");
                    Ok((lo, lo + s.size))
                })
                .collect::<Result<_, _>>()?;
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "{ci}: overlapping slots {spans:?}");
            }
        }
    }

    /// Globals never overlap and honour alignment under both ordering
    /// policies.
    #[test]
    fn globals_disjoint_and_aligned(sizes in proptest::collection::vec((1u64..64, prop_oneof![Just(1u64), Just(4), Just(8)]), 1..16)) {
        let globals: Vec<GlobalSpec> = sizes
            .iter()
            .enumerate()
            .map(|(i, &(size, align))| GlobalSpec {
                name: format!("g{i}"),
                size,
                align,
                init: GlobalInit::Zero,
            })
            .collect();
        for ci in CompilerImpl::default_set() {
            let p = ci.personality();
            let addrs = place_globals(&globals, &p);
            let mut spans: Vec<(u64, u64)> = addrs
                .iter()
                .zip(&globals)
                .map(|(&a, g)| {
                    prop_assert_eq!(a % g.align, 0);
                    prop_assert!(a >= p.globals_base);
                    Ok((a, a + g.size))
                })
                .collect::<Result<_, _>>()?;
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "{ci}: overlapping globals");
            }
        }
    }

    /// Rodata strings never overlap.
    #[test]
    fn strings_disjoint(lens in proptest::collection::vec(1usize..40, 1..16)) {
        let strings: Vec<Vec<u8>> = lens.iter().map(|&n| vec![b'x'; n]).collect();
        for ci in CompilerImpl::default_set() {
            let p = ci.personality();
            let addrs = place_strings(&strings, &p);
            let mut spans: Vec<(u64, u64)> = addrs
                .iter()
                .zip(&strings)
                .map(|(&a, s)| (a, a + s.len() as u64))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "{ci}: overlapping strings");
            }
        }
    }
}
