//! Block-compiled execution: superblock pre-decode + threaded dispatch.
//!
//! The per-instruction interpreter in `exec.rs` re-decodes every `Inst`
//! (enum match, operand field loads, frame-layout lookups) on every step.
//! This module translates a [`Binary`] **once** into a [`BlockProgram`]:
//! per function, a vector of *superblocks* whose operations ([`Op`]) carry
//! fully pre-resolved operands — constants folded through the personality's
//! junk words, frame-slot offsets flattened, hook locations pre-computed —
//! and whose unconditional-jump chains are fused so straight-line runs of
//! basic blocks dispatch without touching the frame state.
//!
//! The dispatcher ([`Vm::run_block`]) keeps the hot register file of the
//! current activation in locals (`mem::take`n out of the frame, swapped
//! back only at call/return boundaries) and charges the step limit per
//! superblock: when the whole block provably fits under the limit it runs
//! with **zero** per-op limit checks and reconciles `steps` once at the
//! boundary; otherwise it falls back to exact per-op accounting identical
//! to the interpreter. Every observable — `ExecResult` bits, stdout, step
//! counts (including the step at which a timeout fires), every `Hooks`
//! callback and its `Loc` — is bit-identical to the interpreter; the
//! equivalence suite in `tests/block_equivalence.rs` pins this across the
//! whole target catalog × 10 implementations.
//!
//! Hooks are monomorphized into the dispatch loop exactly as in the
//! interpreter, so the `NoHooks` fast path pays zero instrumentation cost
//! while sanitizer and coverage runs get the full per-instruction
//! callbacks without a separate slow dispatcher.

use crate::exec::{const_raw, eval_bin, eval_cast, eval_un, End, Vm};
use crate::hooks::{Hooks, Loc, PoisonUse};
use crate::result::{ExitStatus, Trap};
use minc::Builtin;
use minc_compile::ir::{
    BinKind, CastKind, ConstVal, Inst, IrType, MemWidth, Terminator, UnKind, ValueId,
};
use minc_compile::Binary;

// Operand views shared by the flat binary-opcode arms; each reproduces
// `eval_bin`'s canonicalization exactly.
#[inline(always)]
fn s32(v: u64) -> i32 {
    v as u32 as i32
}
#[inline(always)]
fn s64(v: u64) -> i64 {
    v as i64
}
#[inline(always)]
fn w32(v: i32) -> u64 {
    v as i64 as u64
}

/// Operand payload of a flat pre-resolved binary opcode (the 38
/// `Op::Add32`..`Op::GeU64` variants): the `(op, ty)` pair is encoded in
/// the variant itself so dispatch is a single jump, and each arm inlines
/// the exact formula of the corresponding `eval_bin` case (including the
/// I32 narrow-wrap and x86 shift-masking quirks). Only non-trapping
/// integer operations get a flat opcode; division, remainder, and float
/// ops keep the generic [`Op::Bin`] path. `ub_signed` rides along for
/// hook callbacks only.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BinOp {
    pub(crate) ub_signed: bool,
    pub(crate) dst: u32,
    pub(crate) a: u32,
    pub(crate) b: u32,
}

/// Maps `(op, ty)` to its flat opcode, or `None` for operations that stay
/// on the generic (trapping / float) path.
fn fast_bin(op: BinKind, ty: IrType, x: BinOp) -> Option<Op> {
    use BinKind::*;
    let narrow = ty == IrType::I32;
    Some(match (op, narrow) {
        (Add, true) => Op::Add32(x),
        (Add, false) => Op::Add64(x),
        (Sub, true) => Op::Sub32(x),
        (Sub, false) => Op::Sub64(x),
        (Mul, true) => Op::Mul32(x),
        (Mul, false) => Op::Mul64(x),
        (Shl, true) => Op::Shl32(x),
        (Shl, false) => Op::Shl64(x),
        (ShrS, true) => Op::ShrS32(x),
        (ShrS, false) => Op::ShrS64(x),
        (ShrU, true) => Op::ShrU32(x),
        (ShrU, false) => Op::ShrU64(x),
        (And, true) => Op::And32(x),
        (And, false) => Op::And64(x),
        (Or, true) => Op::Or32(x),
        (Or, false) => Op::Or64(x),
        (Xor, true) => Op::Xor32(x),
        (Xor, false) => Op::Xor64(x),
        (Eq, true) => Op::Eq32(x),
        (Eq, false) => Op::Eq64(x),
        (Ne, true) => Op::Ne32(x),
        (Ne, false) => Op::Ne64(x),
        (LtS, true) => Op::LtS32(x),
        (LtS, false) => Op::LtS64(x),
        (LeS, true) => Op::LeS32(x),
        (LeS, false) => Op::LeS64(x),
        (GtS, true) => Op::GtS32(x),
        (GtS, false) => Op::GtS64(x),
        (GeS, true) => Op::GeS32(x),
        (GeS, false) => Op::GeS64(x),
        (LtU, true) => Op::LtU32(x),
        (LtU, false) => Op::LtU64(x),
        (LeU, true) => Op::LeU32(x),
        (LeU, false) => Op::LeU64(x),
        (GtU, true) => Op::GtU32(x),
        (GtU, false) => Op::GtU64(x),
        (GeU, true) => Op::GeU32(x),
        (GeU, false) => Op::GeU64(x),
        _ => return None,
    })
}

/// Recovers the original `(op, ty)` pair of a flat binary opcode for hook
/// callbacks (instrumented paths only; `NoHooks` never calls this).
fn bin_meta(op: &Op) -> (BinKind, IrType) {
    use BinKind::*;
    let (k, narrow) = match op {
        Op::Add32(_) => (Add, true),
        Op::Add64(_) => (Add, false),
        Op::Sub32(_) => (Sub, true),
        Op::Sub64(_) => (Sub, false),
        Op::Mul32(_) => (Mul, true),
        Op::Mul64(_) => (Mul, false),
        Op::Shl32(_) => (Shl, true),
        Op::Shl64(_) => (Shl, false),
        Op::ShrS32(_) => (ShrS, true),
        Op::ShrS64(_) => (ShrS, false),
        Op::ShrU32(_) => (ShrU, true),
        Op::ShrU64(_) => (ShrU, false),
        Op::And32(_) => (And, true),
        Op::And64(_) => (And, false),
        Op::Or32(_) => (Or, true),
        Op::Or64(_) => (Or, false),
        Op::Xor32(_) => (Xor, true),
        Op::Xor64(_) => (Xor, false),
        Op::Eq32(_) => (Eq, true),
        Op::Eq64(_) => (Eq, false),
        Op::Ne32(_) => (Ne, true),
        Op::Ne64(_) => (Ne, false),
        Op::LtS32(_) => (LtS, true),
        Op::LtS64(_) => (LtS, false),
        Op::LeS32(_) => (LeS, true),
        Op::LeS64(_) => (LeS, false),
        Op::GtS32(_) => (GtS, true),
        Op::GtS64(_) => (GtS, false),
        Op::GeS32(_) => (GeS, true),
        Op::GeS64(_) => (GeS, false),
        Op::LtU32(_) => (LtU, true),
        Op::LtU64(_) => (LtU, false),
        Op::LeU32(_) => (LeU, true),
        Op::LeU64(_) => (LeU, false),
        Op::GtU32(_) => (GtU, true),
        Op::GtU64(_) => (GtU, false),
        Op::GeU32(_) => (GeU, true),
        Op::GeU64(_) => (GeU, false),
        _ => unreachable!("bin_meta on a non-binary op"),
    };
    (k, if narrow { IrType::I32 } else { IrType::I64 })
}

/// Pre-resolved load extension: the `(width, ty, sext)` triple of
/// `extend_load`, flattened at translation time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ExtKind {
    /// 1 byte, sign-extended.
    S8,
    /// 1 byte, zero-extended.
    U8,
    /// 4 bytes into an i32 register (sign-extended canonical form).
    S32,
    /// 4 bytes, zero-extended (raw i64 destination).
    U32,
    /// Full 8-byte word.
    W8,
}

impl ExtKind {
    fn of(width: MemWidth, ty: IrType, sext: bool) -> ExtKind {
        match (width, ty, sext) {
            (MemWidth::W1, _, true) => ExtKind::S8,
            (MemWidth::W1, _, false) => ExtKind::U8,
            (MemWidth::W4, IrType::I32, _) => ExtKind::S32,
            (MemWidth::W4, _, _) => ExtKind::U32,
            (MemWidth::W8, _, _) => ExtKind::W8,
        }
    }

    /// Mirrors `extend_load` for the pre-resolved kind.
    #[inline(always)]
    fn extend(self, raw: u64) -> u64 {
        match self {
            ExtKind::S8 => raw as u8 as i8 as i64 as u64,
            ExtKind::U8 => raw as u8 as u64,
            ExtKind::S32 => raw as u32 as i32 as i64 as u64,
            ExtKind::U32 => raw as u32 as u64,
            ExtKind::W8 => raw,
        }
    }

    /// Access width in bytes (the `MemWidth` this kind was built from).
    #[inline(always)]
    fn bytes(self) -> u64 {
        match self {
            ExtKind::S8 | ExtKind::U8 => 1,
            ExtKind::S32 | ExtKind::U32 => 4,
            ExtKind::W8 => 8,
        }
    }
}

/// Sentinel register index meaning "result discarded" (a register file can
/// never reach `u32::MAX` entries).
const NO_DST: u32 = u32::MAX;

/// Call-site payload of [`Op::CallFunc`], boxed to keep `Op` small.
#[derive(Debug, Clone)]
pub(crate) struct CallF {
    pub(crate) dst: Option<ValueId>,
    pub(crate) func: u32,
    pub(crate) args: Box<[u32]>,
}

/// Call-site payload of [`Op::CallBuiltin`], boxed to keep `Op` small.
#[derive(Debug, Clone)]
pub(crate) struct CallB {
    pub(crate) dst: Option<u32>,
    pub(crate) builtin: Builtin,
    pub(crate) args: Box<[u32]>,
    pub(crate) arg_tys: Box<[IrType]>,
}

/// A pre-decoded operation. Operands are raw register indices; layout
/// lookups are resolved at translation time. `Op` is deliberately kept at
/// 24 bytes — the flat per-(op, width) arithmetic variants cost 8 bytes
/// over the old packed encoding but buy a single-jump dispatch that
/// measured faster than the denser double-dispatch layout — and
/// everything the hot `NoHooks` path never touches lives elsewhere: hook
/// `Loc`s in the superblock's parallel [`BBlock::locs`] array, call
/// payloads behind a `Box`, and a fast bin op's `(op, ty)` pair derived
/// from its [`FastBin`] opcode on demand.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Constant with its raw register value pre-resolved (including the
    /// I32 truncation and personality junk words).
    Const {
        dst: u32,
        raw: u64,
        poison: bool,
    },
    /// Register copy.
    Copy {
        dst: u32,
        src: u32,
    },
    /// Flat pre-resolved binary opcodes (the hot path); see [`BinOp`].
    #[allow(missing_docs)] // mechanical (op, ty) product; semantics in eval_bin
    Add32(BinOp),
    Add64(BinOp),
    Sub32(BinOp),
    Sub64(BinOp),
    Mul32(BinOp),
    Mul64(BinOp),
    Shl32(BinOp),
    Shl64(BinOp),
    ShrS32(BinOp),
    ShrS64(BinOp),
    ShrU32(BinOp),
    ShrU64(BinOp),
    And32(BinOp),
    And64(BinOp),
    Or32(BinOp),
    Or64(BinOp),
    Xor32(BinOp),
    Xor64(BinOp),
    Eq32(BinOp),
    Eq64(BinOp),
    Ne32(BinOp),
    Ne64(BinOp),
    LtS32(BinOp),
    LtS64(BinOp),
    LeS32(BinOp),
    LeS64(BinOp),
    GtS32(BinOp),
    GtS64(BinOp),
    GeS32(BinOp),
    GeS64(BinOp),
    LtU32(BinOp),
    LtU64(BinOp),
    LeU32(BinOp),
    LeU64(BinOp),
    GtU32(BinOp),
    GtU64(BinOp),
    GeU32(BinOp),
    GeU64(BinOp),
    /// Binary operation on the generic path (div/rem/float).
    Bin {
        op: BinKind,
        ty: IrType,
        ub_signed: bool,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Unary operation.
    Un {
        op: UnKind,
        ty: IrType,
        dst: u32,
        a: u32,
    },
    /// Cast.
    Cast {
        kind: CastKind,
        dst: u32,
        a: u32,
    },
    /// Frame-slot address: `frame_hi - off`, offset pre-resolved.
    FrameAddr {
        dst: u32,
        off: u64,
    },
    /// Memory load; width and extension pre-resolved into `ext`.
    Load {
        dst: u32,
        addr: u32,
        ext: ExtKind,
    },
    /// Memory store; width (in bytes) pre-resolved.
    Store {
        addr: u32,
        src: u32,
        wb: u8,
    },
    /// Call to a user function (control transfer).
    CallFunc(Box<CallF>),
    /// Call to a runtime builtin (no control transfer).
    CallBuiltin(Box<CallB>),
    /// clang -O3's imprecise pow. `dst == NO_DST` discards the result.
    PowFast {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Seam between two basic blocks fused into one superblock: charges
    /// the fused `Jump`'s step and fires `on_edge` with the interpreter's
    /// exact locations (the jump's own `Loc` is in [`BBlock::locs`]).
    Edge {
        to_block: u32,
    },
}

/// A pre-decoded terminator. Branch targets carry both the translated
/// superblock index (`*_tb`, for dispatch) and the original basic-block id
/// (`*_orig`, for `on_edge` coverage locations).
#[derive(Debug, Clone)]
pub(crate) enum BTerm {
    Jump {
        tb: u32,
        orig: u32,
    },
    Br {
        cond: u32,
        then_tb: u32,
        then_orig: u32,
        else_tb: u32,
        else_orig: u32,
    },
    Ret {
        val: Option<u32>,
    },
    Unreachable,
}

/// One superblock: a fused run of basic blocks ending in a real terminator.
#[derive(Debug, Clone)]
pub(crate) struct BBlock {
    pub(crate) ops: Box<[Op]>,
    /// Interpreter hook location of each op, parallel to `ops`: the
    /// cursor-advanced `index + 1` convention within the op's fused basic
    /// block, or the fused jump's own location for an [`Op::Edge`]. Kept
    /// out of [`Op`] so the `NoHooks` hot loop never streams them; only
    /// fault exits and instrumented hooks index in.
    pub(crate) locs: Box<[Loc]>,
    pub(crate) term: BTerm,
    /// Interpreter-equivalent location of the terminator (the *last* fused
    /// basic block, at `inst == insts.len()`).
    pub(crate) term_loc: Loc,
}

/// One translated function. `blocks[0]` is the entry superblock.
#[derive(Debug, Clone)]
pub(crate) struct BFunc {
    pub(crate) blocks: Vec<BBlock>,
}

/// The block-compiled form of a [`Binary`]: every reachable basic block
/// pre-decoded into superblocks, cached per binary (keyed by
/// [`Binary::uid`]) inside an `ExecSession` or pre-seeded from the
/// campaign's `BinaryCache`.
#[derive(Debug, Clone)]
pub struct BlockProgram {
    pub(crate) funcs: Vec<BFunc>,
    uid: u64,
    block_count: usize,
}

impl BlockProgram {
    /// Translates a binary. Pure function of the binary's contents; the
    /// result is reusable across any number of executions and sessions.
    pub fn translate(bin: &Binary) -> BlockProgram {
        let mut funcs = Vec::with_capacity(bin.program.functions.len());
        let mut block_count = 0;
        for (fi, f) in bin.program.functions.iter().enumerate() {
            let bf = translate_func(bin, fi as u32, f);
            block_count += bf.blocks.len();
            funcs.push(bf);
        }
        BlockProgram {
            funcs,
            uid: bin.uid,
            block_count,
        }
    }

    /// The [`Binary::uid`] this translation belongs to.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Number of superblocks across all functions (a translation-work
    /// proxy reported by the `vm.blocks_translated` telemetry counter).
    pub fn block_count(&self) -> usize {
        self.block_count
    }
}

/// Reads a register without a bounds check.
///
/// SAFETY contract (upheld by construction, revalidated in
/// [`validate_reg_indices`] at translation time): every register index
/// stored in an [`Op`] is `< reg_count` of its function, and the
/// dispatcher's live `regs`/`poison` slices always belong to the activation
/// of the function whose ops are executing (`push_frame` sizes them to
/// exactly `reg_count`).
#[inline(always)]
fn rget(regs: &[u64], i: u32) -> u64 {
    debug_assert!((i as usize) < regs.len());
    unsafe { *regs.get_unchecked(i as usize) }
}

/// Writes a register without a bounds check (same contract as [`rget`]).
#[inline(always)]
fn rset(regs: &mut [u64], i: u32, v: u64) {
    debug_assert!((i as usize) < regs.len());
    unsafe { *regs.get_unchecked_mut(i as usize) = v }
}

/// Translation-time revalidation of the unchecked-access contract: panics
/// (exactly where the interpreter would panic on its own out-of-bounds
/// register index) if any op references a register `>= reg_count`, so the
/// dispatcher's `rget`/`rset` can never be reached with a bad index.
fn validate_reg_indices(bf: &BFunc, reg_count: u32) {
    let ck = |i: u32| {
        assert!(
            i < reg_count,
            "block translation: register v{i} out of range (reg_count {reg_count})"
        );
    };
    for bb in &bf.blocks {
        for op in bb.ops.iter() {
            match op {
                Op::Const { dst, .. } => ck(*dst),
                Op::Copy { dst, src } => {
                    ck(*dst);
                    ck(*src);
                }
                Op::Bin { dst, a, b, .. } => {
                    ck(*dst);
                    ck(*a);
                    ck(*b);
                }
                Op::Add32(x)
                | Op::Add64(x)
                | Op::Sub32(x)
                | Op::Sub64(x)
                | Op::Mul32(x)
                | Op::Mul64(x)
                | Op::Shl32(x)
                | Op::Shl64(x)
                | Op::ShrS32(x)
                | Op::ShrS64(x)
                | Op::ShrU32(x)
                | Op::ShrU64(x)
                | Op::And32(x)
                | Op::And64(x)
                | Op::Or32(x)
                | Op::Or64(x)
                | Op::Xor32(x)
                | Op::Xor64(x)
                | Op::Eq32(x)
                | Op::Eq64(x)
                | Op::Ne32(x)
                | Op::Ne64(x)
                | Op::LtS32(x)
                | Op::LtS64(x)
                | Op::LeS32(x)
                | Op::LeS64(x)
                | Op::GtS32(x)
                | Op::GtS64(x)
                | Op::GeS32(x)
                | Op::GeS64(x)
                | Op::LtU32(x)
                | Op::LtU64(x)
                | Op::LeU32(x)
                | Op::LeU64(x)
                | Op::GtU32(x)
                | Op::GtU64(x)
                | Op::GeU32(x)
                | Op::GeU64(x) => {
                    ck(x.dst);
                    ck(x.a);
                    ck(x.b);
                }
                Op::Un { dst, a, .. } | Op::Cast { dst, a, .. } => {
                    ck(*dst);
                    ck(*a);
                }
                Op::FrameAddr { dst, .. } => ck(*dst),
                Op::Load { dst, addr, .. } => {
                    ck(*dst);
                    ck(*addr);
                }
                Op::Store { addr, src, .. } => {
                    ck(*addr);
                    ck(*src);
                }
                Op::CallFunc(cf) => {
                    cf.args.iter().for_each(|&a| ck(a));
                    if let Some(d) = cf.dst {
                        ck(d.0);
                    }
                }
                Op::CallBuiltin(cb) => {
                    cb.args.iter().for_each(|&a| ck(a));
                    if let Some(d) = cb.dst {
                        ck(d);
                    }
                }
                Op::PowFast { dst, a, b } => {
                    ck(*a);
                    ck(*b);
                    if *dst != NO_DST {
                        ck(*dst);
                    }
                }
                Op::Edge { .. } => {}
            }
        }
        match &bb.term {
            BTerm::Br { cond, .. } => ck(*cond),
            BTerm::Ret { val: Some(r) } => ck(*r),
            _ => {}
        }
    }
}

fn translate_func(bin: &Binary, func: u32, f: &minc_compile::ir::IrFunction) -> BFunc {
    let nb = f.blocks.len();
    if nb == 0 {
        return BFunc { blocks: Vec::new() };
    }
    let mut reach = vec![false; nb];
    for b in f.reachable_blocks() {
        reach[b.0 as usize] = true;
    }
    // Count incoming edges among reachable blocks (Br to the same target
    // twice counts twice — such a target must stay a superblock head).
    let mut preds = vec![0u32; nb];
    for (i, b) in f.blocks.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        for s in b.term.successors() {
            preds[s.0 as usize] += 1;
        }
    }
    // A block is fused into its predecessor's superblock iff its only
    // incoming edge is that predecessor's unconditional jump. The entry
    // block and self-loops are never fused.
    let mut fused = vec![false; nb];
    for (i, b) in f.blocks.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        if let Terminator::Jump(t) = b.term {
            let t = t.0 as usize;
            if t != i && t != 0 && preds[t] == 1 {
                fused[t] = true;
            }
        }
    }
    // Heads (reachable, unfused blocks) get the translated indices; the
    // entry block is always head 0.
    let mut head_idx = vec![u32::MAX; nb];
    let mut heads = Vec::new();
    for i in 0..nb {
        if reach[i] && !fused[i] {
            head_idx[i] = heads.len() as u32;
            heads.push(i);
        }
    }
    let blocks = heads
        .iter()
        .map(|&h| translate_chain(bin, func, f, h, &fused, &head_idx))
        .collect();
    let bf = BFunc { blocks };
    validate_reg_indices(&bf, f.reg_count);
    bf
}

fn translate_chain(
    bin: &Binary,
    func: u32,
    f: &minc_compile::ir::IrFunction,
    head: usize,
    fused: &[bool],
    head_idx: &[u32],
) -> BBlock {
    let mut ops = Vec::new();
    let mut locs = Vec::new();
    let mut cur = head;
    loop {
        let b = &f.blocks[cur];
        for (j, inst) in b.insts.iter().enumerate() {
            ops.push(translate_inst(bin, func, inst));
            // The interpreter advances the frame's instruction cursor
            // before executing, so hook locations report index + 1.
            locs.push(Loc {
                func,
                block: cur as u32,
                inst: j as u32 + 1,
            });
        }
        let at_term = Loc {
            func,
            block: cur as u32,
            inst: b.insts.len() as u32,
        };
        if let Terminator::Jump(t) = b.term {
            if fused[t.0 as usize] {
                ops.push(Op::Edge { to_block: t.0 });
                locs.push(at_term);
                cur = t.0 as usize;
                continue;
            }
        }
        let term = match &b.term {
            Terminator::Jump(t) => BTerm::Jump {
                tb: head_idx[t.0 as usize],
                orig: t.0,
            },
            Terminator::Br { cond, then, els } => BTerm::Br {
                cond: cond.0,
                then_tb: head_idx[then.0 as usize],
                then_orig: then.0,
                else_tb: head_idx[els.0 as usize],
                else_orig: els.0,
            },
            Terminator::Ret(v) => BTerm::Ret {
                val: v.map(|r| r.0),
            },
            Terminator::Unreachable => BTerm::Unreachable,
        };
        return BBlock {
            ops: ops.into_boxed_slice(),
            locs: locs.into_boxed_slice(),
            term,
            term_loc: at_term,
        };
    }
}

fn translate_inst(bin: &Binary, func: u32, inst: &Inst) -> Op {
    match inst {
        Inst::Const { dst, ty, val } => {
            let mut raw = const_raw(bin, *val);
            if *ty == IrType::I32 {
                raw = raw as u32 as i32 as i64 as u64;
            }
            Op::Const {
                dst: dst.0,
                raw,
                poison: matches!(val, ConstVal::Junk(_)),
            }
        }
        Inst::Copy { dst, src, .. } => Op::Copy {
            dst: dst.0,
            src: src.0,
        },
        Inst::Bin {
            dst,
            ty,
            op,
            a,
            b,
            ub_signed,
        } => {
            let x = BinOp {
                ub_signed: *ub_signed,
                dst: dst.0,
                a: a.0,
                b: b.0,
            };
            fast_bin(*op, *ty, x).unwrap_or(Op::Bin {
                op: *op,
                ty: *ty,
                ub_signed: *ub_signed,
                dst: dst.0,
                a: a.0,
                b: b.0,
            })
        }
        Inst::Un { dst, ty, op, a, .. } => Op::Un {
            op: *op,
            ty: *ty,
            dst: dst.0,
            a: a.0,
        },
        Inst::Cast { dst, kind, a } => Op::Cast {
            kind: *kind,
            dst: dst.0,
            a: a.0,
        },
        Inst::FrameAddr { dst, slot } => Op::FrameAddr {
            dst: dst.0,
            off: bin.frames[func as usize].offset_down[slot.0 as usize],
        },
        Inst::Load {
            dst,
            ty,
            addr,
            width,
            sext,
        } => Op::Load {
            dst: dst.0,
            addr: addr.0,
            ext: ExtKind::of(*width, *ty, *sext),
        },
        Inst::Store { addr, src, width } => Op::Store {
            addr: addr.0,
            src: src.0,
            wb: width.bytes() as u8,
        },
        Inst::Call {
            dst,
            callee,
            args,
            arg_tys,
            ..
        } => match callee {
            minc_compile::ir::Callee::Func(fid) => Op::CallFunc(Box::new(CallF {
                dst: *dst,
                func: fid.0,
                args: args.iter().map(|a| a.0).collect(),
            })),
            minc_compile::ir::Callee::Builtin(b) => Op::CallBuiltin(Box::new(CallB {
                dst: dst.map(|d| d.0),
                builtin: *b,
                args: args.iter().map(|a| a.0).collect(),
                arg_tys: arg_tys.clone().into_boxed_slice(),
            })),
            minc_compile::ir::Callee::PowFast => Op::PowFast {
                dst: dst.map(|d| d.0).unwrap_or(NO_DST),
                a: args[0].0,
                b: args[1].0,
            },
        },
    }
}

impl<'s, 'b, 'h, H: Hooks> Vm<'s, 'b, 'h, H> {
    /// Runs the program through the block dispatcher. Bit-identical to
    /// [`Vm::run`] in every observable, including step accounting.
    pub(crate) fn run_block(&mut self, prog: &BlockProgram) -> ExitStatus {
        if let Err(e) = self.push_frame(self.bin.entry().0, &[], &[], None) {
            return self.end_status(e);
        }
        let e = self.block_loop(prog);
        self.end_status(e)
    }

    /// Dispatches to the poison-tracking or poison-free instantiation of
    /// the block loop. Monomorphizing on `TRACK` strips every poison
    /// branch and array access out of the common uninstrumented path.
    fn block_loop(&mut self, prog: &BlockProgram) -> End {
        if self.track_poison {
            self.block_loop_t::<true>(prog)
        } else {
            self.block_loop_t::<false>(prog)
        }
    }

    fn block_loop_t<const TRACK: bool>(&mut self, prog: &BlockProgram) -> End {
        let limit = self.config.step_limit;
        let track = TRACK;
        // Reusable call-argument scratch (the interpreter allocates two
        // fresh Vecs per call; block mode amortizes them per run).
        let mut vals: Vec<u64> = Vec::new();
        let mut pois: Vec<bool> = Vec::new();
        // Hot state of the current activation, held in locals and spilled
        // only at call/return boundaries and on exit.
        let (mut func, mut frame_hi, mut regs, mut poison) = {
            let a = self.s.frames.last_mut().expect("entry frame");
            (
                a.func,
                a.frame_hi,
                std::mem::take(&mut a.regs),
                std::mem::take(&mut a.poison),
            )
        };
        let mut tb = 0u32; // translated superblock index
        let mut start = 0usize; // op index to resume at (after a call)

        let end: End = 'outer: loop {
            let bb = &prog.funcs[func as usize].blocks[tb as usize];
            let ops = &bb.ops;
            // Side-array lookup for hook/fault locations. Inert hook sets
            // observe no locations at all (faults and traps carry none), so
            // the lookup compiles to a constant and stays out of the hot
            // loop; instrumented runs pay one predictable indexed load.
            let loc_at = |i: usize| {
                let zero = Loc {
                    func: 0,
                    block: 0,
                    inst: 0,
                };
                if H::INERT {
                    zero
                } else {
                    bb.locs.get(i).copied().unwrap_or(zero)
                }
            };
            let n = ops.len();
            let start0 = start;
            start = 0;
            let mut k = start0;
            // Step accounting: the whole superblock (remaining ops + the
            // terminator) costs `total` steps. When that provably fits
            // under the limit, skip per-op checks and reconcile at the
            // boundary (or on early exit); otherwise mirror the
            // interpreter's per-op `steps += 1; check` exactly.
            let total = (n - start0) as u64 + 1;
            let entry_steps = self.steps;
            let fast = entry_steps.saturating_add(total) <= limit;

            // On any mid-block exit, `steps` must equal what the
            // interpreter would have charged: every op up to and including
            // the current one.
            macro_rules! fail {
                ($e:expr) => {{
                    if fast {
                        self.steps = entry_steps + (k - start0) as u64;
                    }
                    break 'outer $e;
                }};
            }

            // Shared body of the 38 flat binary-opcode arms: operand
            // fetch, the (instrumented-only) hook check, eval, writeback.
            macro_rules! bin_arm {
                ($op:expr, $x:expr, $eval:expr) => {{
                    let x = *$x;
                    let (va, vb) = (rget(&regs, x.a), rget(&regs, x.b));
                    if !H::INERT {
                        let (bop, bty) = bin_meta($op);
                        if let Some(fault) =
                            self.hooks
                                .check_bin(bop, bty, va, vb, x.ub_signed, loc_at(k - 1))
                        {
                            fail!(End::Fault(fault));
                        }
                    }
                    let eval = $eval;
                    rset(&mut regs, x.dst, eval(va, vb));
                    if track {
                        poison[x.dst as usize] = poison[x.a as usize] || poison[x.b as usize];
                    }
                }};
            }

            // The op loop is expanded twice below — once with the per-op
            // limit check compiled out (`$careful = false`, the common case
            // where the whole block provably fits under the limit) and once
            // with the interpreter's exact per-op accounting.
            macro_rules! op_loop {
                ($careful:literal) => {
                    while k < n {
                        if $careful {
                            self.steps += 1;
                            if self.steps > limit {
                                break 'outer End::Timeout;
                            }
                        }
                        // SAFETY: the loop guard is `k < n` with `n == ops.len()`
                        // and `k` only grows, so the index is always in bounds.
                        let op = unsafe { ops.get_unchecked(k) };
                        k += 1;
                        match op {
                            Op::Const {
                                dst,
                                raw,
                                poison: p,
                            } => {
                                rset(&mut regs, *dst, *raw);
                                if track {
                                    poison[*dst as usize] = *p;
                                }
                            }
                            Op::Copy { dst, src } => {
                                let v = rget(&regs, *src);
                                rset(&mut regs, *dst, v);
                                if track {
                                    poison[*dst as usize] = poison[*src as usize];
                                }
                            }
                            Op::Add32(x) => bin_arm!(op, x, |va: u64, vb: u64| w32(
                                s32(va).wrapping_add(s32(vb))
                            )),
                            Op::Add64(x) => bin_arm!(op, x, |va: u64, vb: u64| va.wrapping_add(vb)),
                            Op::Sub32(x) => bin_arm!(op, x, |va: u64, vb: u64| w32(
                                s32(va).wrapping_sub(s32(vb))
                            )),
                            Op::Sub64(x) => bin_arm!(op, x, |va: u64, vb: u64| va.wrapping_sub(vb)),
                            Op::Mul32(x) => bin_arm!(op, x, |va: u64, vb: u64| w32(
                                s32(va).wrapping_mul(s32(vb))
                            )),
                            Op::Mul64(x) => bin_arm!(op, x, |va: u64, vb: u64| va.wrapping_mul(vb)),
                            Op::Shl32(x) => bin_arm!(op, x, |va: u64, vb: u64| w32(((va as u32)
                                << ((vb as u32) & 31))
                                as i32)),
                            Op::Shl64(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| va << ((vb as u32) & 63))
                            }
                            Op::ShrS32(x) => bin_arm!(op, x, |va: u64, vb: u64| w32(
                                s32(va) >> ((vb as u32) & 31)
                            )),
                            Op::ShrS64(x) => bin_arm!(op, x, |va: u64, vb: u64| (s64(va)
                                >> ((vb as u32) & 63))
                                as u64),
                            Op::ShrU32(x) => bin_arm!(op, x, |va: u64, vb: u64| w32(((va as u32)
                                >> ((vb as u32) & 31))
                                as i32)),
                            Op::ShrU64(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| va >> ((vb as u32) & 63))
                            }
                            Op::And32(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| w32(s32(va) & s32(vb)))
                            }
                            Op::And64(x) => bin_arm!(op, x, |va: u64, vb: u64| va & vb),
                            Op::Or32(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| w32(s32(va) | s32(vb)))
                            }
                            Op::Or64(x) => bin_arm!(op, x, |va: u64, vb: u64| va | vb),
                            Op::Xor32(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| w32(s32(va) ^ s32(vb)))
                            }
                            Op::Xor64(x) => bin_arm!(op, x, |va: u64, vb: u64| va ^ vb),
                            Op::Eq32(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| (s32(va) == s32(vb)) as u64)
                            }
                            Op::Eq64(x) => bin_arm!(op, x, |va: u64, vb: u64| (va == vb) as u64),
                            Op::Ne32(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| (s32(va) != s32(vb)) as u64)
                            }
                            Op::Ne64(x) => bin_arm!(op, x, |va: u64, vb: u64| (va != vb) as u64),
                            Op::LtS32(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| (s32(va) < s32(vb)) as u64)
                            }
                            Op::LtS64(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| (s64(va) < s64(vb)) as u64)
                            }
                            Op::LeS32(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| (s32(va) <= s32(vb)) as u64)
                            }
                            Op::LeS64(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| (s64(va) <= s64(vb)) as u64)
                            }
                            Op::GtS32(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| (s32(va) > s32(vb)) as u64)
                            }
                            Op::GtS64(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| (s64(va) > s64(vb)) as u64)
                            }
                            Op::GeS32(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| (s32(va) >= s32(vb)) as u64)
                            }
                            Op::GeS64(x) => {
                                bin_arm!(op, x, |va: u64, vb: u64| (s64(va) >= s64(vb)) as u64)
                            }
                            Op::LtU32(x) => bin_arm!(op, x, |va: u64, vb: u64| ((va as u32)
                                < (vb as u32))
                                as u64),
                            Op::LtU64(x) => bin_arm!(op, x, |va: u64, vb: u64| (va < vb) as u64),
                            Op::LeU32(x) => bin_arm!(op, x, |va: u64, vb: u64| ((va as u32)
                                <= (vb as u32))
                                as u64),
                            Op::LeU64(x) => bin_arm!(op, x, |va: u64, vb: u64| (va <= vb) as u64),
                            Op::GtU32(x) => bin_arm!(op, x, |va: u64, vb: u64| ((va as u32)
                                > (vb as u32))
                                as u64),
                            Op::GtU64(x) => bin_arm!(op, x, |va: u64, vb: u64| (va > vb) as u64),
                            Op::GeU32(x) => bin_arm!(op, x, |va: u64, vb: u64| ((va as u32)
                                >= (vb as u32))
                                as u64),
                            Op::GeU64(x) => bin_arm!(op, x, |va: u64, vb: u64| (va >= vb) as u64),
                            Op::Bin {
                                op,
                                ty,
                                ub_signed,
                                dst,
                                a,
                                b,
                            } => {
                                let (va, vb) = (rget(&regs, *a), rget(&regs, *b));
                                if !H::INERT {
                                    if let Some(fault) = self.hooks.check_bin(
                                        *op,
                                        *ty,
                                        va,
                                        vb,
                                        *ub_signed,
                                        loc_at(k - 1),
                                    ) {
                                        fail!(End::Fault(fault));
                                    }
                                }
                                let mut pa = false;
                                if track {
                                    pa = poison[*a as usize] || poison[*b as usize];
                                    if op.can_trap() && poison[*b as usize] {
                                        if let Some(fault) = self
                                            .hooks
                                            .on_poison_use(PoisonUse::Divisor, loc_at(k - 1))
                                        {
                                            fail!(End::Fault(fault));
                                        }
                                    }
                                }
                                match eval_bin(*op, *ty, va, vb) {
                                    Ok(r) => {
                                        rset(&mut regs, *dst, r);
                                        if track {
                                            poison[*dst as usize] = pa;
                                        }
                                    }
                                    Err(t) => fail!(End::Trap(t)),
                                }
                            }
                            Op::Un { op, ty, dst, a } => {
                                let v = eval_un(*op, *ty, rget(&regs, *a));
                                rset(&mut regs, *dst, v);
                                if track {
                                    poison[*dst as usize] = poison[*a as usize];
                                }
                            }
                            Op::Cast { kind, dst, a } => {
                                let v = eval_cast(*kind, rget(&regs, *a));
                                rset(&mut regs, *dst, v);
                                if track {
                                    poison[*dst as usize] = poison[*a as usize];
                                }
                            }
                            Op::FrameAddr { dst, off } => {
                                rset(&mut regs, *dst, frame_hi - off);
                                if track {
                                    poison[*dst as usize] = false;
                                }
                            }
                            Op::Load { dst, addr, ext } => {
                                let va = rget(&regs, *addr);
                                let wb = ext.bytes();
                                if track && poison[*addr as usize] {
                                    if let Some(fault) =
                                        self.hooks.on_poison_use(PoisonUse::Address, loc_at(k - 1))
                                    {
                                        fail!(End::Fault(fault));
                                    }
                                }
                                if let Err(e) = self.check_mem(va, wb, false, loc_at(k - 1)) {
                                    fail!(e);
                                }
                                let raw = self.s.mem.read(va, wb);
                                rset(&mut regs, *dst, ext.extend(raw));
                                if track {
                                    poison[*dst as usize] = self.hooks.load_poison(va, wb);
                                }
                            }
                            Op::Store { addr, src, wb } => {
                                let va = rget(&regs, *addr);
                                let wb = *wb as u64;
                                if track && poison[*addr as usize] {
                                    if let Some(fault) =
                                        self.hooks.on_poison_use(PoisonUse::Address, loc_at(k - 1))
                                    {
                                        fail!(End::Fault(fault));
                                    }
                                }
                                if let Err(e) = self.check_mem(va, wb, true, loc_at(k - 1)) {
                                    fail!(e);
                                }
                                self.s.mem.write(va, rget(&regs, *src), wb);
                                if track {
                                    self.hooks.store_poison(va, wb, poison[*src as usize]);
                                }
                            }
                            Op::CallBuiltin(cb) => {
                                vals.clear();
                                for &a in cb.args.iter() {
                                    vals.push(rget(&regs, a));
                                }
                                match self.builtin(cb.builtin, &vals, &cb.arg_tys, loc_at(k - 1)) {
                                    Ok(r) => {
                                        if let Some(d) = &cb.dst {
                                            regs[*d as usize] = r.unwrap_or(0);
                                            if track {
                                                poison[*d as usize] = false;
                                            }
                                        }
                                    }
                                    Err(e) => fail!(e),
                                }
                            }
                            Op::PowFast { dst, a, b } => {
                                let x = f64::from_bits(rget(&regs, *a));
                                let y = f64::from_bits(rget(&regs, *b));
                                let r = ((y as f32) * (x as f32).log2()).exp2() as f64;
                                if *dst != NO_DST {
                                    rset(&mut regs, *dst, r.to_bits());
                                    if track {
                                        poison[*dst as usize] = false;
                                    }
                                }
                            }
                            Op::Edge { to_block } => {
                                if !H::INERT {
                                    self.hooks.on_edge(
                                        loc_at(k - 1),
                                        Loc {
                                            func,
                                            block: *to_block,
                                            inst: 0,
                                        },
                                    );
                                }
                            }
                            Op::CallFunc(cf) => {
                                vals.clear();
                                pois.clear();
                                for &a in cf.args.iter() {
                                    vals.push(rget(&regs, a));
                                    if track {
                                        pois.push(poison[a as usize]);
                                    }
                                }
                                if fast {
                                    self.steps = entry_steps + (k - start0) as u64;
                                }
                                // Spill the caller's hot state and record the
                                // resume point (translated block + next op index).
                                {
                                    let a = self.s.frames.last_mut().expect("caller frame");
                                    std::mem::swap(&mut a.regs, &mut regs);
                                    std::mem::swap(&mut a.poison, &mut poison);
                                    a.block = tb;
                                    a.inst = k;
                                }
                                if let Err(e) = self.push_frame(cf.func, &vals, &pois, cf.dst) {
                                    break 'outer e;
                                }
                                let a = self.s.frames.last_mut().expect("callee frame");
                                func = a.func;
                                frame_hi = a.frame_hi;
                                regs = std::mem::take(&mut a.regs);
                                poison = std::mem::take(&mut a.poison);
                                tb = 0;
                                continue 'outer;
                            }
                        }
                    }
                };
            }
            if fast {
                op_loop!(false);
            } else {
                op_loop!(true);
            }
            // The terminator's step.
            if fast {
                self.steps = entry_steps + total;
            } else {
                self.steps += 1;
                if self.steps > limit {
                    break 'outer End::Timeout;
                }
            }
            match &bb.term {
                BTerm::Jump { tb: t, orig } => {
                    if !H::INERT {
                        self.hooks.on_edge(
                            bb.term_loc,
                            Loc {
                                func,
                                block: *orig,
                                inst: 0,
                            },
                        );
                    }
                    tb = *t;
                }
                BTerm::Br {
                    cond,
                    then_tb,
                    then_orig,
                    else_tb,
                    else_orig,
                } => {
                    if track && poison[*cond as usize] {
                        if let Some(fault) =
                            self.hooks.on_poison_use(PoisonUse::Branch, bb.term_loc)
                        {
                            break 'outer End::Fault(fault);
                        }
                    }
                    let (t, orig) = if rget(&regs, *cond) != 0 {
                        (*then_tb, *then_orig)
                    } else {
                        (*else_tb, *else_orig)
                    };
                    if !H::INERT {
                        self.hooks.on_edge(
                            bb.term_loc,
                            Loc {
                                func,
                                block: orig,
                                inst: 0,
                            },
                        );
                    }
                    tb = t;
                }
                BTerm::Ret { val } => {
                    let (v, p) = match val {
                        Some(r) => (Some(rget(&regs, *r)), track && poison[*r as usize]),
                        None => (None, false),
                    };
                    // Hand the register file back to the popping frame so
                    // the pool keeps its capacity.
                    {
                        let a = self.s.frames.last_mut().expect("returning frame");
                        std::mem::swap(&mut a.regs, &mut regs);
                        std::mem::swap(&mut a.poison, &mut poison);
                    }
                    if let Err(e) = self.pop_frame(v, p) {
                        break 'outer e;
                    }
                    let a = self.s.frames.last_mut().expect("caller frame");
                    func = a.func;
                    frame_hi = a.frame_hi;
                    tb = a.block;
                    start = a.inst;
                    regs = std::mem::take(&mut a.regs);
                    poison = std::mem::take(&mut a.poison);
                }
                BTerm::Unreachable => break 'outer End::Trap(Trap::IllegalInstruction),
            }
        };
        // If we still hold the top activation's registers, give them back
        // (keeps the frame pool's capacity; observable state is unchanged —
        // `prepare()` clears and resizes pooled register files on reuse).
        if let Some(a) = self.s.frames.last_mut() {
            if a.regs.is_empty() {
                std::mem::swap(&mut a.regs, &mut regs);
                std::mem::swap(&mut a.poison, &mut poison);
            }
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::Op;

    #[test]
    fn op_stays_cache_dense() {
        // Dense pre-decoded ops are a load-bearing part of the dispatch
        // speedup; a fatter variant silently regresses it. 24 bytes =
        // tag + the flat BinOp payload (profiled faster than the 16-byte
        // packed encoding, which needed a second dispatch on (op, ty)).
        assert!(
            std::mem::size_of::<Op>() <= 24,
            "Op grew to {} bytes",
            std::mem::size_of::<Op>()
        );
    }
}
