//! The bytecode interpreter.
//!
//! Executes a [`Binary`] exactly as that compiler implementation built it:
//! same instruction stream, same address-space layout, same junk. All
//! defined behaviour is implementation-independent; undefined behaviour
//! falls out of whatever the memory/layout/junk happens to be — which is
//! the point.
//!
//! The interpreter always runs *inside* an [`ExecSession`]: the one-shot
//! [`execute`] entry points simply create a throwaway session per call,
//! while persistent-mode callers reuse one session across inputs and skip
//! the per-run allocation of pages, frames, and allocator maps.

use crate::hooks::{FreeDisposition, Hooks, Loc, PoisonUse};
use crate::result::{ExecResult, ExitStatus, Trap};
use crate::session::ExecSession;
use minc::Builtin;
use minc_compile::ir::*;
use minc_compile::Binary;

/// Which execution backend runs the program. Both produce bit-identical
/// [`ExecResult`]s (including step counts, hook callbacks, and stdout);
/// block mode is simply faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VmMode {
    /// The per-instruction reference interpreter.
    Interp,
    /// Pre-decoded superblock dispatch (see `block.rs`). The translation
    /// is cached per [`Binary`] inside the [`ExecSession`].
    #[default]
    Block,
}

impl VmMode {
    /// Parses the CLI/env spelling (`"interp"` / `"block"`).
    pub fn parse(s: &str) -> Option<VmMode> {
        match s {
            "interp" => Some(VmMode::Interp),
            "block" => Some(VmMode::Block),
            _ => None,
        }
    }

    /// Resolves the mode from the `COMPDIFF_VM_MODE` environment variable
    /// (`interp` / `block`), falling back to the default when the variable
    /// is unset or unrecognised. [`VmConfig::default`] goes through this,
    /// so the override reaches every consumer that doesn't set an explicit
    /// mode; an explicit `--vm-mode` flag wins by assigning the field.
    pub fn from_env() -> VmMode {
        std::env::var("COMPDIFF_VM_MODE")
            .ok()
            .and_then(|s| VmMode::parse(&s))
            .unwrap_or_default()
    }
}

impl std::fmt::Display for VmMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VmMode::Interp => "interp",
            VmMode::Block => "block",
        })
    }
}

/// Execution limits and switches.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Maximum IR instructions to execute before reporting a timeout.
    pub step_limit: u64,
    /// Maximum call depth.
    pub max_frames: usize,
    /// Heap size limit in bytes.
    pub heap_limit: u64,
    /// Which execution backend to use.
    pub mode: VmMode,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            step_limit: 5_000_000,
            max_frames: 256,
            heap_limit: 1 << 26,
            mode: VmMode::from_env(),
        }
    }
}

/// Runs `binary` on `input` with no instrumentation.
pub fn execute(binary: &Binary, input: &[u8], config: &VmConfig) -> ExecResult {
    ExecSession::new(binary).run(binary, input, config)
}

/// Runs `binary` on `input` with instrumentation hooks.
pub fn execute_with_hooks<H: Hooks>(
    binary: &Binary,
    input: &[u8],
    config: &VmConfig,
    hooks: &mut H,
) -> ExecResult {
    ExecSession::new(binary).run_with_hooks(binary, input, config, hooks)
}

/// How a run handles the loader pass (rodata strings + globals).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum LoaderMode {
    /// Run the loader (the plain [`ExecSession::run`] path).
    Load,
    /// Run the loader, then capture its page image as the session
    /// memory's reset base (first run of a batch).
    LoadAndCapture,
    /// Skip the loader: the session memory already resets to this
    /// binary's post-loader image (warm batched run).
    Skip,
}

/// Runs one execution against an already-prepared session. Called by
/// [`ExecSession::run_with_hooks`] after the per-run reset.
pub(crate) fn run_in_session<H: Hooks>(
    session: &mut ExecSession,
    bin: &Binary,
    input: &[u8],
    config: &VmConfig,
    hooks: &mut H,
    loader: LoaderMode,
) -> ExecResult {
    let track_poison = hooks.track_poison();
    // Resolve the block translation (and bump the mode counters) before
    // constructing the Vm, which holds the session mutably for the run.
    let block = match config.mode {
        VmMode::Block => {
            session.block_exec += 1;
            Some(session.block_program(bin))
        }
        VmMode::Interp => {
            session.interp_fallback += 1;
            None
        }
    };
    let p = &bin.personality;
    let mut vm = Vm {
        bin,
        config,
        hooks,
        s: session,
        stdout: Vec::new(),
        input,
        input_pos: 0,
        sp: p.stack_base,
        heap_brk: p.heap_base,
        corruption_bias: 0,
        rand_state: p.rand_seed | 1,
        steps: 0,
        track_poison,
        rodata: bin.rodata_range(),
        globals: bin.globals_range(),
        slot_scratch: Vec::new(),
    };
    match loader {
        LoaderMode::Load => vm.load_data(),
        LoaderMode::LoadAndCapture => {
            vm.load_data();
            vm.s.mem.capture_loader_image();
        }
        LoaderMode::Skip => {}
    }
    let status = match &block {
        Some(prog) => vm.run_block(prog),
        None => vm.run(),
    };
    ExecResult {
        status,
        stdout: vm.stdout,
        steps: vm.steps,
    }
}

pub(crate) enum End {
    Exit(u8),
    Trap(Trap),
    Fault(crate::result::Fault),
    Timeout,
}

pub(crate) struct Vm<'s, 'b, 'h, H: Hooks> {
    pub(crate) bin: &'b Binary,
    pub(crate) config: &'b VmConfig,
    pub(crate) hooks: &'h mut H,
    /// Session-owned state: memory, frames, frame pool, allocator maps.
    pub(crate) s: &'s mut ExecSession,
    pub(crate) stdout: Vec<u8>,
    pub(crate) input: &'b [u8],
    pub(crate) input_pos: usize,
    pub(crate) sp: u64,
    pub(crate) heap_brk: u64,
    pub(crate) corruption_bias: u64,
    pub(crate) rand_state: u64,
    pub(crate) steps: u64,
    pub(crate) track_poison: bool,
    pub(crate) rodata: (u64, u64),
    pub(crate) globals: (u64, u64),
    pub(crate) slot_scratch: Vec<(u64, u64)>,
}

impl<'s, 'b, 'h, H: Hooks> Vm<'s, 'b, 'h, H> {
    /// Writes rodata and global initializers (the "loader").
    fn load_data(&mut self) {
        for (i, strn) in self.bin.program.strings.iter().enumerate() {
            let addr = self.bin.string_addrs[i];
            self.s.mem.write_bytes(addr, strn);
        }
        // BSS-style zeroing of the whole globals segment, then initializers.
        let (gs, ge) = self.globals;
        self.s.mem.fill(gs, 0, ge - gs);
        for (i, g) in self.bin.program.globals.iter().enumerate() {
            let addr = self.bin.global_addrs[i];
            if let GlobalInit::Scalar(val, width) = &g.init {
                let raw = self.const_raw(*val);
                self.s.mem.write(addr, raw, width.bytes());
            }
        }
    }

    fn const_raw(&self, v: ConstVal) -> u64 {
        const_raw(self.bin, v)
    }

    fn run(&mut self) -> ExitStatus {
        match self.push_frame(self.bin.entry().0, &[], &[], None) {
            Ok(()) => {}
            Err(e) => return self.end_status(e),
        }
        loop {
            match self.step() {
                Ok(()) => {}
                Err(e) => return self.end_status(e),
            }
        }
    }

    pub(crate) fn end_status(&self, e: End) -> ExitStatus {
        match e {
            End::Exit(c) => ExitStatus::Code(c),
            End::Trap(t) => ExitStatus::Trapped(t),
            End::Fault(f) => ExitStatus::Sanitizer(f),
            End::Timeout => ExitStatus::TimedOut,
        }
    }

    fn loc(&self) -> Loc {
        let f = self.s.frames.last().expect("active frame");
        Loc {
            func: f.func,
            block: f.block,
            inst: f.inst as u32,
        }
    }

    pub(crate) fn push_frame(
        &mut self,
        func: u32,
        args: &[u64],
        args_poison: &[bool],
        ret_dst: Option<ValueId>,
    ) -> Result<(), End> {
        if self.s.frames.len() >= self.config.max_frames {
            return Err(End::Trap(Trap::StackOverflow));
        }
        let f = &self.bin.program.functions[func as usize];
        let layout = &self.bin.frames[func as usize];
        let base = self.sp;
        let lo = base - layout.frame_size;
        if lo < self.bin.personality.stack_base - self.bin.personality.stack_size {
            return Err(End::Trap(Trap::StackOverflow));
        }
        self.sp = lo;
        // Pop a pooled activation (or default-construct the first time);
        // clear+resize reproduces the all-zero register file of a fresh
        // allocation, so pooling is observably identical.
        let mut act = self.s.frame_pool.pop().unwrap_or_default();
        act.func = func;
        act.block = 0;
        act.inst = 0;
        act.frame_lo = lo;
        act.frame_hi = base;
        act.ret_dst = ret_dst;
        act.regs.clear();
        act.regs.resize(f.reg_count as usize, 0);
        act.poison.clear();
        act.poison.resize(
            if self.track_poison {
                f.reg_count as usize
            } else {
                0
            },
            false,
        );
        for (i, &a) in args.iter().enumerate() {
            act.regs[i] = a;
            if self.track_poison {
                act.poison[i] = args_poison.get(i).copied().unwrap_or(false);
            }
        }
        if H::INERT {
            // No hook reads the slot list; skip building it.
            self.hooks.on_frame_enter(lo, base, &[]);
        } else {
            self.slot_scratch.clear();
            self.slot_scratch.extend(
                f.slots
                    .iter()
                    .zip(&layout.offset_down)
                    .filter(|(s, _)| !s.promoted)
                    .map(|(s, &off)| (base - off, s.size.max(1))),
            );
            self.hooks.on_frame_enter(lo, base, &self.slot_scratch);
        }
        self.s.frames.push(act);
        Ok(())
    }

    pub(crate) fn pop_frame(&mut self, ret: Option<u64>, ret_poison: bool) -> Result<(), End> {
        let act = self.s.frames.pop().expect("frame to pop");
        self.hooks.on_frame_exit(act.frame_lo, act.frame_hi);
        self.sp = act.frame_hi;
        let ret_dst = act.ret_dst;
        self.s.frame_pool.push(act);
        if self.s.frames.is_empty() {
            // Returning from main: give leak checkers their shot first.
            if let Some(f) = self.exit_check() {
                return Err(End::Fault(f));
            }
            return Err(End::Exit(ret.unwrap_or(0) as u8));
        }
        if let Some(dst) = ret_dst {
            let caller = self.s.frames.last_mut().expect("caller frame");
            caller.regs[dst.0 as usize] = ret.unwrap_or(0);
            if self.track_poison {
                caller.poison[dst.0 as usize] = ret_poison;
            }
        }
        Ok(())
    }

    // ---- memory validity ----

    fn addr_valid(&self, addr: u64, width: u64, write: bool) -> bool {
        let end = addr.wrapping_add(width);
        if end < addr {
            return false;
        }
        let (rs, re) = self.rodata;
        if addr >= rs && end <= re {
            return !write;
        }
        let (gs, ge) = self.globals;
        if addr >= gs && end <= ge {
            return true;
        }
        let p = &self.bin.personality;
        // The whole configured stack band is accessible (like a mapped
        // stack): reads below the frame see old junk, and one page above
        // the initial stack pointer models the argv/environment area —
        // realistic, and junk-filled per implementation.
        if addr >= p.stack_base - p.stack_size && end <= p.stack_base + 4096 {
            return true;
        }
        if addr >= p.heap_base && end <= self.heap_brk {
            return true;
        }
        false
    }

    pub(crate) fn check_mem(
        &mut self,
        addr: u64,
        width: u64,
        write: bool,
        loc: Loc,
    ) -> Result<(), End> {
        if write {
            if let Some(f) = self.hooks.check_store(addr, width, loc) {
                return Err(End::Fault(f));
            }
        } else if let Some(f) = self.hooks.check_load(addr, width, loc) {
            return Err(End::Fault(f));
        }
        if !self.addr_valid(addr, width, write) {
            return Err(End::Trap(Trap::Segv));
        }
        Ok(())
    }

    // ---- the step function ----

    fn step(&mut self) -> Result<(), End> {
        self.steps += 1;
        if self.steps > self.config.step_limit {
            return Err(End::Timeout);
        }
        let (func, block, inst_idx) = {
            let a = self.s.frames.last().expect("active frame");
            (a.func, a.block, a.inst)
        };
        // Reborrow the instruction stream through the `'b` binary, not
        // through `self`, so the hot loop never clones an `Inst`.
        let bin: &'b Binary = self.bin;
        let f = &bin.program.functions[func as usize];
        let b = &f.blocks[block as usize];
        if inst_idx < b.insts.len() {
            let inst = &b.insts[inst_idx];
            self.s.frames.last_mut().expect("active frame").inst += 1;
            self.exec_inst(inst)
        } else {
            self.exec_term(&b.term)
        }
    }

    fn reg(&self, v: ValueId) -> u64 {
        self.s.frames.last().expect("frame").regs[v.0 as usize]
    }

    fn reg_poison(&self, v: ValueId) -> bool {
        if !self.track_poison {
            return false;
        }
        self.s.frames.last().expect("frame").poison[v.0 as usize]
    }

    fn set_reg(&mut self, v: ValueId, val: u64, poisoned: bool) {
        let track = self.track_poison;
        let f = self.s.frames.last_mut().expect("frame");
        f.regs[v.0 as usize] = val;
        if track {
            f.poison[v.0 as usize] = poisoned;
        }
    }

    fn exec_inst(&mut self, inst: &Inst) -> Result<(), End> {
        let loc = self.loc();
        match inst {
            Inst::Const { dst, ty, val } => {
                let mut raw = self.const_raw(*val);
                if *ty == IrType::I32 {
                    raw = raw as u32 as i32 as i64 as u64;
                }
                let poisoned = matches!(val, ConstVal::Junk(_));
                self.set_reg(*dst, raw, poisoned);
                Ok(())
            }
            Inst::Copy { dst, src, .. } => {
                let v = self.reg(*src);
                let p = self.reg_poison(*src);
                self.set_reg(*dst, v, p);
                Ok(())
            }
            Inst::Bin {
                dst,
                ty,
                op,
                a,
                b,
                ub_signed,
            } => {
                let (va, vb) = (self.reg(*a), self.reg(*b));
                if let Some(fault) = self.hooks.check_bin(*op, *ty, va, vb, *ub_signed, loc) {
                    return Err(End::Fault(fault));
                }
                let pa = self.reg_poison(*a) || self.reg_poison(*b);
                if self.track_poison && op.can_trap() && self.reg_poison(*b) {
                    if let Some(fault) = self.hooks.on_poison_use(PoisonUse::Divisor, loc) {
                        return Err(End::Fault(fault));
                    }
                }
                let r = eval_bin(*op, *ty, va, vb).map_err(End::Trap)?;
                self.set_reg(*dst, r, pa);
                Ok(())
            }
            Inst::Un { dst, ty, op, a, .. } => {
                let va = self.reg(*a);
                let p = self.reg_poison(*a);
                let r = eval_un(*op, *ty, va);
                self.set_reg(*dst, r, p);
                Ok(())
            }
            Inst::Cast { dst, kind, a } => {
                let va = self.reg(*a);
                let p = self.reg_poison(*a);
                let r = eval_cast(*kind, va);
                self.set_reg(*dst, r, p);
                Ok(())
            }
            Inst::FrameAddr { dst, slot } => {
                let a = self.s.frames.last().expect("frame");
                let base = a.frame_hi;
                let off = self.bin.frames[a.func as usize].offset_down[slot.0 as usize];
                self.set_reg(*dst, base - off, false);
                Ok(())
            }
            Inst::Load {
                dst,
                ty,
                addr,
                width,
                sext,
            } => {
                let va = self.reg(*addr);
                if self.track_poison && self.reg_poison(*addr) {
                    if let Some(fault) = self.hooks.on_poison_use(PoisonUse::Address, loc) {
                        return Err(End::Fault(fault));
                    }
                }
                self.check_mem(va, width.bytes(), false, loc)?;
                let raw = self.s.mem.read(va, width.bytes());
                let val = extend_load(raw, *width, *ty, *sext);
                let poisoned = self.track_poison && self.hooks.load_poison(va, width.bytes());
                self.set_reg(*dst, val, poisoned);
                Ok(())
            }
            Inst::Store { addr, src, width } => {
                let va = self.reg(*addr);
                if self.track_poison && self.reg_poison(*addr) {
                    if let Some(fault) = self.hooks.on_poison_use(PoisonUse::Address, loc) {
                        return Err(End::Fault(fault));
                    }
                }
                self.check_mem(va, width.bytes(), true, loc)?;
                let v = self.reg(*src);
                self.s.mem.write(va, v, width.bytes());
                if self.track_poison {
                    let p = self.reg_poison(*src);
                    self.hooks.store_poison(va, width.bytes(), p);
                }
                Ok(())
            }
            Inst::Call {
                dst,
                callee,
                args,
                arg_tys,
                ..
            } => {
                let vals: Vec<u64> = args.iter().map(|a| self.reg(*a)).collect();
                let pois: Vec<bool> = args.iter().map(|a| self.reg_poison(*a)).collect();
                match callee {
                    Callee::Func(fid) => self.push_frame(fid.0, &vals, &pois, *dst),
                    Callee::Builtin(b) => {
                        let r = self.builtin(*b, &vals, arg_tys, loc)?;
                        if let Some(d) = dst {
                            self.set_reg(*d, r.unwrap_or(0), false);
                        }
                        Ok(())
                    }
                    Callee::PowFast => {
                        // exp2(y * log2(x)) in f32 precision: fast, imprecise.
                        let x = f64::from_bits(vals[0]);
                        let y = f64::from_bits(vals[1]);
                        let r = ((y as f32) * (x as f32).log2()).exp2() as f64;
                        if let Some(d) = dst {
                            self.set_reg(*d, r.to_bits(), false);
                        }
                        Ok(())
                    }
                }
            }
        }
    }

    fn exec_term(&mut self, term: &Terminator) -> Result<(), End> {
        let loc = self.loc();
        match term {
            Terminator::Jump(t) => {
                self.hooks.on_edge(
                    loc,
                    Loc {
                        func: loc.func,
                        block: t.0,
                        inst: 0,
                    },
                );
                let a = self.s.frames.last_mut().expect("frame");
                a.block = t.0;
                a.inst = 0;
                Ok(())
            }
            Terminator::Br { cond, then, els } => {
                if self.track_poison && self.reg_poison(*cond) {
                    if let Some(fault) = self.hooks.on_poison_use(PoisonUse::Branch, loc) {
                        return Err(End::Fault(fault));
                    }
                }
                let taken = if self.reg(*cond) != 0 { *then } else { *els };
                self.hooks.on_edge(
                    loc,
                    Loc {
                        func: loc.func,
                        block: taken.0,
                        inst: 0,
                    },
                );
                let a = self.s.frames.last_mut().expect("frame");
                a.block = taken.0;
                a.inst = 0;
                Ok(())
            }
            Terminator::Ret(v) => {
                let (val, poi) = match v {
                    Some(r) => (Some(self.reg(*r)), self.reg_poison(*r)),
                    None => (None, false),
                };
                self.pop_frame(val, poi)
            }
            Terminator::Unreachable => Err(End::Trap(Trap::IllegalInstruction)),
        }
    }

    // ---- builtins ----

    fn cstr_checked(&mut self, addr: u64, loc: Loc) -> Result<Vec<u8>, End> {
        let mut out = Vec::new();
        self.cstr_checked_into(addr, loc, &mut out)?;
        Ok(out)
    }

    /// [`cstr_checked`](Self::cstr_checked) into a caller-owned buffer
    /// (appends without clearing), so hot callers can pool the allocation.
    fn cstr_checked_into(&mut self, addr: u64, loc: Loc, out: &mut Vec<u8>) -> Result<(), End> {
        let start = out.len();
        let mut a = addr;
        loop {
            self.check_mem(a, 1, false, loc)?;
            let b = self.s.mem.read_u8(a);
            if b == 0 {
                return Ok(());
            }
            out.push(b);
            if out.len() - start > 1 << 20 {
                return Err(End::Trap(Trap::Segv));
            }
            a = a.wrapping_add(1);
        }
    }

    /// True when `[addr, addr+len)` can be bulk-accessed without changing
    /// observable behaviour: the hooks run no per-byte instrumentation and
    /// the whole range is valid in one region (so the per-byte loop could
    /// never trap part-way).
    fn bulk_ok(&self, addr: u64, len: u64, write: bool) -> bool {
        len > 0 && self.hooks.bulk_mem_ok() && self.addr_valid(addr, len, write)
    }

    pub(crate) fn builtin(
        &mut self,
        b: Builtin,
        args: &[u64],
        arg_tys: &[IrType],
        loc: Loc,
    ) -> Result<Option<u64>, End> {
        use Builtin::*;
        match b {
            Printf => {
                let n = self.printf(args, arg_tys, loc)?;
                Ok(Some(n as u64))
            }
            Putchar => {
                self.stdout.push(args[0] as u8);
                Ok(Some(args[0] as u32 as i32 as i64 as u64))
            }
            Puts => {
                // Same pooled-buffer scheme as printf: a faulting read
                // emits nothing, and the buffer is handed back either way.
                let mut s = std::mem::take(&mut self.s.printf_fmt);
                s.clear();
                let ret = match self.cstr_checked_into(args[0], loc, &mut s) {
                    Ok(()) => {
                        self.stdout.extend_from_slice(&s);
                        self.stdout.push(b'\n');
                        Ok(Some(0))
                    }
                    Err(e) => Err(e),
                };
                self.s.printf_fmt = s;
                ret
            }
            Getchar => {
                let r = if self.input_pos < self.input.len() {
                    let c = self.input[self.input_pos] as i64;
                    self.input_pos += 1;
                    c
                } else {
                    -1
                };
                Ok(Some(r as u64))
            }
            ReadInput => {
                let (buf, n) = (args[0], args[1] as i64);
                let avail = (self.input.len() - self.input_pos) as i64;
                let take = n.clamp(0, avail);
                if self.bulk_ok(buf, take as u64, true) {
                    self.s.bulk_ops += 1;
                    let t = take as usize;
                    let bytes = &self.input[self.input_pos..self.input_pos + t];
                    self.s.mem.write_bytes(buf, bytes);
                    self.input_pos += t;
                } else {
                    self.s.fallback_ops += 1;
                    for i in 0..take {
                        self.check_mem(buf.wrapping_add(i as u64), 1, true, loc)?;
                        self.s
                            .mem
                            .write_u8(buf.wrapping_add(i as u64), self.input[self.input_pos]);
                        if self.track_poison {
                            self.hooks
                                .store_poison(buf.wrapping_add(i as u64), 1, false);
                        }
                        self.input_pos += 1;
                    }
                }
                Ok(Some(take as u64))
            }
            InputSize => Ok(Some(self.input.len() as u64)),
            Malloc => {
                let size = args[0];
                Ok(Some(self.malloc(size)))
            }
            Free => {
                self.free(args[0], loc)?;
                Ok(None)
            }
            Memcpy => {
                let (d, s, n) = (args[0], args[1], args[2]);
                if self.bulk_ok(s, n, false) && self.bulk_ok(d, n, true) {
                    self.s.bulk_ops += 1;
                    // Memory::copy preserves the byte-forward overlap
                    // semantics of the per-byte loop below.
                    self.s.mem.copy(d, s, n);
                } else {
                    self.s.fallback_ops += 1;
                    for i in 0..n {
                        self.check_mem(s.wrapping_add(i), 1, false, loc)?;
                        self.check_mem(d.wrapping_add(i), 1, true, loc)?;
                        let byte = self.s.mem.read_u8(s.wrapping_add(i));
                        self.s.mem.write_u8(d.wrapping_add(i), byte);
                        if self.track_poison {
                            let p = self.hooks.load_poison(s.wrapping_add(i), 1);
                            self.hooks.store_poison(d.wrapping_add(i), 1, p);
                        }
                    }
                }
                Ok(Some(d))
            }
            Memset => {
                let (d, v, n) = (args[0], args[1] as u8, args[2]);
                if self.bulk_ok(d, n, true) {
                    self.s.bulk_ops += 1;
                    self.s.mem.fill(d, v, n);
                } else {
                    self.s.fallback_ops += 1;
                    for i in 0..n {
                        self.check_mem(d.wrapping_add(i), 1, true, loc)?;
                        self.s.mem.write_u8(d.wrapping_add(i), v);
                        if self.track_poison {
                            self.hooks.store_poison(d.wrapping_add(i), 1, false);
                        }
                    }
                }
                Ok(Some(d))
            }
            Strlen => {
                let s = self.cstr_checked(args[0], loc)?;
                Ok(Some(s.len() as u64))
            }
            Strcpy => {
                let s = self.cstr_checked(args[1], loc)?;
                let d = args[0];
                for (i, &b) in s.iter().chain(std::iter::once(&0)).enumerate() {
                    self.check_mem(d.wrapping_add(i as u64), 1, true, loc)?;
                    self.s.mem.write_u8(d.wrapping_add(i as u64), b);
                    if self.track_poison {
                        self.hooks.store_poison(d.wrapping_add(i as u64), 1, false);
                    }
                }
                Ok(Some(d))
            }
            Strncpy => {
                let s = self.cstr_checked(args[1], loc)?;
                let (d, n) = (args[0], args[2]);
                for i in 0..n {
                    let b = s.get(i as usize).copied().unwrap_or(0);
                    self.check_mem(d.wrapping_add(i), 1, true, loc)?;
                    self.s.mem.write_u8(d.wrapping_add(i), b);
                    if self.track_poison {
                        self.hooks.store_poison(d.wrapping_add(i), 1, false);
                    }
                }
                Ok(Some(d))
            }
            Strcmp => {
                let a = self.cstr_checked(args[0], loc)?;
                let b = self.cstr_checked(args[1], loc)?;
                let r = match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1i64,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                Ok(Some(r as u64))
            }
            Exit => {
                if let Some(f) = self.exit_check() {
                    return Err(End::Fault(f));
                }
                Err(End::Exit(args[0] as u8))
            }
            Abort => Err(End::Trap(Trap::Abort)),
            Pow => {
                let x = f64::from_bits(args[0]);
                let y = f64::from_bits(args[1]);
                Ok(Some(x.powf(y).to_bits()))
            }
            Sqrt => Ok(Some(f64::from_bits(args[0]).sqrt().to_bits())),
            Floor => Ok(Some(f64::from_bits(args[0]).floor().to_bits())),
            Atoi => {
                let s = self.cstr_checked(args[0], loc)?;
                let txt = String::from_utf8_lossy(&s);
                let txt = txt.trim_start();
                let (neg, digits) = match txt.strip_prefix('-') {
                    Some(rest) => (true, rest),
                    None => (false, txt.strip_prefix('+').unwrap_or(txt)),
                };
                let mut v: i64 = 0;
                for c in digits.chars() {
                    let Some(d) = c.to_digit(10) else { break };
                    v = v.wrapping_mul(10).wrapping_add(d as i64);
                    if v > u32::MAX as i64 {
                        break; // overflow behaviour is unspecified; clamp-ish
                    }
                }
                let v = if neg { -v } else { v };
                Ok(Some(v as i32 as i64 as u64))
            }
            Rand => {
                // Implementation-defined PRNG: xorshift64*.
                let mut x = self.rand_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rand_state = x;
                let r = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33) & 0x7fff_ffff;
                Ok(Some(r as i32 as i64 as u64))
            }
        }
    }

    /// Runs the hooks' exit-time check (LeakSanitizer-style).
    fn exit_check(&mut self) -> Option<crate::result::Fault> {
        let mut live: Vec<(u64, u64)> = self.s.live_chunks.iter().map(|(&a, &s)| (a, s)).collect();
        live.sort_unstable();
        self.hooks.on_exit(&live)
    }

    fn malloc(&mut self, size: u64) -> u64 {
        let p = &self.bin.personality;
        let asize = size.max(1).div_ceil(p.heap_align) * p.heap_align;
        let redzone = self.hooks.heap_redzone();
        if let Some(list) = self.s.free_lists.get_mut(&asize) {
            if let Some(addr) = list.pop() {
                self.s.live_chunks.insert(addr, asize);
                self.hooks.on_malloc(addr, size);
                return addr;
            }
        }
        let payload = self.heap_brk + p.heap_header + redzone + self.corruption_bias;
        let payload = payload.div_ceil(p.heap_align) * p.heap_align;
        let new_brk = payload + asize + redzone;
        if new_brk - p.heap_base > self.config.heap_limit {
            return 0; // OOM -> NULL
        }
        self.heap_brk = new_brk;
        self.s.live_chunks.insert(payload, asize);
        self.hooks.on_malloc(payload, size);
        payload
    }

    fn free(&mut self, ptr: u64, loc: Loc) -> Result<(), End> {
        if ptr == 0 {
            return Ok(()); // free(NULL) is a no-op
        }
        if let Some(size) = self.s.live_chunks.remove(&ptr) {
            match self.hooks.on_free(ptr, size, loc) {
                Ok(FreeDisposition::Reuse) => {
                    // Like glibc, the allocator stores free-list metadata
                    // (fd/bk pointers and a key) inside the freed chunk.
                    // The bytes are implementation-specific — which is why
                    // use-after-free *reads* are unstable code.
                    let head = self.s.free_lists.get(&size).and_then(|l| l.last().copied());
                    let fd = head.unwrap_or(0);
                    let key = self.bin.personality.seed ^ size;
                    self.s.mem.write(ptr, fd, 8.min(size));
                    if size >= 16 {
                        self.s.mem.write(ptr + 8, key, 8);
                    }
                    self.s.free_lists.entry(size).or_default().push(ptr);
                }
                Ok(FreeDisposition::Quarantine) => {}
                Err(f) => return Err(End::Fault(f)),
            }
            return Ok(());
        }
        // Not a live chunk: double free, interior pointer, or non-heap.
        if let Some(f) = self.hooks.on_bad_free(ptr, loc) {
            return Err(End::Fault(f));
        }
        let p = &self.bin.personality;
        let in_heap = ptr >= p.heap_base && ptr < self.heap_brk;
        if !in_heap {
            // glibc-style "free(): invalid pointer" abort.
            return Err(End::Trap(Trap::Abort));
        }
        // Double free / interior free of a small chunk: silent allocator
        // corruption whose magnitude is implementation-specific. Subsequent
        // allocations shift, so any later output that depends on heap
        // contents or addresses diverges across implementations.
        let was_large = self
            .s
            .free_lists
            .iter()
            .any(|(sz, list)| *sz > 128 && list.contains(&ptr));
        if was_large {
            return Err(End::Trap(Trap::Abort)); // tcache/large: detected
        }
        self.corruption_bias = 8 + (p.seed % 5) * 8;
        Ok(())
    }

    // ---- printf ----

    fn printf(&mut self, args: &[u64], arg_tys: &[IrType], loc: Loc) -> Result<i32, End> {
        // Format string and rendered output go through session-pooled
        // buffers; a faulting conversion discards the partial render (the
        // buffers are handed back either way), exactly like the
        // allocate-per-call version this replaces.
        let mut fmt = std::mem::take(&mut self.s.printf_fmt);
        let mut out = std::mem::take(&mut self.s.printf_out);
        fmt.clear();
        out.clear();
        let r = match self.cstr_checked_into(args[0], loc, &mut fmt) {
            Ok(()) => self.printf_into(&fmt, &mut out, args, arg_tys, loc),
            Err(e) => Err(e),
        };
        let ret = match r {
            Ok(()) => {
                self.stdout.extend_from_slice(&out);
                Ok(out.len() as i32)
            }
            Err(e) => Err(e),
        };
        self.s.printf_fmt = fmt;
        self.s.printf_out = out;
        ret
    }

    fn printf_into(
        &mut self,
        fmt: &[u8],
        out: &mut Vec<u8>,
        args: &[u64],
        arg_tys: &[IrType],
        loc: Loc,
    ) -> Result<(), End> {
        let mut ai = 1usize; // next vararg
        let mut i = 0usize;
        while i < fmt.len() {
            let c = fmt[i];
            if c != b'%' {
                out.push(c);
                i += 1;
                continue;
            }
            i += 1;
            if i >= fmt.len() {
                out.push(b'%');
                break;
            }
            // Flags and width.
            let mut zero_pad = false;
            let mut width = 0usize;
            if fmt[i] == b'0' {
                zero_pad = true;
                i += 1;
            }
            while i < fmt.len() && fmt[i].is_ascii_digit() {
                width = width * 10 + (fmt[i] - b'0') as usize;
                i += 1;
            }
            let mut long = false;
            if i < fmt.len() && fmt[i] == b'l' {
                long = true;
                i += 1;
                if i < fmt.len() && fmt[i] == b'l' {
                    i += 1;
                }
            }
            if i >= fmt.len() {
                break;
            }
            let conv = fmt[i];
            i += 1;
            let mut next = |vm: &mut Self| -> (u64, IrType) {
                let v = args.get(ai).copied().unwrap_or_else(|| {
                    // Too few arguments: reads "stack garbage".
                    vm.bin.personality.junk_word(0xFFFF + ai as u32)
                });
                let t = arg_tys.get(ai).copied().unwrap_or(IrType::I64);
                ai += 1;
                (v, t)
            };
            // Numeric conversions render into a stack buffer; only %s and
            // %f still build an owned value.
            let mut num = [0u8; 24];
            let dyn_buf: Vec<u8>;
            let rendered: &[u8] = match conv {
                b'%' => b"%",
                b'd' | b'i' => {
                    let (v, _) = next(self);
                    let n = if long {
                        v as i64
                    } else {
                        v as u32 as i32 as i64
                    };
                    let len = fmt_dec_i64(n, &mut num);
                    &num[..len]
                }
                b'u' => {
                    let (v, _) = next(self);
                    let n = if long { v } else { v as u32 as u64 };
                    let len = fmt_dec_u64(n, &mut num);
                    &num[..len]
                }
                b'x' => {
                    let (v, _) = next(self);
                    let n = if long { v } else { v as u32 as u64 };
                    let len = fmt_hex_u64(n, &mut num);
                    &num[..len]
                }
                b'c' => {
                    num[0] = next(self).0 as u8;
                    &num[..1]
                }
                b's' => {
                    let (v, _) = next(self);
                    dyn_buf = self.cstr_checked(v, loc)?;
                    &dyn_buf
                }
                b'f' => {
                    let (v, t) = next(self);
                    let x = if t == IrType::F64 {
                        f64::from_bits(v)
                    } else {
                        v as i64 as f64 // %f with an int arg: garbage-ish
                    };
                    dyn_buf = format!("{x:.6}").into_bytes();
                    &dyn_buf
                }
                b'p' => {
                    let (v, _) = next(self);
                    num[0] = b'0';
                    num[1] = b'x';
                    let len = fmt_hex_u64(v, &mut num[2..]);
                    &num[..2 + len]
                }
                other => {
                    num[0] = b'%';
                    num[1] = other;
                    &num[..2]
                }
            };
            if rendered.len() < width {
                let pad = if zero_pad && matches!(conv, b'd' | b'i' | b'u' | b'x') {
                    b'0'
                } else {
                    b' '
                };
                out.extend(std::iter::repeat_n(pad, width - rendered.len()));
            }
            out.extend_from_slice(rendered);
        }
        Ok(())
    }
}

// ---- printf numeric rendering ----
//
// Alloc-free equivalents of `to_string()` / `format!("{:x}")` for the hot
// printf conversions; each writes into the caller's buffer and returns the
// rendered length.

fn fmt_dec_u64(mut n: u64, buf: &mut [u8]) -> usize {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    let len = tmp.len() - i;
    buf[..len].copy_from_slice(&tmp[i..]);
    len
}

fn fmt_dec_i64(n: i64, buf: &mut [u8]) -> usize {
    if n < 0 {
        buf[0] = b'-';
        1 + fmt_dec_u64(n.unsigned_abs(), &mut buf[1..])
    } else {
        fmt_dec_u64(n as u64, buf)
    }
}

fn fmt_hex_u64(mut n: u64, buf: &mut [u8]) -> usize {
    let mut tmp = [0u8; 16];
    let mut i = tmp.len();
    loop {
        i -= 1;
        let d = (n & 0xf) as u8;
        tmp[i] = if d < 10 { b'0' + d } else { b'a' + d - 10 };
        n >>= 4;
        if n == 0 {
            break;
        }
    }
    let len = tmp.len() - i;
    buf[..len].copy_from_slice(&tmp[i..]);
    len
}

// ---- shared evaluation kernels ----
//
// Pure functions over raw register words, used by both the per-instruction
// interpreter and the block dispatcher so the two backends cannot drift.

/// Resolves a constant to its raw 64-bit register representation.
pub(crate) fn const_raw(bin: &Binary, v: ConstVal) -> u64 {
    match v {
        ConstVal::I32(x) => x as i64 as u64,
        ConstVal::I64(x) => x as u64,
        ConstVal::F64(x) => x.to_bits(),
        ConstVal::GlobalAddr(g, off) => (bin.global_addr(g) as i64).wrapping_add(off) as u64,
        ConstVal::StrAddr(s, off) => (bin.string_addr(s) as i64).wrapping_add(off) as u64,
        ConstVal::Junk(id) => bin.personality.junk_word(id),
    }
}

/// Extends a raw memory word to its register representation.
pub(crate) fn extend_load(raw: u64, width: MemWidth, ty: IrType, sext: bool) -> u64 {
    match (width, ty, sext) {
        (MemWidth::W1, _, true) => raw as u8 as i8 as i64 as u64,
        (MemWidth::W1, _, false) => raw as u8 as u64,
        (MemWidth::W4, IrType::I32, _) => raw as u32 as i32 as i64 as u64,
        (MemWidth::W4, _, _) => raw as u32 as u64,
        (MemWidth::W8, _, _) => raw,
    }
}

/// Evaluates a unary operation.
pub(crate) fn eval_un(op: UnKind, ty: IrType, va: u64) -> u64 {
    match (op, ty) {
        (UnKind::Neg, IrType::I32) => ((va as i32).wrapping_neg()) as i64 as u64,
        (UnKind::Neg, _) => (va as i64).wrapping_neg() as u64,
        (UnKind::BitNot, IrType::I32) => (!(va as i32)) as i64 as u64,
        (UnKind::BitNot, _) => !va,
        (UnKind::FNeg, _) => (-f64::from_bits(va)).to_bits(),
    }
}

/// Evaluates a cast.
pub(crate) fn eval_cast(kind: CastKind, va: u64) -> u64 {
    match kind {
        CastKind::SextI32I64 => va as u32 as i32 as i64 as u64,
        CastKind::ZextI32I64 => va as u32 as u64,
        CastKind::TruncI64I32 => va as u32 as i32 as i64 as u64,
        CastKind::SI32F64 => ((va as u32 as i32) as f64).to_bits(),
        CastKind::UI32F64 => ((va as u32) as f64).to_bits(),
        CastKind::SI64F64 => ((va as i64) as f64).to_bits(),
        CastKind::F64I32 => (f64::from_bits(va) as i32) as i64 as u64,
        CastKind::F64I64 => (f64::from_bits(va) as i64) as u64,
    }
}

/// Evaluates a binary operation; `Err` is the trap a real CPU would raise.
pub(crate) fn eval_bin(op: BinKind, ty: IrType, a: u64, b: u64) -> Result<u64, Trap> {
    use BinKind::*;
    if op.is_float() {
        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
        return Ok(match op {
            FAdd => (x + y).to_bits(),
            FSub => (x - y).to_bits(),
            FMul => (x * y).to_bits(),
            FDiv => (x / y).to_bits(),
            FEq => (x == y) as u64,
            FNe => (x != y) as u64,
            FLt => (x < y) as u64,
            FLe => (x <= y) as u64,
            FGt => (x > y) as u64,
            FGe => (x >= y) as u64,
            _ => unreachable!(),
        });
    }
    let narrow = ty == IrType::I32;
    let (sa, sb) = if narrow {
        (a as u32 as i32 as i64, b as u32 as i32 as i64)
    } else {
        (a as i64, b as i64)
    };
    let (ua, ub) = if narrow {
        (a as u32 as u64, b as u32 as u64)
    } else {
        (a, b)
    };
    let wrap = |v: i64| -> u64 {
        if narrow {
            v as i32 as i64 as u64
        } else {
            v as u64
        }
    };
    Ok(match op {
        Add => wrap(sa.wrapping_add(sb)),
        Sub => wrap(sa.wrapping_sub(sb)),
        Mul => wrap(sa.wrapping_mul(sb)),
        DivS => {
            if sb == 0 {
                return Err(Trap::Sigfpe);
            }
            if narrow && sa as i32 == i32::MIN && sb as i32 == -1 {
                return Err(Trap::Sigfpe);
            }
            if !narrow && sa == i64::MIN && sb == -1 {
                return Err(Trap::Sigfpe);
            }
            wrap(sa.wrapping_div(sb))
        }
        DivU => {
            if ub == 0 {
                return Err(Trap::Sigfpe);
            }
            wrap((ua / ub) as i64)
        }
        RemS => {
            if sb == 0 {
                return Err(Trap::Sigfpe);
            }
            if (narrow && sa as i32 == i32::MIN && sb as i32 == -1)
                || (!narrow && sa == i64::MIN && sb == -1)
            {
                return Err(Trap::Sigfpe);
            }
            wrap(sa.wrapping_rem(sb))
        }
        RemU => {
            if ub == 0 {
                return Err(Trap::Sigfpe);
            }
            wrap((ua % ub) as i64)
        }
        // x86 semantics: shift amount masked to the operand width.
        Shl => {
            let m = if narrow { 31 } else { 63 };
            wrap(sa.wrapping_shl((ub as u32) & m))
        }
        ShrS => {
            let m = if narrow { 31 } else { 63 };
            wrap(sa.wrapping_shr((ub as u32) & m))
        }
        ShrU => {
            let m = if narrow { 31 } else { 63 };
            wrap(ua.wrapping_shr((ub as u32) & m) as i64)
        }
        And => wrap(sa & sb),
        Or => wrap(sa | sb),
        Xor => wrap(sa ^ sb),
        Eq => (sa == sb) as u64,
        Ne => (sa != sb) as u64,
        LtS => (sa < sb) as u64,
        LeS => (sa <= sb) as u64,
        GtS => (sa > sb) as u64,
        GeS => (sa >= sb) as u64,
        LtU => (ua < ub) as u64,
        LeU => (ua <= ub) as u64,
        GtU => (ua > ub) as u64,
        GeU => (ua >= ub) as u64,
        _ => unreachable!(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minc_compile::{compile_source, CompilerImpl};

    fn run_one(src: &str, impl_name: &str, input: &[u8]) -> ExecResult {
        let bin = compile_source(src, CompilerImpl::parse(impl_name).unwrap()).unwrap();
        execute(&bin, input, &VmConfig::default())
    }

    fn stdout_of(src: &str, impl_name: &str) -> String {
        let r = run_one(src, impl_name, b"");
        assert_eq!(r.status, ExitStatus::Code(0), "{impl_name}: {}", r.status);
        String::from_utf8_lossy(&r.stdout).into_owned()
    }

    #[test]
    fn printf_numeric_rendering_matches_std_formatting() {
        // The alloc-free renderers must stay bit-identical to
        // `to_string()` / `format!("{:x}")` across the extremes.
        let mut buf = [0u8; 24];
        for n in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN, 1_000_000_007] {
            let len = fmt_dec_i64(n, &mut buf);
            assert_eq!(&buf[..len], n.to_string().as_bytes(), "{n}");
        }
        for n in [0u64, 1, 9, 10, u64::MAX, 0xdead_beef] {
            let len = fmt_dec_u64(n, &mut buf);
            assert_eq!(&buf[..len], n.to_string().as_bytes(), "{n}");
            let len = fmt_hex_u64(n, &mut buf);
            assert_eq!(&buf[..len], format!("{n:x}").as_bytes(), "{n:x}");
        }
    }

    #[test]
    fn printf_extreme_values_through_the_vm() {
        let src = r#"
            int main() {
                long big = -9223372036854775807L - 1L;
                printf("%ld %lx %u %p\n", big, big, 4294967295, 0L);
                return 0;
            }
        "#;
        assert_eq!(
            stdout_of(src, "gcc-O0"),
            "-9223372036854775808 8000000000000000 4294967295 0x0\n"
        );
    }

    #[test]
    fn hello_world_all_impls() {
        let src = r#"int main() { printf("hello %s, %d\n", "world", 42); return 0; }"#;
        for ci in CompilerImpl::default_set() {
            assert_eq!(stdout_of(src, &ci.to_string()), "hello world, 42\n", "{ci}");
        }
    }

    #[test]
    fn arithmetic_and_control_flow_agree_across_impls() {
        let src = r#"
            int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
            int main() {
                int i;
                for (i = 0; i < 10; i++) { printf("%d ", fib(i)); }
                printf("\n");
                unsigned u = 4000000000u;
                printf("%u %x\n", u + u, 255);
                long big = 1L << 40;
                printf("%ld\n", big / 3L);
                return 0;
            }
        "#;
        let expect = "0 1 1 2 3 5 8 13 21 34 \n3705032704 ff\n366503875925\n";
        for ci in CompilerImpl::default_set() {
            assert_eq!(stdout_of(src, &ci.to_string()), expect, "{ci}");
        }
    }

    #[test]
    fn pointers_arrays_strings_agree() {
        let src = r#"
            int main() {
                char buf[32];
                strcpy(buf, "minc");
                printf("%d %s\n", (int)strlen(buf), buf);
                int a[5];
                int i;
                for (i = 0; i < 5; i++) a[i] = i * i;
                int* p = a + 1;
                printf("%d %d\n", *p, p[2]);
                return 0;
            }
        "#;
        for ci in CompilerImpl::default_set() {
            assert_eq!(stdout_of(src, &ci.to_string()), "4 minc\n1 9\n", "{ci}");
        }
    }

    #[test]
    fn structs_and_heap_agree() {
        let src = r#"
            struct node { int v; struct node* next; };
            int main() {
                struct node* head = 0;
                int i;
                for (i = 0; i < 4; i++) {
                    struct node* n = (struct node*)malloc(sizeof(struct node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                int sum = 0;
                while (head != 0) { sum += head->v; struct node* d = head; head = head->next; free(d); }
                printf("%d\n", sum);
                return 0;
            }
        "#;
        for ci in CompilerImpl::default_set() {
            assert_eq!(stdout_of(src, &ci.to_string()), "6\n", "{ci}");
        }
    }

    #[test]
    fn input_builtins() {
        let src = r#"
            int main() {
                char buf[16];
                long n = read_input(buf, 15L);
                buf[n] = '\0';
                printf("%ld %s %ld\n", n, buf, input_size());
                int c = getchar();
                printf("%d\n", c);
                return 0;
            }
        "#;
        let bin = compile_source(src, CompilerImpl::parse("gcc-O2").unwrap()).unwrap();
        let r = execute(&bin, b"abc", &VmConfig::default());
        assert_eq!(String::from_utf8_lossy(&r.stdout), "3 abc 3\n-1\n");
    }

    #[test]
    fn exit_status_propagates() {
        assert_eq!(
            run_one("int main() { return 3; }", "gcc-O0", b"").status,
            ExitStatus::Code(3)
        );
        assert_eq!(
            run_one("int main() { exit(7); return 1; }", "clang-O2", b"").status,
            ExitStatus::Code(7)
        );
        assert_eq!(
            run_one("int main() { return -1; }", "gcc-O1", b"").status,
            ExitStatus::Code(255)
        );
    }

    #[test]
    fn null_deref_traps() {
        let r = run_one("int main() { int* p = 0; return *p; }", "gcc-O0", b"");
        assert_eq!(r.status, ExitStatus::Trapped(Trap::Segv));
    }

    #[test]
    fn div_by_zero_traps_at_o0_but_not_when_dead_at_o2() {
        let src = "int main() { int z = input_size() > 100 ? 1 : 0; int dead = 5 / z; return 0; }";
        let o0 = run_one(src, "gcc-O0", b"");
        assert_eq!(o0.status, ExitStatus::Trapped(Trap::Sigfpe));
        let o2 = run_one(src, "gcc-O2", b"");
        assert_eq!(o2.status, ExitStatus::Code(0), "dead division DCE'd at O2");
    }

    #[test]
    fn abort_and_timeout() {
        assert_eq!(
            run_one("int main() { abort(); return 0; }", "gcc-O0", b"").status,
            ExitStatus::Trapped(Trap::Abort)
        );
        let bin = compile_source(
            "int main() { while (1) { } return 0; }",
            CompilerImpl::parse("gcc-O0").unwrap(),
        )
        .unwrap();
        let r = execute(
            &bin,
            b"",
            &VmConfig {
                step_limit: 10_000,
                ..Default::default()
            },
        );
        assert_eq!(r.status, ExitStatus::TimedOut);
    }

    #[test]
    fn stack_overflow_on_deep_recursion() {
        let src = "int f(int n) { char pad[128]; pad[0] = (char)n; return f(n + 1) + pad[0]; }\nint main() { return f(0); }";
        let r = run_one(src, "gcc-O0", b"");
        assert_eq!(r.status, ExitStatus::Trapped(Trap::StackOverflow));
    }

    #[test]
    fn listing1_unstable_across_o0_and_o2() {
        // The paper's Listing 1, scaled to MinC: at -O0 the overflow check
        // catches dump_data(INT_MAX-100, 101); at -O2 the check is gone.
        let src = r#"
            int dump_data(int offset, int len) {
                int size = 100;
                if (offset + len > size || offset < 0 || len < 0) { return -1; }
                if (offset + len < offset) { return -1; }
                return 0;
            }
            int main() {
                int r = dump_data(2147483647 - 100, 101);
                printf("r=%d\n", r);
                return 0;
            }
        "#;
        let o0 = stdout_of(src, "gcc-O0");
        let o2 = stdout_of(src, "gcc-O2");
        assert_eq!(o0, "r=-1\n");
        assert_ne!(o0, o2, "UB-exploiting -O2 must diverge from -O0");
    }

    #[test]
    fn uninitialized_local_diverges_across_impls() {
        let src = r#"
            int main() {
                int u;
                printf("%d\n", u);
                return 0;
            }
        "#;
        let outs: std::collections::HashSet<String> = CompilerImpl::default_set()
            .iter()
            .map(|ci| stdout_of(src, &ci.to_string()))
            .collect();
        assert!(outs.len() >= 2, "uninit read should diverge, got {outs:?}");
    }

    #[test]
    fn eval_order_bug_diverges_across_families() {
        // The tcpdump pattern: two calls returning the same static buffer,
        // both arguments to printf.
        let src = r#"
            char* fmt_num(int v) {
                static char buffer[16];
                int i = 0;
                if (v == 0) { buffer[i] = '0'; i++; }
                while (v > 0) { buffer[i] = (char)('0' + v % 10); v /= 10; i++; }
                buffer[i] = '\0';
                return buffer;
            }
            int main() {
                printf("who-is %s tell %s\n", fmt_num(11), fmt_num(22));
                return 0;
            }
        "#;
        let gcc = stdout_of(src, "gcc-O0");
        let clang = stdout_of(src, "clang-O0");
        assert_ne!(gcc, clang, "conflicting side effects in args must diverge");
        // clang (left-to-right): second call overwrites -> both show 22.
        assert!(clang.contains("who-is 22 tell 22"), "clang: {clang}");
        assert!(gcc.contains("who-is 11 tell 11"), "gcc: {gcc}");
    }

    #[test]
    fn pointer_comparison_diverges_somewhere() {
        // Comparing a stack pointer with a global pointer: ordering depends
        // entirely on the address-space layout.
        let src = r#"
            int g;
            int main() {
                int l = 0;
                if (&l < &g) { printf("stack-first\n"); }
                else { printf("global-first\n"); }
                return l;
            }
        "#;
        let outs: std::collections::HashSet<String> = CompilerImpl::default_set()
            .iter()
            .map(|ci| stdout_of(src, &ci.to_string()))
            .collect();
        // All run fine; layout decides. (Both families put the stack above
        // the data segments, so this one agrees — the point is it is legal
        // either way; cross-object compares between heap and globals etc.
        // diverge in the targets suite.)
        assert!(!outs.is_empty());
    }

    #[test]
    fn line_macro_diverges_on_multiline_statement() {
        let src = "int main() {\n    printf(\"%d\\n\",\n__LINE__);\n    return 0;\n}";
        let gcc = stdout_of(src, "gcc-O0"); // EndLine -> 3
        let clang = stdout_of(src, "clang-O0"); // StartLine -> 2
        assert_eq!(clang.trim(), "2");
        assert_eq!(gcc.trim(), "3");
    }

    #[test]
    fn pow_fast_diverges_at_clang_o3() {
        let src = r#"
            int main() {
                double x = pow(1.5, 13.7);
                printf("%f\n", x);
                return 0;
            }
        "#;
        let clang_o0 = stdout_of(src, "clang-O0");
        let clang_o3 = stdout_of(src, "clang-O3");
        assert_ne!(clang_o0, clang_o3, "fast pow must lose precision");
        let gcc_o3 = stdout_of(src, "gcc-O3");
        assert_eq!(clang_o0, gcc_o3);
    }

    #[test]
    fn rand_is_deterministic_per_impl_but_differs_across() {
        let src = "int main() { printf(\"%d %d\\n\", rand(), rand()); return 0; }";
        let a1 = stdout_of(src, "gcc-O0");
        let a2 = stdout_of(src, "gcc-O0");
        let b = stdout_of(src, "clang-O0");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn malloc_free_reuse_is_lifo() {
        let src = r#"
            int main() {
                char* a = (char*)malloc(32L);
                free(a);
                char* b = (char*)malloc(32L);
                printf("%d\n", a == b ? 1 : 0);
                return 0;
            }
        "#;
        for ci in ["gcc-O0", "clang-O2"] {
            assert_eq!(stdout_of(src, ci), "1\n", "{ci}");
        }
    }

    #[test]
    fn free_of_stack_pointer_aborts() {
        let src = "int main() { int x; free(&x); return 0; }";
        let r = run_one(src, "gcc-O0", b"");
        assert_eq!(r.status, ExitStatus::Trapped(Trap::Abort));
    }

    #[test]
    fn oob_read_within_frame_diverges_across_impls() {
        // Reading one past an array picks up a neighbouring slot byte;
        // which byte depends on the frame layout.
        let src = r#"
            int main() {
                char a[4];
                char b[4];
                int i;
                for (i = 0; i < 4; i++) { a[i] = 'A'; b[i] = 'B'; }
                printf("%d\n", (int)a[6]);
                return 0;
            }
        "#;
        let outs: std::collections::HashSet<String> = CompilerImpl::default_set()
            .iter()
            .map(|ci| stdout_of(src, &ci.to_string()))
            .collect();
        assert!(outs.len() >= 2, "OOB read should diverge: {outs:?}");
    }

    #[test]
    fn widen_mul_int_error_diverges() {
        // The paper's IntError: x = y + a*b with a*b overflowing int.
        // Operands must be runtime values or constant folding hides the
        // difference (both families fold identically — as real ones do).
        let src = r#"
            int main() {
                int a = (int)input_size() + 100000;
                int b = 100000 - (int)input_size();
                long x = (long)(a * b);
                printf("%ld\n", x);
                return 0;
            }
        "#;
        let gcc_o1 = stdout_of(src, "gcc-O1");
        let clang_o1 = stdout_of(src, "clang-O1");
        assert_ne!(gcc_o1, clang_o1);
        assert_eq!(gcc_o1.trim(), "1410065408"); // wrapped 32-bit
        assert_eq!(clang_o1.trim(), "10000000000"); // widened 64-bit
    }

    #[test]
    fn static_buffer_persists_across_calls() {
        let src = r#"
            int counter() { static int n; n++; return n; }
            int main() { counter(); counter(); printf("%d\n", counter()); return 0; }
        "#;
        for ci in CompilerImpl::default_set() {
            assert_eq!(stdout_of(src, &ci.to_string()), "3\n", "{ci}");
        }
    }

    #[test]
    fn printf_width_and_hex() {
        let src = r#"int main() { printf("[%04x] [%3d] [%c]\n", 255, 7, 'Z'); return 0; }"#;
        assert_eq!(stdout_of(src, "gcc-O0"), "[00ff] [  7] [Z]\n");
    }

    #[test]
    fn gcc_o3_unroll_miscompilation_reproduces_rq2() {
        // Trip-count-7 loop with a multiply: gcc-sim -O3 loses an iteration.
        let src = r#"
            int main() {
                int acc = 0;
                int i;
                for (i = 0; i < 7; i++) { acc += i * 3; }
                printf("%d\n", acc);
                return 0;
            }
        "#;
        let good = stdout_of(src, "clang-O3");
        let bad = stdout_of(src, "gcc-O3");
        assert_eq!(good.trim(), "63");
        assert_ne!(good, bad, "seeded miscompilation must be observable");
        let gcc_o2 = stdout_of(src, "gcc-O2");
        assert_eq!(gcc_o2.trim(), "63", "only -O3 unrolling is affected");
    }
}
