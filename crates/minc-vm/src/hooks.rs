//! Execution hooks: the instrumentation seam for sanitizers and coverage.
//!
//! The differential binaries run with [`NoHooks`] — the paper's design
//! point is that CompDiff needs *no* instrumentation beyond a forkserver.
//! Sanitizer analogs (in the `sanitizers` crate) implement [`Hooks`] to get
//! ASan/UBSan/MSan-style checking; the fuzzer implements it for coverage.

use crate::result::Fault;
use minc_compile::ir::{BinKind, IrType};

/// Where in the program an event happened (function and block indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Function index.
    pub func: u32,
    /// Block index within the function.
    pub block: u32,
    /// Instruction index within the block.
    pub inst: u32,
}

/// What to do with a freed chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeDisposition {
    /// Return the chunk to the free list (normal allocators reuse memory —
    /// which is what makes use-after-free observable and unstable).
    Reuse,
    /// Quarantine the chunk (ASan-style; the address is never reused).
    Quarantine,
}

/// Uses of poisoned (uninitialized) values that MSan-style checking
/// reports. Mirrors the paper's description: MSan reports when an
/// uninitialized value *determines control flow or addressing*, not when
/// it is merely copied or printed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoisonUse {
    /// A conditional branch condition.
    Branch,
    /// A load/store address.
    Address,
    /// A division or remainder operand.
    Divisor,
}

/// Instrumentation callbacks. All methods have no-op defaults.
///
/// Returning `Some(Fault)` from a check aborts execution with a sanitizer
/// report (like a real sanitizer's `abort()`).
pub trait Hooks {
    /// `true` iff this hook set observes nothing at all (every callback is
    /// the no-op default). The block dispatcher gates its per-op hook
    /// plumbing — location lookups, `(op, ty)` metadata recovery — on this
    /// constant, so the uninstrumented path pays zero for it *structurally*
    /// rather than relying on the optimizer to dead-code it. Only set this
    /// on a hook set that overrides no callbacks (`bulk_mem_ok` aside).
    const INERT: bool = false;

    /// A control-flow edge was taken (for coverage).
    fn on_edge(&mut self, from: Loc, to: Loc) {
        let _ = (from, to);
    }

    /// Before a load of `width` bytes at `addr`.
    fn check_load(&mut self, addr: u64, width: u64, loc: Loc) -> Option<Fault> {
        let _ = (addr, width, loc);
        None
    }

    /// Before a store of `width` bytes at `addr`.
    fn check_store(&mut self, addr: u64, width: u64, loc: Loc) -> Option<Fault> {
        let _ = (addr, width, loc);
        None
    }

    /// Before a binary operation executes (UBSan checks overflow, shift
    /// range, division by zero here). Operand values are raw 64-bit
    /// (i32 values sign-extended).
    fn check_bin(
        &mut self,
        op: BinKind,
        ty: IrType,
        a: u64,
        b: u64,
        ub_signed: bool,
        loc: Loc,
    ) -> Option<Fault> {
        let _ = (op, ty, a, b, ub_signed, loc);
        None
    }

    /// Extra redzone bytes the allocator should place on each side of every
    /// heap chunk (ASan returns a non-zero value).
    fn heap_redzone(&self) -> u64 {
        0
    }

    /// After a successful `malloc`: `[addr, addr+size)` is the payload.
    fn on_malloc(&mut self, addr: u64, size: u64) {
        let _ = (addr, size);
    }

    /// On `free(addr)` of a live chunk of `size` bytes. May report a fault
    /// (ASan double-free etc. are detected by the sanitizer's own records).
    fn on_free(&mut self, addr: u64, size: u64, loc: Loc) -> Result<FreeDisposition, Fault> {
        let _ = (addr, size, loc);
        Ok(FreeDisposition::Reuse)
    }

    /// On `free` of a pointer that is not a live chunk (double free or
    /// invalid free). Returning `Some(Fault)` reports; `None` lets the VM
    /// model the native allocator's corruption behaviour.
    fn on_bad_free(&mut self, addr: u64, loc: Loc) -> Option<Fault> {
        let _ = (addr, loc);
        None
    }

    /// A function frame was entered; `slots` are (address, size) pairs of
    /// the frame's stack objects (ASan poisons the gaps; MSan poisons the
    /// slots as uninitialized).
    fn on_frame_enter(&mut self, lo: u64, hi: u64, slots: &[(u64, u64)]) {
        let _ = (lo, hi, slots);
    }

    /// The frame `[lo, hi)` was exited.
    fn on_frame_exit(&mut self, lo: u64, hi: u64) {
        let _ = (lo, hi);
    }

    /// Whether the VM should track value poisoning (MSan).
    fn track_poison(&self) -> bool {
        false
    }

    /// Is any byte of `[addr, addr+width)` poisoned?
    fn load_poison(&mut self, addr: u64, width: u64) -> bool {
        let _ = (addr, width);
        false
    }

    /// Record the poison state of a stored value.
    fn store_poison(&mut self, addr: u64, width: u64, poisoned: bool) {
        let _ = (addr, width, poisoned);
    }

    /// A poisoned value reached a reporting use.
    fn on_poison_use(&mut self, use_: PoisonUse, loc: Loc) -> Option<Fault> {
        let _ = (use_, loc);
        None
    }

    /// The program is about to exit normally; `live_heap` lists the still-
    /// allocated chunks as `(payload address, size)`. LeakSanitizer-style
    /// checking reports here. Traps and sanitizer aborts do not reach this
    /// hook (real LSan also skips crashed runs).
    fn on_exit(&mut self, live_heap: &[(u64, u64)]) -> Option<Fault> {
        let _ = live_heap;
        None
    }

    /// Whether the VM may service whole-range `memcpy`/`memset`/
    /// `read_input` with bulk page-slice operations. Only return `true`
    /// when this hook set does *no* per-byte work: no load/store checks,
    /// no poison tracking, no redzones. The VM still falls back to the
    /// byte loop whenever any byte of the range is invalid, so traps and
    /// partial writes are unaffected either way — this is purely a
    /// fast-path permission.
    fn bulk_mem_ok(&self) -> bool {
        false
    }
}

/// The default: no instrumentation (differential binaries).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl Hooks for NoHooks {
    const INERT: bool = true;

    fn bulk_mem_ok(&self) -> bool {
        true
    }
}
