//! # minc-vm — deterministic execution of MinC binaries
//!
//! Interprets the IR produced by `minc-compile` against a raw, flat,
//! 64-bit address space. Each binary executes with *its* compiler
//! implementation's layout and junk, so:
//!
//! * defined programs produce identical output under all ten
//!   implementations;
//! * programs with undefined behaviour may observably diverge — which is
//!   the signal CompDiff detects.
//!
//! Instrumentation (sanitizers, coverage) attaches through the [`Hooks`]
//! trait; uninstrumented differential runs use [`execute`].
//!
//! ```
//! use minc_compile::{compile_source, CompilerImpl};
//! use minc_vm::{execute, VmConfig};
//!
//! # fn main() -> Result<(), minc::FrontendError> {
//! let bin = compile_source(
//!     "int main() { printf(\"%d\\n\", 6 * 7); return 0; }",
//!     CompilerImpl::parse("clang-O2").unwrap(),
//! )?;
//! let result = execute(&bin, b"", &VmConfig::default());
//! assert_eq!(result.stdout, b"42\n");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
pub mod block;
pub mod exec;
pub mod hooks;
pub mod memory;
pub mod result;
pub mod session;

pub use block::BlockProgram;
pub use exec::{execute, execute_with_hooks, VmConfig, VmMode};
pub use hooks::{FreeDisposition, Hooks, Loc, NoHooks, PoisonUse};
pub use memory::Memory;
pub use result::{ExecResult, ExitStatus, Fault, SanitizerKind, Trap};
pub use session::{ExecSession, SessionStats};
