//! Sparse raw memory with implementation-defined junk.
//!
//! The VM models a flat 64-bit address space in 4 KiB pages. A page
//! materializes on first touch *filled with junk bytes* that are a
//! deterministic function of (implementation seed, address) — this is what
//! "uninitialized memory" reads as under a given compiler implementation.
//! Determinism per binary keeps program output deterministic (CompDiff's
//! precondition) while different implementations see different junk.

use minc_compile::Personality;
use std::collections::HashMap;

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Raw byte-addressable memory.
#[derive(Debug, Clone)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8]>>,
    seed: u64,
}

impl Memory {
    /// Creates memory whose junk pattern follows `personality`.
    pub fn new(personality: &Personality) -> Self {
        Memory {
            pages: HashMap::new(),
            seed: personality.seed,
        }
    }

    fn junk_byte(seed: u64, addr: u64) -> u8 {
        let mut x = addr ^ seed;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        (x & 0xff) as u8
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8] {
        let seed = self.seed;
        self.pages
            .entry(page)
            .or_insert_with(|| {
                let base = page * PAGE_SIZE;
                let mut p = vec![0u8; PAGE_SIZE as usize];
                for (i, b) in p.iter_mut().enumerate() {
                    *b = Self::junk_byte(seed, base + i as u64);
                }
                p.into_boxed_slice()
            })
            .as_mut()
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, addr: u64) -> u8 {
        let page = addr / PAGE_SIZE;
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(page)[off]
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let page = addr / PAGE_SIZE;
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(page)[off] = v;
    }

    /// Reads `width` bytes little-endian (1, 4, or 8).
    pub fn read(&mut self, addr: u64, width: u64) -> u64 {
        let mut v: u64 = 0;
        for i in 0..width {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes of `v` little-endian.
    pub fn write(&mut self, addr: u64, v: u64, width: u64) {
        for i in 0..width {
            self.write_u8(addr.wrapping_add(i), (v >> (8 * i)) as u8);
        }
    }

    /// Copies `len` bytes from `src` to `dst` (handles overlap like memmove
    /// does not — byte-forward copy, like a naive memcpy).
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) {
        for i in 0..len {
            let b = self.read_u8(src.wrapping_add(i));
            self.write_u8(dst.wrapping_add(i), b);
        }
    }

    /// Fills `[addr, addr+len)` with `v`.
    pub fn fill(&mut self, addr: u64, v: u8, len: u64) {
        for i in 0..len {
            self.write_u8(addr.wrapping_add(i), v);
        }
    }

    /// Reads a NUL-terminated C string, bounded by `max` bytes.
    pub fn read_cstr(&mut self, addr: u64, max: u64) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_u8(addr.wrapping_add(i));
            if b == 0 {
                break;
            }
            out.push(b);
        }
        out
    }

    /// Number of materialized pages (memory footprint proxy).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minc_compile::CompilerImpl;

    fn mem(name: &str) -> Memory {
        Memory::new(&CompilerImpl::parse(name).unwrap().personality())
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mem("gcc-O0");
        m.write(0x5000, 0xdead_beef_cafe_f00d, 8);
        assert_eq!(m.read(0x5000, 8), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(0x5000, 4), 0xcafe_f00d);
        assert_eq!(m.read(0x5000, 1), 0x0d);
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = mem("gcc-O0");
        let addr = PAGE_SIZE - 3;
        m.write(addr, 0x1122_3344_5566_7788, 8);
        assert_eq!(m.read(addr, 8), 0x1122_3344_5566_7788);
    }

    #[test]
    fn junk_is_deterministic_per_impl() {
        let mut a1 = mem("gcc-O0");
        let mut a2 = mem("gcc-O0");
        let mut b = mem("clang-O0");
        let j1: Vec<u8> = (0..64).map(|i| a1.read_u8(0x7000 + i)).collect();
        let j2: Vec<u8> = (0..64).map(|i| a2.read_u8(0x7000 + i)).collect();
        let j3: Vec<u8> = (0..64).map(|i| b.read_u8(0x7000 + i)).collect();
        assert_eq!(j1, j2);
        assert_ne!(j1, j3);
    }

    #[test]
    fn copy_and_fill() {
        let mut m = mem("gcc-O1");
        m.fill(0x8000, 0xab, 16);
        m.copy(0x9000, 0x8000, 16);
        assert_eq!(m.read_u8(0x900f), 0xab);
    }

    #[test]
    fn cstr_stops_at_nul_and_max() {
        let mut m = mem("gcc-O0");
        m.write_u8(0xa000, b'h');
        m.write_u8(0xa001, b'i');
        m.write_u8(0xa002, 0);
        assert_eq!(m.read_cstr(0xa000, 100), b"hi");
        assert_eq!(m.read_cstr(0xa000, 1), b"h");
    }
}
